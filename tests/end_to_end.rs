//! Workspace-level integration tests: the full pipeline across crates,
//! asserting the paper's qualitative claims end to end.

use ocular::datasets::planted::{generate, PlantedConfig};
use ocular::datasets::profiles::{movielens_like, Scale};
use ocular::prelude::*;

fn planted() -> ocular::datasets::PlantedDataset {
    generate(&PlantedConfig {
        n_users: 150,
        n_items: 90,
        k: 4,
        users_per_cluster: 45,
        items_per_cluster: 28,
        user_overlap: 0.5,
        item_overlap: 0.5,
        within_density: 0.55,
        noise_density: 0.004,
        seed: 5,
    })
}

#[test]
fn full_pipeline_split_train_recommend_evaluate() {
    let data = planted();
    let split = Split::new(&data.matrix, &SplitConfig::default());
    let result = fit(
        &split.train,
        &OcularConfig {
            k: 4,
            lambda: 0.3,
            max_iters: 60,
            seed: 1,
            ..Default::default()
        },
    );
    let report = evaluate(&result.model, &split.train, &split.test, 20);
    assert!(
        report.recall > 0.45,
        "planted structure should be easy to recover: {report}"
    );
    assert!(report.map > 0.1, "MAP too low: {report}");
}

#[test]
fn ocular_beats_popularity_and_neighbors_on_overlapping_structure() {
    // the Table-I shape assertion: on strongly overlapping co-cluster data,
    // OCuLaR must beat the popularity floor and the one-sided neighbour
    // methods
    let data = planted();
    let split = Split::new(
        &data.matrix,
        &SplitConfig {
            seed: 2,
            ..Default::default()
        },
    );
    let m = 20;

    let ocular_model = fit(
        &split.train,
        &OcularConfig {
            k: 4,
            lambda: 0.3,
            max_iters: 60,
            seed: 1,
            ..Default::default()
        },
    )
    .model;
    let ocular_recall = evaluate(&ocular_model, &split.train, &split.test, m).recall;

    let pop = Popularity::fit(&split.train);
    let pop_recall = evaluate(&pop, &split.train, &split.test, m).recall;
    let uknn = UserKnn::fit(&split.train, &KnnConfig { k: 30 });
    let uknn_recall = evaluate(&uknn, &split.train, &split.test, m).recall;

    assert!(
        ocular_recall > pop_recall + 0.05,
        "OCuLaR {ocular_recall:.3} must clearly beat popularity {pop_recall:.3}"
    );
    assert!(
        ocular_recall >= uknn_recall - 0.02,
        "OCuLaR {ocular_recall:.3} must be at least on par with user-kNN {uknn_recall:.3}"
    );
}

#[test]
fn parallel_trainer_is_a_drop_in_replacement() {
    let data = planted();
    let cfg = OcularConfig {
        k: 4,
        lambda: 0.3,
        max_iters: 20,
        seed: 9,
        ..Default::default()
    };
    let seq = fit(&data.matrix, &cfg);
    let par = fit_parallel(&data.matrix, &cfg, Some(3));
    assert_eq!(seq.model, par.model);
}

#[test]
fn explanations_reference_real_purchases() {
    // every supporting item in a rationale must be an actual purchase of
    // the target user, and every co-user must actually have bought the
    // recommended item — the property that makes the rationale *true*
    let data = planted();
    let result = fit(
        &data.matrix,
        &OcularConfig {
            k: 4,
            lambda: 0.3,
            max_iters: 60,
            seed: 1,
            ..Default::default()
        },
    );
    let clusters = extract_coclusters(&result.model, default_threshold());
    let mut checked = 0;
    for u in 0..data.matrix.n_rows() {
        for rec in recommend_top_m(&result.model, &data.matrix, u, 2) {
            let e = explain(&result.model, &data.matrix, &clusters, u, rec.item, 5);
            for c in &e.contributions {
                for &j in &c.supporting_items {
                    assert!(
                        data.matrix.contains(u, j),
                        "claimed purchase ({u},{j}) is false"
                    );
                }
                for &v in &c.co_users {
                    assert!(
                        data.matrix.contains(v, rec.item),
                        "claimed co-purchase ({v},{}) is false",
                        rec.item
                    );
                }
            }
            checked += 1;
        }
    }
    assert!(
        checked > 100,
        "should have checked many explanations, got {checked}"
    );
}

#[test]
fn profile_dataset_trains_under_protocol() {
    // smoke the real experiment path at reduced size
    let data = movielens_like(Scale::Factor(0.5), 3);
    let split = Split::new(&data.matrix, &SplitConfig::default());
    let result = fit(
        &split.train,
        &OcularConfig {
            k: data.truth.k(),
            lambda: 0.5,
            max_iters: 40,
            seed: 0,
            ..Default::default()
        },
    );
    let report = evaluate(&result.model, &split.train, &split.test, 50);
    assert!(report.recall > 0.2, "profile recall too low: {report}");
    // objective decreased substantially
    let h = &result.history;
    assert!(h.final_objective() < 0.9 * h.objective[0]);
}

#[test]
fn model_persistence_roundtrip_through_facade() {
    let data = planted();
    let model = fit(
        &data.matrix,
        &OcularConfig {
            k: 4,
            lambda: 0.3,
            max_iters: 10,
            seed: 4,
            ..Default::default()
        },
    )
    .model;
    let mut buf: Vec<u8> = Vec::new();
    model.save(&mut buf).unwrap();
    let loaded = FactorModel::load(&mut buf.as_slice()).unwrap();
    assert_eq!(loaded, model);
    // loaded model scores identically
    let mut a = Vec::new();
    let mut b = Vec::new();
    model.score_user(3, &mut a);
    loaded.score_user(3, &mut b);
    assert_eq!(a, b);
}

#[test]
fn determinism_across_full_pipeline() {
    let data = planted();
    let run = || {
        let split = Split::new(
            &data.matrix,
            &SplitConfig {
                seed: 7,
                ..Default::default()
            },
        );
        let result = fit(
            &split.train,
            &OcularConfig {
                k: 4,
                lambda: 0.3,
                max_iters: 30,
                seed: 2,
                ..Default::default()
            },
        );
        evaluate(&result.model, &split.train, &split.test, 10)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "the whole pipeline must be reproducible");
}
