//! Accuracy gate for quantized serving: on a seeded power-law catalog,
//! recall@20 of the f32 and int8 engines must stay within a declared
//! epsilon of the f64 engine's. Narrowing the factor representation is a
//! memory/speed trade, not an accuracy cliff — this suite (run in CI) is
//! what enforces that, with the same epsilons the README documents:
//! f32 within 0.005 absolute recall, int8 within 0.05.

use ocular::datasets::powerlaw::{generate, PowerLawConfig};
use ocular::eval::recall_at;
use ocular::prelude::*;

/// Mean recall@20 of an engine's served lists against held-out positives,
/// averaged over users that have any (the paper's protocol).
fn recall_at_20(e: &ServeEngine, test: &ocular::sparse::Dataset) -> f64 {
    let m = 20;
    let (mut sum, mut users) = (0.0, 0usize);
    for u in 0..e.model().n_users() {
        let held = test.row(u);
        if held.is_empty() {
            continue;
        }
        let served = e.serve_one(&Request::Warm { user: u, m }).unwrap();
        let ranked: Vec<usize> = served.items.iter().map(|r| r.item).collect();
        sum += recall_at(&ranked, held, m);
        users += 1;
    }
    assert!(users > 0, "split must hold out positives for some users");
    sum / users as f64
}

#[test]
fn quantized_recall_at_20_within_epsilon_of_f64() {
    let data = generate(&PowerLawConfig {
        n_users: 300,
        n_items: 200,
        k: 6,
        target_nnz: 6_000,
        seed: 42,
        ..Default::default()
    });
    let split = data.matrix.split(&SplitConfig {
        train_fraction: 0.75,
        seed: 9,
        ..Default::default()
    });
    let model = fit(
        &split.train,
        &OcularConfig {
            k: 6,
            lambda: 0.3,
            max_iters: 40,
            seed: 3,
            ..Default::default()
        },
    )
    .model;

    let engine = |quantize: Option<QuantDtype>| {
        let mut b = EngineBuilder::from_model(model.clone())
            .dataset(split.train.clone())
            .candidates(CandidatePolicy::FullCatalog);
        if let Some(dtype) = quantize {
            b = b.quantization(dtype);
        }
        b.build().unwrap()
    };

    let base = recall_at_20(&engine(None), &split.test);
    assert!(
        base > 0.2,
        "f64 reference must actually rank held-out items: recall@20 = {base}"
    );
    for (dtype, epsilon) in [(QuantDtype::F32, 0.005), (QuantDtype::I8, 0.05)] {
        let got = recall_at_20(&engine(Some(dtype)), &split.test);
        assert!(
            (got - base).abs() <= epsilon,
            "{}: recall@20 {got} drifted more than {epsilon} from f64's {base}",
            dtype.name()
        );
    }
}
