//! Golden-snapshot compatibility contract: the committed corpus under
//! `tests/data/golden/` (one legacy v1 OCuLaR snapshot + v2 text
//! snapshots for all six model kinds, external id maps embedded) must
//! load — and re-serialise **bit-identically** — forever.
//!
//! Regenerate only when adding a kind or format era:
//! `cargo run --release --example make_golden` (see that example's docs).

use ocular::bytes::ModelBytes;
use ocular::serve::AnySnapshot;
use std::path::PathBuf;

const KINDS: [&str; 6] = [
    "ocular",
    "wals",
    "bpr",
    "user-knn",
    "item-knn",
    "popularity",
];

fn golden(name: &str) -> Vec<u8> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data/golden")
        .join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn v2_goldens_load_and_reserialize_bit_identically_for_every_kind() {
    for kind in KINDS {
        let bytes = golden(&format!("v2-{kind}.snap"));
        let (snap, ids) = AnySnapshot::load_with_ids(&mut bytes.as_slice())
            .unwrap_or_else(|e| panic!("kind {kind}: golden must load: {e}"));
        assert_eq!(snap.kind(), kind);
        let ids = ids.unwrap_or_else(|| panic!("kind {kind}: golden embeds id maps"));
        // the corpus generator attaches user u ↔ 1000+7u, item i ↔ 500+3i
        assert_eq!(ids.users()[1], 1_007, "kind {kind}");
        assert_eq!(ids.items()[2], 506, "kind {kind}");
        // the loaded model re-serialises to the exact committed bytes —
        // the parse is bitwise faithful, forever
        let mut again = Vec::new();
        snap.save_with_ids(Some(&ids), &mut again).unwrap();
        assert_eq!(
            again, bytes,
            "kind {kind}: golden must re-serialise bit-identically"
        );
    }
}

#[test]
fn v1_golden_loads_through_both_loaders() {
    let bytes = golden("v1-ocular.snap");
    assert!(bytes.starts_with(b"ocular-snapshot v1\n"));
    let direct = ocular::serve::Snapshot::load(&mut bytes.as_slice()).expect("v1 must load");
    let (snap, ids) = AnySnapshot::load_with_ids(&mut bytes.as_slice()).expect("v1 must load");
    assert_eq!(snap.kind(), "ocular");
    assert_eq!(ids, None, "the v1 era predates id-map sections");
    match &snap {
        AnySnapshot::Ocular(s) => assert_eq!(s, &direct),
        AnySnapshot::Other(_) => panic!("v1 must load as the ocular kind"),
    }
    // re-serialising yields the identical body under the v2 header
    let mut v2 = Vec::new();
    snap.save(&mut v2).unwrap();
    let v2_text = String::from_utf8(v2).unwrap();
    let downgraded = v2_text.replacen("ocular-snapshot v2 ocular", "ocular-snapshot v1", 1);
    assert_eq!(
        downgraded.as_bytes(),
        &bytes[..],
        "v1 golden must round-trip bit-identically modulo the envelope header"
    );
}

#[test]
fn quantized_v3_goldens_load_and_reserialize_bit_identically() {
    // the quantized era of the v3 container: the committed f32 and int8
    // goldens must load with their quantized sections intact and
    // re-serialise to the exact committed bytes, forever
    for tag in ["f32", "int8"] {
        let bytes = golden(&format!("v3-ocular-{tag}.snap"));
        let (snap, ids) = AnySnapshot::load_v3(ModelBytes::from_vec(bytes.clone()))
            .unwrap_or_else(|e| panic!("{tag}: golden must load: {e}"));
        assert_eq!(snap.kind(), "ocular");
        let ids = ids.unwrap_or_else(|| panic!("{tag}: golden embeds id maps"));
        assert_eq!(ids.users()[1], 1_007, "{tag}");
        assert_eq!(ids.items()[2], 506, "{tag}");
        match &snap {
            AnySnapshot::Ocular(s) => assert_eq!(
                s.quant.as_ref().map(|q| q.dtype().name()),
                Some(tag),
                "golden must carry its quantized section"
            ),
            AnySnapshot::Other(_) => panic!("{tag}: must load as the ocular kind"),
        }
        let again = snap.to_v3_bytes(Some(&ids)).unwrap();
        assert_eq!(
            again, bytes,
            "{tag}: quantized golden must re-serialise bit-identically"
        );
    }
}

#[test]
fn goldens_survive_a_binary_v3_cycle_bit_identically() {
    // the v3 codec must preserve the bit content of every historical
    // snapshot: golden → load → v3 bytes → load → re-serialise text ==
    // golden
    for kind in KINDS {
        let bytes = golden(&format!("v2-{kind}.snap"));
        let (snap, ids) = AnySnapshot::load_with_ids(&mut bytes.as_slice()).unwrap();
        let v3 = snap.to_v3_bytes(ids.as_ref()).unwrap();
        let (reloaded, ids_again) = AnySnapshot::load_v3(ModelBytes::from_vec(v3)).unwrap();
        assert_eq!(ids_again, ids, "kind {kind}");
        let mut again = Vec::new();
        reloaded
            .save_with_ids(ids_again.as_ref(), &mut again)
            .unwrap();
        assert_eq!(
            again, bytes,
            "kind {kind}: a v3 cycle must preserve the golden bit-for-bit"
        );
    }
}
