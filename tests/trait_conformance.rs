//! Trait-conformance suite: every model kind in the workspace zoo must
//! honour the `ocular-api` hierarchy contracts identically —
//!
//! 1. the default [`Recommender::recommend`] equals brute-force
//!    sort-and-truncate under heavy ties (the shared `ocular_linalg::topk`
//!    kernel's convention: score descending, ties by ascending item);
//! 2. kind-tagged snapshots round-trip **bitwise** through
//!    [`AnySnapshot`];
//! 3. legacy v1 OCuLaR snapshots still load;
//! 4. the serving engine's batched output equals offline `recommend` for
//!    every kind, at 1/2/4/8 threads.

use ocular::datasets::planted::{generate, PlantedConfig};
use ocular::prelude::*;
use ocular::serve::IndexConfig;

fn dataset() -> ocular::sparse::Dataset {
    generate(&PlantedConfig {
        n_users: 50,
        n_items: 40,
        k: 3,
        users_per_cluster: 18,
        items_per_cluster: 15,
        user_overlap: 0.3,
        item_overlap: 0.3,
        within_density: 0.6,
        noise_density: 0.01,
        seed: 21,
    })
    .matrix
}

fn ocular_model(r: &ocular::sparse::Dataset) -> FactorModel {
    fit(
        r,
        &OcularConfig {
            k: 3,
            lambda: 0.3,
            max_iters: 30,
            seed: 4,
            ..Default::default()
        },
    )
    .model
}

/// Every model kind as a kind-tagged snapshot (the serving artifact).
fn snapshot_zoo(r: &ocular::sparse::Dataset) -> Vec<AnySnapshot> {
    let cfgs = BaselineConfigs::seeded(7);
    vec![
        AnySnapshot::Ocular(ocular::serve::Snapshot::build(
            ocular_model(r),
            &IndexConfig::default(),
        )),
        AnySnapshot::Other(Box::new(Wals::fit(
            r,
            &WalsConfig {
                k: 3,
                iters: 8,
                ..cfgs.wals
            },
        ))),
        AnySnapshot::Other(Box::new(Bpr::fit(
            r,
            &BprConfig {
                k: 3,
                epochs: 10,
                ..cfgs.bpr
            },
        ))),
        AnySnapshot::Other(Box::new(UserKnn::fit(r, &cfgs.user_knn))),
        AnySnapshot::Other(Box::new(ItemKnn::fit(r, &cfgs.item_knn))),
        AnySnapshot::Other(Box::new(Popularity::fit(r))),
    ]
}

/// Scores user `u` through whichever model a snapshot carries.
fn scores_of(snap: &AnySnapshot, u: usize) -> Vec<f64> {
    let mut out = Vec::new();
    match snap {
        AnySnapshot::Ocular(s) => s.model.score_user(u, &mut out),
        AnySnapshot::Other(m) => m.score_user(u, &mut out),
    }
    out
}

/// Offline reference lists via the trait-default `recommend`.
fn recommend_of(snap: &AnySnapshot, u: usize, exclude: &[u32], m: usize) -> Vec<ScoredItem> {
    match snap {
        AnySnapshot::Ocular(s) => s.model.recommend(u, exclude, m).unwrap(),
        AnySnapshot::Other(model) => model.recommend(u, exclude, m).unwrap(),
    }
}

/// Reference implementation: full sort (score descending, ties by
/// ascending item), truncate.
fn by_sort(scores: &[f64], exclude: &[u32], m: usize) -> Vec<ScoredItem> {
    let mut all: Vec<ScoredItem> = scores
        .iter()
        .enumerate()
        .filter(|(i, _)| exclude.binary_search(&(*i as u32)).is_err())
        .map(|(item, &score)| ScoredItem { item, score })
        .collect();
    all.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("finite scores")
            .then_with(|| a.item.cmp(&b.item))
    });
    all.truncate(m);
    all
}

#[test]
fn default_recommend_equals_sort_under_heavy_ties_for_every_kind() {
    let r = dataset();
    let mut tie_witnessed = false;
    for snap in snapshot_zoo(&r) {
        let kind = snap.kind();
        for u in 0..r.n_rows() {
            let scores = scores_of(&snap, u);
            // heavy ties actually occur (popularity/kNN score by counts)
            let mut sorted = scores.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            tie_witnessed |= sorted.windows(2).any(|w| w[0] == w[1]);
            for m in [0usize, 1, 3, 10, r.n_cols() + 5] {
                let got = recommend_of(&snap, u, r.row(u), m);
                let want = by_sort(&scores, r.row(u), m);
                assert_eq!(got, want, "kind {kind}, user {u}, m {m}");
            }
        }
    }
    assert!(tie_witnessed, "fixture must actually produce tied scores");
}

#[test]
fn unknown_users_rejected_for_every_kind() {
    let r = dataset();
    for snap in snapshot_zoo(&r) {
        let err = match &snap {
            AnySnapshot::Ocular(s) => s.model.recommend(10_000, &[], 3).unwrap_err(),
            AnySnapshot::Other(m) => m.recommend(10_000, &[], 3).unwrap_err(),
        };
        assert!(
            matches!(err, OcularError::UnknownUser { user: 10_000, .. }),
            "kind {}: {err}",
            snap.kind()
        );
    }
}

#[test]
fn snapshots_roundtrip_bitwise_for_every_kind() {
    let r = dataset();
    for snap in snapshot_zoo(&r) {
        let kind = snap.kind();
        let mut buf = Vec::new();
        snap.save(&mut buf).unwrap();
        let loaded = AnySnapshot::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.kind(), kind);
        for u in 0..r.n_rows() {
            assert_eq!(
                scores_of(&loaded, u),
                scores_of(&snap, u),
                "kind {kind}: user {u} scores must round-trip bitwise"
            );
            assert_eq!(
                recommend_of(&loaded, u, r.row(u), 10),
                recommend_of(&snap, u, r.row(u), 10),
                "kind {kind}: user {u} lists must round-trip bitwise"
            );
        }
        // and the serialised bytes are a fixed point
        let mut again = Vec::new();
        loaded.save(&mut again).unwrap();
        assert_eq!(again, buf, "kind {kind}: serialisation must be stable");
    }
}

#[test]
fn v3_binary_snapshots_agree_with_text_bitwise_for_every_kind() {
    let r = dataset();
    for snap in snapshot_zoo(&r) {
        let kind = snap.kind();
        let mut text = Vec::new();
        snap.save(&mut text).unwrap();
        let v3 = snap.to_v3_bytes(None).unwrap();
        let (loaded, ids) =
            AnySnapshot::load_v3(ocular::bytes::ModelBytes::from_vec(v3.clone())).unwrap();
        assert_eq!(loaded.kind(), kind);
        assert_eq!(ids, None);
        // the text rendering of the binary-cycled model is bit-identical
        let mut text_again = Vec::new();
        loaded.save(&mut text_again).unwrap();
        assert_eq!(
            text_again, text,
            "kind {kind}: binary↔text must agree bitwise"
        );
        // binary serialisation is a fixed point too
        assert_eq!(
            loaded.to_v3_bytes(None).unwrap(),
            v3,
            "kind {kind}: v3 serialisation must be stable"
        );
    }
}

#[test]
fn quantized_v3_snapshots_roundtrip_bitwise_through_the_zoo_harness() {
    let r = dataset();
    for dtype in [QuantDtype::F32, QuantDtype::I8] {
        let snap = ocular::serve::Snapshot::build(ocular_model(&r), &IndexConfig::default())
            .with_quantization(dtype);
        let any = AnySnapshot::Ocular(snap.clone());
        let v3 = any.to_v3_bytes(None).unwrap();
        let (loaded, ids) =
            AnySnapshot::load_v3(ocular::bytes::ModelBytes::from_vec(v3.clone())).unwrap();
        assert_eq!(ids, None);
        let AnySnapshot::Ocular(cycled) = loaded else {
            panic!("quantized snapshot must stay the ocular kind")
        };
        assert_eq!(
            cycled, snap,
            "{dtype}: model, index and quantized sections must round-trip"
        );
        // binary serialisation is a fixed point — bit-for-bit
        assert_eq!(
            AnySnapshot::Ocular(cycled).to_v3_bytes(None).unwrap(),
            v3,
            "{dtype}: v3 serialisation must be stable"
        );
        // the text envelope has no quantized sections: saving drops them,
        // the model itself survives
        let mut text = Vec::new();
        AnySnapshot::Ocular(snap.clone()).save(&mut text).unwrap();
        match AnySnapshot::load(&mut text.as_slice()).unwrap() {
            AnySnapshot::Ocular(s) => {
                assert_eq!(s.model, snap.model);
                assert_eq!(s.quant, None);
            }
            AnySnapshot::Other(_) => panic!("text cycle must stay ocular"),
        }
    }
}

#[test]
fn v1_ocular_snapshots_still_load() {
    let r = dataset();
    let snap = ocular::serve::Snapshot::build(ocular_model(&r), &IndexConfig::default());
    let mut buf = Vec::new();
    snap.save(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.starts_with("ocular-snapshot v2 ocular\n"));
    // a v1 snapshot is the identical body under the v1 envelope header
    let v1 = text.replacen("ocular-snapshot v2 ocular", "ocular-snapshot v1", 1);
    let direct = ocular::serve::Snapshot::load(&mut v1.as_bytes()).unwrap();
    assert_eq!(direct, snap);
    match AnySnapshot::load(&mut v1.as_bytes()).unwrap() {
        AnySnapshot::Ocular(s) => assert_eq!(s, snap),
        AnySnapshot::Other(_) => panic!("v1 must load as the ocular kind"),
    }
}

#[test]
fn serve_batch_equals_offline_recommend_for_every_kind_across_threads() {
    let r = dataset();
    let m = 10;
    for snap in snapshot_zoo(&r) {
        let kind = snap.kind();
        // offline reference before the engine consumes the snapshot
        let expected: Vec<Vec<ScoredItem>> = (0..r.n_rows())
            .map(|u| recommend_of(&snap, u, r.row(u), m))
            .collect();
        let engine = EngineBuilder::from_snapshot(snap)
            .dataset(r.clone())
            .config(ServeConfig {
                default_m: m,
                candidates: CandidatePolicy::FullCatalog,
                ..Default::default()
            })
            .build()
            .unwrap();
        assert_eq!(engine.kind(), kind);
        let requests: Vec<Request> = (0..r.n_rows())
            .map(|user| Request::Warm { user, m })
            .collect();
        for threads in [1usize, 2, 4, 8] {
            let served = engine.serve_batch_threads(&requests, Some(threads));
            for (u, (got, want)) in served.iter().zip(&expected).enumerate() {
                let got = got.as_ref().expect("warm users must serve");
                assert_eq!(
                    got.items.len(),
                    want.len(),
                    "kind {kind}, user {u}, {threads} threads"
                );
                for (a, b) in got.items.iter().zip(want) {
                    assert_eq!(
                        (a.item, a.probability),
                        (b.item, b.score),
                        "kind {kind}, user {u}, {threads} threads: bitwise"
                    );
                }
            }
        }
    }
}
