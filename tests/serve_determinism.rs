//! Guard for the serving engine's exactness and determinism: in
//! full-catalog mode, `serve_batch` must return **bitwise-identical**
//! top-M lists to `recommend_top_m` for every warm user, at every thread
//! count — batching and the bounded-heap kernel change wall-clock, never
//! output. Cluster candidate generation is an explicit approximation, but
//! it too must be deterministic across thread counts, and its fallback
//! path must coincide with the exact lists.

use ocular::datasets::planted::{generate, PlantedConfig};
use ocular::prelude::*;
use ocular::serve::IndexConfig;

fn trained() -> (FactorModel, ocular::sparse::Dataset, OcularConfig) {
    let data = generate(&PlantedConfig {
        n_users: 120,
        n_items: 80,
        k: 4,
        users_per_cluster: 36,
        items_per_cluster: 24,
        user_overlap: 0.4,
        item_overlap: 0.4,
        within_density: 0.5,
        noise_density: 0.005,
        seed: 11,
    });
    let cfg = OcularConfig {
        k: 4,
        lambda: 0.3,
        max_iters: 40,
        seed: 6,
        ..Default::default()
    };
    let model = fit(&data.matrix, &cfg).model;
    (model, data.matrix, cfg)
}

fn engine(policy: CandidatePolicy) -> (ServeEngine, ocular::sparse::Dataset) {
    let (model, r, train_cfg) = trained();
    let cfg = ServeConfig {
        default_m: 20,
        candidates: policy,
        foldin: train_cfg,
        ..Default::default()
    };
    let e = EngineBuilder::from_model(model)
        .dataset(r.clone())
        .index_config(IndexConfig {
            rel: 0.5,
            floor: 10,
        })
        .config(cfg)
        .build()
        .unwrap();
    (e, r)
}

/// The tentpole acceptance criterion: full-catalog serving is bitwise
/// `recommend_top_m` for every warm user, at 1, 2, 4 and 8 threads.
#[test]
fn serve_batch_bitwise_identical_to_recommend_top_m_across_threads() {
    let (e, r) = engine(CandidatePolicy::FullCatalog);
    let m = 20;
    let requests: Vec<Request> = (0..e.model().n_users())
        .map(|user| Request::Warm { user, m })
        .collect();
    let expected: Vec<Vec<Recommendation>> = (0..e.model().n_users())
        .map(|u| recommend_top_m(e.model(), &r, u, m))
        .collect();

    for threads in [1usize, 2, 4, 8] {
        let served = e.serve_batch_threads(&requests, Some(threads));
        assert_eq!(served.len(), expected.len());
        for (u, (got, want)) in served.iter().zip(&expected).enumerate() {
            let got = got.as_ref().expect("warm users must serve");
            assert_eq!(
                got.items, *want,
                "user {u} at {threads} threads must match recommend_top_m bitwise"
            );
        }
    }
}

/// Cluster candidate generation must also be thread-count invariant, and
/// its lists must agree with single-request serving.
#[test]
fn cluster_mode_deterministic_across_threads() {
    let (e, _r) = engine(CandidatePolicy::Clusters { min_candidates: 5 });
    let requests: Vec<Request> = (0..e.model().n_users())
        .map(|user| Request::Warm { user, m: 10 })
        .chain([
            Request::Cold {
                basket: vec![0, 1, 2],
                m: 10,
            },
            Request::Cold {
                basket: vec![40, 41],
                m: 10,
            },
        ])
        .collect();
    let reference = e.serve_batch_threads(&requests, Some(1));
    for threads in [2usize, 4, 8] {
        assert_eq!(
            e.serve_batch_threads(&requests, Some(threads)),
            reference,
            "{threads}-thread batch must be identical to the 1-thread batch"
        );
    }
    // and batching is a no-op semantically
    for (req, want) in requests.iter().zip(&reference) {
        assert_eq!(&e.serve_one(req), want);
    }
}

/// When the cluster policy falls back (thin coverage), the served list is
/// exactly the full-catalog list; when it doesn't, the served items carry
/// the same probabilities the model assigns.
#[test]
fn cluster_fallback_is_exact_and_scores_are_model_probabilities() {
    let (e, r) = engine(CandidatePolicy::Clusters { min_candidates: 5 });
    for u in 0..e.model().n_users() {
        let served = e.serve_one(&Request::Warm { user: u, m: 10 }).unwrap();
        if served.fell_back {
            assert_eq!(served.items, recommend_top_m(e.model(), &r, u, 10));
        }
        for rec in &served.items {
            assert_eq!(
                rec.probability,
                e.model().prob(u, rec.item),
                "user {u} item {} must carry the model probability",
                rec.item
            );
            assert!(!r.contains(u, rec.item), "owned items must be excluded");
        }
    }
}

/// The quantized engines honour the same batching contract as the f64
/// path: thread count never changes output, and `serve_batch` answers
/// exactly what `serve_one` answers — for both dtypes, over warm and
/// cold requests, through both candidate paths.
#[test]
fn quantized_engines_deterministic_across_threads() {
    let (model, r, train_cfg) = trained();
    for dtype in [QuantDtype::F32, QuantDtype::I8] {
        let e = EngineBuilder::from_model(model.clone())
            .dataset(r.clone())
            .index_config(IndexConfig {
                rel: 0.5,
                floor: 10,
            })
            .config(ServeConfig {
                default_m: 20,
                candidates: CandidatePolicy::Clusters { min_candidates: 5 },
                foldin: train_cfg.clone(),
                ..Default::default()
            })
            .quantization(dtype)
            .build()
            .unwrap();
        assert_eq!(e.dtype(), Some(dtype.name()));
        let requests: Vec<Request> = (0..e.model().n_users())
            .map(|user| Request::Warm { user, m: 10 })
            .chain([
                Request::Cold {
                    basket: vec![0, 1, 2],
                    m: 10,
                },
                Request::Cold {
                    basket: vec![40, 41],
                    m: 10,
                },
            ])
            .collect();
        let reference = e.serve_batch_threads(&requests, Some(1));
        for threads in [2usize, 4, 8] {
            assert_eq!(
                e.serve_batch_threads(&requests, Some(threads)),
                reference,
                "{} engine must be identical at {threads} threads",
                dtype.name()
            );
        }
        for (req, want) in requests.iter().zip(&reference) {
            assert_eq!(&e.serve_one(req), want);
        }
    }
}

/// Cold-start serving is a pure function of the request.
#[test]
fn cold_start_deterministic() {
    let (e, _) = engine(CandidatePolicy::Clusters { min_candidates: 5 });
    let req = Request::Cold {
        basket: vec![3, 7, 11],
        m: 15,
    };
    let a = e.serve_one(&req).unwrap();
    let b = e.serve_one(&req).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.items.len(), 15);
}
