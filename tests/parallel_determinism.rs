//! Guard for the parallel trainer's determinism: per-row data parallelism
//! must be *exact* — the fitted model, and therefore every downstream
//! metric, must be bit-identical no matter how many threads run the
//! half-sweeps. This is the property that lets Figure 8-style speedups be
//! claimed without an accuracy asterisk.

use ocular::datasets::planted::{generate, PlantedConfig};
use ocular::prelude::*;

fn dataset() -> ocular::sparse::Dataset {
    generate(&PlantedConfig {
        n_users: 120,
        n_items: 80,
        k: 4,
        users_per_cluster: 36,
        items_per_cluster: 24,
        user_overlap: 0.4,
        item_overlap: 0.4,
        within_density: 0.5,
        noise_density: 0.005,
        seed: 11,
    })
    .matrix
}

#[test]
fn recall_identical_across_thread_counts() {
    let r = dataset();
    let split = Split::new(&r, &SplitConfig::default());
    let cfg = OcularConfig {
        k: 4,
        lambda: 0.3,
        max_iters: 40,
        seed: 6,
        ..Default::default()
    };

    let mut models = Vec::new();
    let mut reports = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let result = fit_parallel(&split.train, &cfg, Some(threads));
        let report = ocular::eval::protocol::evaluate(&result.model, &split.train, &split.test, 20);
        models.push((threads, result.model));
        reports.push((threads, report));
    }

    let (_, ref_model) = &models[0];
    let (_, ref_report) = &reports[0];
    for ((threads, model), (_, report)) in models.iter().zip(&reports).skip(1) {
        assert_eq!(
            model, ref_model,
            "{threads}-thread model must be bit-identical to the 1-thread model"
        );
        assert_eq!(
            report, ref_report,
            "{threads}-thread recall@20 must match the 1-thread run exactly"
        );
    }
    // and the parallel path agrees with the sequential reference trainer
    let seq = fit(&split.train, &cfg);
    assert_eq!(
        &seq.model, ref_model,
        "parallel must be a drop-in for fit()"
    );

    // sanity: the guarded model is actually good, not degenerately equal
    assert!(
        ref_report.recall > 0.4,
        "planted recall should be comfortably recovered: {ref_report}"
    );
}
