//! Property-based invariants of the sparse substrate.

use ocular_sparse::io::{read_edge_list_str, write_edge_list};
use ocular_sparse::sample::sample_nnz_fraction;
use ocular_sparse::{CsrMatrix, Split, SplitConfig, Triplets};
use proptest::prelude::*;

/// Strategy: an arbitrary small matrix described by shape + raw (possibly
/// duplicated, unsorted) pairs.
fn arb_matrix() -> impl Strategy<Value = CsrMatrix> {
    (1usize..20, 1usize..20).prop_flat_map(|(n, m)| {
        proptest::collection::vec((0..n, 0..m), 0..100).prop_map(move |pairs| {
            let mut t = Triplets::new(n, m);
            t.extend_pairs(pairs).unwrap();
            t.into_csr()
        })
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(m in arb_matrix()) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_preserves_nnz_and_membership(m in arb_matrix()) {
        let t = m.transpose();
        prop_assert_eq!(t.nnz(), m.nnz());
        for (u, i) in m.iter_nnz() {
            prop_assert!(t.contains(i, u));
        }
    }

    #[test]
    fn rows_sorted_and_unique(m in arb_matrix()) {
        for r in 0..m.n_rows() {
            let row = m.row(r);
            for w in row.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn degrees_sum_to_nnz(m in arb_matrix()) {
        let rd: usize = m.row_degrees().iter().sum();
        let cd: usize = m.col_degrees().iter().sum();
        prop_assert_eq!(rd, m.nnz());
        prop_assert_eq!(cd, m.nnz());
    }

    #[test]
    fn split_partitions(m in arb_matrix(), frac in 0.0f64..=1.0, seed in any::<u64>()) {
        let s = Split::new(&m.clone().into(), &SplitConfig { train_fraction: frac, seed, ..Default::default() });
        prop_assert_eq!(s.train.nnz() + s.test.nnz(), m.nnz());
        for (u, i) in s.train.iter_nnz() {
            prop_assert!(m.contains(u, i));
            prop_assert!(!s.test.contains(u, i));
        }
        for (u, i) in s.test.iter_nnz() {
            prop_assert!(m.contains(u, i));
        }
    }

    #[test]
    fn sample_fraction_is_exact_subset(m in arb_matrix(), frac in 0.0f64..=1.0, seed in any::<u64>()) {
        let s = sample_nnz_fraction(&m, frac, seed);
        prop_assert_eq!(s.nnz(), (frac * m.nnz() as f64).round() as usize);
        for (u, i) in s.iter_nnz() {
            prop_assert!(m.contains(u, i));
        }
    }

    #[test]
    fn io_roundtrip(m in arb_matrix()) {
        let mut buf: Vec<u8> = Vec::new();
        write_edge_list(&mut buf, &m).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let (back, _) = read_edge_list_str(&text, "\t", None).unwrap().into_matrix();
        // ids are compacted, so compare nnz and per-user degree multiset
        prop_assert_eq!(back.nnz(), m.nnz());
        let mut a = m.row_degrees().into_iter().filter(|&d| d > 0).collect::<Vec<_>>();
        let mut b = back.row_degrees();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn from_raw_accepts_own_parts(m in arb_matrix()) {
        let (n, c, indptr, indices) = m.as_parts();
        let rebuilt = CsrMatrix::from_raw(n, c, indptr.to_vec(), indices.to_vec()).unwrap();
        prop_assert_eq!(rebuilt, m);
    }
}
