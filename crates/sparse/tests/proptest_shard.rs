//! Property-based equivalence of [`ShardedDataset`] and the base
//! [`Dataset`] it partitions: for 1/2/4/8 shards, the shards must be a
//! disjoint cover of the user rows (contents preserved row-for-row),
//! merged per-axis statistics must equal the unsharded values, and
//! external ids must round-trip through the owning shard's maps.

use ocular_sparse::{Dataset, IdMaps, ShardedDataset, Triplets};
use proptest::prelude::*;

/// Arbitrary datasets in both id regimes: shape, pairs, and optionally
/// sparse non-contiguous external ids for both axes.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (1usize..24, 1usize..16, any::<bool>()).prop_flat_map(|(n, m, with_ids)| {
        proptest::collection::vec((0..n, 0..m), 0..120).prop_map(move |pairs| {
            let mut t = Triplets::new(n, m);
            t.extend_pairs(pairs).unwrap();
            let matrix = t.into_csr();
            if with_ids {
                let users = (0..n as u64).map(|u| 500 + u * 17).collect();
                let items = (0..m as u64).map(|i| 9_000 + i * 31).collect();
                Dataset::new(matrix, IdMaps::new(users, items).unwrap()).unwrap()
            } else {
                Dataset::from_matrix(matrix)
            }
        })
    })
}

proptest! {
    #[test]
    fn sharded_equals_unsharded(d in arb_dataset(), pow in 0u32..4) {
        let shards = 1usize << pow; // 1, 2, 4, 8
        let sharded = ShardedDataset::split(&d, shards).unwrap();
        prop_assert_eq!(sharded.n_shards(), shards);
        prop_assert_eq!(sharded.n_users(), d.n_users());
        prop_assert_eq!(sharded.n_items(), d.n_items());

        // disjoint cover: every global row appears in exactly one shard,
        // at the slot `assignments` names, with identical contents
        let covered: usize = sharded.shards().iter().map(|s| s.n_users()).sum();
        prop_assert_eq!(covered, d.n_users());
        for g in 0..d.n_users() {
            let (s, l) = sharded.assignment(g);
            prop_assert_eq!(sharded.global_of(s)[l] as usize, g);
            prop_assert_eq!(sharded.shard(s).row(l), d.row(g));
        }
        // shard-local order is ascending global order (the invariant that
        // keeps split model rows aligned with shard dataset rows)
        for s in 0..shards {
            prop_assert!(sharded.global_of(s).windows(2).all(|w| w[0] < w[1]));
            prop_assert_eq!(sharded.shard(s).n_items(), d.n_items());
        }

        // merged item-side statistics equal the unsharded values
        prop_assert_eq!(sharded.merged_item_degrees(), d.item_degrees());
        prop_assert_eq!(sharded.merged_user_degrees(), d.user_degrees());
        let merged_nnz: usize = sharded.shards().iter().map(|s| s.nnz()).sum();
        prop_assert_eq!(merged_nnz, d.nnz());

        // id-map round trip through the owning shard
        match d.ids() {
            Some(_) => {
                for g in 0..d.n_users() {
                    let ext = d.external_user(g);
                    let (s, l) = sharded.assignment(g);
                    prop_assert_eq!(sharded.shard(s).user_index(ext), Some(l));
                    prop_assert_eq!(sharded.shard(s).external_user(l), ext);
                }
                for i in 0..d.n_items() {
                    let ext = d.external_item(i);
                    for shard in sharded.shards() {
                        prop_assert_eq!(shard.item_index(ext), Some(i));
                    }
                }
            }
            None => {
                // identity base ⇒ identity shards: responses must keep
                // omitting external ids exactly like the unsharded path
                for shard in sharded.shards() {
                    prop_assert!(shard.ids().is_none());
                }
            }
        }
    }

    #[test]
    fn one_shard_is_bytewise_the_base(d in arb_dataset()) {
        let sharded = ShardedDataset::split(&d, 1).unwrap();
        let s0 = sharded.shard(0);
        prop_assert_eq!(s0.as_parts(), d.as_parts());
        prop_assert_eq!(s0.ids(), d.ids());
    }
}
