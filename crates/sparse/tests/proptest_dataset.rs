//! Property-based invariants of the [`ocular_sparse::Dataset`] backbone:
//! streaming chunked ingestion must be byte-for-byte equivalent to the
//! in-memory path, and the cached CSC dual view must equal the exact
//! transpose for arbitrary matrices.

use ocular_sparse::io::{append_edge_list_str, read_edge_list_str_chunked};
use ocular_sparse::{CsrMatrix, Dataset, StreamingTriplets, Triplets};
use proptest::prelude::*;

fn arb_matrix() -> impl Strategy<Value = CsrMatrix> {
    (1usize..20, 1usize..20).prop_flat_map(|(n, m)| {
        proptest::collection::vec((0..n, 0..m), 0..100).prop_map(move |pairs| {
            let mut t = Triplets::new(n, m);
            t.extend_pairs(pairs).unwrap();
            t.into_csr()
        })
    })
}

/// Raw record streams: shape + possibly duplicated, unsorted pairs.
fn arb_records() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize)>)> {
    (1usize..16, 1usize..16).prop_flat_map(|(n, m)| {
        proptest::collection::vec((0..n, 0..m), 0..200).prop_map(move |pairs| (n, m, pairs))
    })
}

proptest! {
    #[test]
    fn streaming_equals_in_memory_builder(
        (n, m, pairs) in arb_records(),
        chunk in 1usize..32,
    ) {
        // in-memory reference: the Triplets path
        let mut t = Triplets::new(n, m);
        t.extend_pairs(pairs.iter().copied()).unwrap();
        let reference = t.into_csr();
        // streaming path with an arbitrary (often tiny) chunk capacity
        let mut s = StreamingTriplets::with_chunk_capacity(chunk);
        for &(r, c) in &pairs {
            s.push(r, c).unwrap();
        }
        prop_assert_eq!(s.finish(n, m).unwrap(), reference);
    }

    #[test]
    fn streaming_reader_equals_in_memory_reader(
        (_, _, pairs) in arb_records(),
        chunk in 1usize..16,
    ) {
        // render an edge list with sparse external ids and duplicates
        let mut text = String::new();
        for &(r, c) in &pairs {
            text.push_str(&format!("{}\t{}\n", 1000 + r * 13, 7 + c * 11));
        }
        // "in-memory" reference = one chunk big enough to hold everything
        let full = read_edge_list_str_chunked(&text, "\t", None, 1 << 20).unwrap();
        let chunked = read_edge_list_str_chunked(&text, "\t", None, chunk).unwrap();
        // byte-for-byte identical resulting Dataset: same matrix (CSR arrays
        // compare exactly) and same id tables
        prop_assert_eq!(&chunked.matrix, &full.matrix);
        prop_assert_eq!(&chunked.ids, &full.ids);
        let (a, b) = (chunked.into_dataset(), full.into_dataset());
        prop_assert_eq!(a, b);
    }

    /// The delta-merge path must be indistinguishable from a full
    /// re-ingest of the concatenated base+delta stream: same CSR arrays,
    /// same id tables, same internal index for every external id — the
    /// invariant the live-refresh loop (retrain on appended log, hot-swap,
    /// fold in newer users) rests on.
    #[test]
    fn append_deltas_equals_full_reingest(
        (_, _, base_pairs) in arb_records(),
        (_, _, delta_pairs) in arb_records(),
        chunk in 1usize..16,
    ) {
        let render = |pairs: &[(usize, usize)]| {
            let mut text = String::new();
            for &(r, c) in pairs {
                text.push_str(&format!("{}\t{}\n", 1000 + r * 13, 7 + c * 11));
            }
            text
        };
        let base_text = render(&base_pairs);
        let delta_text = render(&delta_pairs);
        let base = read_edge_list_str_chunked(&base_text, "\t", None, chunk)
            .unwrap()
            .into_dataset();

        // delta-merge path: one merge pass over the existing positives
        let merged = append_edge_list_str(&base, &delta_text, "\t", None).unwrap();
        // reference: re-ingest everything from scratch
        let full_text = format!("{base_text}{delta_text}");
        let full = read_edge_list_str_chunked(&full_text, "\t", None, chunk)
            .unwrap()
            .into_dataset();

        prop_assert_eq!(merged.matrix(), full.matrix());
        prop_assert_eq!(merged.ids(), full.ids());
        prop_assert_eq!(&merged, &full);
        // existing internal indices survive the append (prefix property)
        if let (Some(b), Some(m)) = (base.ids(), merged.ids()) {
            prop_assert!(b.is_prefix_of(m));
        }
        for u in 0..base.n_users() {
            prop_assert_eq!(merged.user_index(base.external_user(u)), Some(u));
        }
        for i in 0..base.n_items() {
            prop_assert_eq!(merged.item_index(base.external_item(i)), Some(i));
        }
    }

    /// Identity-mapped datasets (no id tables) take the same path with
    /// internal indices as external ids, growing the shape to cover the
    /// deltas.
    #[test]
    fn append_deltas_identity_mapping(
        (n, m, base_pairs) in arb_records(),
        (dn, dm, delta_pairs) in arb_records(),
    ) {
        let mut t = Triplets::new(n, m);
        t.extend_pairs(base_pairs.iter().copied()).unwrap();
        let base = Dataset::from_matrix(t.into_csr());
        let merged = base
            .append_deltas(delta_pairs.iter().map(|&(r, c)| (r as u64, c as u64)))
            .unwrap();

        let (rn, rm) = (n.max(dn.min(16)), m.max(dm.min(16)));
        let mut all = Triplets::new(rn.max(16), rm.max(16));
        all.extend_pairs(base_pairs.iter().copied()).unwrap();
        all.extend_pairs(delta_pairs.iter().copied()).unwrap();
        let reference = all.into_csr();
        prop_assert_eq!(merged.nnz(), reference.nnz());
        for (r, c) in reference.iter_nnz() {
            prop_assert!(merged.contains(r, c));
        }
        prop_assert!(merged.ids().is_none());
    }

    #[test]
    fn cached_csc_view_equals_transpose(m in arb_matrix()) {
        let d = Dataset::from_matrix(m.clone());
        prop_assert_eq!(d.item_view(), &m.transpose());
        // involution through the view as well
        prop_assert_eq!(&d.item_view().transpose(), d.matrix());
        // degrees agree with the dual view's rows
        for i in 0..d.n_items() {
            prop_assert_eq!(d.item_degrees()[i], d.item_view().row_nnz(i));
        }
        for u in 0..d.n_users() {
            prop_assert_eq!(d.user_degrees()[u], d.row_nnz(u));
        }
    }

    #[test]
    fn split_shares_one_id_space(m in arb_matrix(), seed in any::<u64>()) {
        let mut text = String::new();
        for (u, i) in m.iter_nnz() {
            text.push_str(&format!("{}\t{}\n", 500 + u * 3, 90 + i * 7));
        }
        let d = read_edge_list_str_chunked(&text, "\t", None, 8).unwrap().into_dataset();
        let s = d.split(&ocular_sparse::SplitConfig { seed, ..Default::default() });
        prop_assert_eq!(s.train.n_users(), s.test.n_users());
        prop_assert_eq!(s.train.n_items(), s.test.n_items());
        // both sides resolve every external id to the same internal index
        for u in 0..d.n_users() {
            let ext = d.external_user(u);
            prop_assert_eq!(s.train.user_index(ext), Some(u));
            prop_assert_eq!(s.test.user_index(ext), Some(u));
        }
        for i in 0..d.n_items() {
            let ext = d.external_item(i);
            prop_assert_eq!(s.train.item_index(ext), Some(i));
            prop_assert_eq!(s.test.item_index(ext), Some(i));
        }
    }
}

/// Regression guard for the id-lookup bugfix: `user_index`/`item_index`
/// used to be O(n) linear scans, which made external-id request handling
/// quadratic at serving time. 10k lookups against a 100k-entity map must
/// complete well inside tier-1 time (the old scan did ~5·10⁸ comparisons
/// here; the hash maps do 10⁴ probes).
#[test]
fn idmaps_lookup_is_constant_time() {
    let n: u64 = 100_000;
    // sparse, shuffled-feeling external ids
    let users: Vec<u64> = (0..n).map(|k| 1_000_000 + k * 7).collect();
    let items: Vec<u64> = (0..n).map(|k| 3_000_000 + k * 11).collect();
    let ids = ocular_sparse::IdMaps::new(users, items).unwrap();
    let t0 = std::time::Instant::now();
    let mut hits = 0usize;
    for k in 0..10_000u64 {
        // probe across the whole range, worst-case for a linear scan
        let probe = 1_000_000 + (n - 1 - k * 9 % n) * 7;
        if let Some(ix) = ids.user_index(probe) {
            assert_eq!(ids.external_user(ix), Some(probe));
            hits += 1;
        }
        let probe = 3_000_000 + (n - 1 - k * 13 % n) * 11;
        if ids.item_index(probe).is_some() {
            hits += 1;
        }
    }
    let elapsed = t0.elapsed();
    assert_eq!(hits, 20_000, "every probe lands on a mapped id");
    assert!(
        elapsed.as_secs_f64() < 2.0,
        "10k lookups on a 100k-entity map took {elapsed:?} — lookups are not O(1)"
    );
}
