//! COO (coordinate / triplet) staging area for building sparse matrices.

use crate::{CsrMatrix, SparseError};

/// An unordered collection of `(user, item)` positive examples.
///
/// `Triplets` is the mutable builder used while ingesting data (from a
/// generator or a file); once complete it is converted into the immutable
/// [`CsrMatrix`] consumed by every algorithm. Duplicate pushes of the same
/// pair are collapsed at conversion time, mirroring the paper's binary model
/// where `r_ui ∈ {0, 1}` (a repeated purchase conveys no extra signal to the
/// one-class objective).
#[derive(Debug, Clone, Default)]
pub struct Triplets {
    n_rows: usize,
    n_cols: usize,
    entries: Vec<(u32, u32)>,
}

impl Triplets {
    /// Creates an empty triplet store for an `n_rows × n_cols` matrix.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        Triplets {
            n_rows,
            n_cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty triplet store with pre-allocated capacity.
    pub fn with_capacity(n_rows: usize, n_cols: usize, cap: usize) -> Self {
        Triplets {
            n_rows,
            n_cols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of rows (users).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns (items).
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of staged entries, *including* not-yet-collapsed duplicates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been staged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stages the positive example `r[row, col] = 1`.
    ///
    /// Returns an error if either index is out of bounds; the bound check at
    /// ingestion time lets every downstream consumer skip per-access checks.
    pub fn push(&mut self, row: usize, col: usize) -> Result<(), SparseError> {
        if row >= self.n_rows {
            return Err(SparseError::RowOutOfBounds {
                row,
                n_rows: self.n_rows,
            });
        }
        if col >= self.n_cols {
            return Err(SparseError::ColOutOfBounds {
                col,
                n_cols: self.n_cols,
            });
        }
        // checked: the in-bounds test above does not imply u32 range when
        // the logical shape itself exceeds u32 addressing
        self.entries
            .push((crate::col_index(row), crate::col_index(col)));
        Ok(())
    }

    /// Extends the store from an iterator of `(row, col)` pairs.
    pub fn extend_pairs<I>(&mut self, pairs: I) -> Result<(), SparseError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        for (r, c) in pairs {
            self.push(r, c)?;
        }
        Ok(())
    }

    /// Grows the logical shape (never shrinks). Useful when the extent of the
    /// data is only known after ingestion (e.g. streaming a ratings file).
    pub fn grow_shape(&mut self, n_rows: usize, n_cols: usize) {
        self.n_rows = self.n_rows.max(n_rows);
        self.n_cols = self.n_cols.max(n_cols);
    }

    /// Read-only view of the staged entries (row, col), in insertion order.
    pub fn entries(&self) -> &[(u32, u32)] {
        &self.entries
    }

    /// Converts into a [`CsrMatrix`], sorting entries and collapsing
    /// duplicates. Runs in O(nnz log nnz).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut sorted = self.entries.clone();
        sorted.sort_unstable();
        sorted.dedup();
        CsrMatrix::from_sorted_unique_pairs(self.n_rows, self.n_cols, &sorted)
    }

    /// Consuming variant of [`Triplets::to_csr`] that avoids cloning the
    /// staged entries.
    pub fn into_csr(mut self) -> CsrMatrix {
        self.entries.sort_unstable();
        self.entries.dedup();
        CsrMatrix::from_sorted_unique_pairs(self.n_rows, self.n_cols, &self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_convert() {
        let mut t = Triplets::new(2, 3);
        t.push(0, 0).unwrap();
        t.push(1, 2).unwrap();
        t.push(0, 2).unwrap();
        let m = t.to_csr();
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(0), &[0, 2]);
        assert_eq!(m.row(1), &[2]);
    }

    #[test]
    fn duplicates_collapse() {
        let mut t = Triplets::new(2, 2);
        for _ in 0..5 {
            t.push(1, 1).unwrap();
        }
        assert_eq!(t.len(), 5);
        let m = t.to_csr();
        assert_eq!(m.nnz(), 1);
        assert!(m.contains(1, 1));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut t = Triplets::new(2, 2);
        assert_eq!(
            t.push(2, 0),
            Err(SparseError::RowOutOfBounds { row: 2, n_rows: 2 })
        );
        assert_eq!(
            t.push(0, 5),
            Err(SparseError::ColOutOfBounds { col: 5, n_cols: 2 })
        );
    }

    #[test]
    fn grow_shape_never_shrinks() {
        let mut t = Triplets::new(4, 4);
        t.grow_shape(2, 10);
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_cols(), 10);
    }

    #[test]
    fn empty_conversion() {
        let t = Triplets::new(3, 3);
        let m = t.to_csr();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.row(2), &[] as &[u32]);
    }

    #[test]
    fn into_csr_matches_to_csr() {
        let mut t = Triplets::new(5, 5);
        t.extend_pairs([(4, 1), (0, 0), (4, 1), (2, 3)]).unwrap();
        let a = t.to_csr();
        let b = t.into_csr();
        assert_eq!(a, b);
    }
}
