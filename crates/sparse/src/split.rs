//! Seeded train/test splitting of positive examples.
//!
//! The paper's evaluation protocol (Section VII-B2): *"We computed the
//! recall@M and MAP@M by splitting the datasets into a training and a test
//! dataset, with a splitting ratio of training/test of 75/25, and averaging
//! over 10 problem instances."* A *problem instance* is one random split;
//! instances differ only in the split seed.

use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How positive examples are assigned to the train or test side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SplitStrategy {
    /// Every positive example lands in the test set independently with
    /// probability `1 - train_fraction`. This is the paper's protocol.
    Global,
    /// Like [`SplitStrategy::Global`], but a user's positives are never *all*
    /// placed in the test set: at least one (uniformly chosen) stays in
    /// train. Avoids fully cold users when evaluating neighbour methods on
    /// tiny datasets; not used for headline numbers.
    KeepOnePerUser,
}

/// Configuration of a train/test split.
#[derive(Debug, Clone, Copy)]
pub struct SplitConfig {
    /// Fraction of positives kept for training (paper: 0.75).
    pub train_fraction: f64,
    /// RNG seed; distinct seeds give the paper's independent instances.
    pub seed: u64,
    /// Assignment strategy.
    pub strategy: SplitStrategy,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            train_fraction: 0.75,
            seed: 0,
            strategy: SplitStrategy::Global,
        }
    }
}

/// The result of splitting an interaction dataset: two same-shaped
/// datasets whose positive sets partition the original's. Both sides
/// share the parent's external-id maps (one `Arc`), so train and test
/// agree on the id space by construction.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training dataset (the model's input `R`).
    pub train: Dataset,
    /// Held-out test dataset (the positives to be re-discovered).
    pub test: Dataset,
}

impl Split {
    /// Splits `r` according to `cfg`.
    ///
    /// # Panics
    /// Panics if `train_fraction` is outside `[0, 1]`.
    pub fn new(r: &Dataset, cfg: &SplitConfig) -> Split {
        assert!(
            (0.0..=1.0).contains(&cfg.train_fraction),
            "train_fraction must be in [0, 1], got {}",
            cfg.train_fraction
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut keep_train = vec![false; r.nnz()];
        for k in keep_train.iter_mut() {
            *k = rng.gen::<f64>() < cfg.train_fraction;
        }
        if cfg.strategy == SplitStrategy::KeepOnePerUser {
            let mut pos = 0usize;
            for u in 0..r.n_rows() {
                let d = r.row_nnz(u);
                if d > 0 && !keep_train[pos..pos + d].iter().any(|&k| k) {
                    let pick = rng.gen_range(0..d);
                    keep_train[pos + pick] = true;
                }
                pos += d;
            }
        }
        let train = r.filter_nnz(&keep_train);
        let keep_test: Vec<bool> = keep_train.iter().map(|&k| !k).collect();
        let test = r.filter_nnz(&keep_test);
        Split { train, test }
    }

    /// Generates the paper's `n` independent problem instances: splits with
    /// seeds `base_seed, base_seed + 1, …`.
    pub fn instances(r: &Dataset, cfg: &SplitConfig, n: usize) -> Vec<Split> {
        (0..n)
            .map(|k| {
                let inst = SplitConfig {
                    seed: cfg.seed.wrapping_add(k as u64),
                    ..*cfg
                };
                Split::new(r, &inst)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triplets;

    fn dense_matrix(n: usize, m: usize) -> Dataset {
        let mut t = Triplets::new(n, m);
        for u in 0..n {
            for i in 0..m {
                t.push(u, i).unwrap();
            }
        }
        Dataset::from_matrix(t.into_csr())
    }

    #[test]
    fn split_partitions_nnz() {
        let r = dense_matrix(20, 30);
        let s = Split::new(&r, &SplitConfig::default());
        assert_eq!(s.train.nnz() + s.test.nnz(), r.nnz());
        // no overlap
        for (u, i) in s.train.iter_nnz() {
            assert!(!s.test.contains(u, i));
            assert!(r.contains(u, i));
        }
        for (u, i) in s.test.iter_nnz() {
            assert!(r.contains(u, i));
        }
    }

    #[test]
    fn split_ratio_approximate() {
        let r = dense_matrix(50, 50); // 2500 entries
        let s = Split::new(
            &r,
            &SplitConfig {
                train_fraction: 0.75,
                seed: 7,
                ..Default::default()
            },
        );
        let frac = s.train.nnz() as f64 / r.nnz() as f64;
        assert!((frac - 0.75).abs() < 0.05, "observed train fraction {frac}");
    }

    #[test]
    fn split_deterministic_per_seed() {
        let r = dense_matrix(10, 10);
        let a = Split::new(
            &r,
            &SplitConfig {
                seed: 3,
                ..Default::default()
            },
        );
        let b = Split::new(
            &r,
            &SplitConfig {
                seed: 3,
                ..Default::default()
            },
        );
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
        let c = Split::new(
            &r,
            &SplitConfig {
                seed: 4,
                ..Default::default()
            },
        );
        assert_ne!(
            a.train, c.train,
            "different seeds should differ on 100 entries"
        );
    }

    #[test]
    fn keep_one_per_user_never_empties_a_row() {
        // train_fraction 0 would normally put everything in test
        let r = dense_matrix(10, 4);
        let s = Split::new(
            &r,
            &SplitConfig {
                train_fraction: 0.0,
                seed: 1,
                strategy: SplitStrategy::KeepOnePerUser,
            },
        );
        for u in 0..10 {
            assert_eq!(s.train.row_nnz(u), 1, "user {u} should keep exactly one");
        }
    }

    #[test]
    fn extreme_fractions() {
        let r = dense_matrix(5, 5);
        let all_train = Split::new(
            &r,
            &SplitConfig {
                train_fraction: 1.0,
                ..Default::default()
            },
        );
        assert_eq!(all_train.train.nnz(), 25);
        assert_eq!(all_train.test.nnz(), 0);
        let all_test = Split::new(
            &r,
            &SplitConfig {
                train_fraction: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(all_test.train.nnz(), 0);
        assert_eq!(all_test.test.nnz(), 25);
    }

    #[test]
    fn instances_use_distinct_seeds() {
        let r = dense_matrix(12, 12);
        let insts = Split::instances(&r, &SplitConfig::default(), 3);
        assert_eq!(insts.len(), 3);
        assert_ne!(insts[0].train, insts[1].train);
        assert_ne!(insts[1].train, insts[2].train);
    }
}
