//! Horizontal user sharding of a [`Dataset`] — the data-side half of the
//! scatter-gather serving tier.
//!
//! Heckel et al. argue OCuLaR scales "across cores and machines" because
//! users decompose independently given the item-side state. This module
//! realises the data layout behind that claim: user rows are partitioned
//! into `N` shards by the **stable hash of the external user id**
//! ([`ocular_bytes::shard_of_key`]), each shard is a full [`Dataset`]
//! over the *complete* item axis, and item-side statistics merge back to
//! exactly the unsharded values — so training and fold-in math see the
//! same numbers whether they read one dataset or `N`.
//!
//! Two invariants make sharded serving bit-exact against the unsharded
//! engine:
//!
//! 1. **Partition by external id.** The router at serve time knows only
//!    the request's external user id; hashing that id (not the internal
//!    row, which shifts as deltas arrive) sends it to the shard that
//!    actually owns the row — no routing table has to travel with the
//!    data.
//! 2. **Shard-local order = ascending global order.** Within a shard,
//!    users keep their relative training order. With one shard the
//!    partition is the identity and shard 0's matrix is byte-identical
//!    to the base; with `N` shards any model rows split along the same
//!    rule line up with the shard dataset's rows by construction, and
//!    users appended after a snapshot (the live-refresh overhang) sort
//!    *after* every snapshot user inside their shard, preserving the
//!    dataset ⊇ model prefix contract per shard.
//!
//! The item axis is **replicated**, not split: every shard keeps the full
//! catalog width, the full item-side id map, and (lazily) its own
//! item×user view of its rows. Item-side aggregates over all users are
//! recovered by summing per-shard statistics
//! ([`ShardedDataset::merged_item_degrees`]).

use crate::io::IdMaps;
use crate::{CsrMatrix, Dataset, SparseError};
use ocular_bytes::shard_of_key;

/// A user-sharded view of one interaction [`Dataset`]: `N` disjoint
/// user-row groups, each a complete `Dataset` over the full item axis,
/// plus the global↔local routing tables. See the [module docs](self).
pub struct ShardedDataset {
    shards: Vec<Dataset>,
    /// Per shard: ascending global user row of each shard-local row.
    global_of: Vec<Vec<u32>>,
    /// Per global user row: `(shard, shard-local row)`.
    assign: Vec<(u32, u32)>,
    n_items: usize,
}

impl ShardedDataset {
    /// Partitions `base` into `n_shards` user shards by the stable hash
    /// of each user's external id (the internal row under the identity
    /// mapping). `n_shards == 1` reproduces `base` exactly as shard 0.
    ///
    /// When `base` carries id maps, every shard gets its own maps: the
    /// shard's users plus the **full** item-side table, so external-id
    /// requests resolve on the owning shard alone. An identity-mapped
    /// base yields identity-mapped shards (no synthesised maps — the
    /// serving tier must keep emitting responses without `item_ids`,
    /// exactly like the unsharded engine).
    pub fn split(base: &Dataset, n_shards: usize) -> Result<ShardedDataset, SparseError> {
        if n_shards == 0 {
            return Err(SparseError::MalformedCsr(
                "shard count must be positive".into(),
            ));
        }
        let n_users = base.n_users();
        if n_users > u32::MAX as usize || n_shards > u32::MAX as usize {
            return Err(SparseError::MalformedCsr(format!(
                "{n_users} users across {n_shards} shards exceeds the u32 routing range"
            )));
        }
        let n_items = base.n_items();
        let mut assign = Vec::with_capacity(n_users);
        let mut global_of: Vec<Vec<u32>> = vec![Vec::new(); n_shards];
        for g in 0..n_users {
            let s = shard_of_key(base.external_user(g), n_shards);
            assign.push((s as u32, global_of[s].len() as u32));
            global_of[s].push(g as u32);
        }
        let shards = global_of
            .iter()
            .map(|rows| shard_dataset(base, rows, n_items))
            .collect::<Result<Vec<Dataset>, SparseError>>()?;
        Ok(ShardedDataset {
            shards,
            global_of,
            assign,
            n_items,
        })
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total users across all shards (the base dataset's user count).
    pub fn n_users(&self) -> usize {
        self.assign.len()
    }

    /// Item-axis width, identical in every shard.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// All shard datasets, in shard order.
    pub fn shards(&self) -> &[Dataset] {
        &self.shards
    }

    /// One shard's dataset.
    ///
    /// # Panics
    /// Panics if `s >= n_shards`.
    pub fn shard(&self, s: usize) -> &Dataset {
        &self.shards[s]
    }

    /// The `(shard, shard-local row)` owning each global user row.
    pub fn assignments(&self) -> &[(u32, u32)] {
        &self.assign
    }

    /// The `(shard, shard-local row)` owning global user row `g`.
    ///
    /// # Panics
    /// Panics if `g >= n_users`.
    pub fn assignment(&self, g: usize) -> (usize, usize) {
        let (s, l) = self.assign[g];
        (s as usize, l as usize)
    }

    /// Ascending global user rows held by shard `s` (shard-local row `l`
    /// is global row `global_of(s)[l]`).
    ///
    /// # Panics
    /// Panics if `s >= n_shards`.
    pub fn global_of(&self, s: usize) -> &[u32] {
        &self.global_of[s]
    }

    /// Decomposes the partition into its owned pieces — the shard
    /// datasets, the per-shard ascending global-row tables, and the
    /// per-global-row `(shard, local)` assignments — so a consumer (the
    /// serving coordinator) can take ownership without cloning `N`
    /// datasets.
    #[allow(clippy::type_complexity)]
    pub fn into_parts(self) -> (Vec<Dataset>, Vec<Vec<u32>>, Vec<(u32, u32)>) {
        (self.shards, self.global_of, self.assign)
    }

    /// Per-item degrees summed across shards — equal to the base
    /// dataset's [`Dataset::item_degrees`] (and, the matrix being binary,
    /// to its column sums), because the shards partition the user rows.
    pub fn merged_item_degrees(&self) -> Vec<usize> {
        let mut merged = vec![0usize; self.n_items];
        for shard in &self.shards {
            for (m, &d) in merged.iter_mut().zip(shard.item_degrees()) {
                *m += d;
            }
        }
        merged
    }

    /// Per-user degrees reassembled into global row order — equal to the
    /// base dataset's [`Dataset::user_degrees`].
    pub fn merged_user_degrees(&self) -> Vec<usize> {
        let mut merged = vec![0usize; self.assign.len()];
        for (s, shard) in self.shards.iter().enumerate() {
            for (l, &d) in shard.user_degrees().iter().enumerate() {
                merged[self.global_of[s][l] as usize] = d;
            }
        }
        merged
    }
}

/// Builds one shard's [`Dataset`]: the selected global rows in the given
/// (ascending) order over the full item axis, with shard-scoped id maps
/// when the base has any.
fn shard_dataset(base: &Dataset, rows: &[u32], n_items: usize) -> Result<Dataset, SparseError> {
    let mut indptr = Vec::with_capacity(rows.len() + 1);
    indptr.push(0usize);
    let mut nnz = 0usize;
    for &g in rows {
        nnz += base.row_nnz(g as usize);
        indptr.push(nnz);
    }
    let mut indices = Vec::with_capacity(nnz);
    for &g in rows {
        indices.extend_from_slice(base.row(g as usize));
    }
    let matrix = CsrMatrix::from_raw(rows.len(), n_items, indptr, indices)?;
    match base.ids() {
        None => Ok(Dataset::from_matrix(matrix)),
        Some(ids) => {
            let users: Vec<u64> = rows
                .iter()
                .map(|&g| base.external_user(g as usize))
                .collect();
            let shard_ids = IdMaps::new(users, ids.items().to_vec())?;
            Dataset::new(matrix, shard_ids)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triplets;

    fn base(n_users: usize, n_items: usize, with_ids: bool) -> Dataset {
        let mut t = Triplets::new(n_users, n_items);
        for u in 0..n_users {
            for j in 0..=(u % 4) {
                t.push(u, (u * 3 + j * 5) % n_items).unwrap();
            }
        }
        let m = t.into_csr();
        if with_ids {
            let users = (0..n_users as u64).map(|u| 1_000 + 7 * u).collect();
            let items = (0..n_items as u64).map(|i| 90_000 + 3 * i).collect();
            Dataset::new(m, IdMaps::new(users, items).unwrap()).unwrap()
        } else {
            Dataset::from_matrix(m)
        }
    }

    #[test]
    fn single_shard_is_the_identity_partition() {
        for with_ids in [false, true] {
            let d = base(23, 17, with_ids);
            let sharded = ShardedDataset::split(&d, 1).unwrap();
            assert_eq!(sharded.n_shards(), 1);
            let s0 = sharded.shard(0);
            assert_eq!(s0.as_parts(), d.as_parts());
            assert_eq!(s0.ids(), d.ids());
            for g in 0..d.n_users() {
                assert_eq!(sharded.assignment(g), (0, g));
            }
        }
    }

    #[test]
    fn rows_routing_and_merged_stats_agree_with_base() {
        for with_ids in [false, true] {
            for n_shards in [2usize, 3, 4, 8] {
                let d = base(41, 13, with_ids);
                let sharded = ShardedDataset::split(&d, n_shards).unwrap();
                assert_eq!(sharded.n_users(), d.n_users());
                assert_eq!(sharded.n_items(), d.n_items());
                let total: usize = sharded.shards().iter().map(|s| s.n_users()).sum();
                assert_eq!(total, d.n_users());
                for g in 0..d.n_users() {
                    let (s, l) = sharded.assignment(g);
                    assert_eq!(sharded.global_of(s)[l] as usize, g);
                    assert_eq!(sharded.shard(s).row(l), d.row(g));
                    if with_ids {
                        // identity-mapped shards renumber externals locally
                        // (the serving coordinator routes those via
                        // `assignments` instead); id-mapped shards keep the
                        // global external ids
                        assert_eq!(sharded.shard(s).external_user(l), d.external_user(g));
                    }
                }
                // shard-local order is ascending global order
                for s in 0..n_shards {
                    assert!(sharded.global_of(s).windows(2).all(|w| w[0] < w[1]));
                    // each shard keeps a working item-side dual view
                    assert_eq!(sharded.shard(s).item_view().n_rows(), d.n_items());
                }
                assert_eq!(sharded.merged_item_degrees(), d.item_degrees());
                assert_eq!(sharded.merged_user_degrees(), d.user_degrees());
            }
        }
    }

    #[test]
    fn external_ids_resolve_only_on_the_owning_shard() {
        let d = base(30, 11, true);
        let sharded = ShardedDataset::split(&d, 4).unwrap();
        for g in 0..d.n_users() {
            let ext = d.external_user(g);
            let owner = ocular_bytes::shard_of_key(ext, 4);
            let (s, l) = sharded.assignment(g);
            assert_eq!(s, owner);
            assert_eq!(sharded.shard(s).user_index(ext), Some(l));
            // items resolve identically on every shard (replicated axis)
            for shard in sharded.shards() {
                assert_eq!(shard.item_index(d.external_item(0)), Some(0));
            }
        }
    }

    #[test]
    fn zero_shards_is_rejected() {
        let d = base(5, 5, false);
        assert!(ShardedDataset::split(&d, 0).is_err());
    }
}
