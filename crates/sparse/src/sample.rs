//! Uniform sub-sampling of positive examples.
//!
//! Figure 7 of the paper measures running time per iteration on *"increasing
//! fractions of the Netflix dataset (i.e., non-zero entries), chosen
//! uniformly from the whole Netflix dataset"*. [`sample_nnz_fraction`]
//! implements exactly that operation.

use crate::CsrMatrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Keeps a uniformly random `fraction` of the positive examples of `r`
/// (shape preserved). The number kept is `round(fraction · nnz)` exactly,
/// via a seeded Fisher–Yates selection, so repeated calls with increasing
/// fractions produce comparable workloads.
///
/// # Panics
/// Panics if `fraction` is outside `[0, 1]`.
pub fn sample_nnz_fraction(r: &CsrMatrix, fraction: f64, seed: u64) -> CsrMatrix {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1], got {fraction}"
    );
    let nnz = r.nnz();
    let target = (fraction * nnz as f64).round() as usize;
    let mut order: Vec<usize> = (0..nnz).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let mut keep = vec![false; nnz];
    for &k in order.iter().take(target) {
        keep[k] = true;
    }
    r.filter_nnz(&keep)
}

/// Restricts `r` to its first `n_rows` rows (shape `[n_rows, n_cols]`).
/// Handy for quick scale-downs in examples and smoke tests.
pub fn take_rows(r: &CsrMatrix, n_rows: usize) -> CsrMatrix {
    let n = n_rows.min(r.n_rows());
    let mut t = crate::Triplets::new(n, r.n_cols());
    for u in 0..n {
        for &i in r.row(u) {
            t.push(u, i as usize).expect("in-bounds by construction");
        }
    }
    t.into_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triplets;

    fn grid(n: usize, m: usize) -> CsrMatrix {
        let mut t = Triplets::new(n, m);
        for u in 0..n {
            for i in 0..m {
                if (u + i) % 2 == 0 {
                    t.push(u, i).unwrap();
                }
            }
        }
        t.into_csr()
    }

    #[test]
    fn exact_count() {
        let r = grid(20, 20); // 200 positives
        for &f in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            let s = sample_nnz_fraction(&r, f, 42);
            assert_eq!(s.nnz(), (f * 200.0).round() as usize, "fraction {f}");
        }
    }

    #[test]
    fn sample_is_subset() {
        let r = grid(15, 15);
        let s = sample_nnz_fraction(&r, 0.4, 9);
        for (u, i) in s.iter_nnz() {
            assert!(r.contains(u, i));
        }
    }

    #[test]
    fn deterministic() {
        let r = grid(10, 10);
        let a = sample_nnz_fraction(&r, 0.5, 1);
        let b = sample_nnz_fraction(&r, 0.5, 1);
        assert_eq!(a, b);
        let c = sample_nnz_fraction(&r, 0.5, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn take_rows_truncates() {
        let r = grid(10, 6);
        let s = take_rows(&r, 4);
        assert_eq!(s.n_rows(), 4);
        assert_eq!(s.n_cols(), 6);
        for (u, i) in s.iter_nnz() {
            assert!(r.contains(u, i));
        }
        let over = take_rows(&r, 99);
        assert_eq!(over.n_rows(), 10);
        assert_eq!(over, r);
    }
}
