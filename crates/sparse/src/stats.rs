//! Summary statistics of interaction matrices.
//!
//! Used by the dataset profiles (to check that synthetic stand-ins have the
//! intended shape) and by the experiment harness when reporting workloads.

use crate::CsrMatrix;

/// Degree-distribution summary of one axis of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeSummary {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// Gini coefficient of the degree distribution — 0 for perfectly uniform
    /// degrees, →1 for extreme concentration. Power-law interaction data
    /// (MovieLens, Netflix) typically lands around 0.4–0.7 on the item axis.
    pub gini: f64,
    /// Number of zero-degree entities (cold users / never-bought items).
    pub zeros: usize,
}

fn summarize(mut degrees: Vec<usize>) -> DegreeSummary {
    if degrees.is_empty() {
        return DegreeSummary {
            min: 0,
            max: 0,
            mean: 0.0,
            median: 0,
            gini: 0.0,
            zeros: 0,
        };
    }
    degrees.sort_unstable();
    let n = degrees.len();
    let total: usize = degrees.iter().sum();
    let mean = total as f64 / n as f64;
    let zeros = degrees.iter().take_while(|&&d| d == 0).count();
    // Gini via the sorted formula: G = (2·Σ i·x_i) / (n·Σ x_i) − (n+1)/n.
    let gini = if total == 0 {
        0.0
    } else {
        let weighted: f64 = degrees
            .iter()
            .enumerate()
            .map(|(i, &d)| (i as f64 + 1.0) * d as f64)
            .sum();
        (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
    };
    DegreeSummary {
        min: degrees[0],
        max: degrees[n - 1],
        mean,
        median: degrees[n / 2],
        gini,
        zeros,
    }
}

/// Full shape report for a matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Number of users (rows).
    pub n_users: usize,
    /// Number of items (columns).
    pub n_items: usize,
    /// Number of positive examples.
    pub nnz: usize,
    /// `nnz / (n_users · n_items)`.
    pub density: f64,
    /// User-degree distribution summary.
    pub user_degrees: DegreeSummary,
    /// Item-degree distribution summary.
    pub item_degrees: DegreeSummary,
}

impl MatrixStats {
    /// Computes all statistics in O(nnz + n log n).
    pub fn compute(r: &CsrMatrix) -> MatrixStats {
        MatrixStats {
            n_users: r.n_rows(),
            n_items: r.n_cols(),
            nnz: r.nnz(),
            density: r.density(),
            user_degrees: summarize(r.row_degrees()),
            item_degrees: summarize(r.col_degrees()),
        }
    }
}

impl std::fmt::Display for MatrixStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} users × {} items, {} positives (density {:.4}%)",
            self.n_users,
            self.n_items,
            self.nnz,
            self.density * 100.0
        )?;
        writeln!(
            f,
            "  user degree: min {} / median {} / mean {:.1} / max {} (gini {:.2}, {} cold)",
            self.user_degrees.min,
            self.user_degrees.median,
            self.user_degrees.mean,
            self.user_degrees.max,
            self.user_degrees.gini,
            self.user_degrees.zeros
        )?;
        write!(
            f,
            "  item degree: min {} / median {} / mean {:.1} / max {} (gini {:.2}, {} cold)",
            self.item_degrees.min,
            self.item_degrees.median,
            self.item_degrees.mean,
            self.item_degrees.max,
            self.item_degrees.gini,
            self.item_degrees.zeros
        )
    }
}

/// Histogram of degrees in logarithmic buckets `[1,2), [2,4), [4,8), …` —
/// a quick textual view of the power-law tail.
pub fn log2_degree_histogram(degrees: &[usize]) -> Vec<(usize, usize)> {
    let mut buckets: Vec<usize> = Vec::new();
    for &d in degrees {
        if d == 0 {
            continue;
        }
        let b = (usize::BITS - 1 - d.leading_zeros()) as usize; // floor(log2 d)
        if buckets.len() <= b {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    buckets
        .into_iter()
        .enumerate()
        .map(|(b, count)| (1usize << b, count))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    #[test]
    fn stats_on_small_matrix() {
        let r = CsrMatrix::from_pairs(3, 4, &[(0, 0), (0, 1), (0, 2), (1, 0), (2, 0)]).unwrap();
        let s = MatrixStats::compute(&r);
        assert_eq!(s.n_users, 3);
        assert_eq!(s.n_items, 4);
        assert_eq!(s.nnz, 5);
        assert_eq!(s.user_degrees.min, 1);
        assert_eq!(s.user_degrees.max, 3);
        assert!((s.user_degrees.mean - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.item_degrees.zeros, 1, "item 3 is cold");
    }

    #[test]
    fn gini_uniform_is_zero() {
        let r = CsrMatrix::from_pairs(4, 4, &[(0, 0), (1, 1), (2, 2), (3, 3)]).unwrap();
        let s = MatrixStats::compute(&r);
        assert!(s.user_degrees.gini.abs() < 1e-12);
    }

    #[test]
    fn gini_concentrated_is_high() {
        // one user owns everything
        let pairs: Vec<(usize, usize)> = (0..10).map(|i| (0usize, i)).collect();
        let r = CsrMatrix::from_pairs(10, 10, &pairs).unwrap();
        let s = MatrixStats::compute(&r);
        assert!(s.user_degrees.gini > 0.85, "gini = {}", s.user_degrees.gini);
    }

    #[test]
    fn empty_matrix_stats() {
        let r = CsrMatrix::empty(0, 0);
        let s = MatrixStats::compute(&r);
        assert_eq!(s.nnz, 0);
        assert_eq!(s.user_degrees.mean, 0.0);
    }

    #[test]
    fn log_histogram() {
        let h = log2_degree_histogram(&[0, 1, 1, 2, 3, 4, 9, 16]);
        // buckets: [1,2): two, [2,4): two, [4,8): one, [8,16): one, [16,32): one
        assert_eq!(h, vec![(1, 2), (2, 2), (4, 1), (8, 1), (16, 1)]);
    }

    #[test]
    fn display_formats() {
        let r = CsrMatrix::from_pairs(2, 2, &[(0, 0)]).unwrap();
        let text = MatrixStats::compute(&r).to_string();
        assert!(text.contains("2 users × 2 items"));
        assert!(text.contains("1 positives"));
    }
}
