//! # ocular-sparse
//!
//! Sparse binary interaction-matrix substrate for the OCuLaR reproduction
//! (Heckel et al., *Scalable and interpretable product recommendations via
//! overlapping co-clustering*, ICDE 2017).
//!
//! Every algorithm in the paper — OCuLaR itself, the matrix-factorization
//! baselines, the neighbourhood models and the community-detection
//! comparators — consumes the same input: a binary matrix `R` whose rows are
//! users (clients) and whose columns are items (products), with `r_ui = 1`
//! meaning "user `u` purchased / is interested in item `i`" and `r_ui = 0`
//! meaning *unknown* (One-Class Collaborative Filtering). This crate provides
//! that substrate:
//!
//! * [`Dataset`] — the shared dual-view interaction store every layer
//!   trains, evaluates and serves from: the CSR matrix plus a build-once
//!   CSC (item×user) view, cached degree stats and O(1) external↔internal
//!   id maps;
//! * [`Triplets`] — a COO staging area for incrementally collected
//!   `(user, item)` pairs with deduplication, and [`StreamingTriplets`] —
//!   its chunked streaming counterpart for ingestion;
//! * [`CsrMatrix`] — the compressed sparse-row matrix used everywhere else,
//!   with O(1) row access, O(log d) membership tests and an exact
//!   [`CsrMatrix::transpose`] (constructed once per dataset through
//!   [`Dataset::item_view`]);
//! * [`split`] — seeded train/test splitting (the paper's 75/25 protocol);
//! * [`sample`] — uniform sub-sampling of positive examples (used for the
//!   Figure 7 scalability sweep over fractions of the Netflix dataset);
//! * [`io`] — plain-text, CSV, MovieLens `::` and Netflix-style readers and
//!   writers;
//! * [`stats`] — density and degree-distribution summaries.
//!
//! ## Example
//!
//! ```
//! use ocular_sparse::{Dataset, Triplets};
//!
//! let mut t = Triplets::new(3, 4);
//! t.push(0, 1).unwrap();
//! t.push(0, 2).unwrap();
//! t.push(2, 3).unwrap();
//! t.push(2, 3).unwrap(); // duplicates collapse
//! let r = Dataset::from_matrix(t.to_csr());
//! assert_eq!(r.nnz(), 3);
//! assert!(r.contains(0, 2));
//! assert!(!r.contains(1, 0));
//! // the CSC dual view is built once and cached — every consumer
//! // shares this one copy instead of re-transposing
//! assert!(r.item_view().contains(2, 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coo;
mod csr;
pub mod dataset;
pub mod io;
pub mod sample;
pub mod shard;
pub mod split;
pub mod stats;

pub use coo::Triplets;
pub use csr::CsrMatrix;
pub use dataset::{Dataset, DatasetBuilder, StreamingTriplets};
pub use io::{IdMaps, RawIdTable};
pub use shard::ShardedDataset;
pub use split::{Split, SplitConfig};

use std::fmt;

/// Checked conversion of an item/column index to the CSR storage type.
///
/// Column indices are stored as `u32`; a bare `as u32` cast on a catalog
/// near or above `u32::MAX` wraps silently and corrupts membership and
/// exclusion filtering downstream. Every cast site in the workspace routes
/// through this helper (or compares in the `usize` domain), so oversized
/// catalogs fail loudly here instead.
///
/// # Panics
/// Panics if `i > u32::MAX`.
#[inline]
pub fn col_index(i: usize) -> u32 {
    u32::try_from(i).expect("item index exceeds u32::MAX: catalog too large for CsrMatrix columns")
}

/// Errors produced while constructing or manipulating sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// A row index was `>= n_rows`.
    RowOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Number of rows in the matrix.
        n_rows: usize,
    },
    /// A column index was `>= n_cols`.
    ColOutOfBounds {
        /// Offending column index.
        col: usize,
        /// Number of columns in the matrix.
        n_cols: usize,
    },
    /// Raw CSR arrays handed to [`CsrMatrix::from_raw`] were inconsistent.
    MalformedCsr(
        /// Human-readable description of the inconsistency.
        String,
    ),
    /// An I/O or parse failure while reading a dataset file.
    Io(
        /// Human-readable description of the failure.
        String,
    ),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::RowOutOfBounds { row, n_rows } => {
                write!(f, "row index {row} out of bounds for {n_rows} rows")
            }
            SparseError::ColOutOfBounds { col, n_cols } => {
                write!(f, "column index {col} out of bounds for {n_cols} columns")
            }
            SparseError::MalformedCsr(msg) => write!(f, "malformed CSR arrays: {msg}"),
            SparseError::Io(msg) => write!(f, "sparse I/O error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}
