//! Compressed sparse-row binary matrix — the `R` of the paper.

use crate::SparseError;

/// An immutable binary sparse matrix in CSR layout.
///
/// Rows are users, columns are items; a stored index means `r_ui = 1`
/// (a positive example), an absent one means *unknown* (`r_ui = 0`). Column
/// indices within each row are strictly increasing and unique, which the
/// constructors enforce; all accessors rely on this invariant.
///
/// The column-major (CSC) view the paper's item-sweep needs is obtained with
/// [`CsrMatrix::transpose`]: the transpose of a CSR user×item matrix is a CSR
/// item×user matrix, i.e. exactly the per-item list of purchasing users.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    /// `indptr[r]..indptr[r+1]` bounds row `r` in `indices`; len = n_rows+1.
    indptr: Vec<usize>,
    /// Column indices, strictly increasing within each row.
    indices: Vec<u32>,
}

impl CsrMatrix {
    /// Builds a matrix from `(row, col)` pairs that are already sorted
    /// lexicographically and contain no duplicates (as produced by
    /// [`crate::Triplets`]). O(nnz).
    pub(crate) fn from_sorted_unique_pairs(
        n_rows: usize,
        n_cols: usize,
        pairs: &[(u32, u32)],
    ) -> Self {
        let mut indptr = vec![0usize; n_rows + 1];
        let mut indices = Vec::with_capacity(pairs.len());
        for &(r, c) in pairs {
            indptr[r as usize + 1] += 1;
            indices.push(c);
        }
        for r in 0..n_rows {
            indptr[r + 1] += indptr[r];
        }
        CsrMatrix {
            n_rows,
            n_cols,
            indptr,
            indices,
        }
    }

    /// Builds a matrix from arbitrary `(row, col)` pairs (sorted and
    /// deduplicated internally). Returns an error on out-of-bounds indices.
    pub fn from_pairs(
        n_rows: usize,
        n_cols: usize,
        pairs: &[(usize, usize)],
    ) -> Result<Self, SparseError> {
        let mut t = crate::Triplets::with_capacity(n_rows, n_cols, pairs.len());
        t.extend_pairs(pairs.iter().copied())?;
        Ok(t.into_csr())
    }

    /// Builds a matrix from raw CSR arrays, validating every invariant
    /// (monotone `indptr`, in-bounds strictly-increasing column indices).
    pub fn from_raw(
        n_rows: usize,
        n_cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
    ) -> Result<Self, SparseError> {
        if indptr.len() != n_rows + 1 {
            return Err(SparseError::MalformedCsr(format!(
                "indptr length {} != n_rows + 1 = {}",
                indptr.len(),
                n_rows + 1
            )));
        }
        if indptr[0] != 0 {
            return Err(SparseError::MalformedCsr("indptr[0] != 0".into()));
        }
        if *indptr.last().expect("non-empty indptr") != indices.len() {
            return Err(SparseError::MalformedCsr(format!(
                "indptr[last] = {} != indices length {}",
                indptr.last().unwrap(),
                indices.len()
            )));
        }
        for r in 0..n_rows {
            if indptr[r] > indptr[r + 1] {
                return Err(SparseError::MalformedCsr(format!(
                    "indptr not monotone at row {r}"
                )));
            }
            let row = &indices[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::MalformedCsr(format!(
                        "row {r} columns not strictly increasing"
                    )));
                }
            }
            if let Some(&last) = row.last() {
                if last as usize >= n_cols {
                    return Err(SparseError::ColOutOfBounds {
                        col: last as usize,
                        n_cols,
                    });
                }
            }
        }
        Ok(CsrMatrix {
            n_rows,
            n_cols,
            indptr,
            indices,
        })
    }

    /// An `n_rows × n_cols` matrix with no positive examples.
    pub fn empty(n_rows: usize, n_cols: usize) -> Self {
        CsrMatrix {
            n_rows,
            n_cols,
            indptr: vec![0; n_rows + 1],
            indices: Vec::new(),
        }
    }

    /// Number of rows (users).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns (items).
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of positive examples `|{(u,i) : r_ui = 1}|`.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Column indices of the positive examples in row `r`, ascending.
    ///
    /// # Panics
    /// Panics if `r >= n_rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[u32] {
        &self.indices[self.indptr[r]..self.indptr[r + 1]]
    }

    /// Number of positives in row `r` (the user's degree).
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Whether `r_ui = 1`. O(log degree(u)) via binary search.
    ///
    /// A `col` beyond `u32` addressing is never stored, so it is reported
    /// absent rather than wrapped into a spurious match.
    #[inline]
    pub fn contains(&self, row: usize, col: usize) -> bool {
        match u32::try_from(col) {
            Ok(c) => self.row(row).binary_search(&c).is_ok(),
            Err(_) => false,
        }
    }

    /// Iterator over all positive `(row, col)` pairs in row-major order.
    pub fn iter_nnz(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n_rows).flat_map(move |r| self.row(r).iter().map(move |&c| (r, c as usize)))
    }

    /// Per-row degrees `|{i : r_ui = 1}|`.
    pub fn row_degrees(&self) -> Vec<usize> {
        (0..self.n_rows).map(|r| self.row_nnz(r)).collect()
    }

    /// Per-column degrees `|{u : r_ui = 1}|`. O(nnz).
    pub fn col_degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.n_cols];
        for &c in &self.indices {
            d[c as usize] += 1;
        }
        d
    }

    /// The exact transpose: an `n_cols × n_rows` CSR matrix. Because the
    /// transpose of a CSR matrix in CSR layout *is* the CSC layout of the
    /// original, this is how column (item) sweeps obtain per-item user lists.
    /// O(nnz) counting sort; output rows are automatically sorted.
    pub fn transpose(&self) -> CsrMatrix {
        let mut indptr = vec![0usize; self.n_cols + 1];
        for &c in &self.indices {
            indptr[c as usize + 1] += 1;
        }
        for c in 0..self.n_cols {
            indptr[c + 1] += indptr[c];
        }
        let mut cursor = indptr.clone();
        let mut indices = vec![0u32; self.nnz()];
        for r in 0..self.n_rows {
            for &c in self.row(r) {
                indices[cursor[c as usize]] = r as u32;
                cursor[c as usize] += 1;
            }
        }
        CsrMatrix {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            indptr,
            indices,
        }
    }

    /// Density `nnz / (n_rows · n_cols)`; 0 for degenerate shapes.
    pub fn density(&self) -> f64 {
        let cells = self.n_rows as f64 * self.n_cols as f64;
        if cells == 0.0 {
            0.0
        } else {
            self.nnz() as f64 / cells
        }
    }

    /// Raw parts `(n_rows, n_cols, indptr, indices)`, for zero-copy
    /// interoperability (e.g. the parallel kernels).
    pub fn as_parts(&self) -> (usize, usize, &[usize], &[u32]) {
        (self.n_rows, self.n_cols, &self.indptr, &self.indices)
    }

    /// Restricts the matrix to a subset of positive entries, given as a
    /// boolean keep-mask aligned with row-major nnz order. Used by splitters
    /// and samplers. Preserves shape.
    pub fn filter_nnz(&self, keep: &[bool]) -> CsrMatrix {
        assert_eq!(keep.len(), self.nnz(), "mask length must equal nnz");
        let mut indptr = vec![0usize; self.n_rows + 1];
        let mut indices = Vec::with_capacity(keep.iter().filter(|&&k| k).count());
        let mut pos = 0usize;
        for r in 0..self.n_rows {
            for &c in self.row(r) {
                if keep[pos] {
                    indices.push(c);
                    indptr[r + 1] += 1;
                }
                pos += 1;
            }
        }
        for r in 0..self.n_rows {
            indptr[r + 1] += indptr[r];
        }
        CsrMatrix {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            indptr,
            indices,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // 3×4:
        // row0: 0 1 . .
        // row1: . . . 1
        // row2: 1 . 1 .
        CsrMatrix::from_pairs(3, 4, &[(0, 0), (0, 1), (1, 3), (2, 0), (2, 2)]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let m = sample();
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 4);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.row(0), &[0, 1]);
        assert_eq!(m.row(1), &[3]);
        assert_eq!(m.row(2), &[0, 2]);
        assert_eq!(m.row_nnz(2), 2);
        assert!(m.contains(1, 3));
        assert!(!m.contains(1, 0));
    }

    #[test]
    fn transpose_is_involution() {
        let m = sample();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
    }

    #[test]
    fn transpose_swaps_membership() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_cols(), 3);
        for (r, c) in m.iter_nnz() {
            assert!(t.contains(c, r));
        }
        assert_eq!(t.nnz(), m.nnz());
    }

    #[test]
    fn degrees() {
        let m = sample();
        assert_eq!(m.row_degrees(), vec![2, 1, 2]);
        assert_eq!(m.col_degrees(), vec![2, 1, 1, 1]);
    }

    #[test]
    fn density() {
        let m = sample();
        assert!((m.density() - 5.0 / 12.0).abs() < 1e-12);
        assert_eq!(CsrMatrix::empty(0, 0).density(), 0.0);
    }

    #[test]
    fn iter_nnz_row_major() {
        let m = sample();
        let pairs: Vec<_> = m.iter_nnz().collect();
        assert_eq!(pairs, vec![(0, 0), (0, 1), (1, 3), (2, 0), (2, 2)]);
    }

    #[test]
    fn from_raw_validates() {
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 1]).is_ok());
        // wrong indptr length
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 2], vec![0, 1]).is_err());
        // non-monotone indptr
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0, 1]).is_err());
        // unsorted row
        assert!(CsrMatrix::from_raw(1, 3, vec![0, 2], vec![2, 0]).is_err());
        // duplicate within row
        assert!(CsrMatrix::from_raw(1, 3, vec![0, 2], vec![1, 1]).is_err());
        // column out of bounds
        assert!(CsrMatrix::from_raw(1, 2, vec![0, 1], vec![5]).is_err());
        // tail mismatch
        assert!(CsrMatrix::from_raw(1, 2, vec![0, 2], vec![0]).is_err());
    }

    #[test]
    fn filter_nnz_keeps_selected() {
        let m = sample();
        let kept = m.filter_nnz(&[true, false, true, false, true]);
        assert_eq!(kept.nnz(), 3);
        assert!(kept.contains(0, 0));
        assert!(!kept.contains(0, 1));
        assert!(kept.contains(1, 3));
        assert!(!kept.contains(2, 0));
        assert!(kept.contains(2, 2));
        assert_eq!(kept.n_rows(), 3);
        assert_eq!(kept.n_cols(), 4);
    }

    #[test]
    #[should_panic(expected = "mask length")]
    fn filter_nnz_bad_mask_panics() {
        sample().filter_nnz(&[true]);
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::empty(4, 7);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.transpose().n_rows(), 7);
        assert_eq!(m.row_degrees(), vec![0; 4]);
    }
}
