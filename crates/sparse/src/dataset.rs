//! The shared dual-view interaction store — the data backbone every layer
//! of the workspace trains, evaluates, and serves from.
//!
//! Historically each consumer re-derived its own view of the interaction
//! data: the trainer called [`CsrMatrix::transpose`] per fit, item-kNN
//! rebuilt per-item user lists, id lookups were linear scans. [`Dataset`]
//! centralises all of it behind one immutable, cheaply shareable value:
//!
//! * the CSR **user×item** matrix (`Deref`s straight to [`CsrMatrix`], so
//!   every existing accessor keeps working);
//! * a build-once **item×user** dual view ([`Dataset::item_view`]) — the
//!   CSC layout of `R`, computed lazily on first use and then shared by
//!   every item-sweep, kNN build and wALS half-sweep;
//! * cached per-axis degree vectors ([`Dataset::user_degrees`],
//!   [`Dataset::item_degrees`]);
//! * optional hash-backed **external↔internal id maps**
//!   ([`crate::io::IdMaps`]) with O(1) lookups in both directions, shared
//!   by `Arc` so train/test splits and serving snapshots agree on the id
//!   space by construction.
//!
//! `Dataset` is immutable after construction, so `&Dataset` (or
//! `Arc<Dataset>`) can be handed to trainers, evaluators and serving
//! engines concurrently without copies.

use crate::io::{Compactor, IdMaps};
use crate::split::{Split, SplitConfig};
use crate::{CsrMatrix, SparseError};
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

/// An immutable interaction store: CSR matrix + lazy CSC dual view +
/// cached stats + optional external-id maps. See the [module docs](self).
pub struct Dataset {
    matrix: CsrMatrix,
    /// `None` = identity mapping (internal index `i` ↔ external id `i`).
    ids: Option<Arc<IdMaps>>,
    item_view: OnceLock<CsrMatrix>,
    user_degrees: OnceLock<Vec<usize>>,
    item_degrees: OnceLock<Vec<usize>>,
}

impl Dataset {
    /// Wraps a matrix with the identity id mapping.
    pub fn from_matrix(matrix: CsrMatrix) -> Self {
        Dataset {
            matrix,
            ids: None,
            item_view: OnceLock::new(),
            user_degrees: OnceLock::new(),
            item_degrees: OnceLock::new(),
        }
    }

    /// Wraps a matrix with external-id maps. The maps must cover exactly
    /// the matrix's rows and columns.
    pub fn new(matrix: CsrMatrix, ids: IdMaps) -> Result<Self, SparseError> {
        Self::with_ids(matrix, Arc::new(ids))
    }

    /// Like [`Dataset::new`] but shares an existing `Arc`'d map (splits and
    /// snapshots use this so the whole pipeline points at one table).
    pub fn with_ids(matrix: CsrMatrix, ids: Arc<IdMaps>) -> Result<Self, SparseError> {
        if ids.n_users() != matrix.n_rows() || ids.n_items() != matrix.n_cols() {
            return Err(SparseError::MalformedCsr(format!(
                "id maps cover {}×{} but matrix is {}×{}",
                ids.n_users(),
                ids.n_items(),
                matrix.n_rows(),
                matrix.n_cols()
            )));
        }
        Ok(Dataset {
            matrix,
            ids: Some(ids),
            item_view: OnceLock::new(),
            user_degrees: OnceLock::new(),
            item_degrees: OnceLock::new(),
        })
    }

    /// The CSR user×item matrix (also reachable through `Deref`).
    #[inline]
    pub fn matrix(&self) -> &CsrMatrix {
        &self.matrix
    }

    /// Consumes the dataset, returning the underlying matrix.
    pub fn into_matrix(self) -> CsrMatrix {
        self.matrix
    }

    /// Number of users (rows).
    #[inline]
    pub fn n_users(&self) -> usize {
        self.matrix.n_rows()
    }

    /// Number of items (columns).
    #[inline]
    pub fn n_items(&self) -> usize {
        self.matrix.n_cols()
    }

    /// The item×user dual view — the CSC layout of `R`, i.e. row `i` lists
    /// the users who purchased item `i`. Built once (O(nnz)) on first
    /// access and cached; every item-sweep and kNN build shares this one
    /// copy instead of re-transposing.
    pub fn item_view(&self) -> &CsrMatrix {
        self.item_view.get_or_init(|| self.matrix.transpose())
    }

    /// Per-user degrees, computed once and cached.
    pub fn user_degrees(&self) -> &[usize] {
        self.user_degrees.get_or_init(|| self.matrix.row_degrees())
    }

    /// Per-item degrees (item popularity), computed once and cached.
    pub fn item_degrees(&self) -> &[usize] {
        self.item_degrees.get_or_init(|| self.matrix.col_degrees())
    }

    /// The external-id maps, if the dataset was built from compacted ids
    /// (`None` = identity mapping).
    pub fn ids(&self) -> Option<&IdMaps> {
        self.ids.as_deref()
    }

    /// The shared `Arc` of the id maps, for handing to snapshots/splits.
    pub fn ids_arc(&self) -> Option<Arc<IdMaps>> {
        self.ids.clone()
    }

    /// Internal row of an external user id, O(1). Under the identity
    /// mapping any `external < n_users` resolves to itself.
    pub fn user_index(&self, external: u64) -> Option<usize> {
        match &self.ids {
            Some(ids) => ids.user_index(external),
            None => usize::try_from(external)
                .ok()
                .filter(|&u| u < self.n_users()),
        }
    }

    /// Internal column of an external item id, O(1).
    pub fn item_index(&self, external: u64) -> Option<usize> {
        match &self.ids {
            Some(ids) => ids.item_index(external),
            None => usize::try_from(external)
                .ok()
                .filter(|&i| i < self.n_items()),
        }
    }

    /// External id of internal user `u`.
    ///
    /// # Panics
    /// Panics if `u >= n_users`.
    pub fn external_user(&self, u: usize) -> u64 {
        match &self.ids {
            Some(ids) => ids.external_user(u).expect("user index in bounds"),
            None => {
                assert!(u < self.n_users(), "user index {u} out of bounds");
                u as u64
            }
        }
    }

    /// External id of internal item `i`.
    ///
    /// # Panics
    /// Panics if `i >= n_items`.
    pub fn external_item(&self, i: usize) -> u64 {
        match &self.ids {
            Some(ids) => ids.external_item(i).expect("item index in bounds"),
            None => {
                assert!(i < self.n_items(), "item index {i} out of bounds");
                i as u64
            }
        }
    }

    /// Restricts the dataset to a subset of positives (same shape, same
    /// shared id maps) — the primitive behind train/test splits and
    /// cross-validation folds, which is how both sides of a split share
    /// one id space by construction.
    pub fn filter_nnz(&self, keep: &[bool]) -> Dataset {
        Dataset {
            matrix: self.matrix.filter_nnz(keep),
            ids: self.ids.clone(),
            item_view: OnceLock::new(),
            user_degrees: OnceLock::new(),
            item_degrees: OnceLock::new(),
        }
    }

    /// Splits into train/test datasets that share this dataset's id maps
    /// (see [`Split::new`]).
    pub fn split(&self, cfg: &SplitConfig) -> Split {
        Split::new(self, cfg)
    }

    /// Starts a delta batch over this dataset — see [`DatasetBuilder`].
    pub fn delta_builder(&self) -> DatasetBuilder {
        DatasetBuilder::from_dataset(self)
    }

    /// Merges a batch of external `(user, item)` records over this dataset
    /// in one pass, extending the id maps for never-seen users and items.
    ///
    /// Cost is `O(new + unique)` — one sorted-run merge over the existing
    /// positives plus compaction of the delta records; the original
    /// interaction log is **not** re-read or re-parsed. The result is
    /// bit-identical to re-ingesting the concatenated base+delta stream
    /// from scratch (property-tested), because new externals are assigned
    /// internal indices in first-appearance order *after* the existing
    /// ones, exactly as a full re-ingest would.
    pub fn append_deltas<I>(&self, records: I) -> Result<Dataset, SparseError>
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        let mut b = self.delta_builder();
        for (u, i) in records {
            b.push(u, i)?;
        }
        b.finish()
    }
}

/// Incremental extension of an immutable [`Dataset`]: stage delta records
/// (external ids), then [`finish`](DatasetBuilder::finish) into a new
/// `Dataset` via **one** sorted-run merge over the existing positives —
/// `O(new + unique)`, never a re-ingest of the original log.
///
/// Never-seen users/items extend the id space in first-appearance order,
/// so existing internal indices (and therefore any model trained on the
/// base dataset) stay valid: the base is always an index-prefix of the
/// result. Under the identity mapping (no id maps) the delta records are
/// internal indices and the shape grows to cover them.
pub struct DatasetBuilder {
    base: Dataset,
    /// Seeded compactors when the base is id-mapped; `None` = identity.
    compactors: Option<(Compactor, Compactor)>,
    staged: StreamingTriplets,
    pushed: usize,
    max_row: usize,
    max_col: usize,
}

impl DatasetBuilder {
    /// A builder staging deltas over `base` (the base is cloned; the
    /// matrix clone is `O(unique)` and id maps are shared by `Arc`).
    pub fn from_dataset(base: &Dataset) -> DatasetBuilder {
        let compactors = base.ids().map(|ids| {
            (
                Compactor::seeded(ids.users()),
                Compactor::seeded(ids.items()),
            )
        });
        DatasetBuilder {
            base: base.clone(),
            compactors,
            staged: StreamingTriplets::new(),
            pushed: 0,
            max_row: 0,
            max_col: 0,
        }
    }

    /// Stages one delta record, given as **external** ids (internal
    /// indices under the identity mapping).
    pub fn push(&mut self, user: u64, item: u64) -> Result<(), SparseError> {
        let (r, c) = match &mut self.compactors {
            Some((users, items)) => (users.get(user) as usize, items.get(item) as usize),
            None => {
                let r = usize::try_from(user).map_err(|_| SparseError::RowOutOfBounds {
                    row: usize::MAX,
                    n_rows: u32::MAX as usize,
                })?;
                let c = usize::try_from(item).map_err(|_| SparseError::ColOutOfBounds {
                    col: usize::MAX,
                    n_cols: u32::MAX as usize,
                })?;
                (r, c)
            }
        };
        self.max_row = self.max_row.max(r);
        self.max_col = self.max_col.max(c);
        self.pushed += 1;
        self.staged.push(r, c)
    }

    /// Number of delta records staged so far (duplicates included).
    pub fn staged_records(&self) -> usize {
        self.pushed
    }

    /// Number of users the result will have (base + never-seen).
    pub fn n_users(&self) -> usize {
        match &self.compactors {
            Some((users, _)) => users.len(),
            None if self.pushed > 0 => self.base.n_users().max(self.max_row + 1),
            None => self.base.n_users(),
        }
    }

    /// Number of items the result will have (base + never-seen).
    pub fn n_items(&self) -> usize {
        match &self.compactors {
            Some((_, items)) => items.len(),
            None if self.pushed > 0 => self.base.n_items().max(self.max_col + 1),
            None => self.base.n_items(),
        }
    }

    /// Merges the staged delta run over the base positives and builds the
    /// extended dataset. One `O(new + unique)` pass; when no never-seen
    /// users/items appeared, the result **shares** the base's id-map
    /// `Arc`, so "same id space" stays checkable by pointer identity.
    pub fn finish(self) -> Result<Dataset, SparseError> {
        let (n_users, n_items) = (self.n_users(), self.n_items());
        if self.pushed == 0 {
            return Ok(self.base);
        }
        let delta = self.staged.into_sorted_pairs();
        let base_pairs: Vec<(u32, u32)> = self
            .base
            .matrix()
            .iter_nnz()
            .map(|(r, c)| (r as u32, c as u32))
            .collect();
        let merged = merge_dedup(&base_pairs, &delta);
        let matrix = CsrMatrix::from_sorted_unique_pairs(n_users, n_items, &merged);
        match self.compactors {
            Some((users, items)) => {
                if n_users == self.base.n_users() && n_items == self.base.n_items() {
                    let ids = self.base.ids_arc().expect("compactors imply id maps");
                    Dataset::with_ids(matrix, ids)
                } else {
                    Dataset::new(matrix, IdMaps::from_compactors(users, items))
                }
            }
            None => Ok(Dataset::from_matrix(matrix)),
        }
    }
}

impl Deref for Dataset {
    type Target = CsrMatrix;

    fn deref(&self) -> &CsrMatrix {
        &self.matrix
    }
}

impl From<CsrMatrix> for Dataset {
    fn from(matrix: CsrMatrix) -> Self {
        Dataset::from_matrix(matrix)
    }
}

impl Clone for Dataset {
    fn clone(&self) -> Self {
        Dataset {
            matrix: self.matrix.clone(),
            ids: self.ids.clone(),
            // cached views are cheap to rebuild; don't force them here
            item_view: OnceLock::new(),
            user_degrees: OnceLock::new(),
            item_degrees: OnceLock::new(),
        }
    }
}

impl std::fmt::Debug for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dataset")
            .field("n_users", &self.n_users())
            .field("n_items", &self.n_items())
            .field("nnz", &self.matrix.nnz())
            .field("has_ids", &self.ids.is_some())
            .finish()
    }
}

impl PartialEq for Dataset {
    fn eq(&self, other: &Self) -> bool {
        self.matrix == other.matrix && self.ids() == other.ids()
    }
}

impl Eq for Dataset {}

/// Chunked COO staging for streaming ingestion.
///
/// [`crate::Triplets`] keeps every staged record (duplicates included) in
/// one `Vec` until conversion — fine for generators, but a repeat-heavy
/// interaction log (the common shape of purchase data) materialises the
/// whole file. `StreamingTriplets` instead sorts and deduplicates in
/// bounded **chunks** and merges sorted runs as it goes, so peak memory is
/// `O(unique pairs + chunk)` regardless of how many raw records stream
/// through. The chunked readers in [`crate::io`] feed records here one at
/// a time; nothing ever holds the raw record list.
#[derive(Debug, Clone)]
pub struct StreamingTriplets {
    chunk: Vec<(u32, u32)>,
    chunk_capacity: usize,
    /// Sorted, deduplicated runs; adjacent runs of comparable size are
    /// merged eagerly (binary-counter discipline), keeping the run count
    /// logarithmic in the total.
    runs: Vec<Vec<(u32, u32)>>,
    max_row: Option<u32>,
    max_col: Option<u32>,
}

/// Default chunk capacity: ~8 MiB of staged pairs.
const DEFAULT_CHUNK: usize = 1 << 20;

impl StreamingTriplets {
    /// An empty builder with the default chunk capacity.
    pub fn new() -> Self {
        Self::with_chunk_capacity(DEFAULT_CHUNK)
    }

    /// An empty builder whose staging chunk holds `cap` pairs (minimum 1).
    /// Small capacities are useful in tests to force the merge machinery.
    pub fn with_chunk_capacity(cap: usize) -> Self {
        StreamingTriplets {
            chunk: Vec::new(),
            chunk_capacity: cap.max(1),
            runs: Vec::new(),
            max_row: None,
            max_col: None,
        }
    }

    /// Stages `r[row, col] = 1`. Errors if either index exceeds the `u32`
    /// storage domain; shape bounds are validated at [`finish`].
    ///
    /// [`finish`]: StreamingTriplets::finish
    pub fn push(&mut self, row: usize, col: usize) -> Result<(), SparseError> {
        let r = u32::try_from(row).map_err(|_| SparseError::RowOutOfBounds {
            row,
            n_rows: u32::MAX as usize,
        })?;
        let c = u32::try_from(col).map_err(|_| SparseError::ColOutOfBounds {
            col,
            n_cols: u32::MAX as usize,
        })?;
        self.max_row = Some(self.max_row.map_or(r, |m| m.max(r)));
        self.max_col = Some(self.max_col.map_or(c, |m| m.max(c)));
        self.chunk.push((r, c));
        if self.chunk.len() >= self.chunk_capacity {
            self.seal_chunk();
        }
        Ok(())
    }

    /// Number of sorted runs currently held (test observability).
    pub fn run_count(&self) -> usize {
        self.runs.len() + usize::from(!self.chunk.is_empty())
    }

    fn seal_chunk(&mut self) {
        if self.chunk.is_empty() {
            return;
        }
        let mut run = std::mem::take(&mut self.chunk);
        run.sort_unstable();
        run.dedup();
        self.runs.push(run);
        // merge the binary-counter way: whenever the top two runs are
        // within 2× of each other, collapse them
        while self.runs.len() >= 2 {
            let a = self.runs[self.runs.len() - 2].len();
            let b = self.runs[self.runs.len() - 1].len();
            if a > 2 * b {
                break;
            }
            let top = self.runs.pop().expect("len checked");
            let below = self.runs.pop().expect("len checked");
            self.runs.push(merge_dedup(&below, &top));
        }
    }

    /// Finishes staging: merges all runs and builds the CSR matrix for the
    /// given logical shape. Errors if any staged index is out of bounds.
    pub fn finish(mut self, n_rows: usize, n_cols: usize) -> Result<CsrMatrix, SparseError> {
        self.seal_chunk();
        if let Some(m) = self.max_row {
            if m as usize >= n_rows {
                return Err(SparseError::RowOutOfBounds {
                    row: m as usize,
                    n_rows,
                });
            }
        }
        if let Some(m) = self.max_col {
            if m as usize >= n_cols {
                return Err(SparseError::ColOutOfBounds {
                    col: m as usize,
                    n_cols,
                });
            }
        }
        let pairs = self.into_sorted_pairs();
        Ok(CsrMatrix::from_sorted_unique_pairs(n_rows, n_cols, &pairs))
    }

    /// Collapses all staged runs into one sorted, deduplicated pair list —
    /// the primitive [`finish`] builds its matrix from, and the sorted run
    /// a [`crate::DatasetBuilder`] merges over an existing dataset.
    ///
    /// [`finish`]: StreamingTriplets::finish
    pub fn into_sorted_pairs(mut self) -> Vec<(u32, u32)> {
        self.seal_chunk();
        let mut runs = self.runs;
        while runs.len() >= 2 {
            // merge smallest-last to keep the fold balanced
            runs.sort_by_key(|r| std::cmp::Reverse(r.len()));
            let a = runs.pop().expect("len checked");
            let b = runs.pop().expect("len checked");
            runs.push(merge_dedup(&b, &a));
        }
        runs.pop().unwrap_or_default()
    }
}

impl Default for StreamingTriplets {
    fn default() -> Self {
        Self::new()
    }
}

/// Merges two sorted, deduplicated pair lists into one.
fn merge_dedup(a: &[(u32, u32)], b: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triplets;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_pairs(3, 4, &[(0, 0), (0, 1), (1, 3), (2, 0), (2, 2)]).unwrap()
    }

    #[test]
    fn deref_exposes_matrix_accessors() {
        let d = Dataset::from_matrix(sample());
        assert_eq!(d.nnz(), 5);
        assert_eq!(d.row(0), &[0, 1]);
        assert!(d.contains(1, 3));
        assert_eq!(d.n_users(), 3);
        assert_eq!(d.n_items(), 4);
    }

    #[test]
    fn item_view_is_the_transpose_and_cached() {
        let d = Dataset::from_matrix(sample());
        let v1 = d.item_view() as *const CsrMatrix;
        let v2 = d.item_view() as *const CsrMatrix;
        assert_eq!(v1, v2, "second access must hit the cache");
        assert_eq!(*d.item_view(), d.matrix().transpose());
    }

    #[test]
    fn degrees_cached_and_correct() {
        let d = Dataset::from_matrix(sample());
        assert_eq!(d.user_degrees(), &[2, 1, 2]);
        assert_eq!(d.item_degrees(), &[2, 1, 1, 1]);
    }

    #[test]
    fn identity_id_mapping() {
        let d = Dataset::from_matrix(sample());
        assert!(d.ids().is_none());
        assert_eq!(d.user_index(2), Some(2));
        assert_eq!(d.user_index(3), None);
        assert_eq!(d.item_index(3), Some(3));
        assert_eq!(d.item_index(99), None);
        assert_eq!(d.external_user(1), 1);
        assert_eq!(d.external_item(2), 2);
    }

    #[test]
    fn external_id_mapping_round_trips() {
        let ids = IdMaps::new(vec![100, 7, 42], vec![9, 8, 7, 6]).unwrap();
        let d = Dataset::new(sample(), ids).unwrap();
        assert_eq!(d.user_index(7), Some(1));
        assert_eq!(d.user_index(1), None, "internal ids are not external");
        assert_eq!(d.external_user(1), 7);
        assert_eq!(d.item_index(6), Some(3));
        assert_eq!(d.external_item(0), 9);
        for u in 0..d.n_users() {
            assert_eq!(d.user_index(d.external_user(u)), Some(u));
        }
    }

    #[test]
    fn mismatched_id_maps_rejected() {
        let ids = IdMaps::new(vec![1, 2], vec![1, 2, 3, 4]).unwrap();
        assert!(Dataset::new(sample(), ids).is_err());
    }

    #[test]
    fn filter_shares_id_maps() {
        let ids = IdMaps::new(vec![100, 7, 42], vec![9, 8, 7, 6]).unwrap();
        let d = Dataset::new(sample(), ids).unwrap();
        let kept = d.filter_nnz(&[true, false, true, false, true]);
        assert_eq!(kept.nnz(), 3);
        assert_eq!(kept.n_users(), 3, "shape preserved");
        // the id table is the *same* allocation, not a copy
        assert!(Arc::ptr_eq(&d.ids_arc().unwrap(), &kept.ids_arc().unwrap()));
    }

    #[test]
    fn equality_covers_matrix_and_ids() {
        let a = Dataset::from_matrix(sample());
        let b = Dataset::from_matrix(sample());
        assert_eq!(a, b);
        let c = Dataset::new(
            sample(),
            IdMaps::new(vec![5, 6, 7], vec![1, 2, 3, 4]).unwrap(),
        )
        .unwrap();
        assert_ne!(a, c);
        assert_eq!(c, c.clone());
    }

    #[test]
    fn streaming_matches_triplets_on_duplicates() {
        let pairs = [(2usize, 2usize), (0, 1), (0, 1), (1, 3), (0, 1), (2, 0)];
        let mut t = Triplets::new(3, 4);
        let mut s = StreamingTriplets::with_chunk_capacity(2);
        for &(r, c) in &pairs {
            t.push(r, c).unwrap();
            s.push(r, c).unwrap();
        }
        assert_eq!(s.finish(3, 4).unwrap(), t.into_csr());
    }

    #[test]
    fn streaming_chunk_size_never_changes_the_result() {
        let pairs: Vec<(usize, usize)> = (0..200).map(|k| (k % 7, (k * 13) % 11)).collect();
        let reference = {
            let mut s = StreamingTriplets::new();
            for &(r, c) in &pairs {
                s.push(r, c).unwrap();
            }
            s.finish(7, 11).unwrap()
        };
        for cap in [1, 2, 3, 5, 16, 1000] {
            let mut s = StreamingTriplets::with_chunk_capacity(cap);
            for &(r, c) in &pairs {
                s.push(r, c).unwrap();
            }
            assert_eq!(s.finish(7, 11).unwrap(), reference, "chunk capacity {cap}");
        }
    }

    #[test]
    fn streaming_bounds_checked_at_finish() {
        let mut s = StreamingTriplets::new();
        s.push(5, 0).unwrap();
        assert!(matches!(
            s.clone().finish(5, 1),
            Err(SparseError::RowOutOfBounds { .. })
        ));
        assert!(s.finish(6, 1).is_ok());
    }

    #[test]
    fn streaming_bounded_run_count() {
        let mut s = StreamingTriplets::with_chunk_capacity(8);
        for k in 0..10_000usize {
            s.push(k % 50, (k * 31) % 40).unwrap();
        }
        // 10k pushes at chunk 8 would be 1250 naive runs; the eager merge
        // keeps it logarithmic
        assert!(s.run_count() <= 16, "run count {}", s.run_count());
        let m = s.finish(50, 40).unwrap();
        // pairs repeat with period lcm(50, 40) = 200, all distinct within it
        assert_eq!(m.nnz(), 200);
    }

    #[test]
    fn empty_streaming_builder() {
        let s = StreamingTriplets::new();
        let m = s.finish(3, 3).unwrap();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn into_sorted_pairs_merges_all_runs() {
        let mut s = StreamingTriplets::with_chunk_capacity(2);
        for &(r, c) in &[(2usize, 2usize), (0, 1), (0, 1), (1, 3), (2, 0)] {
            s.push(r, c).unwrap();
        }
        assert_eq!(
            s.into_sorted_pairs(),
            vec![(0, 1), (1, 3), (2, 0), (2, 2)],
            "sorted, deduplicated, fully merged"
        );
    }

    #[test]
    fn append_deltas_extends_id_space_in_order() {
        let ids = IdMaps::new(vec![100, 7, 42], vec![9, 8, 7, 6]).unwrap();
        let base = Dataset::new(sample(), ids).unwrap();
        // one repeat pair, one new pair on old ids, one brand-new user
        let merged = base
            .append_deltas([(100, 9), (7, 7), (55, 11), (55, 9)])
            .unwrap();
        assert_eq!(merged.n_users(), 4);
        assert_eq!(merged.n_items(), 5);
        assert_eq!(merged.user_index(55), Some(3), "new user appended last");
        assert_eq!(merged.item_index(11), Some(4), "new item appended last");
        // old internal indices are untouched
        for u in 0..base.n_users() {
            assert_eq!(merged.user_index(base.external_user(u)), Some(u));
        }
        assert_eq!(merged.nnz(), base.nnz() + 3, "repeat pair collapsed");
        assert!(merged.contains(1, 2), "delta (7, 7) landed on old indices");
        assert!(merged.contains(3, 0), "delta (55, 9) landed");
    }

    #[test]
    fn append_without_new_entities_shares_the_id_arc() {
        let ids = IdMaps::new(vec![100, 7, 42], vec![9, 8, 7, 6]).unwrap();
        let base = Dataset::new(sample(), ids).unwrap();
        let merged = base.append_deltas([(42, 8), (100, 6)]).unwrap();
        assert_eq!(merged.nnz(), base.nnz() + 2);
        assert!(
            Arc::ptr_eq(&base.ids_arc().unwrap(), &merged.ids_arc().unwrap()),
            "unchanged id space stays pointer-identical"
        );
    }

    #[test]
    fn empty_delta_returns_the_base() {
        let base = Dataset::from_matrix(sample());
        let merged = base.append_deltas(std::iter::empty()).unwrap();
        assert_eq!(merged, base);
        let b = base.delta_builder();
        assert_eq!(b.staged_records(), 0);
        assert_eq!(b.n_users(), base.n_users());
        assert_eq!(b.n_items(), base.n_items());
    }

    #[test]
    fn identity_append_grows_shape() {
        let base = Dataset::from_matrix(sample()); // 3×4
        let merged = base.append_deltas([(5, 1), (0, 6)]).unwrap();
        assert_eq!(merged.n_users(), 6);
        assert_eq!(merged.n_items(), 7);
        assert!(merged.contains(5, 1));
        assert!(merged.contains(0, 6));
        assert!(merged.contains(0, 0), "base positives survive");
        assert!(merged.ids().is_none());
    }
}
