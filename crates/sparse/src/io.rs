//! Readers and writers for interaction data — streaming, chunked, and
//! id-mapping.
//!
//! Three on-disk formats are supported, covering the paper's public datasets
//! so that users with the real files can reproduce the original numbers:
//!
//! * **Edge list / CSV** — one `user<sep>item[<sep>rating]` record per line
//!   ([`read_edge_list`]); with a rating column, records are kept only if
//!   `rating >= threshold` (the paper keeps MovieLens/Netflix ratings ≥ 3);
//! * **MovieLens `::`** — `UserID::MovieID::Rating::Timestamp`
//!   ([`read_movielens`]);
//! * **Netflix** — per-movie files whose first line is `movie_id:` followed
//!   by `customer,rating,date` lines ([`read_netflix_dir`]).
//!
//! All readers compact arbitrary (sparse, 1-based, hash-like) external ids
//! into dense 0-based indices and return the [`IdMaps`] needed to translate
//! recommendations back to external ids. Parsing is **streaming**: records
//! flow one at a time into a [`crate::StreamingTriplets`] chunked builder,
//! so a repeat-heavy interaction log never materialises its raw record
//! list — peak memory is `O(unique pairs + entities + chunk)`.

use crate::{CsrMatrix, Dataset, SparseError, StreamingTriplets};
use ocular_bytes::{fnv1a64_key, U32Buf, U64Buf};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// Sentinel marking an empty slot in a [`RawIdTable`] (the internal
/// indices themselves are bounded by `u32::MAX` entries, enforced at map
/// construction, so the sentinel can never collide with a real index).
const RAW_EMPTY: u32 = u32::MAX;

/// A flat open-addressed hash table mapping external ids to internal
/// indices — the **on-disk** (and mmap-servable) form of one axis of an
/// [`IdMaps`] lookup.
///
/// Layout: two parallel arrays of power-of-two capacity, `keys: u64[cap]`
/// and `vals: u32[cap]`, with `vals[slot] == u32::MAX` marking empty
/// slots. A key hashes to `fnv1a64(key_le_bytes) & (cap - 1)` and probes
/// linearly. The layout is part of the v3 snapshot contract: the writer
/// builds it deterministically and the serving tier probes it **in
/// place**, borrowed from the snapshot's byte region, so engine start-up
/// rebuilds no hash tables.
#[derive(Debug, Clone)]
pub struct RawIdTable {
    keys: U64Buf,
    vals: U32Buf,
}

impl RawIdTable {
    /// Builds the table for an external-id order array (`order[ix]` =
    /// external id of internal index `ix`). Deterministic: the same order
    /// array always produces the same bytes. Capacity is the smallest
    /// power of two holding the entries at ≤ 50% load (minimum one empty
    /// slot, so probes always terminate).
    ///
    /// # Panics
    /// Panics if `order` holds `u32::MAX` or more entries (the internal
    /// index domain; [`IdMaps::new`] rejects this earlier with an error).
    pub fn build(order: &[u64]) -> RawIdTable {
        assert!(
            order.len() < RAW_EMPTY as usize,
            "id table exceeds u32 addressing"
        );
        if order.is_empty() {
            return RawIdTable {
                keys: U64Buf::default(),
                vals: U32Buf::default(),
            };
        }
        let cap = (order.len() * 2).next_power_of_two();
        let mut keys = vec![0u64; cap];
        let mut vals = vec![RAW_EMPTY; cap];
        for (ix, &external) in order.iter().enumerate() {
            let mut slot = fnv1a64_key(external) as usize & (cap - 1);
            while vals[slot] != RAW_EMPTY {
                slot = (slot + 1) & (cap - 1);
            }
            keys[slot] = external;
            vals[slot] = ix as u32;
        }
        RawIdTable {
            keys: keys.into(),
            vals: vals.into(),
        }
    }

    /// Assembles a table from (possibly region-borrowed) arrays, checking
    /// only structural shape — capacity a power of two (or both empty) and
    /// arrays of equal length. Semantic validation against an order array
    /// happens in [`IdMaps::from_raw`].
    pub fn from_parts(keys: U64Buf, vals: U32Buf) -> Result<RawIdTable, SparseError> {
        if keys.len() != vals.len() {
            return Err(SparseError::Io(format!(
                "id table arrays disagree: {} keys vs {} values",
                keys.len(),
                vals.len()
            )));
        }
        if !keys.is_empty() && !keys.len().is_power_of_two() {
            return Err(SparseError::Io(format!(
                "id table capacity {} is not a power of two",
                keys.len()
            )));
        }
        Ok(RawIdTable { keys, vals })
    }

    /// The key array (serialization).
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// The value array (serialization).
    pub fn vals(&self) -> &[u32] {
        &self.vals
    }

    /// Looks up a key by bounded linear probing. O(1) expected.
    fn probe(&self, key: u64) -> Option<usize> {
        let cap = self.keys.len();
        if cap == 0 {
            return None;
        }
        let (keys, vals) = (self.keys.as_slice(), self.vals.as_slice());
        let mut slot = fnv1a64_key(key) as usize & (cap - 1);
        // bounded by cap so a corrupt all-full table cannot loop forever
        for _ in 0..cap {
            if vals[slot] == RAW_EMPTY {
                return None;
            }
            if keys[slot] == key {
                return Some(vals[slot] as usize);
            }
            slot = (slot + 1) & (cap - 1);
        }
        None
    }

    /// Number of occupied slots.
    fn occupancy(&self) -> usize {
        self.vals.iter().filter(|&&v| v != RAW_EMPTY).count()
    }

    fn is_shared(&self) -> bool {
        self.keys.is_shared() && self.vals.is_shared()
    }
}

/// One direction of id lookup: a heap `HashMap` (maps built in memory) or
/// a [`RawIdTable`] probed in place (maps loaded from a binary snapshot).
#[derive(Debug, Clone)]
enum Lookup {
    Hash(HashMap<u64, u32>),
    Raw(RawIdTable),
}

impl Lookup {
    fn get(&self, external: u64) -> Option<usize> {
        match self {
            Lookup::Hash(map) => map.get(&external).map(|&ix| ix as usize),
            Lookup::Raw(table) => table.probe(external),
        }
    }
}

/// Mapping between external (file) ids and the dense internal indices,
/// with O(1) lookups in both directions.
///
/// The order arrays are [`U64Buf`]s and the lookups either `HashMap`s or
/// raw probed tables, so an `IdMaps` loaded from a binary snapshot
/// borrows everything from the snapshot's (possibly memory-mapped) byte
/// region — engine start-up allocates no id tables. Equality compares the
/// order arrays (the lookups are derived).
#[derive(Debug, Clone)]
pub struct IdMaps {
    /// `users[u]` = external id of internal user `u`.
    users: U64Buf,
    /// `items[i]` = external id of internal item `i`.
    items: U64Buf,
    user_lookup: Lookup,
    item_lookup: Lookup,
}

impl PartialEq for IdMaps {
    fn eq(&self, other: &Self) -> bool {
        self.users() == other.users() && self.items() == other.items()
    }
}

impl Eq for IdMaps {}

impl Default for IdMaps {
    fn default() -> Self {
        IdMaps {
            users: U64Buf::default(),
            items: U64Buf::default(),
            user_lookup: Lookup::Hash(HashMap::new()),
            item_lookup: Lookup::Hash(HashMap::new()),
        }
    }
}

fn build_lookup(order: &[u64], what: &str) -> Result<HashMap<u64, u32>, SparseError> {
    if order.len() > u32::MAX as usize {
        return Err(SparseError::Io(format!(
            "{what} id map exceeds u32 addressing ({} entries)",
            order.len()
        )));
    }
    let mut map = HashMap::with_capacity(order.len());
    for (ix, &external) in order.iter().enumerate() {
        if map.insert(external, ix as u32).is_some() {
            return Err(SparseError::Io(format!(
                "duplicate external {what} id {external} in id map"
            )));
        }
    }
    Ok(map)
}

/// Validates a raw table against its order array: every external id must
/// probe back to its internal index, and the occupancy must be exactly
/// `order.len()` (so the table holds no stray entries that could answer
/// unknown ids, and — capacity exceeding occupancy — probes terminate).
fn validate_raw(order: &[u64], table: &RawIdTable, what: &str) -> Result<(), SparseError> {
    let n = order.len();
    if n > 0 && table.keys.len() <= n {
        return Err(SparseError::Io(format!(
            "{what} id table capacity {} cannot hold {n} entries with a free slot",
            table.keys.len()
        )));
    }
    if table.occupancy() != n {
        return Err(SparseError::Io(format!(
            "{what} id table holds {} entries but the order array has {n}",
            table.occupancy()
        )));
    }
    for (ix, &external) in order.iter().enumerate() {
        if table.probe(external) != Some(ix) {
            return Err(SparseError::Io(format!(
                "{what} id table does not resolve external id {external} to index {ix}"
            )));
        }
    }
    Ok(())
}

impl IdMaps {
    /// Builds maps from the external-id tables (`users[u]` = external id of
    /// internal user `u`). Rejects duplicate external ids.
    pub fn new(users: Vec<u64>, items: Vec<u64>) -> Result<Self, SparseError> {
        let user_lookup = build_lookup(&users, "user")?;
        let item_lookup = build_lookup(&items, "item")?;
        Ok(IdMaps {
            users: users.into(),
            items: items.into(),
            user_lookup: Lookup::Hash(user_lookup),
            item_lookup: Lookup::Hash(item_lookup),
        })
    }

    /// Assembles maps from raw, possibly region-borrowed parts — the v3
    /// binary snapshot load path. The tables are fully validated against
    /// the order arrays (occupancy, round-trip of every id, duplicate
    /// rejection falls out of the round-trip check), so corrupt bytes are
    /// an error here rather than wrong answers at request time. On
    /// success, lookups probe the given tables **in place**.
    pub fn from_raw(
        users: U64Buf,
        items: U64Buf,
        user_table: RawIdTable,
        item_table: RawIdTable,
    ) -> Result<Self, SparseError> {
        if users.len() >= RAW_EMPTY as usize || items.len() >= RAW_EMPTY as usize {
            return Err(SparseError::Io("id map exceeds u32 addressing".into()));
        }
        validate_raw(&users, &user_table, "user")?;
        validate_raw(&items, &item_table, "item")?;
        Ok(IdMaps {
            users,
            items,
            user_lookup: Lookup::Raw(user_table),
            item_lookup: Lookup::Raw(item_table),
        })
    }

    /// The raw lookup tables for both axes, building them when the maps
    /// are hash-backed — what the v3 snapshot writer serialises.
    /// Deterministic for a given pair of order arrays.
    pub fn raw_tables(&self) -> (RawIdTable, RawIdTable) {
        let for_axis = |lookup: &Lookup, order: &[u64]| match lookup {
            Lookup::Raw(t) => t.clone(),
            Lookup::Hash(_) => RawIdTable::build(order),
        };
        (
            for_axis(&self.user_lookup, &self.users),
            for_axis(&self.item_lookup, &self.items),
        )
    }

    /// Whether both order arrays and both lookup tables borrow a shared
    /// byte region (the zero-copy snapshot load path) rather than owning
    /// heap allocations.
    pub fn is_shared(&self) -> bool {
        let lookup_shared = |lookup: &Lookup| match lookup {
            Lookup::Hash(_) => false,
            Lookup::Raw(t) => t.is_shared(),
        };
        self.users.is_shared()
            && self.items.is_shared()
            && lookup_shared(&self.user_lookup)
            && lookup_shared(&self.item_lookup)
    }

    /// Internal-constructor used by the readers: the compactors already
    /// hold exactly the lookup tables, so nothing is rebuilt.
    pub(crate) fn from_compactors(users: Compactor, items: Compactor) -> Self {
        IdMaps {
            users: users.order.into(),
            items: items.order.into(),
            user_lookup: Lookup::Hash(users.map),
            item_lookup: Lookup::Hash(items.map),
        }
    }

    /// External user ids in internal order.
    pub fn users(&self) -> &[u64] {
        &self.users
    }

    /// External item ids in internal order.
    pub fn items(&self) -> &[u64] {
        &self.items
    }

    /// Number of mapped users.
    pub fn n_users(&self) -> usize {
        self.users.len()
    }

    /// Number of mapped items.
    pub fn n_items(&self) -> usize {
        self.items.len()
    }

    /// Whether `other` extends this map: every internal index here maps
    /// to the same external id there, on both axes. Delta appends
    /// ([`crate::Dataset::append_deltas`]) preserve exactly this prefix
    /// property, so a serving log that grew past its snapshot is already
    /// aligned to the model's id space and needs no rebuild.
    pub fn is_prefix_of(&self, other: &IdMaps) -> bool {
        other.users().starts_with(self.users()) && other.items().starts_with(self.items())
    }

    /// Internal index of an external user id, if seen. O(1).
    pub fn user_index(&self, external: u64) -> Option<usize> {
        self.user_lookup.get(external)
    }

    /// Internal index of an external item id, if seen. O(1).
    pub fn item_index(&self, external: u64) -> Option<usize> {
        self.item_lookup.get(external)
    }

    /// External id of internal user `u`, if in bounds.
    pub fn external_user(&self, u: usize) -> Option<u64> {
        self.users.get(u).copied()
    }

    /// External id of internal item `i`, if in bounds.
    pub fn external_item(&self, i: usize) -> Option<u64> {
        self.items.get(i).copied()
    }
}

pub(crate) struct Compactor {
    pub(crate) map: HashMap<u64, u32>,
    pub(crate) order: Vec<u64>,
}

impl Compactor {
    fn new() -> Self {
        Compactor {
            map: HashMap::new(),
            order: Vec::new(),
        }
    }

    /// A compactor pre-populated with an existing id order, so further
    /// [`get`](Compactor::get) calls extend it in first-appearance order —
    /// the seed of the delta-merge path ([`crate::DatasetBuilder`]).
    pub(crate) fn seeded(order: &[u64]) -> Self {
        let mut map = HashMap::with_capacity(order.len());
        for (ix, &external) in order.iter().enumerate() {
            map.insert(external, ix as u32);
        }
        Compactor {
            map,
            order: order.to_vec(),
        }
    }

    pub(crate) fn get(&mut self, external: u64) -> u32 {
        if let Some(&ix) = self.map.get(&external) {
            return ix;
        }
        let ix = self.order.len() as u32;
        self.map.insert(external, ix);
        self.order.push(external);
        ix
    }

    pub(crate) fn len(&self) -> usize {
        self.order.len()
    }
}

/// A parsed positive-example stream: the compacted matrix plus id maps.
#[derive(Debug)]
pub struct ParsedInteractions {
    /// The compacted interaction matrix.
    pub matrix: CsrMatrix,
    /// External-id translation tables.
    pub ids: IdMaps,
    /// Records dropped because their rating fell below the threshold.
    pub dropped_below_threshold: usize,
}

impl ParsedInteractions {
    /// Splits into the matrix and the id maps (legacy entry point).
    pub fn into_matrix(self) -> (CsrMatrix, IdMaps) {
        (self.matrix, self.ids)
    }

    /// Finishes parsing into the shared [`Dataset`] abstraction the rest
    /// of the workspace trains, evaluates and serves from.
    pub fn into_dataset(self) -> Dataset {
        Dataset::new(self.matrix, self.ids).expect("reader shapes are consistent")
    }
}

/// Streams edge-list records (`user<sep>item[<sep>rating]`) into `sink`,
/// returning how many records the rating threshold dropped. The shared
/// parsing loop behind the full readers **and** the delta-append path.
fn for_each_record<R, F>(
    reader: R,
    sep: &str,
    rating_threshold: Option<f64>,
    mut sink: F,
) -> Result<usize, SparseError>
where
    R: BufRead,
    F: FnMut(u64, u64) -> Result<(), SparseError>,
{
    let mut dropped = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split(sep);
        let u: u64 = fields
            .next()
            .ok_or_else(|| SparseError::Io(format!("line {}: missing user", lineno + 1)))?
            .trim()
            .parse()
            .map_err(|e| SparseError::Io(format!("line {}: bad user id: {e}", lineno + 1)))?;
        let i: u64 = fields
            .next()
            .ok_or_else(|| SparseError::Io(format!("line {}: missing item", lineno + 1)))?
            .trim()
            .parse()
            .map_err(|e| SparseError::Io(format!("line {}: bad item id: {e}", lineno + 1)))?;
        if let Some(threshold) = rating_threshold {
            let rating: f64 = match fields.next() {
                Some(f) => f.trim().parse().map_err(|e| {
                    SparseError::Io(format!("line {}: bad rating: {e}", lineno + 1))
                })?,
                // No rating column: implicit feedback, always positive.
                None => threshold,
            };
            if rating < threshold {
                dropped += 1;
                continue;
            }
        }
        sink(u, i)?;
    }
    Ok(dropped)
}

fn parse_records<R: BufRead>(
    reader: R,
    sep: &str,
    rating_threshold: Option<f64>,
    chunk_capacity: usize,
) -> Result<ParsedInteractions, SparseError> {
    let mut users = Compactor::new();
    let mut items = Compactor::new();
    let mut staged = StreamingTriplets::with_chunk_capacity(chunk_capacity);
    let dropped = for_each_record(reader, sep, rating_threshold, |u, i| {
        staged.push(users.get(u) as usize, items.get(i) as usize)
    })?;
    let matrix = staged.finish(users.len(), items.len())?;
    Ok(ParsedInteractions {
        matrix,
        ids: IdMaps::from_compactors(users, items),
        dropped_below_threshold: dropped,
    })
}

/// Default staging-chunk capacity for the file readers.
const READER_CHUNK: usize = 1 << 20;

/// Reads a separated-value edge list (`user<sep>item[<sep>rating]`).
///
/// With `rating_threshold = Some(t)` the third column is required to be a
/// rating and records with `rating < t` are dropped (paper: `t = 3.0` for
/// MovieLens and Netflix). With `None`, any third column is ignored and
/// every record is a positive example.
pub fn read_edge_list<P: AsRef<Path>>(
    path: P,
    sep: &str,
    rating_threshold: Option<f64>,
) -> Result<ParsedInteractions, SparseError> {
    let file = std::fs::File::open(path.as_ref())
        .map_err(|e| SparseError::Io(format!("open {}: {e}", path.as_ref().display())))?;
    parse_records(BufReader::new(file), sep, rating_threshold, READER_CHUNK)
}

/// Reads edge-list records from an in-memory string (same semantics as
/// [`read_edge_list`]); the entry point used by tests and doc examples.
pub fn read_edge_list_str(
    data: &str,
    sep: &str,
    rating_threshold: Option<f64>,
) -> Result<ParsedInteractions, SparseError> {
    parse_records(
        BufReader::new(data.as_bytes()),
        sep,
        rating_threshold,
        READER_CHUNK,
    )
}

/// [`read_edge_list_str`] with an explicit staging-chunk capacity —
/// exercises the chunked merge machinery with tiny chunks; the property
/// tests assert the result is identical for every capacity.
pub fn read_edge_list_str_chunked(
    data: &str,
    sep: &str,
    rating_threshold: Option<f64>,
    chunk_capacity: usize,
) -> Result<ParsedInteractions, SparseError> {
    parse_records(
        BufReader::new(data.as_bytes()),
        sep,
        rating_threshold,
        chunk_capacity,
    )
}

/// Streams a delta edge list over an existing dataset through the
/// delta-merge path ([`crate::DatasetBuilder`]): never-seen users/items
/// extend the id space in first-appearance order and the new positives
/// are merged over the existing ones in **one** `O(new + unique)` pass —
/// the base interaction log is not re-read. Same record format and
/// threshold semantics as [`read_edge_list`].
pub fn append_edge_list<P: AsRef<Path>>(
    base: &Dataset,
    path: P,
    sep: &str,
    rating_threshold: Option<f64>,
) -> Result<Dataset, SparseError> {
    let file = std::fs::File::open(path.as_ref())
        .map_err(|e| SparseError::Io(format!("open {}: {e}", path.as_ref().display())))?;
    let mut builder = base.delta_builder();
    for_each_record(BufReader::new(file), sep, rating_threshold, |u, i| {
        builder.push(u, i)
    })?;
    builder.finish()
}

/// [`append_edge_list`] over an in-memory string — tests and doc examples.
pub fn append_edge_list_str(
    base: &Dataset,
    data: &str,
    sep: &str,
    rating_threshold: Option<f64>,
) -> Result<Dataset, SparseError> {
    let mut builder = base.delta_builder();
    for_each_record(BufReader::new(data.as_bytes()), sep, rating_threshold, {
        |u, i| builder.push(u, i)
    })?;
    builder.finish()
}

/// Reads the MovieLens `UserID::MovieID::Rating::Timestamp` format, keeping
/// ratings `>= threshold` as positive examples (paper convention: 3.0).
pub fn read_movielens<P: AsRef<Path>>(
    path: P,
    threshold: f64,
) -> Result<ParsedInteractions, SparseError> {
    read_edge_list(path, "::", Some(threshold))
}

/// Reads a directory of Netflix-prize per-movie files (`mv_*.txt`), each
/// starting with `movie_id:` followed by `customer,rating,date` lines.
/// Ratings `>= threshold` become positives. Streams each file through the
/// chunked builder; nothing holds the raw record list.
pub fn read_netflix_dir<P: AsRef<Path>>(
    dir: P,
    threshold: f64,
) -> Result<ParsedInteractions, SparseError> {
    let mut users = Compactor::new();
    let mut items = Compactor::new();
    let mut staged = StreamingTriplets::with_chunk_capacity(READER_CHUNK);
    let mut dropped = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(dir.as_ref())
        .map_err(|e| SparseError::Io(format!("read dir {}: {e}", dir.as_ref().display())))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().map(|x| x == "txt").unwrap_or(false))
        .collect();
    entries.sort();
    for path in entries {
        let file = std::fs::File::open(&path)
            .map_err(|e| SparseError::Io(format!("open {}: {e}", path.display())))?;
        let mut movie: Option<u64> = None;
        for line in BufReader::new(file).lines() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(stripped) = line.strip_suffix(':') {
                movie = Some(stripped.parse().map_err(|e| {
                    SparseError::Io(format!("{}: bad movie id: {e}", path.display()))
                })?);
                continue;
            }
            let movie = movie.ok_or_else(|| {
                SparseError::Io(format!("{}: rating before movie header", path.display()))
            })?;
            let mut fields = line.split(',');
            let customer: u64 = fields
                .next()
                .ok_or_else(|| SparseError::Io("missing customer".into()))?
                .parse()
                .map_err(|e| SparseError::Io(format!("bad customer id: {e}")))?;
            let rating: f64 = fields
                .next()
                .ok_or_else(|| SparseError::Io("missing rating".into()))?
                .parse()
                .map_err(|e| SparseError::Io(format!("bad rating: {e}")))?;
            if rating >= threshold {
                staged.push(users.get(customer) as usize, items.get(movie) as usize)?;
            } else {
                dropped += 1;
            }
        }
    }
    let matrix = staged.finish(users.order.len(), items.order.len())?;
    Ok(ParsedInteractions {
        matrix,
        ids: IdMaps::from_compactors(users, items),
        dropped_below_threshold: dropped,
    })
}

/// Writes a matrix as a tab-separated edge list (`user\titem`), with internal
/// dense indices. Inverse of [`read_edge_list`] with no rating column.
pub fn write_edge_list<W: Write>(w: &mut W, r: &CsrMatrix) -> Result<(), SparseError> {
    let mut buf = std::io::BufWriter::new(w);
    for (u, i) in r.iter_nnz() {
        writeln!(buf, "{u}\t{i}")?;
    }
    buf.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_roundtrip_via_string() {
        let data = "0\t2\n1\t0\n# comment line\n\n1\t2\n";
        let parsed = read_edge_list_str(data, "\t", None).unwrap();
        let (m, ids) = parsed.into_matrix();
        assert_eq!(m.nnz(), 3);
        assert_eq!(ids.users(), &[0, 1]);
        assert_eq!(ids.items(), &[2, 0]);
        // internal indices are densified: external item 2 -> 0, item 0 -> 1
        assert!(m.contains(0, 0));
        assert!(m.contains(1, 1));
        assert!(m.contains(1, 0));
    }

    #[test]
    fn rating_threshold_filters() {
        let data = "1,10,4\n1,11,2\n2,10,3\n2,12,5\n";
        let parsed = read_edge_list_str(data, ",", Some(3.0)).unwrap();
        assert_eq!(parsed.dropped_below_threshold, 1);
        let (m, ids) = parsed.into_matrix();
        assert_eq!(m.nnz(), 3);
        assert_eq!(ids.n_users(), 2);
        assert_eq!(ids.n_items(), 2, "item 11 never becomes positive");
    }

    #[test]
    fn movielens_format() {
        let dir = std::env::temp_dir().join("ocular_sparse_ml_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ratings.dat");
        std::fs::write(
            &path,
            "1::1193::5::978300760\n1::661::3::978302109\n2::1193::1::978298413\n",
        )
        .unwrap();
        let parsed = read_movielens(&path, 3.0).unwrap();
        assert_eq!(parsed.dropped_below_threshold, 1);
        let (m, ids) = parsed.into_matrix();
        assert_eq!(m.nnz(), 2);
        assert_eq!(ids.users(), &[1]);
        assert_eq!(ids.items(), &[1193, 661]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn netflix_format() {
        let dir = std::env::temp_dir().join("ocular_sparse_nf_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("mv_0000001.txt"),
            "1:\n1488844,3,2005-09-06\n822109,5,2005-05-13\n885013,1,2005-10-19\n",
        )
        .unwrap();
        std::fs::write(dir.join("mv_0000002.txt"), "2:\n1488844,4,2005-09-06\n").unwrap();
        let parsed = read_netflix_dir(&dir, 3.0).unwrap();
        assert_eq!(parsed.dropped_below_threshold, 1);
        let (m, ids) = parsed.into_matrix();
        assert_eq!(m.nnz(), 3);
        assert_eq!(ids.items(), &[1, 2]);
        // customer 1488844 liked both movies
        let u = ids.user_index(1488844).unwrap();
        assert_eq!(m.row_nnz(u), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_then_read() {
        let m = CsrMatrix::from_pairs(3, 3, &[(0, 1), (2, 0), (2, 2)]).unwrap();
        let mut buf: Vec<u8> = Vec::new();
        write_edge_list(&mut buf, &m).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = read_edge_list_str(&text, "\t", None).unwrap();
        let (back, _) = parsed.into_matrix();
        assert_eq!(back.nnz(), m.nnz());
    }

    #[test]
    fn malformed_lines_error() {
        assert!(read_edge_list_str("abc\t1\n", "\t", None).is_err());
        assert!(read_edge_list_str("1\n", "\t", None).is_err());
        assert!(read_edge_list_str("1,2,notarating\n", ",", Some(3.0)).is_err());
    }

    #[test]
    fn missing_rating_column_treated_positive() {
        let parsed = read_edge_list_str("1,2\n3,4\n", ",", Some(3.0)).unwrap();
        assert_eq!(parsed.dropped_below_threshold, 0);
        let (m, _) = parsed.into_matrix();
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn into_dataset_carries_id_maps() {
        let data = "1000\t77\n1000\t78\n2000\t77\n";
        let d = read_edge_list_str(data, "\t", None).unwrap().into_dataset();
        assert_eq!(d.n_users(), 2);
        assert_eq!(d.n_items(), 2);
        assert_eq!(d.user_index(2000), Some(1));
        assert_eq!(d.item_index(78), Some(1));
        assert_eq!(d.external_user(0), 1000);
        assert_eq!(d.external_item(0), 77);
        assert!(d.contains(d.user_index(2000).unwrap(), d.item_index(77).unwrap()));
    }

    #[test]
    fn chunked_reader_matches_default() {
        let mut data = String::new();
        for k in 0..500u64 {
            // duplicate-heavy stream with sparse external ids
            data.push_str(&format!("{}\t{}\n", 10 + (k % 40) * 3, 7 + (k % 23) * 5));
        }
        let full = read_edge_list_str(&data, "\t", None).unwrap();
        for cap in [1usize, 2, 7, 64] {
            let chunked = read_edge_list_str_chunked(&data, "\t", None, cap).unwrap();
            assert_eq!(chunked.matrix, full.matrix, "chunk capacity {cap}");
            assert_eq!(chunked.ids, full.ids);
        }
    }

    #[test]
    fn id_maps_reject_duplicates() {
        assert!(IdMaps::new(vec![1, 2, 1], vec![]).is_err());
        assert!(IdMaps::new(vec![], vec![5, 5]).is_err());
        let ids = IdMaps::new(vec![3, 1], vec![2]).unwrap();
        assert_eq!(ids.user_index(1), Some(1));
        assert_eq!(ids.external_user(0), Some(3));
        assert_eq!(ids.external_user(9), None);
    }

    #[test]
    fn raw_tables_round_trip_lookups() {
        let users: Vec<u64> = (0..500).map(|u| 1_000 + 7 * u).collect();
        let items: Vec<u64> = (0..200).map(|i| 900 + 3 * i).collect();
        let ids = IdMaps::new(users.clone(), items.clone()).unwrap();
        let (ut, it) = ids.raw_tables();
        // deterministic: building twice gives identical bytes
        let (ut2, _) = ids.raw_tables();
        assert_eq!(ut.keys(), ut2.keys());
        assert_eq!(ut.vals(), ut2.vals());
        let raw = IdMaps::from_raw(users.clone().into(), items.clone().into(), ut, it).unwrap();
        assert_eq!(raw, ids);
        for (u, &external) in users.iter().enumerate() {
            assert_eq!(raw.user_index(external), Some(u));
        }
        for (i, &external) in items.iter().enumerate() {
            assert_eq!(raw.item_index(external), Some(i));
        }
        assert_eq!(raw.user_index(999), None);
        assert_eq!(raw.item_index(2), None);
        // built in memory — nothing borrows a region
        assert!(!raw.is_shared());
    }

    #[test]
    fn raw_table_empty_axis() {
        let ids = IdMaps::new(vec![], vec![]).unwrap();
        let (ut, it) = ids.raw_tables();
        assert!(ut.keys().is_empty());
        let raw = IdMaps::from_raw(U64Buf::default(), U64Buf::default(), ut, it).unwrap();
        assert_eq!(raw.user_index(0), None);
    }

    #[test]
    fn corrupt_raw_tables_rejected() {
        let users: Vec<u64> = vec![10, 20, 30];
        let items: Vec<u64> = vec![5];
        let ids = IdMaps::new(users.clone(), items.clone()).unwrap();
        let (ut, it) = ids.raw_tables();

        // a stray extra entry (occupancy mismatch)
        let mut keys = ut.keys().to_vec();
        let mut vals = ut.vals().to_vec();
        let empty_slot = vals.iter().position(|&v| v == u32::MAX).unwrap();
        keys[empty_slot] = 77;
        vals[empty_slot] = 0;
        let tampered = RawIdTable::from_parts(keys.into(), vals.into()).unwrap();
        assert!(IdMaps::from_raw(
            users.clone().into(),
            items.clone().into(),
            tampered,
            it.clone()
        )
        .is_err());

        // a flipped value (wrong index for an id)
        let keys = ut.keys().to_vec();
        let mut vals = ut.vals().to_vec();
        let full_slot = vals.iter().position(|&v| v != u32::MAX).unwrap();
        vals[full_slot] = (vals[full_slot] + 1) % 3;
        let tampered = RawIdTable::from_parts(keys.into(), vals.into()).unwrap();
        assert!(IdMaps::from_raw(
            users.clone().into(),
            items.clone().into(),
            tampered,
            it.clone()
        )
        .is_err());

        // non-power-of-two capacity
        let mut keys = ut.keys().to_vec();
        let mut vals = ut.vals().to_vec();
        keys.push(0);
        vals.push(u32::MAX);
        assert!(RawIdTable::from_parts(keys.into(), vals.into()).is_err());

        // capacity too small to terminate probes
        let tiny = RawIdTable::from_parts(vec![10, 20].into(), vec![0, 1].into()).unwrap();
        assert!(IdMaps::from_raw(vec![10, 20].into(), items.into(), tiny, it).is_err());

        // duplicate external ids cannot round-trip
        let dup_order: Vec<u64> = vec![10, 10];
        let table = RawIdTable::build(&dup_order);
        assert!(IdMaps::from_raw(
            dup_order.into(),
            vec![5].into(),
            table,
            RawIdTable::build(&[5])
        )
        .is_err());
    }
}
