//! Readers and writers for interaction data — streaming, chunked, and
//! id-mapping.
//!
//! Three on-disk formats are supported, covering the paper's public datasets
//! so that users with the real files can reproduce the original numbers:
//!
//! * **Edge list / CSV** — one `user<sep>item[<sep>rating]` record per line
//!   ([`read_edge_list`]); with a rating column, records are kept only if
//!   `rating >= threshold` (the paper keeps MovieLens/Netflix ratings ≥ 3);
//! * **MovieLens `::`** — `UserID::MovieID::Rating::Timestamp`
//!   ([`read_movielens`]);
//! * **Netflix** — per-movie files whose first line is `movie_id:` followed
//!   by `customer,rating,date` lines ([`read_netflix_dir`]).
//!
//! All readers compact arbitrary (sparse, 1-based, hash-like) external ids
//! into dense 0-based indices and return the [`IdMaps`] needed to translate
//! recommendations back to external ids. Parsing is **streaming**: records
//! flow one at a time into a [`crate::StreamingTriplets`] chunked builder,
//! so a repeat-heavy interaction log never materialises its raw record
//! list — peak memory is `O(unique pairs + entities + chunk)`.

use crate::{CsrMatrix, Dataset, SparseError, StreamingTriplets};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// Mapping between external (file) ids and the dense internal indices,
/// with O(1) hash-backed lookups in both directions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdMaps {
    /// `users[u]` = external id of internal user `u`.
    users: Vec<u64>,
    /// `items[i]` = external id of internal item `i`.
    items: Vec<u64>,
    user_lookup: HashMap<u64, u32>,
    item_lookup: HashMap<u64, u32>,
}

fn build_lookup(order: &[u64], what: &str) -> Result<HashMap<u64, u32>, SparseError> {
    if order.len() > u32::MAX as usize {
        return Err(SparseError::Io(format!(
            "{what} id map exceeds u32 addressing ({} entries)",
            order.len()
        )));
    }
    let mut map = HashMap::with_capacity(order.len());
    for (ix, &external) in order.iter().enumerate() {
        if map.insert(external, ix as u32).is_some() {
            return Err(SparseError::Io(format!(
                "duplicate external {what} id {external} in id map"
            )));
        }
    }
    Ok(map)
}

impl IdMaps {
    /// Builds maps from the external-id tables (`users[u]` = external id of
    /// internal user `u`). Rejects duplicate external ids.
    pub fn new(users: Vec<u64>, items: Vec<u64>) -> Result<Self, SparseError> {
        let user_lookup = build_lookup(&users, "user")?;
        let item_lookup = build_lookup(&items, "item")?;
        Ok(IdMaps {
            users,
            items,
            user_lookup,
            item_lookup,
        })
    }

    /// Internal-constructor used by the readers: the compactors already
    /// hold exactly the lookup tables, so nothing is rebuilt.
    fn from_compactors(users: Compactor, items: Compactor) -> Self {
        IdMaps {
            users: users.order,
            items: items.order,
            user_lookup: users.map,
            item_lookup: items.map,
        }
    }

    /// External user ids in internal order.
    pub fn users(&self) -> &[u64] {
        &self.users
    }

    /// External item ids in internal order.
    pub fn items(&self) -> &[u64] {
        &self.items
    }

    /// Number of mapped users.
    pub fn n_users(&self) -> usize {
        self.users.len()
    }

    /// Number of mapped items.
    pub fn n_items(&self) -> usize {
        self.items.len()
    }

    /// Internal index of an external user id, if seen. O(1).
    pub fn user_index(&self, external: u64) -> Option<usize> {
        self.user_lookup.get(&external).map(|&ix| ix as usize)
    }

    /// Internal index of an external item id, if seen. O(1).
    pub fn item_index(&self, external: u64) -> Option<usize> {
        self.item_lookup.get(&external).map(|&ix| ix as usize)
    }

    /// External id of internal user `u`, if in bounds.
    pub fn external_user(&self, u: usize) -> Option<u64> {
        self.users.get(u).copied()
    }

    /// External id of internal item `i`, if in bounds.
    pub fn external_item(&self, i: usize) -> Option<u64> {
        self.items.get(i).copied()
    }
}

struct Compactor {
    map: HashMap<u64, u32>,
    order: Vec<u64>,
}

impl Compactor {
    fn new() -> Self {
        Compactor {
            map: HashMap::new(),
            order: Vec::new(),
        }
    }

    fn get(&mut self, external: u64) -> u32 {
        if let Some(&ix) = self.map.get(&external) {
            return ix;
        }
        let ix = self.order.len() as u32;
        self.map.insert(external, ix);
        self.order.push(external);
        ix
    }
}

/// A parsed positive-example stream: the compacted matrix plus id maps.
#[derive(Debug)]
pub struct ParsedInteractions {
    /// The compacted interaction matrix.
    pub matrix: CsrMatrix,
    /// External-id translation tables.
    pub ids: IdMaps,
    /// Records dropped because their rating fell below the threshold.
    pub dropped_below_threshold: usize,
}

impl ParsedInteractions {
    /// Splits into the matrix and the id maps (legacy entry point).
    pub fn into_matrix(self) -> (CsrMatrix, IdMaps) {
        (self.matrix, self.ids)
    }

    /// Finishes parsing into the shared [`Dataset`] abstraction the rest
    /// of the workspace trains, evaluates and serves from.
    pub fn into_dataset(self) -> Dataset {
        Dataset::new(self.matrix, self.ids).expect("reader shapes are consistent")
    }
}

fn parse_records<R: BufRead>(
    reader: R,
    sep: &str,
    rating_threshold: Option<f64>,
    chunk_capacity: usize,
) -> Result<ParsedInteractions, SparseError> {
    let mut users = Compactor::new();
    let mut items = Compactor::new();
    let mut staged = StreamingTriplets::with_chunk_capacity(chunk_capacity);
    let mut dropped = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split(sep);
        let u: u64 = fields
            .next()
            .ok_or_else(|| SparseError::Io(format!("line {}: missing user", lineno + 1)))?
            .trim()
            .parse()
            .map_err(|e| SparseError::Io(format!("line {}: bad user id: {e}", lineno + 1)))?;
        let i: u64 = fields
            .next()
            .ok_or_else(|| SparseError::Io(format!("line {}: missing item", lineno + 1)))?
            .trim()
            .parse()
            .map_err(|e| SparseError::Io(format!("line {}: bad item id: {e}", lineno + 1)))?;
        if let Some(threshold) = rating_threshold {
            let rating: f64 = match fields.next() {
                Some(f) => f.trim().parse().map_err(|e| {
                    SparseError::Io(format!("line {}: bad rating: {e}", lineno + 1))
                })?,
                // No rating column: implicit feedback, always positive.
                None => threshold,
            };
            if rating < threshold {
                dropped += 1;
                continue;
            }
        }
        staged.push(users.get(u) as usize, items.get(i) as usize)?;
    }
    let matrix = staged.finish(users.order.len(), items.order.len())?;
    Ok(ParsedInteractions {
        matrix,
        ids: IdMaps::from_compactors(users, items),
        dropped_below_threshold: dropped,
    })
}

/// Default staging-chunk capacity for the file readers.
const READER_CHUNK: usize = 1 << 20;

/// Reads a separated-value edge list (`user<sep>item[<sep>rating]`).
///
/// With `rating_threshold = Some(t)` the third column is required to be a
/// rating and records with `rating < t` are dropped (paper: `t = 3.0` for
/// MovieLens and Netflix). With `None`, any third column is ignored and
/// every record is a positive example.
pub fn read_edge_list<P: AsRef<Path>>(
    path: P,
    sep: &str,
    rating_threshold: Option<f64>,
) -> Result<ParsedInteractions, SparseError> {
    let file = std::fs::File::open(path.as_ref())
        .map_err(|e| SparseError::Io(format!("open {}: {e}", path.as_ref().display())))?;
    parse_records(BufReader::new(file), sep, rating_threshold, READER_CHUNK)
}

/// Reads edge-list records from an in-memory string (same semantics as
/// [`read_edge_list`]); the entry point used by tests and doc examples.
pub fn read_edge_list_str(
    data: &str,
    sep: &str,
    rating_threshold: Option<f64>,
) -> Result<ParsedInteractions, SparseError> {
    parse_records(
        BufReader::new(data.as_bytes()),
        sep,
        rating_threshold,
        READER_CHUNK,
    )
}

/// [`read_edge_list_str`] with an explicit staging-chunk capacity —
/// exercises the chunked merge machinery with tiny chunks; the property
/// tests assert the result is identical for every capacity.
pub fn read_edge_list_str_chunked(
    data: &str,
    sep: &str,
    rating_threshold: Option<f64>,
    chunk_capacity: usize,
) -> Result<ParsedInteractions, SparseError> {
    parse_records(
        BufReader::new(data.as_bytes()),
        sep,
        rating_threshold,
        chunk_capacity,
    )
}

/// Reads the MovieLens `UserID::MovieID::Rating::Timestamp` format, keeping
/// ratings `>= threshold` as positive examples (paper convention: 3.0).
pub fn read_movielens<P: AsRef<Path>>(
    path: P,
    threshold: f64,
) -> Result<ParsedInteractions, SparseError> {
    read_edge_list(path, "::", Some(threshold))
}

/// Reads a directory of Netflix-prize per-movie files (`mv_*.txt`), each
/// starting with `movie_id:` followed by `customer,rating,date` lines.
/// Ratings `>= threshold` become positives. Streams each file through the
/// chunked builder; nothing holds the raw record list.
pub fn read_netflix_dir<P: AsRef<Path>>(
    dir: P,
    threshold: f64,
) -> Result<ParsedInteractions, SparseError> {
    let mut users = Compactor::new();
    let mut items = Compactor::new();
    let mut staged = StreamingTriplets::with_chunk_capacity(READER_CHUNK);
    let mut dropped = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(dir.as_ref())
        .map_err(|e| SparseError::Io(format!("read dir {}: {e}", dir.as_ref().display())))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().map(|x| x == "txt").unwrap_or(false))
        .collect();
    entries.sort();
    for path in entries {
        let file = std::fs::File::open(&path)
            .map_err(|e| SparseError::Io(format!("open {}: {e}", path.display())))?;
        let mut movie: Option<u64> = None;
        for line in BufReader::new(file).lines() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(stripped) = line.strip_suffix(':') {
                movie = Some(stripped.parse().map_err(|e| {
                    SparseError::Io(format!("{}: bad movie id: {e}", path.display()))
                })?);
                continue;
            }
            let movie = movie.ok_or_else(|| {
                SparseError::Io(format!("{}: rating before movie header", path.display()))
            })?;
            let mut fields = line.split(',');
            let customer: u64 = fields
                .next()
                .ok_or_else(|| SparseError::Io("missing customer".into()))?
                .parse()
                .map_err(|e| SparseError::Io(format!("bad customer id: {e}")))?;
            let rating: f64 = fields
                .next()
                .ok_or_else(|| SparseError::Io("missing rating".into()))?
                .parse()
                .map_err(|e| SparseError::Io(format!("bad rating: {e}")))?;
            if rating >= threshold {
                staged.push(users.get(customer) as usize, items.get(movie) as usize)?;
            } else {
                dropped += 1;
            }
        }
    }
    let matrix = staged.finish(users.order.len(), items.order.len())?;
    Ok(ParsedInteractions {
        matrix,
        ids: IdMaps::from_compactors(users, items),
        dropped_below_threshold: dropped,
    })
}

/// Writes a matrix as a tab-separated edge list (`user\titem`), with internal
/// dense indices. Inverse of [`read_edge_list`] with no rating column.
pub fn write_edge_list<W: Write>(w: &mut W, r: &CsrMatrix) -> Result<(), SparseError> {
    let mut buf = std::io::BufWriter::new(w);
    for (u, i) in r.iter_nnz() {
        writeln!(buf, "{u}\t{i}")?;
    }
    buf.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_roundtrip_via_string() {
        let data = "0\t2\n1\t0\n# comment line\n\n1\t2\n";
        let parsed = read_edge_list_str(data, "\t", None).unwrap();
        let (m, ids) = parsed.into_matrix();
        assert_eq!(m.nnz(), 3);
        assert_eq!(ids.users(), &[0, 1]);
        assert_eq!(ids.items(), &[2, 0]);
        // internal indices are densified: external item 2 -> 0, item 0 -> 1
        assert!(m.contains(0, 0));
        assert!(m.contains(1, 1));
        assert!(m.contains(1, 0));
    }

    #[test]
    fn rating_threshold_filters() {
        let data = "1,10,4\n1,11,2\n2,10,3\n2,12,5\n";
        let parsed = read_edge_list_str(data, ",", Some(3.0)).unwrap();
        assert_eq!(parsed.dropped_below_threshold, 1);
        let (m, ids) = parsed.into_matrix();
        assert_eq!(m.nnz(), 3);
        assert_eq!(ids.n_users(), 2);
        assert_eq!(ids.n_items(), 2, "item 11 never becomes positive");
    }

    #[test]
    fn movielens_format() {
        let dir = std::env::temp_dir().join("ocular_sparse_ml_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ratings.dat");
        std::fs::write(
            &path,
            "1::1193::5::978300760\n1::661::3::978302109\n2::1193::1::978298413\n",
        )
        .unwrap();
        let parsed = read_movielens(&path, 3.0).unwrap();
        assert_eq!(parsed.dropped_below_threshold, 1);
        let (m, ids) = parsed.into_matrix();
        assert_eq!(m.nnz(), 2);
        assert_eq!(ids.users(), &[1]);
        assert_eq!(ids.items(), &[1193, 661]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn netflix_format() {
        let dir = std::env::temp_dir().join("ocular_sparse_nf_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("mv_0000001.txt"),
            "1:\n1488844,3,2005-09-06\n822109,5,2005-05-13\n885013,1,2005-10-19\n",
        )
        .unwrap();
        std::fs::write(dir.join("mv_0000002.txt"), "2:\n1488844,4,2005-09-06\n").unwrap();
        let parsed = read_netflix_dir(&dir, 3.0).unwrap();
        assert_eq!(parsed.dropped_below_threshold, 1);
        let (m, ids) = parsed.into_matrix();
        assert_eq!(m.nnz(), 3);
        assert_eq!(ids.items(), &[1, 2]);
        // customer 1488844 liked both movies
        let u = ids.user_index(1488844).unwrap();
        assert_eq!(m.row_nnz(u), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_then_read() {
        let m = CsrMatrix::from_pairs(3, 3, &[(0, 1), (2, 0), (2, 2)]).unwrap();
        let mut buf: Vec<u8> = Vec::new();
        write_edge_list(&mut buf, &m).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = read_edge_list_str(&text, "\t", None).unwrap();
        let (back, _) = parsed.into_matrix();
        assert_eq!(back.nnz(), m.nnz());
    }

    #[test]
    fn malformed_lines_error() {
        assert!(read_edge_list_str("abc\t1\n", "\t", None).is_err());
        assert!(read_edge_list_str("1\n", "\t", None).is_err());
        assert!(read_edge_list_str("1,2,notarating\n", ",", Some(3.0)).is_err());
    }

    #[test]
    fn missing_rating_column_treated_positive() {
        let parsed = read_edge_list_str("1,2\n3,4\n", ",", Some(3.0)).unwrap();
        assert_eq!(parsed.dropped_below_threshold, 0);
        let (m, _) = parsed.into_matrix();
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn into_dataset_carries_id_maps() {
        let data = "1000\t77\n1000\t78\n2000\t77\n";
        let d = read_edge_list_str(data, "\t", None).unwrap().into_dataset();
        assert_eq!(d.n_users(), 2);
        assert_eq!(d.n_items(), 2);
        assert_eq!(d.user_index(2000), Some(1));
        assert_eq!(d.item_index(78), Some(1));
        assert_eq!(d.external_user(0), 1000);
        assert_eq!(d.external_item(0), 77);
        assert!(d.contains(d.user_index(2000).unwrap(), d.item_index(77).unwrap()));
    }

    #[test]
    fn chunked_reader_matches_default() {
        let mut data = String::new();
        for k in 0..500u64 {
            // duplicate-heavy stream with sparse external ids
            data.push_str(&format!("{}\t{}\n", 10 + (k % 40) * 3, 7 + (k % 23) * 5));
        }
        let full = read_edge_list_str(&data, "\t", None).unwrap();
        for cap in [1usize, 2, 7, 64] {
            let chunked = read_edge_list_str_chunked(&data, "\t", None, cap).unwrap();
            assert_eq!(chunked.matrix, full.matrix, "chunk capacity {cap}");
            assert_eq!(chunked.ids, full.ids);
        }
    }

    #[test]
    fn id_maps_reject_duplicates() {
        assert!(IdMaps::new(vec![1, 2, 1], vec![]).is_err());
        assert!(IdMaps::new(vec![], vec![5, 5]).is_err());
        let ids = IdMaps::new(vec![3, 1], vec![2]).unwrap();
        assert_eq!(ids.user_index(1), Some(1));
        assert_eq!(ids.external_user(0), Some(3));
        assert_eq!(ids.external_user(9), None);
    }
}
