//! Readers and writers for interaction data.
//!
//! Three on-disk formats are supported, covering the paper's public datasets
//! so that users with the real files can reproduce the original numbers:
//!
//! * **Edge list / CSV** — one `user<sep>item[<sep>rating]` record per line
//!   ([`read_edge_list`]); with a rating column, records are kept only if
//!   `rating >= threshold` (the paper keeps MovieLens/Netflix ratings ≥ 3);
//! * **MovieLens `::`** — `UserID::MovieID::Rating::Timestamp`
//!   ([`read_movielens`]);
//! * **Netflix** — per-movie files whose first line is `movie_id:` followed
//!   by `customer,rating,date` lines ([`read_netflix_dir`]).
//!
//! All readers compact arbitrary (sparse, 1-based, hash-like) external ids
//! into dense 0-based indices and return the [`IdMaps`] needed to translate
//! recommendations back to external ids.

use crate::{CsrMatrix, SparseError, Triplets};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// Mapping between external (file) ids and the dense internal indices.
#[derive(Debug, Clone, Default)]
pub struct IdMaps {
    /// `users[u]` = external id of internal user `u`.
    pub users: Vec<u64>,
    /// `items[i]` = external id of internal item `i`.
    pub items: Vec<u64>,
}

impl IdMaps {
    /// Internal index of an external user id, if seen.
    pub fn user_index(&self, external: u64) -> Option<usize> {
        self.users.iter().position(|&e| e == external)
    }

    /// Internal index of an external item id, if seen.
    pub fn item_index(&self, external: u64) -> Option<usize> {
        self.items.iter().position(|&e| e == external)
    }
}

struct Compactor {
    map: HashMap<u64, u32>,
    order: Vec<u64>,
}

impl Compactor {
    fn new() -> Self {
        Compactor {
            map: HashMap::new(),
            order: Vec::new(),
        }
    }

    fn get(&mut self, external: u64) -> u32 {
        if let Some(&ix) = self.map.get(&external) {
            return ix;
        }
        let ix = self.order.len() as u32;
        self.map.insert(external, ix);
        self.order.push(external);
        ix
    }
}

/// A parsed positive-example stream plus id maps, before CSR conversion.
#[derive(Debug)]
pub struct ParsedInteractions {
    /// Staged positive examples with dense indices.
    pub triplets: Triplets,
    /// External-id translation tables.
    pub ids: IdMaps,
    /// Records dropped because their rating fell below the threshold.
    pub dropped_below_threshold: usize,
}

impl ParsedInteractions {
    /// Finishes parsing: converts to CSR.
    pub fn into_matrix(self) -> (CsrMatrix, IdMaps) {
        (self.triplets.into_csr(), self.ids)
    }
}

fn parse_records<R: BufRead>(
    reader: R,
    sep: &str,
    rating_threshold: Option<f64>,
) -> Result<ParsedInteractions, SparseError> {
    let mut users = Compactor::new();
    let mut items = Compactor::new();
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut dropped = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split(sep);
        let u: u64 = fields
            .next()
            .ok_or_else(|| SparseError::Io(format!("line {}: missing user", lineno + 1)))?
            .trim()
            .parse()
            .map_err(|e| SparseError::Io(format!("line {}: bad user id: {e}", lineno + 1)))?;
        let i: u64 = fields
            .next()
            .ok_or_else(|| SparseError::Io(format!("line {}: missing item", lineno + 1)))?
            .trim()
            .parse()
            .map_err(|e| SparseError::Io(format!("line {}: bad item id: {e}", lineno + 1)))?;
        if let Some(threshold) = rating_threshold {
            let rating: f64 = match fields.next() {
                Some(f) => f.trim().parse().map_err(|e| {
                    SparseError::Io(format!("line {}: bad rating: {e}", lineno + 1))
                })?,
                // No rating column: implicit feedback, always positive.
                None => threshold,
            };
            if rating < threshold {
                dropped += 1;
                continue;
            }
        }
        pairs.push((users.get(u), items.get(i)));
    }
    let mut triplets = Triplets::with_capacity(users.order.len(), items.order.len(), pairs.len());
    for (u, i) in pairs {
        triplets
            .push(u as usize, i as usize)
            .expect("compacted indices are in bounds");
    }
    Ok(ParsedInteractions {
        triplets,
        ids: IdMaps {
            users: users.order,
            items: items.order,
        },
        dropped_below_threshold: dropped,
    })
}

/// Reads a separated-value edge list (`user<sep>item[<sep>rating]`).
///
/// With `rating_threshold = Some(t)` the third column is required to be a
/// rating and records with `rating < t` are dropped (paper: `t = 3.0` for
/// MovieLens and Netflix). With `None`, any third column is ignored and
/// every record is a positive example.
pub fn read_edge_list<P: AsRef<Path>>(
    path: P,
    sep: &str,
    rating_threshold: Option<f64>,
) -> Result<ParsedInteractions, SparseError> {
    let file = std::fs::File::open(path.as_ref())
        .map_err(|e| SparseError::Io(format!("open {}: {e}", path.as_ref().display())))?;
    parse_records(BufReader::new(file), sep, rating_threshold)
}

/// Reads edge-list records from an in-memory string (same semantics as
/// [`read_edge_list`]); the entry point used by tests and doc examples.
pub fn read_edge_list_str(
    data: &str,
    sep: &str,
    rating_threshold: Option<f64>,
) -> Result<ParsedInteractions, SparseError> {
    parse_records(BufReader::new(data.as_bytes()), sep, rating_threshold)
}

/// Reads the MovieLens `UserID::MovieID::Rating::Timestamp` format, keeping
/// ratings `>= threshold` as positive examples (paper convention: 3.0).
pub fn read_movielens<P: AsRef<Path>>(
    path: P,
    threshold: f64,
) -> Result<ParsedInteractions, SparseError> {
    read_edge_list(path, "::", Some(threshold))
}

/// Reads a directory of Netflix-prize per-movie files (`mv_*.txt`), each
/// starting with `movie_id:` followed by `customer,rating,date` lines.
/// Ratings `>= threshold` become positives.
pub fn read_netflix_dir<P: AsRef<Path>>(
    dir: P,
    threshold: f64,
) -> Result<ParsedInteractions, SparseError> {
    let mut users = Compactor::new();
    let mut items = Compactor::new();
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut dropped = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(dir.as_ref())
        .map_err(|e| SparseError::Io(format!("read dir {}: {e}", dir.as_ref().display())))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().map(|x| x == "txt").unwrap_or(false))
        .collect();
    entries.sort();
    for path in entries {
        let file = std::fs::File::open(&path)
            .map_err(|e| SparseError::Io(format!("open {}: {e}", path.display())))?;
        let mut movie: Option<u64> = None;
        for line in BufReader::new(file).lines() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(stripped) = line.strip_suffix(':') {
                movie = Some(stripped.parse().map_err(|e| {
                    SparseError::Io(format!("{}: bad movie id: {e}", path.display()))
                })?);
                continue;
            }
            let movie = movie.ok_or_else(|| {
                SparseError::Io(format!("{}: rating before movie header", path.display()))
            })?;
            let mut fields = line.split(',');
            let customer: u64 = fields
                .next()
                .ok_or_else(|| SparseError::Io("missing customer".into()))?
                .parse()
                .map_err(|e| SparseError::Io(format!("bad customer id: {e}")))?;
            let rating: f64 = fields
                .next()
                .ok_or_else(|| SparseError::Io("missing rating".into()))?
                .parse()
                .map_err(|e| SparseError::Io(format!("bad rating: {e}")))?;
            if rating >= threshold {
                pairs.push((users.get(customer), items.get(movie)));
            } else {
                dropped += 1;
            }
        }
    }
    let mut triplets = Triplets::with_capacity(users.order.len(), items.order.len(), pairs.len());
    for (u, i) in pairs {
        triplets
            .push(u as usize, i as usize)
            .expect("compacted indices are in bounds");
    }
    Ok(ParsedInteractions {
        triplets,
        ids: IdMaps {
            users: users.order,
            items: items.order,
        },
        dropped_below_threshold: dropped,
    })
}

/// Writes a matrix as a tab-separated edge list (`user\titem`), with internal
/// dense indices. Inverse of [`read_edge_list`] with no rating column.
pub fn write_edge_list<W: Write>(w: &mut W, r: &CsrMatrix) -> Result<(), SparseError> {
    let mut buf = std::io::BufWriter::new(w);
    for (u, i) in r.iter_nnz() {
        writeln!(buf, "{u}\t{i}")?;
    }
    buf.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_roundtrip_via_string() {
        let data = "0\t2\n1\t0\n# comment line\n\n1\t2\n";
        let parsed = read_edge_list_str(data, "\t", None).unwrap();
        let (m, ids) = parsed.into_matrix();
        assert_eq!(m.nnz(), 3);
        assert_eq!(ids.users, vec![0, 1]);
        assert_eq!(ids.items, vec![2, 0]);
        // internal indices are densified: external item 2 -> 0, item 0 -> 1
        assert!(m.contains(0, 0));
        assert!(m.contains(1, 1));
        assert!(m.contains(1, 0));
    }

    #[test]
    fn rating_threshold_filters() {
        let data = "1,10,4\n1,11,2\n2,10,3\n2,12,5\n";
        let parsed = read_edge_list_str(data, ",", Some(3.0)).unwrap();
        assert_eq!(parsed.dropped_below_threshold, 1);
        let (m, ids) = parsed.into_matrix();
        assert_eq!(m.nnz(), 3);
        assert_eq!(ids.users.len(), 2);
        assert_eq!(ids.items.len(), 2, "item 11 never becomes positive");
    }

    #[test]
    fn movielens_format() {
        let dir = std::env::temp_dir().join("ocular_sparse_ml_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ratings.dat");
        std::fs::write(
            &path,
            "1::1193::5::978300760\n1::661::3::978302109\n2::1193::1::978298413\n",
        )
        .unwrap();
        let parsed = read_movielens(&path, 3.0).unwrap();
        assert_eq!(parsed.dropped_below_threshold, 1);
        let (m, ids) = parsed.into_matrix();
        assert_eq!(m.nnz(), 2);
        assert_eq!(ids.users, vec![1]);
        assert_eq!(ids.items, vec![1193, 661]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn netflix_format() {
        let dir = std::env::temp_dir().join("ocular_sparse_nf_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("mv_0000001.txt"),
            "1:\n1488844,3,2005-09-06\n822109,5,2005-05-13\n885013,1,2005-10-19\n",
        )
        .unwrap();
        std::fs::write(dir.join("mv_0000002.txt"), "2:\n1488844,4,2005-09-06\n").unwrap();
        let parsed = read_netflix_dir(&dir, 3.0).unwrap();
        assert_eq!(parsed.dropped_below_threshold, 1);
        let (m, ids) = parsed.into_matrix();
        assert_eq!(m.nnz(), 3);
        assert_eq!(ids.items, vec![1, 2]);
        // customer 1488844 liked both movies
        let u = ids.user_index(1488844).unwrap();
        assert_eq!(m.row_nnz(u), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_then_read() {
        let m = CsrMatrix::from_pairs(3, 3, &[(0, 1), (2, 0), (2, 2)]).unwrap();
        let mut buf: Vec<u8> = Vec::new();
        write_edge_list(&mut buf, &m).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = read_edge_list_str(&text, "\t", None).unwrap();
        let (back, _) = parsed.into_matrix();
        assert_eq!(back.nnz(), m.nnz());
    }

    #[test]
    fn malformed_lines_error() {
        assert!(read_edge_list_str("abc\t1\n", "\t", None).is_err());
        assert!(read_edge_list_str("1\n", "\t", None).is_err());
        assert!(read_edge_list_str("1,2,notarating\n", ",", Some(3.0)).is_err());
    }

    #[test]
    fn missing_rating_column_treated_positive() {
        let parsed = read_edge_list_str("1,2\n3,4\n", ",", Some(3.0)).unwrap();
        assert_eq!(parsed.dropped_below_threshold, 0);
        let (m, _) = parsed.into_matrix();
        assert_eq!(m.nnz(), 2);
    }
}
