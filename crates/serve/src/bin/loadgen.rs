//! Closed-loop load generator for the TCP serving tier.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7878 \
//!         [--connections 8] [--seconds 5] [--m 10] [--users 64]
//! ```
//!
//! Each connection drives keep-alive `POST /recommend` requests
//! back-to-back (the next request leaves only after the previous response
//! lands), so the reported throughput is the server's sustained service
//! rate and the latency quantiles are honest round trips, free of
//! coordinated omission. The report prints as one JSON object on stdout:
//!
//! ```text
//! {"requests":123456,"ok":123456,"shed":0,"errors":0,"seconds":5.0,
//!  "throughput_rps":24691.2,"p50_us":301.0,"p90_us":377.0,
//!  "p99_us":522.0,"max_us":4210.0}
//! ```
//!
//! `shed` counts HTTP 429 admission-control rejections — a loaded but
//! healthy server sheds rather than stalls; `errors` counts everything
//! else (transport failures, non-200/429 statuses).

use ocular_serve::net::loadgen::{run, LoadgenConfig};
use std::process::ExitCode;
use std::time::Duration;

fn flag(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn num<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    flag(args, key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(addr) = flag(&args, "--addr") else {
        eprintln!("usage: loadgen --addr <host:port> [--connections 8] [--seconds 5] [--m 10] [--users 64]");
        return ExitCode::FAILURE;
    };
    let cfg = LoadgenConfig {
        connections: num(&args, "--connections", 8usize).max(1),
        duration: Duration::from_secs_f64(num(&args, "--seconds", 5.0f64).max(0.1)),
        m: num(&args, "--m", 10usize),
        users: num(&args, "--users", 64usize).max(1),
        path: flag(&args, "--path").unwrap_or_else(|| "/recommend".into()),
    };
    match run(&addr, &cfg) {
        Ok(report) => {
            println!("{}", report.to_json());
            if report.requests == 0 {
                eprintln!("loadgen: no responses received from {addr}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}
