//! JSON-lines serving CLI — polymorphic over model kinds.
//!
//! Two modes:
//!
//! **Train & snapshot** — fit a model on an edge list and write a
//! kind-tagged serving snapshot:
//!
//! ```text
//! serve --train data.tsv --snapshot model.snap \
//!       [--format text|binary] \
//!       [--algo ocular|wals|bpr|user-knn|item-knn|popularity] \
//!       [--k 8] [--lambda 0.5] [--iters 60] [--seed 0] [--sep '\t'] \
//!       [--rel 0.5] [--floor 100]        (ocular index build) \
//!       [--b 0.01] [--lr 0.05]           (wals / bpr)
//! ```
//!
//! `--format binary` writes the mmap-able `ocular-snapshot v3` container
//! (`--format text` the v2 text envelope, the default for
//! compatibility). Serving sniffs the snapshot's magic bytes, so either
//! format loads transparently — v3 via a zero-copy memory mapping
//! (start-up cost independent of model size, page cache shared across
//! serve processes), v1/v2 via the line-oriented parser. The measured
//! load time is reported on stderr as `snapshot_load_seconds=…`.
//!
//! `--k` is the latent dimensionality for the factor models and the
//! neighbourhood size for the kNN variants; `--iters` maps to each
//! fitter's sweep/epoch knob; `--lambda` is each model's own
//! regularization (defaults differ per algorithm).
//!
//! **Serve** — load a snapshot of *any* kind plus the training
//! interactions (for owned-item exclusion), read one JSON request per
//! stdin line, write one JSON response per stdout line, in order:
//!
//! ```text
//! serve --model model.snap --interactions data.tsv \
//!       [--mode clusters|full] [--min-candidates 50] [--m 10] \
//!       [--lambda 0.5] [--threads N] [--batch 256] [--sep '\t']
//! ```
//!
//! **Listen** (Linux) — same engine behind the non-blocking TCP/HTTP
//! front-end instead of stdin ([`ocular_serve::net::server`]): request
//! bodies `POST`ed to `/recommend` are decoded by the identical
//! [`ocular_serve::protocol`] path, plus `GET /stats` (counters and
//! latency histograms) and `GET /healthz`:
//!
//! ```text
//! serve --model model.snap --interactions data.tsv \
//!       --listen 127.0.0.1:7878 \
//!       [--queue-cap 1024] [--batch 256] [--threads 1] \
//!       [--max-connections 1024]    (+ the serve-mode engine flags)
//! ```
//!
//! `SIGINT`/`SIGTERM` drain in-flight requests and exit cleanly. When
//! the admission queue (`--queue-cap`) is full, requests are answered
//! with HTTP 429 and a typed `overloaded` error body — never dropped.
//!
//! `--lambda` here is the regularization the OCuLaR cold-start fold-in
//! solves with; pass the value the model was trained with (both modes
//! default to 0.5). Baseline kinds carry their fold-in parameters inside
//! the snapshot. The `clusters` candidate mode only applies to `ocular`
//! snapshots; other kinds are always served against the full catalog.
//!
//! Requests: `{"user": 17}` or `{"user": 17, "m": 5}` for warm users by
//! **internal** (compacted) index, `{"basket": [0, 4, 9], "m": 5}` for
//! cold-start fold-in over internal item indices — or the **external-id**
//! forms `{"user_id": 90210}` and `{"basket_ids": [1193, 661]}`, which
//! resolve through the id maps the training run embedded in the snapshot
//! (falling back to the maps derived from `--interactions`). Responses
//! echo the request key and carry `items`, `probs`, `scored`, `fallback`;
//! when id maps are available they also carry `item_ids` — the served
//! items as external ids, completing the external→external round trip.
//! Failures (including cold requests against kinds without fold-in, and
//! unknown external ids) become `{"error": "..."}` without aborting the
//! stream.

use ocular_baselines::{Bpr, BprConfig, ItemKnn, KnnConfig, Popularity, UserKnn, Wals, WalsConfig};
use ocular_core::{fit, OcularConfig};
use ocular_serve::{
    AnySnapshot, CandidatePolicy, Request, ServeConfig, ServeEngine, Snapshot, SnapshotFormat,
    WireReply, WireRequest,
};
use ocular_sparse::io::read_edge_list;
use ocular_sparse::{Dataset, IdMaps, StreamingTriplets};
use std::io::{BufRead, BufWriter, Write};
use std::process::ExitCode;
use std::sync::Arc;

/// `--key value` / bare `--flag` parsing (same dialect as ocular-bench).
struct Flags {
    values: Vec<(String, String)>,
}

impl Flags {
    fn parse() -> Flags {
        let tokens: Vec<String> = std::env::args().skip(1).collect();
        let mut values = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            if let Some(key) = tokens[i].strip_prefix("--") {
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    values.push((key.to_string(), tokens[i + 1].clone()));
                    i += 2;
                } else {
                    values.push((key.to_string(), String::new()));
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Flags { values }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Streams the edge list into a [`Dataset`] (chunked ingestion; external
/// ids compacted in first-appearance order and kept as the id maps).
fn load_dataset(path: &str, sep: &str) -> Result<Dataset, String> {
    let parsed = read_edge_list(path, sep, None).map_err(|e| e.to_string())?;
    Ok(parsed.into_dataset())
}

/// Aligns an interaction log to a snapshot's id space: every record is
/// translated external→internal through the snapshot's maps, so the
/// exclusion lists land on the model's rows no matter what order the
/// serving-side file lists them in. Records referencing ids the model
/// never saw are an error (they cannot map to any row/column). Serving
/// with the training file itself reproduces the snapshot's maps exactly,
/// in which case the log is already aligned and no rebuild happens.
fn align_to_ids(d: Dataset, ids: IdMaps) -> Result<Dataset, String> {
    if d.ids() == Some(&ids) {
        return Ok(d);
    }
    let mut staged = StreamingTriplets::new();
    for (u, i) in d.iter_nnz() {
        let user = ids.user_index(d.external_user(u)).ok_or_else(|| {
            format!(
                "interactions user {} unknown to the snapshot",
                d.external_user(u)
            )
        })?;
        let item = ids.item_index(d.external_item(i)).ok_or_else(|| {
            format!(
                "interactions item {} unknown to the snapshot",
                d.external_item(i)
            )
        })?;
        staged.push(user, item).map_err(|e| e.to_string())?;
    }
    let matrix = staged
        .finish(ids.n_users(), ids.n_items())
        .map_err(|e| e.to_string())?;
    Dataset::with_ids(matrix, Arc::new(ids)).map_err(|e| e.to_string())
}

fn train_mode(flags: &Flags) -> Result<(), String> {
    let data = flags.get("train").expect("checked by caller");
    let out = flags
        .get("snapshot")
        .ok_or("--train requires --snapshot <path>")?;
    let sep = flags.get("sep").unwrap_or("\t");
    let algo = flags.get("algo").unwrap_or("ocular");
    let r = load_dataset(data, sep)?;
    let seed = flags.num("seed", 0u64);
    let t0 = std::time::Instant::now();
    let snapshot: AnySnapshot = match algo {
        "ocular" => {
            let cfg = OcularConfig {
                k: flags.num("k", 8),
                lambda: flags.num("lambda", 0.5),
                max_iters: flags.num("iters", 60),
                seed,
                ..Default::default()
            };
            let model = fit(&r, &cfg).model;
            let index_cfg = ocular_serve::IndexConfig {
                rel: flags.num("rel", 0.5),
                floor: flags.num("floor", 100),
            };
            AnySnapshot::Ocular(Snapshot::build(model, &index_cfg))
        }
        "wals" => {
            let cfg = WalsConfig {
                k: flags.num("k", 16),
                b: flags.num("b", 0.01),
                lambda: flags.num("lambda", 0.01),
                iters: flags.num("iters", 15),
                seed,
                ..Default::default()
            };
            AnySnapshot::Other(Box::new(
                Wals::try_fit(&r, &cfg).map_err(|e| e.to_string())?,
            ))
        }
        "bpr" => {
            let cfg = BprConfig {
                k: flags.num("k", 16),
                lambda: flags.num("lambda", 0.01),
                learning_rate: flags.num("lr", 0.05),
                epochs: flags.num("iters", 30),
                seed,
                ..Default::default()
            };
            AnySnapshot::Other(Box::new(Bpr::try_fit(&r, &cfg).map_err(|e| e.to_string())?))
        }
        "user-knn" => {
            let cfg = KnnConfig {
                k: flags.num("k", 50),
            };
            AnySnapshot::Other(Box::new(UserKnn::fit(&r, &cfg)))
        }
        "item-knn" => {
            let cfg = KnnConfig {
                k: flags.num("k", 50),
            };
            AnySnapshot::Other(Box::new(ItemKnn::fit(&r, &cfg)))
        }
        "popularity" => AnySnapshot::Other(Box::new(Popularity::fit(&r))),
        other => {
            return Err(format!(
                "--algo must be one of ocular|wals|bpr|user-knn|item-knn|popularity, got `{other}`"
            ))
        }
    };
    let format = match flags.get("format").unwrap_or("text") {
        "text" => SnapshotFormat::Text,
        "binary" => SnapshotFormat::Binary,
        other => {
            return Err(format!(
                "--format must be `text` or `binary`, got `{other}`"
            ))
        }
    };
    snapshot
        .save_path(std::path::Path::new(out), r.ids(), format)
        .map_err(|e| format!("write {out}: {e}"))?;
    eprintln!(
        "trained {} on {}×{} (nnz={}) in {:.2}s → {out} ({format:?} format, id maps embedded)",
        snapshot.kind(),
        r.n_users(),
        r.n_items(),
        r.nnz(),
        t0.elapsed().as_secs_f64()
    );
    Ok(())
}

/// Loads the snapshot + interactions named by the flags and builds the
/// engine — the common front half of the stdin and TCP serve modes.
fn build_engine(flags: &Flags) -> Result<ServeEngine, String> {
    let snap_path = flags.get("model").expect("checked by caller");
    let data = flags
        .get("interactions")
        .ok_or("serving requires --interactions <edge list> (owned-item exclusion)")?;
    let sep = flags.get("sep").unwrap_or("\t");
    // magic-sniffing load: v3 binary containers are mmap'd and borrowed
    // zero-copy, v1/v2 text snapshots parse through the legacy path
    let t_load = std::time::Instant::now();
    let (snapshot, snap_ids) = AnySnapshot::load_path(std::path::Path::new(snap_path))
        .map_err(|e| format!("load {snap_path}: {e}"))?;
    eprintln!(
        "snapshot_load_seconds={:.6}",
        t_load.elapsed().as_secs_f64()
    );
    let kind = snapshot.kind();
    let r = load_dataset(data, sep)?;
    // When the snapshot embeds id maps, they are authoritative for the
    // model's row/column space: re-align the interaction log to them so
    // exclusion lists land on the model's rows regardless of the file's
    // record order. Otherwise the file's own first-appearance compaction
    // must reproduce the training-time mapping (same file → same maps).
    let r = match snap_ids {
        Some(ids) => align_to_ids(r, ids)?,
        None => r,
    };

    let candidates = match flags.get("mode").unwrap_or("clusters") {
        "full" => CandidatePolicy::FullCatalog,
        "clusters" => CandidatePolicy::Clusters {
            min_candidates: flags.num("min-candidates", 50),
        },
        other => {
            return Err(format!(
                "--mode must be `full` or `clusters`, got `{other}`"
            ))
        }
    };
    let cfg = ServeConfig {
        default_m: flags.num("m", 10),
        candidates,
        // cold-start fold-in solves with the regularization the model was
        // trained with — the snapshot does not carry it, so `--lambda` here
        // must match the training run (both default to 0.5)
        foldin: OcularConfig {
            lambda: flags.num("lambda", 0.5),
            ..Default::default()
        },
        ..Default::default()
    };
    let engine = ServeEngine::from_any(snapshot, r, cfg).map_err(|e| e.to_string())?;
    eprintln!("serving `{kind}` snapshot from {snap_path}");
    Ok(engine)
}

/// The JSON-lines stdin transport: decode each line through
/// [`ocular_serve::protocol`], serve in batches, encode every reply —
/// success or typed error — through the same protocol. Malformed lines
/// answer with a structured `{"error": ..., "code": "bad_request"}`
/// object and the stream keeps going.
fn serve_mode(flags: &Flags) -> Result<(), String> {
    let engine = build_engine(flags)?;
    let threads = flags.get("threads").and_then(|v| v.parse().ok());
    let batch_size: usize = flags.num("batch", 256).max(1);

    let stdin = std::io::stdin();
    let mut out = BufWriter::new(std::io::stdout().lock());
    let mut pending: Vec<Result<Request, WireReply>> = Vec::with_capacity(batch_size);
    let flush_batch = |pending: &mut Vec<Result<Request, WireReply>>,
                       out: &mut BufWriter<std::io::StdoutLock<'_>>|
     -> Result<(), String> {
        let requests: Vec<Request> = pending
            .iter()
            .filter_map(|p| p.as_ref().ok().cloned())
            .collect();
        let mut served = engine.serve_batch_threads(&requests, threads).into_iter();
        for parsed in pending.drain(..) {
            let reply = match parsed {
                Err(reply) => reply,
                Ok(req) => {
                    let result = served.next().expect("one response per request");
                    engine.wire_reply(&req, &result)
                }
            };
            writeln!(out, "{}", reply.encode()).map_err(|e| e.to_string())?;
        }
        out.flush().map_err(|e| e.to_string())
    };

    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        pending.push(
            WireRequest::decode(&line)
                .map(|w| w.request)
                .map_err(WireReply::Err),
        );
        if pending.len() >= batch_size {
            flush_batch(&mut pending, &mut out)?;
        }
    }
    flush_batch(&mut pending, &mut out)?;
    Ok(())
}

/// The TCP transport (Linux): the same engine behind the epoll front-end,
/// with `SIGINT`/`SIGTERM` honored as a drain-and-exit request.
#[cfg(target_os = "linux")]
fn listen_mode(flags: &Flags, addr: &str) -> Result<(), String> {
    use ocular_serve::net::{Server, ServerConfig};

    let engine = std::sync::Arc::new(build_engine(flags)?);
    let cfg = ServerConfig {
        queue_cap: flags.num("queue-cap", 1024),
        batch_max: flags.num("batch", 256usize).max(1),
        workers: flags.num("threads", 1usize).max(1),
        max_connections: flags.num("max-connections", 1024),
        handle_signals: true,
    };
    let server = Server::bind(engine, addr, cfg).map_err(|e| format!("bind {addr}: {e}"))?;
    eprintln!("listening on {}", server.local_addr());
    server.run().map_err(|e| e.to_string())
}

#[cfg(not(target_os = "linux"))]
fn listen_mode(_flags: &Flags, _addr: &str) -> Result<(), String> {
    Err("--listen requires Linux (epoll)".into())
}

fn main() -> ExitCode {
    let flags = Flags::parse();
    let result = if flags.get("train").is_some() {
        train_mode(&flags)
    } else if let Some(addr) = flags.get("listen") {
        if flags.get("model").is_some() {
            listen_mode(&flags, addr)
        } else {
            Err("--listen requires --model <snap> --interactions <edges>".into())
        }
    } else if flags.get("model").is_some() {
        serve_mode(&flags)
    } else {
        Err("usage: serve --train <edges> --snapshot <out> | serve --model <snap> --interactions <edges> [--listen <addr>]  (see crate docs)".into())
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("serve: {msg}");
            ExitCode::FAILURE
        }
    }
}
