//! JSON-lines serving CLI — polymorphic over model kinds.
//!
//! Two modes:
//!
//! **Train & snapshot** — fit a model on an edge list and write a
//! kind-tagged serving snapshot:
//!
//! ```text
//! serve --train data.tsv --snapshot model.snap \
//!       [--delta more.tsv]... [--generation 1] \
//!       [--format text|binary] \
//!       [--shards 4]                     (also write per-shard v3 files) \
//!       [--quantize f32|int8]            (ocular + --format binary) \
//!       [--algo ocular|wals|bpr|user-knn|item-knn|popularity] \
//!       [--k 8] [--lambda 0.5] [--iters 60] [--seed 0] [--sep '\t'] \
//!       [--rel 0.5] [--floor 100]        (ocular index build) \
//!       [--b 0.01] [--lr 0.05]           (wals / bpr)
//! ```
//!
//! Each `--delta` file is appended to the base edge list through the
//! delta-merge ingestion path (one merge pass, never a re-ingest) before
//! training; `--generation` stamps the snapshot's deployment generation
//! into its metadata section alongside the source-data watermark
//! (trained shape + nnz).
//!
//! `--format binary` writes the mmap-able `ocular-snapshot v3` container
//! (`--format text` the v2 text envelope, the default for
//! compatibility). Serving sniffs the snapshot's magic bytes, so either
//! format loads transparently — v3 via a zero-copy memory mapping
//! (start-up cost independent of model size, page cache shared across
//! serve processes), v1/v2 via the line-oriented parser. The measured
//! load time is reported on stderr as `snapshot_load_seconds=…`.
//!
//! `--k` is the latent dimensionality for the factor models and the
//! neighbourhood size for the kNN variants; `--iters` maps to each
//! fitter's sweep/epoch knob; `--lambda` is each model's own
//! regularization (defaults differ per algorithm).
//!
//! **Serve** — load a snapshot of *any* kind plus the training
//! interactions (for owned-item exclusion), read one JSON request per
//! stdin line, write one JSON response per stdout line, in order:
//!
//! ```text
//! serve --model model.snap --interactions data.tsv \
//!       [--mode clusters|full] [--min-candidates 50] [--m 10] \
//!       [--quantize f32|int8] \
//!       [--lambda 0.5] [--threads N] [--batch 256] [--sep '\t']
//! ```
//!
//! `--quantize` at train time stores a narrowed copy of the item factors
//! (`f32`, or per-row affine `int8`) as extra v3 sections next to the f64
//! master, and serving scores the catalog through the matching blocked
//! kernel; at serve time the same flag re-quantizes any OCuLaR snapshot
//! on load, so old snapshots opt in without retraining. Responses and
//! `GET /stats` report the active `dtype`. Cold-start fold-in always
//! solves in f64 and narrows the folded row per request.
//!
//! **Listen** (Linux) — same engine behind the non-blocking TCP/HTTP
//! front-end instead of stdin ([`ocular_serve::net::server`]): request
//! bodies `POST`ed to `/recommend` are decoded by the identical
//! [`ocular_serve::protocol`] path, plus `GET /stats` (counters and
//! latency histograms) and `GET /healthz`:
//!
//! ```text
//! serve --model model.snap --interactions data.tsv \
//!       --listen 127.0.0.1:7878 \
//!       [--shards 4] \
//!       [--queue-cap 1024] [--batch 256] [--threads 1] \
//!       [--max-connections 1024]    (+ the serve-mode engine flags)
//! ```
//!
//! `--shards N` (any serve mode) stands up the scatter-gather
//! coordinator: user rows are hash-partitioned across `N` in-process
//! worker engines (warm requests route to the owning shard, cold
//! requests fan out or round-robin), each mmap'ing only its own
//! per-shard snapshot file when `--train --shards N` wrote them, and
//! `GET /stats` grows an additive per-shard `shard` array. Responses are
//! byte-identical to unsharded serving at every shard count.
//!
//! `SIGINT`/`SIGTERM` drain in-flight requests and exit cleanly. When
//! the admission queue (`--queue-cap`) is full, requests are answered
//! with HTTP 429 and a typed `overloaded` error body — never dropped.
//!
//! **Live refresh**: `POST /admin/reload` (or `SIGHUP`) re-loads the
//! snapshot and interaction log from the same `--model` /
//! `--interactions` / `--delta` paths on a dedicated thread and
//! hot-swaps the engine with zero dropped requests — in-flight and
//! pipelined requests finish on the engine that admitted them, and the
//! old snapshot's mmap is released when its last borrower completes.
//! Responses and `GET /stats` carry `model_generation` (strictly
//! monotone across swaps) and `kind`, so clients can watch a deploy
//! land. A second reload while one runs answers HTTP 503 with code
//! `reloading`. Warm requests for users that appear in the (refreshed)
//! log but postdate the active snapshot are served by request-time
//! fold-in (`"folded_in":true`) until the next retrain/swap.
//!
//! `--lambda` here is the regularization the OCuLaR cold-start fold-in
//! solves with; pass the value the model was trained with (both modes
//! default to 0.5). Baseline kinds carry their fold-in parameters inside
//! the snapshot. The `clusters` candidate mode only applies to `ocular`
//! snapshots; other kinds are always served against the full catalog.
//!
//! Requests: `{"user": 17}` or `{"user": 17, "m": 5}` for warm users by
//! **internal** (compacted) index, `{"basket": [0, 4, 9], "m": 5}` for
//! cold-start fold-in over internal item indices — or the **external-id**
//! forms `{"user_id": 90210}` and `{"basket_ids": [1193, 661]}`, which
//! resolve through the id maps the training run embedded in the snapshot
//! (falling back to the maps derived from `--interactions`). Responses
//! echo the request key and carry `items`, `probs`, `scored`, `fallback`;
//! when id maps are available they also carry `item_ids` — the served
//! items as external ids, completing the external→external round trip.
//! Failures (including cold requests against kinds without fold-in, and
//! unknown external ids) become `{"error": "..."}` without aborting the
//! stream.

use ocular_api::SnapshotMeta;
use ocular_baselines::{Bpr, BprConfig, ItemKnn, KnnConfig, Popularity, UserKnn, Wals, WalsConfig};
use ocular_core::{fit, OcularConfig};
use ocular_serve::shard::AnyEngine;
use ocular_serve::snapshot::ShardedLoad;
use ocular_serve::{
    shard_path, AnySnapshot, CandidatePolicy, EngineBuilder, QuantDtype, Request, ServeConfig,
    ShardedEngine, Snapshot, SnapshotFormat, WireReply, WireRequest,
};
use ocular_sparse::io::{append_edge_list, read_edge_list};
use ocular_sparse::{CsrMatrix, Dataset, IdMaps};
use std::io::{BufRead, BufWriter, Write};
use std::process::ExitCode;

/// `--key value` / bare `--flag` parsing (same dialect as ocular-bench).
#[derive(Clone)]
struct Flags {
    values: Vec<(String, String)>,
}

impl Flags {
    fn parse() -> Flags {
        let tokens: Vec<String> = std::env::args().skip(1).collect();
        let mut values = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            if let Some(key) = tokens[i].strip_prefix("--") {
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    values.push((key.to_string(), tokens[i + 1].clone()));
                    i += 2;
                } else {
                    values.push((key.to_string(), String::new()));
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Flags { values }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Every occurrence of a repeatable flag, in order (`--delta a --delta b`).
    fn all<'a>(&'a self, key: &'a str) -> impl Iterator<Item = &'a str> {
        self.values
            .iter()
            .filter(move |(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// The `--quantize {f32,int8}` flag, when present and well-formed.
    fn quantize(&self) -> Result<Option<QuantDtype>, String> {
        match self.get("quantize") {
            None => Ok(None),
            Some(s) => QuantDtype::parse(s)
                .map(Some)
                .ok_or_else(|| format!("--quantize must be `f32` or `int8`, got `{s}`")),
        }
    }
}

/// Streams the edge list into a [`Dataset`] (chunked ingestion; external
/// ids compacted in first-appearance order and kept as the id maps),
/// then appends every `--delta` file through the delta-merge path — one
/// merge pass per delta over the already-ingested positives, never a
/// re-ingest of the base.
fn load_dataset(flags: &Flags, path: &str, sep: &str) -> Result<Dataset, String> {
    let parsed = read_edge_list(path, sep, None).map_err(|e| e.to_string())?;
    let mut d = parsed.into_dataset();
    for delta in flags.all("delta") {
        let t0 = std::time::Instant::now();
        d = append_edge_list(&d, std::path::Path::new(delta), sep, None)
            .map_err(|e| format!("append {delta}: {e}"))?;
        eprintln!(
            "delta_append_seconds={:.6} file={delta} now {}×{} nnz={}",
            t0.elapsed().as_secs_f64(),
            d.n_users(),
            d.n_items(),
            d.nnz()
        );
    }
    Ok(d)
}

/// Aligns an interaction log to a snapshot's id space, so the exclusion
/// lists land on the model's rows no matter what order the serving-side
/// file lists them in.
///
/// Two no-copy fast paths cover the steady state and the live-refresh
/// state: the log's maps equal the snapshot's (serving the training
/// file), or the snapshot's maps are a **prefix** of the log's (the log
/// grew by delta appends since the snapshot was trained — already
/// aligned, the overhang is served by fold-in). Anything else re-aligns
/// through the delta-merge path: the snapshot's maps seed an empty
/// dataset and the whole log is appended as one sorted run — records
/// with ids the model never saw extend the id space past the model and
/// become fold-in users/items instead of errors.
fn align_to_ids(d: Dataset, ids: IdMaps) -> Result<Dataset, String> {
    match d.ids() {
        Some(got) if got == &ids || ids.is_prefix_of(got) => return Ok(d),
        _ => {}
    }
    let empty = CsrMatrix::empty(ids.n_users(), ids.n_items());
    let base = Dataset::new(empty, ids).map_err(|e| e.to_string())?;
    let mut staged = base.delta_builder();
    for (u, i) in d.iter_nnz() {
        staged
            .push(d.external_user(u), d.external_item(i))
            .map_err(|e| e.to_string())?;
    }
    staged.finish().map_err(|e| e.to_string())
}

fn train_mode(flags: &Flags) -> Result<(), String> {
    let data = flags.get("train").expect("checked by caller");
    let out = flags
        .get("snapshot")
        .ok_or("--train requires --snapshot <path>")?;
    let sep = flags.get("sep").unwrap_or("\t");
    let algo = flags.get("algo").unwrap_or("ocular");
    let r = load_dataset(flags, data, sep)?;
    let seed = flags.num("seed", 0u64);
    let quantize = flags.quantize()?;
    if quantize.is_some() && algo != "ocular" {
        return Err(format!(
            "--quantize only applies to --algo ocular (got `{algo}`)"
        ));
    }
    if quantize.is_some() && flags.get("format").unwrap_or("text") != "binary" {
        return Err(
            "--quantize requires --format binary (the text envelope has no quantized sections)"
                .into(),
        );
    }
    let t0 = std::time::Instant::now();
    let snapshot: AnySnapshot = match algo {
        "ocular" => {
            let cfg = OcularConfig {
                k: flags.num("k", 8),
                lambda: flags.num("lambda", 0.5),
                max_iters: flags.num("iters", 60),
                seed,
                ..Default::default()
            };
            let model = fit(&r, &cfg).model;
            let index_cfg = ocular_serve::IndexConfig {
                rel: flags.num("rel", 0.5),
                floor: flags.num("floor", 100),
            };
            let mut snap = Snapshot::build(model, &index_cfg);
            if let Some(dtype) = quantize {
                snap = snap.with_quantization(dtype);
            }
            AnySnapshot::Ocular(snap)
        }
        "wals" => {
            let cfg = WalsConfig {
                k: flags.num("k", 16),
                b: flags.num("b", 0.01),
                lambda: flags.num("lambda", 0.01),
                iters: flags.num("iters", 15),
                seed,
                ..Default::default()
            };
            AnySnapshot::Other(Box::new(
                Wals::try_fit(&r, &cfg).map_err(|e| e.to_string())?,
            ))
        }
        "bpr" => {
            let cfg = BprConfig {
                k: flags.num("k", 16),
                lambda: flags.num("lambda", 0.01),
                learning_rate: flags.num("lr", 0.05),
                epochs: flags.num("iters", 30),
                seed,
                ..Default::default()
            };
            AnySnapshot::Other(Box::new(Bpr::try_fit(&r, &cfg).map_err(|e| e.to_string())?))
        }
        "user-knn" => {
            let cfg = KnnConfig {
                k: flags.num("k", 50),
            };
            AnySnapshot::Other(Box::new(UserKnn::fit(&r, &cfg)))
        }
        "item-knn" => {
            let cfg = KnnConfig {
                k: flags.num("k", 50),
            };
            AnySnapshot::Other(Box::new(ItemKnn::fit(&r, &cfg)))
        }
        "popularity" => AnySnapshot::Other(Box::new(Popularity::fit(&r))),
        other => {
            return Err(format!(
                "--algo must be one of ocular|wals|bpr|user-knn|item-knn|popularity, got `{other}`"
            ))
        }
    };
    let format = match flags.get("format").unwrap_or("text") {
        "text" => SnapshotFormat::Text,
        "binary" => SnapshotFormat::Binary,
        other => {
            return Err(format!(
                "--format must be `text` or `binary`, got `{other}`"
            ))
        }
    };
    // Every trained snapshot carries its deployment generation plus the
    // source-data watermark (shape + nnz it was trained on) — what the
    // hot-swap tier and `/stats` report, and what lets an operator check
    // a snapshot against the log it is about to serve.
    let meta = SnapshotMeta {
        generation: flags.num("generation", 1u64),
        n_users: r.n_users() as u64,
        n_items: r.n_items() as u64,
        nnz: r.nnz() as u64,
    };
    snapshot
        .save_path_full(std::path::Path::new(out), r.ids(), Some(&meta), format)
        .map_err(|e| format!("write {out}: {e}"))?;
    // `--shards N` additionally writes N standalone per-shard v3 section
    // sets next to the base snapshot (user rows hash-partitioned,
    // item-side state replicated), so each serve worker mmaps only its
    // own shard
    let n_shards: usize = flags.num("shards", 1);
    if n_shards == 0 {
        return Err("--shards must be a positive shard count".into());
    }
    if n_shards > 1 {
        let paths = snapshot
            .save_path_sharded(std::path::Path::new(out), r.ids(), Some(&meta), n_shards)
            .map_err(|e| format!("write shards of {out}: {e}"))?;
        eprintln!(
            "wrote {n_shards} shard snapshots: {} … {}",
            paths[0].display(),
            paths[n_shards - 1].display()
        );
    }
    eprintln!(
        "trained {} gen={} on {}×{} (nnz={}) in {:.2}s → {out} ({format:?} format, id maps embedded)",
        snapshot.kind(),
        meta.generation,
        r.n_users(),
        r.n_items(),
        r.nnz(),
        t0.elapsed().as_secs_f64()
    );
    Ok(())
}

/// The serving knobs shared by every engine arity.
fn serve_config(flags: &Flags) -> Result<ServeConfig, String> {
    let candidates = match flags.get("mode").unwrap_or("clusters") {
        "full" => CandidatePolicy::FullCatalog,
        "clusters" => CandidatePolicy::Clusters {
            min_candidates: flags.num("min-candidates", 50),
        },
        other => {
            return Err(format!(
                "--mode must be `full` or `clusters`, got `{other}`"
            ))
        }
    };
    Ok(ServeConfig {
        default_m: flags.num("m", 10),
        candidates,
        // cold-start fold-in solves with the regularization the model was
        // trained with — the snapshot does not carry it, so `--lambda` here
        // must match the training run (both default to 0.5)
        foldin: OcularConfig {
            lambda: flags.num("lambda", 0.5),
            ..Default::default()
        },
        ..Default::default()
    })
}

/// Reassembles the full training id maps from a shard family's
/// shard-scoped maps (shard users scattered back to their global rows,
/// items replicated), so the interaction log can be aligned exactly as
/// in the unsharded path. `None` when the family was trained without id
/// maps (identity mapping).
fn merged_shard_ids(load: &ShardedLoad) -> Option<ocular_sparse::IdMaps> {
    let total: usize = load.global_rows.iter().map(Vec::len).sum();
    let mut users = vec![0u64; total];
    let mut items: Option<Vec<u64>> = None;
    for (loaded, gid) in load.shards.iter().zip(&load.global_rows) {
        let ids = loaded.ids.as_ref()?;
        for (&g, &ext) in gid.iter().zip(ids.users()) {
            users[g as usize] = ext;
        }
        items = Some(ids.items().to_vec());
    }
    IdMaps::new(users, items?).ok()
}

/// Loads the snapshot + interactions named by the flags and builds the
/// engine — the common front half of the stdin and TCP serve modes, and
/// the body of the hot-reload closure in listen mode. `floor_generation`
/// keeps reloads monotone: the engine's generation is the larger of the
/// snapshot's own and this floor (0 for a fresh start).
///
/// `--shards N` (N > 1) builds the scatter-gather coordinator instead of
/// one engine: when the per-shard snapshot files written by
/// `--train --shards N` exist next to `--model`, each in-process worker
/// mmaps only its own shard file; otherwise the base snapshot is loaded
/// once and split in memory along the same hash partition.
fn build_engine(flags: &Flags, floor_generation: u64) -> Result<AnyEngine, String> {
    let snap_path = flags.get("model").expect("checked by caller");
    let data = flags
        .get("interactions")
        .ok_or("serving requires --interactions <edge list> (owned-item exclusion)")?;
    let sep = flags.get("sep").unwrap_or("\t");
    let n_shards: usize = flags.num("shards", 1);
    if n_shards == 0 {
        return Err("--shards must be a positive shard count".into());
    }
    let cfg = serve_config(flags)?;
    let quantize = flags.quantize()?;
    let path = std::path::Path::new(snap_path);

    // sharded snapshot files on disk: each worker's sections come out of
    // its own mmap'd shard file — the base file is never touched
    if n_shards > 1 && shard_path(path, 0, n_shards).exists() {
        let t_load = std::time::Instant::now();
        let load = AnySnapshot::load_path_sharded(path, n_shards)
            .map_err(|e| format!("load shards of {snap_path}: {e}"))?;
        eprintln!(
            "snapshot_load_seconds={:.6}",
            t_load.elapsed().as_secs_f64()
        );
        let r = load_dataset(flags, data, sep)?;
        let r = match merged_shard_ids(&load) {
            Some(ids) => align_to_ids(r, ids)?,
            None => r,
        };
        let engine = ShardedEngine::assemble(load, &r, cfg, floor_generation, quantize)
            .map_err(|e| e.to_string())?;
        eprintln!(
            "serving `{}` ×{} shard files from {snap_path} (generation {}, dtype {})",
            engine.kind(),
            engine.n_shards(),
            engine.generation(),
            engine.dtype().unwrap_or("f64")
        );
        return Ok(engine.into());
    }

    // magic-sniffing load: v3 binary containers are mmap'd and borrowed
    // zero-copy, v1/v2 text snapshots parse through the legacy path
    let t_load = std::time::Instant::now();
    let loaded = AnySnapshot::load_path_full(path).map_err(|e| format!("load {snap_path}: {e}"))?;
    eprintln!(
        "snapshot_load_seconds={:.6}",
        t_load.elapsed().as_secs_f64()
    );
    let kind = loaded.snapshot.kind();
    let generation = loaded
        .meta
        .map_or(0, |m| m.generation)
        .max(floor_generation);
    let r = load_dataset(flags, data, sep)?;
    // When the snapshot embeds id maps, they are authoritative for the
    // model's row/column space: re-align the interaction log to them so
    // exclusion lists land on the model's rows regardless of the file's
    // record order (no-op when the log equals or extends the training
    // file). Otherwise the file's own first-appearance compaction must
    // reproduce the training-time mapping (same file → same maps).
    let r = match loaded.ids {
        Some(ids) => align_to_ids(r, ids)?,
        None => r,
    };

    if n_shards > 1 {
        let AnySnapshot::Ocular(snap) = loaded.snapshot else {
            return Err(format!(
                "--shards requires an `ocular` snapshot (got `{kind}`)"
            ));
        };
        let engine = ShardedEngine::split(snap, &r, n_shards, cfg, generation, quantize)
            .map_err(|e| e.to_string())?;
        eprintln!(
            "serving `{kind}` split ×{n_shards} in memory from {snap_path} \
             (generation {generation}, dtype {})",
            engine.dtype().unwrap_or("f64")
        );
        return Ok(engine.into());
    }

    let mut builder = EngineBuilder::from_snapshot(loaded.snapshot)
        .dataset(r)
        .config(cfg)
        .generation(generation);
    // `--quantize` at serve time re-quantizes from the f64 master when
    // the snapshot does not already carry the requested dtype, so old
    // snapshots opt in without retraining; without the flag a
    // snapshot-embedded quantized copy is served as-is
    if let Some(dtype) = quantize {
        builder = builder.quantization(dtype);
    }
    let engine = builder.build().map_err(|e| e.to_string())?;
    eprintln!(
        "serving `{kind}` snapshot from {snap_path} (generation {generation}, dtype {})",
        engine.dtype().unwrap_or("f64")
    );
    Ok(engine.into())
}

/// The JSON-lines stdin transport: decode each line through
/// [`ocular_serve::protocol`], serve in batches, encode every reply —
/// success or typed error — through the same protocol. Malformed lines
/// answer with a structured `{"error": ..., "code": "bad_request"}`
/// object and the stream keeps going.
fn serve_mode(flags: &Flags) -> Result<(), String> {
    let engine = build_engine(flags, 0)?;
    let threads = flags.get("threads").and_then(|v| v.parse().ok());
    let batch_size: usize = flags.num("batch", 256).max(1);

    let stdin = std::io::stdin();
    let mut out = BufWriter::new(std::io::stdout().lock());
    let mut pending: Vec<Result<Request, WireReply>> = Vec::with_capacity(batch_size);
    let flush_batch = |pending: &mut Vec<Result<Request, WireReply>>,
                       out: &mut BufWriter<std::io::StdoutLock<'_>>|
     -> Result<(), String> {
        let requests: Vec<Request> = pending
            .iter()
            .filter_map(|p| p.as_ref().ok().cloned())
            .collect();
        let mut served = engine.serve_batch_threads(&requests, threads).into_iter();
        for parsed in pending.drain(..) {
            let reply = match parsed {
                Err(reply) => reply,
                Ok(req) => {
                    let result = served.next().expect("one response per request");
                    engine.wire_reply(&req, &result)
                }
            };
            writeln!(out, "{}", reply.encode()).map_err(|e| e.to_string())?;
        }
        out.flush().map_err(|e| e.to_string())
    };

    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        pending.push(
            WireRequest::decode(&line)
                .map(|w| w.request)
                .map_err(WireReply::Err),
        );
        if pending.len() >= batch_size {
            flush_batch(&mut pending, &mut out)?;
        }
    }
    flush_batch(&mut pending, &mut out)?;
    Ok(())
}

/// The TCP transport (Linux): the same engine behind the epoll front-end,
/// with `SIGINT`/`SIGTERM` honored as a drain-and-exit request and
/// `POST /admin/reload` / `SIGHUP` as a zero-downtime hot swap — the
/// reload closure re-loads the snapshot and interaction log (plus any
/// `--delta` files) from the same paths and publishes the fresh engine
/// atomically; in-flight requests finish on the engine that admitted
/// them.
#[cfg(target_os = "linux")]
fn listen_mode(flags: &Flags, addr: &str) -> Result<(), String> {
    use ocular_serve::net::{Server, ServerConfig};
    use ocular_serve::SwapEngine;

    let initial = build_engine(flags, 0)?;
    let reload_flags = flags.clone();
    let swap = std::sync::Arc::new(SwapEngine::with_reload(
        initial,
        Box::new(move |current| {
            build_engine(&reload_flags, current + 1).map_err(ocular_api::OcularError::Io)
        }),
    ));
    let cfg = ServerConfig {
        queue_cap: flags.num("queue-cap", 1024),
        batch_max: flags.num("batch", 256usize).max(1),
        workers: flags.num("threads", 1usize).max(1),
        max_connections: flags.num("max-connections", 1024),
        handle_signals: true,
    };
    let server = Server::bind(swap, addr, cfg).map_err(|e| format!("bind {addr}: {e}"))?;
    eprintln!("listening on {}", server.local_addr());
    server.run().map_err(|e| e.to_string())
}

#[cfg(not(target_os = "linux"))]
fn listen_mode(_flags: &Flags, _addr: &str) -> Result<(), String> {
    Err("--listen requires Linux (epoll)".into())
}

fn main() -> ExitCode {
    let flags = Flags::parse();
    let result = if flags.get("train").is_some() {
        train_mode(&flags)
    } else if let Some(addr) = flags.get("listen") {
        if flags.get("model").is_some() {
            listen_mode(&flags, addr)
        } else {
            Err("--listen requires --model <snap> --interactions <edges>".into())
        }
    } else if flags.get("model").is_some() {
        serve_mode(&flags)
    } else {
        Err("usage: serve --train <edges> --snapshot <out> | serve --model <snap> --interactions <edges> [--listen <addr>]  (see crate docs)".into())
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("serve: {msg}");
            ExitCode::FAILURE
        }
    }
}
