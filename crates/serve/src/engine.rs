//! The in-process serving engine: candidate generation, heap selection,
//! cold-start fold-in, and rayon-parallel batching.

use crate::index::{ClusterIndex, IndexConfig};
use crate::snapshot::Snapshot;
use ocular_core::model::prob_from_affinity;
use ocular_core::topm::{top_m_excluding, TopM};
use ocular_core::{fold_in_user, FactorModel, OcularConfig, Recommendation};
use ocular_linalg::ops;
use ocular_sparse::{col_index, CsrMatrix};
use rayon::prelude::*;
use std::fmt;

/// How the engine picks the items a request scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidatePolicy {
    /// Score every item — exact: output is bitwise identical to
    /// [`ocular_core::recommend_top_m`] for warm users.
    FullCatalog,
    /// Score only items reachable from the requester's co-clusters via the
    /// [`ClusterIndex`]. Falls back to the full catalog when fewer than
    /// `max(m, min_candidates)` un-owned candidates are reachable, so thin
    /// cluster coverage degrades to exact serving instead of short lists.
    Clusters {
        /// Fallback floor on usable (un-owned) candidates.
        min_candidates: usize,
    },
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Top-M length used when a request does not specify `m`.
    pub default_m: usize,
    /// Candidate-generation policy.
    pub candidates: CandidatePolicy,
    /// Solver budget for cold-start fold-in (projected-gradient steps).
    pub foldin_steps: usize,
    /// Training hyper-parameters reused by the cold-start fold-in solve
    /// (only `lambda`, `sigma`, `beta`, `max_backtracks` matter here).
    pub foldin: OcularConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            default_m: 10,
            candidates: CandidatePolicy::Clusters { min_candidates: 50 },
            foldin_steps: 100,
            foldin: OcularConfig::default(),
        }
    }
}

/// One serving request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// A user present in the training matrix, addressed by row index.
    Warm {
        /// Training-matrix row of the user.
        user: usize,
        /// List length; 0 means the engine's `default_m`.
        m: usize,
    },
    /// A cold-start user described only by a basket of item indices; the
    /// affiliation vector is folded in at request time (Section VIII).
    Cold {
        /// Items the unseen user has interacted with.
        basket: Vec<usize>,
        /// List length; 0 means the engine's `default_m`.
        m: usize,
    },
}

/// A served recommendation list plus serving telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedList {
    /// The top-M list, probability descending, ties by ascending item.
    pub items: Vec<Recommendation>,
    /// Number of items actually scored for this request.
    pub scored: usize,
    /// Whether the cluster policy fell back to the full catalog.
    pub fell_back: bool,
}

/// Request-level serving failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A warm request named a row outside the training matrix.
    UnknownUser {
        /// The requested user index.
        user: usize,
        /// Number of users the engine knows.
        n_users: usize,
    },
    /// A cold request's basket was unusable (out-of-range or duplicate
    /// items).
    BadBasket(
        /// Human-readable description.
        String,
    ),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownUser { user, n_users } => {
                write!(f, "unknown user {user} (engine has {n_users} warm users)")
            }
            ServeError::BadBasket(msg) => write!(f, "bad basket: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The in-process serving engine.
///
/// Holds a fitted [`FactorModel`], the [`ClusterIndex`] for candidate
/// generation, and the training interactions (for owned-item exclusion).
/// All serving methods take `&self`, so one engine can be shared across
/// threads; [`ServeEngine::serve_batch`] does exactly that via rayon.
#[derive(Debug, Clone)]
pub struct ServeEngine {
    model: FactorModel,
    index: ClusterIndex,
    owned: CsrMatrix,
    cfg: ServeConfig,
}

impl ServeEngine {
    /// Builds an engine from a loaded snapshot and the training
    /// interactions. The interactions must match the model's shape.
    pub fn new(
        snapshot: Snapshot,
        interactions: CsrMatrix,
        cfg: ServeConfig,
    ) -> Result<Self, String> {
        if interactions.n_rows() != snapshot.model.n_users()
            || interactions.n_cols() != snapshot.model.n_items()
        {
            return Err(format!(
                "interactions are {}×{} but the model is {}×{}",
                interactions.n_rows(),
                interactions.n_cols(),
                snapshot.model.n_users(),
                snapshot.model.n_items()
            ));
        }
        Ok(ServeEngine {
            model: snapshot.model,
            index: snapshot.index,
            owned: interactions,
            cfg,
        })
    }

    /// Convenience constructor: derives the snapshot (index included) from
    /// a model with the given index build parameters (see
    /// [`ClusterIndex::build`]).
    pub fn from_model(
        model: FactorModel,
        interactions: CsrMatrix,
        index_cfg: &IndexConfig,
        cfg: ServeConfig,
    ) -> Result<Self, String> {
        Self::new(Snapshot::build(model, index_cfg), interactions, cfg)
    }

    /// The engine's model.
    pub fn model(&self) -> &FactorModel {
        &self.model
    }

    /// The engine's candidate-generation index.
    pub fn index(&self) -> &ClusterIndex {
        &self.index
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Serves one request.
    pub fn serve_one(&self, req: &Request) -> Result<ServedList, ServeError> {
        match req {
            Request::Warm { user, m } => self.serve_warm(*user, self.effective_m(*m)),
            Request::Cold { basket, m } => self.serve_cold(basket, self.effective_m(*m)),
        }
    }

    /// Serves a batch of requests in parallel on the ambient rayon pool.
    /// Responses are returned in request order, and every response is
    /// identical to what [`ServeEngine::serve_one`] returns for that
    /// request — batching changes wall-clock, never output.
    pub fn serve_batch(&self, requests: &[Request]) -> Vec<Result<ServedList, ServeError>> {
        requests.par_iter().map(|r| self.serve_one(r)).collect()
    }

    /// [`ServeEngine::serve_batch`] under an explicit thread count
    /// (`None` = ambient pool) — the same knob as
    /// [`ocular_parallel::fit_parallel`].
    pub fn serve_batch_threads(
        &self,
        requests: &[Request],
        threads: Option<usize>,
    ) -> Vec<Result<ServedList, ServeError>> {
        ocular_parallel::with_threads(threads, || self.serve_batch(requests))
    }

    fn effective_m(&self, m: usize) -> usize {
        if m == 0 {
            self.cfg.default_m
        } else {
            m
        }
    }

    fn serve_warm(&self, user: usize, m: usize) -> Result<ServedList, ServeError> {
        if user >= self.model.n_users() {
            return Err(ServeError::UnknownUser {
                user,
                n_users: self.model.n_users(),
            });
        }
        let factors = self.model.user_factors.row(user);
        Ok(self.select(factors, self.owned.row(user), m))
    }

    fn serve_cold(&self, basket: &[usize], m: usize) -> Result<ServedList, ServeError> {
        let mut exclude: Vec<u32> = Vec::with_capacity(basket.len());
        for &i in basket {
            if i >= self.model.n_items() {
                return Err(ServeError::BadBasket(format!(
                    "item {i} out of range for {} items",
                    self.model.n_items()
                )));
            }
            exclude.push(col_index(i));
        }
        exclude.sort_unstable();
        if exclude.windows(2).any(|w| w[0] == w[1]) {
            return Err(ServeError::BadBasket("duplicate items".into()));
        }
        let fold = fold_in_user(
            &self.model,
            basket,
            &self.cfg.foldin,
            1.0,
            self.cfg.foldin_steps,
        );
        Ok(self.select(&fold.factors, &exclude, m))
    }

    /// Core selection: candidate generation per policy, then bounded-heap
    /// top-M with the workspace ties convention (probability descending,
    /// ties by ascending item index). `exclude` is ascending.
    fn select(&self, factors: &[f64], exclude: &[u32], m: usize) -> ServedList {
        if let CandidatePolicy::Clusters { min_candidates } = self.cfg.candidates {
            let candidates = self.index.candidates(factors);
            // usable = candidates not excluded (both lists ascending)
            let usable = candidates.len() - intersection_size(&candidates, exclude);
            if usable >= m.max(min_candidates) {
                return self.select_candidates(factors, &candidates, exclude, m);
            }
        }
        self.select_full(factors, exclude, m)
    }

    /// Scores the full catalog. For a warm user this computes exactly the
    /// floats of [`FactorModel::score_user`] and selects through the same
    /// kernel as [`ocular_core::recommend_top_m`], hence bitwise-identical
    /// lists.
    fn select_full(&self, factors: &[f64], exclude: &[u32], m: usize) -> ServedList {
        let n = self.model.n_items();
        let mut scores = vec![0.0; n];
        for (i, s) in scores.iter_mut().enumerate() {
            *s = prob_from_affinity(ops::dot(factors, self.model.item_factors.row(i)));
        }
        let items = top_m_excluding(&scores, exclude, m);
        ServedList {
            items,
            scored: n,
            fell_back: !matches!(self.cfg.candidates, CandidatePolicy::FullCatalog),
        }
    }

    /// Scores only the candidate list (ascending), skipping exclusions.
    fn select_candidates(
        &self,
        factors: &[f64],
        candidates: &[u32],
        exclude: &[u32],
        m: usize,
    ) -> ServedList {
        let mut heap = TopM::new(m);
        let mut cursor = 0usize;
        let mut scored = 0usize;
        for &c in candidates {
            let item = c as usize;
            while cursor < exclude.len() && (exclude[cursor] as usize) < item {
                cursor += 1;
            }
            if cursor < exclude.len() && exclude[cursor] as usize == item {
                cursor += 1;
                continue;
            }
            let p = prob_from_affinity(ops::dot(factors, self.model.item_factors.row(item)));
            heap.push(item, p);
            scored += 1;
        }
        ServedList {
            items: heap.into_sorted(),
            scored,
            fell_back: false,
        }
    }
}

/// Size of the intersection of two ascending `u32` lists.
fn intersection_size(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocular_core::{fit, recommend_top_m};
    use ocular_datasets::planted::{generate, PlantedConfig};

    fn trained() -> (FactorModel, CsrMatrix, OcularConfig) {
        let data = generate(&PlantedConfig {
            n_users: 60,
            n_items: 40,
            k: 3,
            users_per_cluster: 20,
            items_per_cluster: 14,
            user_overlap: 0.2,
            item_overlap: 0.2,
            within_density: 0.6,
            noise_density: 0.01,
            seed: 5,
        });
        let cfg = OcularConfig {
            k: 3,
            lambda: 0.2,
            max_iters: 40,
            seed: 2,
            ..Default::default()
        };
        let model = fit(&data.matrix, &cfg).model;
        (model, data.matrix, cfg)
    }

    fn engine(policy: CandidatePolicy) -> (ServeEngine, CsrMatrix) {
        let (model, r, train_cfg) = trained();
        let cfg = ServeConfig {
            default_m: 5,
            candidates: policy,
            foldin: train_cfg,
            ..Default::default()
        };
        let e = ServeEngine::from_model(
            model,
            r.clone(),
            &IndexConfig {
                rel: 0.5,
                floor: 10,
            },
            cfg,
        )
        .unwrap();
        (e, r)
    }

    #[test]
    fn full_catalog_matches_recommend_top_m_bitwise() {
        let (e, r) = engine(CandidatePolicy::FullCatalog);
        for u in 0..e.model().n_users() {
            let served = e.serve_one(&Request::Warm { user: u, m: 10 }).unwrap();
            assert_eq!(served.items, recommend_top_m(e.model(), &r, u, 10));
            assert!(!served.fell_back);
            assert_eq!(served.scored, e.model().n_items());
        }
    }

    #[test]
    fn cluster_policy_scores_fewer_items() {
        let (e, _) = engine(CandidatePolicy::Clusters { min_candidates: 1 });
        let mut restricted = 0;
        for u in 0..e.model().n_users() {
            let served = e.serve_one(&Request::Warm { user: u, m: 3 }).unwrap();
            assert_eq!(served.items.len(), 3);
            if !served.fell_back {
                assert!(served.scored <= e.model().n_items());
                restricted += usize::from(served.scored < e.model().n_items());
            }
        }
        assert!(
            restricted > 0,
            "a planted-cluster model must restrict at least one user's candidates"
        );
    }

    #[test]
    fn cluster_fallback_when_coverage_thin() {
        // min_candidates above the catalog forces fallback for everyone
        let (e, r) = engine(CandidatePolicy::Clusters {
            min_candidates: 10_000,
        });
        let served = e.serve_one(&Request::Warm { user: 0, m: 5 }).unwrap();
        assert!(served.fell_back);
        assert_eq!(served.items, recommend_top_m(e.model(), &r, 0, 5));
    }

    #[test]
    fn unknown_user_rejected() {
        let (e, _) = engine(CandidatePolicy::FullCatalog);
        let err = e
            .serve_one(&Request::Warm { user: 9999, m: 5 })
            .unwrap_err();
        assert!(matches!(err, ServeError::UnknownUser { user: 9999, .. }));
    }

    #[test]
    fn cold_request_served_and_validated() {
        let (e, _) = engine(CandidatePolicy::Clusters { min_candidates: 1 });
        let served = e
            .serve_one(&Request::Cold {
                basket: vec![0, 1, 2],
                m: 5,
            })
            .unwrap();
        assert_eq!(served.items.len(), 5);
        assert!(served.items.iter().all(|r| ![0, 1, 2].contains(&r.item)));
        // invalid baskets are errors, not panics
        assert!(matches!(
            e.serve_one(&Request::Cold {
                basket: vec![9999],
                m: 5
            }),
            Err(ServeError::BadBasket(_))
        ));
        assert!(matches!(
            e.serve_one(&Request::Cold {
                basket: vec![1, 1],
                m: 5
            }),
            Err(ServeError::BadBasket(_))
        ));
    }

    #[test]
    fn batch_matches_serve_one_in_order() {
        let (e, _) = engine(CandidatePolicy::Clusters { min_candidates: 5 });
        let reqs: Vec<Request> = (0..e.model().n_users())
            .map(|user| Request::Warm { user, m: 7 })
            .chain([Request::Cold {
                basket: vec![3, 4],
                m: 7,
            }])
            .collect();
        let batch = e.serve_batch_threads(&reqs, Some(4));
        assert_eq!(batch.len(), reqs.len());
        for (req, got) in reqs.iter().zip(&batch) {
            assert_eq!(got, &e.serve_one(req));
        }
    }

    #[test]
    fn default_m_applies_when_zero() {
        let (e, _) = engine(CandidatePolicy::FullCatalog);
        let served = e.serve_one(&Request::Warm { user: 1, m: 0 }).unwrap();
        assert_eq!(served.items.len(), e.config().default_m);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let (model, _r, _) = trained();
        let bad = CsrMatrix::empty(3, 3);
        assert!(ServeEngine::from_model(
            model,
            bad,
            &IndexConfig::default(),
            ServeConfig::default()
        )
        .is_err());
    }

    #[test]
    fn intersection_size_counts() {
        assert_eq!(intersection_size(&[1, 3, 5], &[2, 3, 5, 7]), 2);
        assert_eq!(intersection_size(&[], &[1]), 0);
    }
}
