//! The in-process serving engine: candidate generation, heap selection,
//! cold-start fold-in, and rayon-parallel batching — polymorphic over
//! model kinds.
//!
//! OCuLaR models keep their specialised request path (co-cluster candidate
//! generation against the [`ClusterIndex`], factor-level scoring); every
//! other kind is served through the [`ocular_api`] trait hierarchy, with
//! [`CandidatePolicy::Clusters`] degrading gracefully to the full catalog
//! — non-co-clustered models have no cluster structure to generate
//! candidates from, so they are served exactly.

use crate::index::{ClusterIndex, IndexConfig};
use crate::snapshot::{AnySnapshot, LoadedSnapshot, Snapshot, OCULAR_KIND};
use ocular_api::{validate_basket, Model, OcularError};
use ocular_core::model::prob_from_affinity;
use ocular_core::topm::{top_m_excluding, TopM};
use ocular_core::{fold_in_user_with, FactorModel, FoldInScratch, OcularConfig, Recommendation};
use ocular_linalg::{ops, QuantDtype, QuantizedFactors};
use ocular_sparse::Dataset;
use rayon::prelude::*;
use std::cell::RefCell;

thread_local! {
    // Cold-request working memory, one set per serving thread (rayon
    // workers included): the fold-in solver scratch and the dense score
    // vector. Allocating these per request is what put the cold path's
    // p99 an order of magnitude over its p50; buffers are cleared and
    // resized on every use, so served output is unchanged.
    static FOLD_SCRATCH: RefCell<FoldInScratch> = RefCell::new(FoldInScratch::new());
    static SCORES: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// How the engine picks the items a request scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidatePolicy {
    /// Score every item — exact: output is bitwise identical to
    /// [`ocular_core::recommend_top_m`] for warm users.
    FullCatalog,
    /// Score only items reachable from the requester's co-clusters via the
    /// [`ClusterIndex`]. Falls back to the full catalog when fewer than
    /// `max(m, min_candidates)` un-owned candidates are reachable, so thin
    /// cluster coverage degrades to exact serving instead of short lists.
    /// Non-co-clustered model kinds always take the full-catalog path.
    Clusters {
        /// Fallback floor on usable (un-owned) candidates.
        min_candidates: usize,
    },
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Top-M length used when a request does not specify `m`.
    pub default_m: usize,
    /// Candidate-generation policy.
    pub candidates: CandidatePolicy,
    /// Solver budget for cold-start fold-in (projected-gradient steps).
    pub foldin_steps: usize,
    /// Training hyper-parameters reused by the OCuLaR cold-start fold-in
    /// solve (only `lambda`, `sigma`, `beta`, `max_backtracks` matter
    /// here).
    pub foldin: OcularConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            default_m: 10,
            candidates: CandidatePolicy::Clusters { min_candidates: 50 },
            foldin_steps: 100,
            foldin: OcularConfig::default(),
        }
    }
}

/// One serving request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// A user present in the training matrix, addressed by row index.
    Warm {
        /// Training-matrix row of the user.
        user: usize,
        /// List length; 0 means the engine's `default_m`.
        m: usize,
    },
    /// A cold-start user described only by a basket of item indices; the
    /// model's [`ocular_api::FoldIn`] capability scores it at request time
    /// (Section VIII). Model kinds without that capability answer with
    /// [`OcularError::Unsupported`].
    Cold {
        /// Items the unseen user has interacted with.
        basket: Vec<usize>,
        /// List length; 0 means the engine's `default_m`.
        m: usize,
    },
    /// A warm user addressed by **external** id, resolved through the
    /// engine dataset's id maps (O(1)); unknown ids answer with
    /// [`OcularError::UnknownExternalId`]. Under the identity mapping
    /// (no id maps) any in-range id resolves to itself.
    WarmExternal {
        /// External id of the user, as it appeared at ingestion time.
        user: u64,
        /// List length; 0 means the engine's `default_m`.
        m: usize,
    },
    /// A cold-start basket of **external** item ids, each resolved
    /// through the engine dataset's id maps before fold-in.
    ColdExternal {
        /// External ids of the items the unseen user interacted with.
        basket: Vec<u64>,
        /// List length; 0 means the engine's `default_m`.
        m: usize,
    },
}

/// A served recommendation list plus serving telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedList {
    /// The top-M list, score descending, ties by ascending item.
    pub items: Vec<Recommendation>,
    /// Number of items actually scored for this request.
    pub scored: usize,
    /// Whether the cluster policy fell back to the full catalog (always
    /// true under [`CandidatePolicy::Clusters`] for non-co-clustered
    /// kinds).
    pub fell_back: bool,
    /// Whether a *warm* request was answered by request-time fold-in
    /// because the user is newer than the active snapshot (present in the
    /// refreshed dataset, absent from the model). Always false for cold
    /// requests — fold-in is their normal path, not a fallback.
    pub folded_in: bool,
}

/// Request-level serving failures — the workspace-wide
/// [`OcularError`].
pub type ServeError = OcularError;

/// The model a loaded snapshot put behind the engine.
// One lives per engine generation — never in a collection — so the size
// spread between the inline OCuLaR fast path and the boxed generic path
// costs nothing, while boxing would add a pointer chase per request.
#[allow(clippy::large_enum_variant)]
enum EngineModel {
    /// OCuLaR: factor model + co-cluster candidate index (the specialised
    /// fast path), optionally with a quantized copy of the item factors
    /// that scoring dispatches to.
    Ocular {
        model: FactorModel,
        index: ClusterIndex,
        quant: Option<QuantizedFactors>,
        /// `item_factors.column_sums()`, cached at build: the fold-in
        /// solve needs it on every cold request and it is model-constant.
        item_sum: Vec<f64>,
    },
    /// Any other kind, served through the trait hierarchy.
    Generic(Box<dyn Model>),
}

impl EngineModel {
    fn n_users(&self) -> usize {
        match self {
            EngineModel::Ocular { model, .. } => model.n_users(),
            EngineModel::Generic(m) => m.n_users(),
        }
    }

    fn n_items(&self) -> usize {
        match self {
            EngineModel::Ocular { model, .. } => model.n_items(),
            EngineModel::Generic(m) => m.n_items(),
        }
    }
}

/// What an [`EngineBuilder`] builds an engine around.
// Builder-only value, consumed once by `build()`; variant size spread is
// irrelevant.
#[allow(clippy::large_enum_variant)]
enum EngineSource {
    /// A loaded snapshot of any kind.
    Any(AnySnapshot),
    /// An OCuLaR factor model — the builder derives the candidate index
    /// with its configured [`IndexConfig`].
    Model(FactorModel),
    /// Any boxed [`Model`] (no snapshot file involved) — the programmatic
    /// path for baseline kinds.
    Boxed(Box<dyn Model>),
}

/// The one way to construct a [`ServeEngine`] — from a snapshot, an
/// OCuLaR model, or any boxed [`Model`], plus the serving dataset and
/// knobs. The accreted positional `new` / `from_any` / `from_recommender`
/// / `from_model` constructors it replaced are gone.
///
/// ```ignore
/// let engine = EngineBuilder::from_loaded(loaded)   // LoadedSnapshot
///     .dataset(interactions)
///     .candidates(CandidatePolicy::Clusters { min_candidates: 50 })
///     .build()?;
/// ```
///
/// The dataset may be **larger** than the model on both axes (dataset ⊇
/// model): users and items appended after the snapshot was trained are
/// served by request-time fold-in until the next retrain/hot-swap — the
/// live-refresh contract. A dataset *smaller* than the model is still a
/// [`OcularError::ShapeMismatch`].
pub struct EngineBuilder {
    source: EngineSource,
    dataset: Option<Dataset>,
    cfg: ServeConfig,
    index_cfg: IndexConfig,
    generation: u64,
    quantize: Option<QuantDtype>,
}

impl EngineBuilder {
    /// Starts from a snapshot of any model kind.
    pub fn from_snapshot(snapshot: AnySnapshot) -> Self {
        EngineBuilder {
            source: EngineSource::Any(snapshot),
            dataset: None,
            cfg: ServeConfig::default(),
            index_cfg: IndexConfig::default(),
            generation: 0,
            quantize: None,
        }
    }

    /// Starts from a freshly loaded snapshot, adopting its generation
    /// metadata when the file carries any (see
    /// [`crate::snapshot::LoadedSnapshot`]).
    pub fn from_loaded(loaded: LoadedSnapshot) -> Self {
        let generation = loaded.meta.map_or(0, |m| m.generation);
        Self::from_snapshot(loaded.snapshot).generation(generation)
    }

    /// Starts from an OCuLaR factor model; the builder derives the
    /// co-cluster candidate index with the configured
    /// [`EngineBuilder::index_config`].
    pub fn from_model(model: FactorModel) -> Self {
        EngineBuilder {
            source: EngineSource::Model(model),
            dataset: None,
            cfg: ServeConfig::default(),
            index_cfg: IndexConfig::default(),
            generation: 0,
            quantize: None,
        }
    }

    /// Starts from any boxed [`Model`] — the programmatic path for
    /// baseline kinds.
    pub fn from_recommender(model: Box<dyn Model>) -> Self {
        EngineBuilder {
            source: EngineSource::Boxed(model),
            dataset: None,
            cfg: ServeConfig::default(),
            index_cfg: IndexConfig::default(),
            generation: 0,
            quantize: None,
        }
    }

    /// The serving interaction [`Dataset`] — owned-item exclusion, id
    /// maps, and fold-in baskets for users newer than the model. Required.
    pub fn dataset(mut self, dataset: Dataset) -> Self {
        self.dataset = Some(dataset);
        self
    }

    /// Replaces the whole [`ServeConfig`] at once.
    pub fn config(mut self, cfg: ServeConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Candidate-generation policy knob.
    pub fn candidates(mut self, policy: CandidatePolicy) -> Self {
        self.cfg.candidates = policy;
        self
    }

    /// Top-M length used when a request does not specify `m`.
    pub fn default_m(mut self, m: usize) -> Self {
        self.cfg.default_m = m;
        self
    }

    /// Index build parameters, used only by [`EngineBuilder::from_model`].
    pub fn index_config(mut self, index_cfg: IndexConfig) -> Self {
        self.index_cfg = index_cfg;
        self
    }

    /// Model generation served by this engine (reported in responses and
    /// `/stats`; the hot-swap tier keeps it monotone across reloads).
    pub fn generation(mut self, generation: u64) -> Self {
        self.generation = generation;
        self
    }

    /// Serves the catalog through a quantized item-factor representation
    /// (`f32` or per-row affine `int8`) instead of the f64 master.
    ///
    /// If the snapshot already carries a matching quantized copy (written
    /// by `--quantize` at train time) it is used as-is; otherwise the
    /// builder re-quantizes from the f64 master at build time — old
    /// snapshots opt in without retraining. Only OCuLaR sources have a
    /// factor representation to narrow; requesting quantization for any
    /// other kind is an [`OcularError::InvalidConfig`] at build.
    pub fn quantization(mut self, dtype: QuantDtype) -> Self {
        self.quantize = Some(dtype);
        self
    }

    /// Builds the engine, validating dataset ⊇ model.
    pub fn build(self) -> Result<ServeEngine, OcularError> {
        let model = match self.source {
            EngineSource::Any(AnySnapshot::Ocular(s)) => {
                // keep a snapshot-carried copy only when it matches the
                // requested dtype; otherwise re-quantize from the master
                let quant = match self.quantize {
                    Some(dtype) if s.quant.as_ref().map(QuantizedFactors::dtype) != Some(dtype) => {
                        Some(QuantizedFactors::quantize(&s.model.item_factors, dtype))
                    }
                    _ => s.quant,
                };
                let item_sum = s.model.item_factors.column_sums();
                EngineModel::Ocular {
                    model: s.model,
                    index: s.index,
                    quant,
                    item_sum,
                }
            }
            EngineSource::Model(m) => {
                let s = Snapshot::build(m, &self.index_cfg);
                let quant = self
                    .quantize
                    .map(|dtype| QuantizedFactors::quantize(&s.model.item_factors, dtype));
                let item_sum = s.model.item_factors.column_sums();
                EngineModel::Ocular {
                    model: s.model,
                    index: s.index,
                    quant,
                    item_sum,
                }
            }
            EngineSource::Any(AnySnapshot::Other(m)) | EngineSource::Boxed(m) => {
                if let Some(dtype) = self.quantize {
                    return Err(OcularError::InvalidConfig(format!(
                        "quantized serving ({dtype}) needs an OCuLaR snapshot; kind `{}` \
                         has no factor representation to narrow",
                        m.kind()
                    )));
                }
                EngineModel::Generic(m)
            }
        };
        let owned = self.dataset.ok_or_else(|| {
            OcularError::InvalidConfig(
                "EngineBuilder needs a serving dataset (call .dataset(...))".into(),
            )
        })?;
        // dataset ⊇ model: equal shapes are the steady state, a strictly
        // larger dataset means deltas arrived since the snapshot was
        // trained and the overhang is served by fold-in.
        if owned.n_users() < model.n_users() || owned.n_items() < model.n_items() {
            return Err(OcularError::ShapeMismatch {
                expected: (model.n_users(), model.n_items()),
                found: (owned.n_users(), owned.n_items()),
            });
        }
        Ok(ServeEngine {
            model,
            owned,
            cfg: self.cfg,
            generation: self.generation,
        })
    }
}

/// The in-process serving engine.
///
/// Holds the loaded model (any snapshot kind) and the training
/// interaction [`Dataset`] — used both for owned-item exclusion and for
/// resolving external-id requests through the dataset's id maps. All
/// serving methods take `&self`, so one engine can be shared across
/// threads; [`ServeEngine::serve_batch`] does exactly that via rayon.
///
/// Construct through [`EngineBuilder`].
pub struct ServeEngine {
    model: EngineModel,
    owned: Dataset,
    cfg: ServeConfig,
    generation: u64,
}

impl ServeEngine {
    /// The training interaction store behind the engine — owned-item
    /// exclusion lists plus the external↔internal id maps.
    pub fn dataset(&self) -> &Dataset {
        &self.owned
    }

    /// External id of internal item `i` (identity when the dataset has no
    /// id maps) — what responses should print when requests arrived with
    /// external ids.
    ///
    /// # Panics
    /// Panics if `i >= n_items`.
    pub fn external_item(&self, i: usize) -> u64 {
        self.owned.external_item(i)
    }

    /// The engine's factor model.
    ///
    /// # Panics
    /// Panics if the engine serves a non-OCuLaR kind; check
    /// [`ServeEngine::kind`] first, or use the trait-level accessors.
    pub fn model(&self) -> &FactorModel {
        match &self.model {
            EngineModel::Ocular { model, .. } => model,
            EngineModel::Generic(m) => {
                panic!("engine serves kind `{}`, not an OCuLaR model", m.kind())
            }
        }
    }

    /// The engine's candidate-generation index.
    ///
    /// # Panics
    /// Panics if the engine serves a non-OCuLaR kind (no index exists).
    pub fn index(&self) -> &ClusterIndex {
        match &self.model {
            EngineModel::Ocular { index, .. } => index,
            EngineModel::Generic(m) => {
                panic!(
                    "engine serves kind `{}`, which has no cluster index",
                    m.kind()
                )
            }
        }
    }

    /// The kind tag of the model being served.
    pub fn kind(&self) -> &'static str {
        match &self.model {
            EngineModel::Ocular { .. } => OCULAR_KIND,
            EngineModel::Generic(m) => m.kind(),
        }
    }

    /// Name of the active quantized scoring dtype (`"f32"` / `"int8"`),
    /// or `None` when the engine scores through the f64 master —
    /// reported in wire responses and `/stats`.
    pub fn dtype(&self) -> Option<&'static str> {
        self.quant().map(|q| q.dtype().name())
    }

    /// The quantized item factors scoring dispatches to, if any.
    fn quant(&self) -> Option<&QuantizedFactors> {
        match &self.model {
            EngineModel::Ocular { quant, .. } => quant.as_ref(),
            EngineModel::Generic(_) => None,
        }
    }

    /// The model generation this engine serves (0 when never set) —
    /// stamped into responses and `/stats`, kept monotone across hot
    /// swaps by [`crate::swap::SwapEngine`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Users the model was trained on; dataset users at or past this row
    /// arrived after the snapshot and are served by fold-in.
    pub fn model_users(&self) -> usize {
        self.model.n_users()
    }

    /// Items the model was trained on (recommendable catalog).
    pub fn model_items(&self) -> usize {
        self.model.n_items()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Serves one request. External-id requests resolve through the
    /// dataset's id maps first and then take exactly the warm/cold paths.
    pub fn serve_one(&self, req: &Request) -> Result<ServedList, ServeError> {
        match req {
            Request::Warm { user, m } => self.serve_warm(*user, self.effective_m(*m)),
            Request::Cold { basket, m } => self.serve_cold(basket, self.effective_m(*m)),
            Request::WarmExternal { user, m } => {
                let internal =
                    self.owned
                        .user_index(*user)
                        .ok_or(OcularError::UnknownExternalId {
                            external: *user,
                            entity: "user",
                        })?;
                self.serve_warm(internal, self.effective_m(*m))
            }
            Request::ColdExternal { basket, m } => {
                let internal = basket
                    .iter()
                    .map(|&ext| {
                        self.owned
                            .item_index(ext)
                            .ok_or(OcularError::UnknownExternalId {
                                external: ext,
                                entity: "item",
                            })
                    })
                    .collect::<Result<Vec<usize>, _>>()?;
                self.serve_cold(&internal, self.effective_m(*m))
            }
        }
    }

    /// Serves a batch of requests in parallel on the ambient rayon pool.
    /// Responses are returned in request order, and every response is
    /// identical to what [`ServeEngine::serve_one`] returns for that
    /// request — batching changes wall-clock, never output.
    pub fn serve_batch(&self, requests: &[Request]) -> Vec<Result<ServedList, ServeError>> {
        requests.par_iter().map(|r| self.serve_one(r)).collect()
    }

    /// [`ServeEngine::serve_batch`] under an explicit thread count
    /// (`None` = ambient pool) — the same knob as
    /// [`ocular_parallel::fit_parallel`].
    pub fn serve_batch_threads(
        &self,
        requests: &[Request],
        threads: Option<usize>,
    ) -> Vec<Result<ServedList, ServeError>> {
        ocular_parallel::with_threads(threads, || self.serve_batch(requests))
    }

    /// Renders a serving result as the wire protocol's reply — the one
    /// encoding every transport (stdin CLI, TCP front-end) emits.
    /// `item_ids` are included exactly when the dataset has id maps.
    pub fn wire_reply(
        &self,
        req: &Request,
        result: &Result<ServedList, ServeError>,
    ) -> crate::protocol::WireReply {
        use crate::protocol::{WireReply, WireResponse};
        match result {
            Err(e) => WireReply::Err(e.into()),
            Ok(list) => {
                let external = |i: usize| self.external_item(i);
                let translate: Option<&dyn Fn(usize) -> u64> = if self.owned.ids().is_some() {
                    Some(&external)
                } else {
                    None
                };
                WireReply::Ok(
                    WireResponse::new(req, list, translate)
                        .with_model(self.generation, self.kind())
                        .with_dtype(self.dtype()),
                )
            }
        }
    }

    fn effective_m(&self, m: usize) -> usize {
        if m == 0 {
            self.cfg.default_m
        } else {
            m
        }
    }

    fn serve_warm(&self, user: usize, m: usize) -> Result<ServedList, ServeError> {
        if user >= self.model.n_users() {
            // dataset ⊇ model: a row past the model but inside the dataset
            // belongs to a user appended after the snapshot was trained —
            // serve them by request-time fold-in on their interactions
            // (truncated to the model's catalog) until the next hot swap.
            if user < self.owned.n_users() {
                let basket: Vec<usize> = self
                    .owned
                    .row(user)
                    .iter()
                    .map(|&i| i as usize)
                    .filter(|&i| i < self.model.n_items())
                    .collect();
                let mut list = self.serve_cold(&basket, m)?;
                list.folded_in = true;
                return Ok(list);
            }
            return Err(OcularError::UnknownUser {
                user,
                n_users: self.owned.n_users(),
            });
        }
        match &self.model {
            EngineModel::Ocular { model, .. } => {
                let factors = model.user_factors.row(user);
                Ok(self.select(model, factors, self.owned.row(user), m))
            }
            EngineModel::Generic(model) => {
                let mut scores = Vec::new();
                model.score_user(user, &mut scores);
                Ok(self.select_scores(&scores, self.owned.row(user), m))
            }
        }
    }

    fn serve_cold(&self, basket: &[usize], m: usize) -> Result<ServedList, ServeError> {
        let exclude = validate_basket(basket, self.model.n_items())?;
        match &self.model {
            EngineModel::Ocular {
                model, item_sum, ..
            } => {
                let fold = FOLD_SCRATCH.with(|s| {
                    fold_in_user_with(
                        model,
                        basket,
                        &self.cfg.foldin,
                        1.0,
                        self.cfg.foldin_steps,
                        item_sum,
                        &mut s.borrow_mut(),
                    )
                });
                Ok(self.select(model, &fold.factors, &exclude, m))
            }
            EngineModel::Generic(model) => {
                let fold_in = model.as_fold_in().ok_or(OcularError::Unsupported {
                    kind: model.name(),
                    capability: "cold-start fold-in",
                })?;
                let mut scores = Vec::new();
                fold_in.score_basket(basket, &mut scores)?;
                Ok(self.select_scores(&scores, &exclude, m))
            }
        }
    }

    /// Generic selection over a dense score vector: the whole catalog is
    /// scored, then selected through the shared bounded-heap kernel. Under
    /// the cluster policy this *is* the fallback path, so `fell_back`
    /// reports it as such.
    fn select_scores(&self, scores: &[f64], exclude: &[u32], m: usize) -> ServedList {
        ServedList {
            items: top_m_excluding(scores, exclude, m),
            scored: scores.len(),
            fell_back: !matches!(self.cfg.candidates, CandidatePolicy::FullCatalog),
            folded_in: false,
        }
    }

    /// OCuLaR core selection: candidate generation per policy, then
    /// bounded-heap top-M with the workspace ties convention (probability
    /// descending, ties by ascending item index). `exclude` is ascending.
    fn select(
        &self,
        model: &FactorModel,
        factors: &[f64],
        exclude: &[u32],
        m: usize,
    ) -> ServedList {
        if let CandidatePolicy::Clusters { min_candidates } = self.cfg.candidates {
            let index = self.index();
            let candidates = index.candidates(factors);
            // usable = candidates not excluded (both lists ascending)
            let usable = candidates.len() - intersection_size(&candidates, exclude);
            if usable >= m.max(min_candidates) {
                return self.select_candidates(model, factors, &candidates, exclude, m);
            }
        }
        self.select_full(model, factors, exclude, m)
    }

    /// Scores the full catalog. For a warm user this computes exactly the
    /// floats of [`FactorModel::score_user`] and selects through the same
    /// kernel as [`ocular_core::recommend_top_m`], hence bitwise-identical
    /// lists.
    fn select_full(
        &self,
        model: &FactorModel,
        factors: &[f64],
        exclude: &[u32],
        m: usize,
    ) -> ServedList {
        let n = model.n_items();
        SCORES.with(|cell| {
            let mut scores = cell.borrow_mut();
            scores.clear();
            scores.resize(n, 0.0);
            if let Some(quant) = self.quant() {
                // blocked quantized kernel over the whole catalog (the user
                // row — warm or freshly folded-in — narrows per request)
                let query = quant.prepare(factors);
                quant.score_block(&query, 0, &mut scores);
                for s in scores.iter_mut() {
                    *s = prob_from_affinity(*s);
                }
            } else {
                for (i, s) in scores.iter_mut().enumerate() {
                    *s = prob_from_affinity(ops::dot(factors, model.item_factors.row(i)));
                }
            }
            self.select_scores(&scores, exclude, m)
        })
    }

    /// Scores only the candidate list (ascending), skipping exclusions.
    fn select_candidates(
        &self,
        model: &FactorModel,
        factors: &[f64],
        candidates: &[u32],
        exclude: &[u32],
        m: usize,
    ) -> ServedList {
        let query = self.quant().map(|q| q.prepare(factors));
        let mut heap = TopM::new(m);
        let mut cursor = 0usize;
        let mut scored = 0usize;
        for &c in candidates {
            let item = c as usize;
            while cursor < exclude.len() && (exclude[cursor] as usize) < item {
                cursor += 1;
            }
            if cursor < exclude.len() && exclude[cursor] as usize == item {
                cursor += 1;
                continue;
            }
            let affinity = match (&query, self.quant()) {
                (Some(q), Some(quant)) => quant.score_row(q, item),
                _ => ops::dot(factors, model.item_factors.row(item)),
            };
            heap.push(item, prob_from_affinity(affinity));
            scored += 1;
        }
        ServedList {
            items: heap.into_sorted(),
            scored,
            fell_back: false,
            folded_in: false,
        }
    }

    // ---- scatter-gather support --------------------------------------
    //
    // The sharded coordinator (`crate::shard::ShardedEngine`) fans one
    // cold request across every shard engine, each scoring a contiguous
    // span of the item domain with its replicated item-side state. These
    // span kernels run exactly the per-item arithmetic of `select_full` /
    // `select_candidates`, so the coordinator's merged top-M is bitwise
    // identical to unsharded serving. All of them are OCuLaR-only — the
    // coordinator rejects generic kinds at construction.

    /// Validates and folds a cold basket on the **calling** thread's
    /// [`FoldInScratch`], returning the folded user factors plus the
    /// ascending exclusion list. Scatter-gather runs this once per
    /// request on the worker that owns it, so cold-path allocation stays
    /// gated per shard worker, never globally.
    pub(crate) fn fold_cold(&self, basket: &[usize]) -> Result<(Vec<f64>, Vec<u32>), ServeError> {
        let exclude = validate_basket(basket, self.model.n_items())?;
        match &self.model {
            EngineModel::Ocular {
                model, item_sum, ..
            } => {
                let fold = FOLD_SCRATCH.with(|s| {
                    fold_in_user_with(
                        model,
                        basket,
                        &self.cfg.foldin,
                        1.0,
                        self.cfg.foldin_steps,
                        item_sum,
                        &mut s.borrow_mut(),
                    )
                });
                Ok((fold.factors, exclude))
            }
            EngineModel::Generic(m) => Err(OcularError::Unsupported {
                kind: m.name(),
                capability: "scatter-gather fold-in",
            }),
        }
    }

    /// Replicates [`ServeEngine::select`]'s policy decision for a folded
    /// factor row: `Some(candidates)` when the cluster path would serve
    /// it, `None` when the full catalog would. The index is item-side
    /// state, replicated per shard, so every engine decides identically.
    pub(crate) fn cold_plan(&self, factors: &[f64], exclude: &[u32], m: usize) -> Option<Vec<u32>> {
        if let CandidatePolicy::Clusters { min_candidates } = self.cfg.candidates {
            let candidates = self.index().candidates(factors);
            let usable = candidates.len() - intersection_size(&candidates, exclude);
            if usable >= m.max(min_candidates) {
                return Some(candidates);
            }
        }
        None
    }

    /// Scores the contiguous item span `start .. start + len` (the span
    /// analogue of `select_full`), returning the span's top-`m` with
    /// `exclude` skipped, plus the rows scored (`len`, matching
    /// `select_full`'s whole-catalog count when spans partition it).
    pub(crate) fn score_full_span(
        &self,
        factors: &[f64],
        exclude: &[u32],
        m: usize,
        start: usize,
        len: usize,
    ) -> (Vec<Recommendation>, usize) {
        let model = self.model();
        SCORES.with(|cell| {
            let mut scores = cell.borrow_mut();
            scores.clear();
            scores.resize(len, 0.0);
            if let Some(quant) = self.quant() {
                // the blocked kernel scores rows independently, so a span
                // sees the same floats it would inside a whole-catalog call
                let query = quant.prepare(factors);
                quant.score_block(&query, start, &mut scores);
                for s in scores.iter_mut() {
                    *s = prob_from_affinity(*s);
                }
            } else {
                for (j, s) in scores.iter_mut().enumerate() {
                    *s = prob_from_affinity(ops::dot(factors, model.item_factors.row(start + j)));
                }
            }
            let mut heap = TopM::new(m);
            let mut cursor = exclude.partition_point(|&e| (e as usize) < start);
            for (j, &p) in scores.iter().enumerate() {
                let item = start + j;
                if cursor < exclude.len() && exclude[cursor] as usize == item {
                    cursor += 1;
                    continue;
                }
                heap.push(item, p);
            }
            (heap.into_sorted(), len)
        })
    }

    /// Scores one contiguous slice of the (ascending) candidate list —
    /// the span analogue of `select_candidates`. Returns the slice's
    /// top-`m` and the number of un-excluded candidates scored.
    pub(crate) fn score_candidates_span(
        &self,
        factors: &[f64],
        candidates: &[u32],
        exclude: &[u32],
        m: usize,
    ) -> (Vec<Recommendation>, usize) {
        let model = self.model();
        let query = self.quant().map(|q| q.prepare(factors));
        let mut heap = TopM::new(m);
        let mut cursor = 0usize;
        let mut scored = 0usize;
        for &c in candidates {
            let item = c as usize;
            while cursor < exclude.len() && (exclude[cursor] as usize) < item {
                cursor += 1;
            }
            if cursor < exclude.len() && exclude[cursor] as usize == item {
                cursor += 1;
                continue;
            }
            let affinity = match (&query, self.quant()) {
                (Some(q), Some(quant)) => quant.score_row(q, item),
                _ => ops::dot(factors, model.item_factors.row(item)),
            };
            heap.push(item, prob_from_affinity(affinity));
            scored += 1;
        }
        (heap.into_sorted(), scored)
    }

    /// Whether the cluster policy would report a full-catalog serve as a
    /// fallback — the `fell_back` flag `select_scores` stamps.
    pub(crate) fn full_catalog_is_fallback(&self) -> bool {
        !matches!(self.cfg.candidates, CandidatePolicy::FullCatalog)
    }

    /// `m == 0` ⇒ the engine's configured default list length.
    pub(crate) fn effective_m_pub(&self, m: usize) -> usize {
        self.effective_m(m)
    }
}

/// Size of the intersection of two ascending `u32` lists.
fn intersection_size(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocular_api::Recommender as _;
    use ocular_baselines::{ItemKnn, KnnConfig, Popularity, UserKnn};
    use ocular_core::{fit, recommend_top_m};
    use ocular_datasets::planted::{generate, PlantedConfig};

    fn trained() -> (FactorModel, Dataset, OcularConfig) {
        let data = generate(&PlantedConfig {
            n_users: 60,
            n_items: 40,
            k: 3,
            users_per_cluster: 20,
            items_per_cluster: 14,
            user_overlap: 0.2,
            item_overlap: 0.2,
            within_density: 0.6,
            noise_density: 0.01,
            seed: 5,
        });
        let cfg = OcularConfig {
            k: 3,
            lambda: 0.2,
            max_iters: 40,
            seed: 2,
            ..Default::default()
        };
        let model = fit(&data.matrix, &cfg).model;
        (model, data.matrix, cfg)
    }

    fn engine(policy: CandidatePolicy) -> (ServeEngine, Dataset) {
        let (model, r, train_cfg) = trained();
        let cfg = ServeConfig {
            default_m: 5,
            candidates: policy,
            foldin: train_cfg,
            ..Default::default()
        };
        let e = EngineBuilder::from_model(model)
            .dataset(r.clone())
            .index_config(IndexConfig {
                rel: 0.5,
                floor: 10,
            })
            .config(cfg)
            .build()
            .unwrap();
        (e, r)
    }

    #[test]
    fn full_catalog_matches_recommend_top_m_bitwise() {
        let (e, r) = engine(CandidatePolicy::FullCatalog);
        assert_eq!(e.kind(), "ocular");
        for u in 0..e.model().n_users() {
            let served = e.serve_one(&Request::Warm { user: u, m: 10 }).unwrap();
            assert_eq!(served.items, recommend_top_m(e.model(), &r, u, 10));
            assert!(!served.fell_back);
            assert_eq!(served.scored, e.model().n_items());
        }
    }

    #[test]
    fn cluster_policy_scores_fewer_items() {
        let (e, _) = engine(CandidatePolicy::Clusters { min_candidates: 1 });
        let mut restricted = 0;
        for u in 0..e.model().n_users() {
            let served = e.serve_one(&Request::Warm { user: u, m: 3 }).unwrap();
            assert_eq!(served.items.len(), 3);
            if !served.fell_back {
                assert!(served.scored <= e.model().n_items());
                restricted += usize::from(served.scored < e.model().n_items());
            }
        }
        assert!(
            restricted > 0,
            "a planted-cluster model must restrict at least one user's candidates"
        );
    }

    #[test]
    fn cluster_fallback_when_coverage_thin() {
        // min_candidates above the catalog forces fallback for everyone
        let (e, r) = engine(CandidatePolicy::Clusters {
            min_candidates: 10_000,
        });
        let served = e.serve_one(&Request::Warm { user: 0, m: 5 }).unwrap();
        assert!(served.fell_back);
        assert_eq!(served.items, recommend_top_m(e.model(), &r, 0, 5));
    }

    #[test]
    fn unknown_user_rejected() {
        let (e, _) = engine(CandidatePolicy::FullCatalog);
        let err = e
            .serve_one(&Request::Warm { user: 9999, m: 5 })
            .unwrap_err();
        assert!(matches!(err, ServeError::UnknownUser { user: 9999, .. }));
    }

    #[test]
    fn cold_request_served_and_validated() {
        let (e, _) = engine(CandidatePolicy::Clusters { min_candidates: 1 });
        let served = e
            .serve_one(&Request::Cold {
                basket: vec![0, 1, 2],
                m: 5,
            })
            .unwrap();
        assert_eq!(served.items.len(), 5);
        assert!(served.items.iter().all(|r| ![0, 1, 2].contains(&r.item)));
        // invalid baskets are errors, not panics
        assert!(matches!(
            e.serve_one(&Request::Cold {
                basket: vec![9999],
                m: 5
            }),
            Err(ServeError::BadBasket(_))
        ));
        assert!(matches!(
            e.serve_one(&Request::Cold {
                basket: vec![1, 1],
                m: 5
            }),
            Err(ServeError::BadBasket(_))
        ));
    }

    #[test]
    fn batch_matches_serve_one_in_order() {
        let (e, _) = engine(CandidatePolicy::Clusters { min_candidates: 5 });
        let reqs: Vec<Request> = (0..e.model().n_users())
            .map(|user| Request::Warm { user, m: 7 })
            .chain([Request::Cold {
                basket: vec![3, 4],
                m: 7,
            }])
            .collect();
        let batch = e.serve_batch_threads(&reqs, Some(4));
        assert_eq!(batch.len(), reqs.len());
        for (req, got) in reqs.iter().zip(&batch) {
            assert_eq!(got, &e.serve_one(req));
        }
    }

    #[test]
    fn default_m_applies_when_zero() {
        let (e, _) = engine(CandidatePolicy::FullCatalog);
        let served = e.serve_one(&Request::Warm { user: 1, m: 0 }).unwrap();
        assert_eq!(served.items.len(), e.config().default_m);
    }

    #[test]
    fn shape_mismatch_rejected() {
        // a dataset *smaller* than the model is unusable — exclusion rows
        // and fold-in baskets would be missing
        let (model, _r, _) = trained();
        let bad = Dataset::from_matrix(ocular_sparse::CsrMatrix::empty(3, 3));
        assert!(matches!(
            EngineBuilder::from_model(model).dataset(bad).build(),
            Err(OcularError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn builder_requires_a_dataset() {
        let (model, _, _) = trained();
        assert!(matches!(
            EngineBuilder::from_model(model).build(),
            Err(OcularError::InvalidConfig(_))
        ));
    }

    #[test]
    fn users_newer_than_the_model_are_served_by_fold_in() {
        let (model, r, train_cfg) = trained();
        let (model_users, model_items) = (model.n_users(), model.n_items());
        // append a delta: one brand-new user interacting with items the
        // model knows, plus a brand-new item the model does not
        let grown = r
            .append_deltas([
                (model_users as u64, 0),
                (model_users as u64, 3),
                (model_users as u64, model_items as u64), // beyond the catalog
            ])
            .unwrap();
        let e = EngineBuilder::from_model(model)
            .dataset(grown)
            .config(ServeConfig {
                default_m: 5,
                candidates: CandidatePolicy::FullCatalog,
                foldin: train_cfg,
                ..Default::default()
            })
            .generation(3)
            .build()
            .unwrap();
        assert_eq!(e.generation(), 3);
        assert_eq!(e.model_users(), model_users);

        // the new user serves via fold-in on the model-known part of
        // their basket, and the response says so
        let served = e
            .serve_one(&Request::Warm {
                user: model_users,
                m: 5,
            })
            .unwrap();
        assert!(served.folded_in);
        assert_eq!(served.items.len(), 5);
        assert!(served.items.iter().all(|x| ![0, 3].contains(&x.item)));
        // identical to the equivalent cold request, telemetry aside
        let cold = e
            .serve_one(&Request::Cold {
                basket: vec![0, 3],
                m: 5,
            })
            .unwrap();
        assert_eq!(served.items, cold.items);
        assert!(!cold.folded_in);

        // existing users still serve warm
        assert!(
            !e.serve_one(&Request::Warm { user: 0, m: 5 })
                .unwrap()
                .folded_in
        );
        // users beyond even the dataset are still unknown, reported
        // against the dataset's user count
        let err = e
            .serve_one(&Request::Warm {
                user: model_users + 1,
                m: 5,
            })
            .unwrap_err();
        assert!(matches!(err, ServeError::UnknownUser { n_users, .. }
            if n_users == model_users + 1));
    }

    #[test]
    fn generic_kind_served_exactly_with_cluster_policy_degrading() {
        let (_, r, _) = trained();
        let knn = ItemKnn::fit(&r, &KnnConfig { k: 10 });
        let e = EngineBuilder::from_recommender(Box::new(knn.clone()))
            .dataset(r.clone())
            .default_m(5)
            .candidates(CandidatePolicy::Clusters { min_candidates: 5 })
            .build()
            .unwrap();
        assert_eq!(e.kind(), "item-knn");
        for u in 0..r.n_rows() {
            let served = e.serve_one(&Request::Warm { user: u, m: 7 }).unwrap();
            assert!(served.fell_back, "cluster policy must degrade to exact");
            assert_eq!(served.scored, r.n_cols());
            let want = knn.recommend(u, r.row(u), 7).unwrap();
            assert_eq!(served.items.len(), want.len());
            for (a, b) in served.items.iter().zip(&want) {
                assert_eq!((a.item, a.probability), (b.item, b.score));
            }
        }
        // cold start flows through the model's FoldIn capability
        let served = e
            .serve_one(&Request::Cold {
                basket: vec![0, 1],
                m: 5,
            })
            .unwrap();
        assert_eq!(served.items.len(), 5);
        assert!(served.items.iter().all(|x| ![0, 1].contains(&x.item)));
    }

    #[test]
    fn generic_kind_without_fold_in_rejects_cold_requests() {
        let (_, r, _) = trained();
        let e = EngineBuilder::from_recommender(Box::new(UserKnn::fit(&r, &KnnConfig { k: 10 })))
            .dataset(r.clone())
            .build()
            .unwrap();
        assert!(matches!(
            e.serve_one(&Request::Cold {
                basket: vec![0],
                m: 3
            }),
            Err(OcularError::Unsupported { .. })
        ));
        // warm requests still serve
        assert!(e.serve_one(&Request::Warm { user: 0, m: 3 }).is_ok());
    }

    #[test]
    fn generic_batch_deterministic_across_threads() {
        let (_, r, _) = trained();
        let e = EngineBuilder::from_recommender(Box::new(Popularity::fit(&r)))
            .dataset(r.clone())
            .build()
            .unwrap();
        let reqs: Vec<Request> = (0..r.n_rows())
            .map(|user| Request::Warm { user, m: 6 })
            .collect();
        let reference = e.serve_batch_threads(&reqs, Some(1));
        for threads in [2usize, 4] {
            assert_eq!(e.serve_batch_threads(&reqs, Some(threads)), reference);
        }
    }

    #[test]
    fn quantized_engines_report_dtype_and_score_within_tolerance() {
        let (model, r, train_cfg) = trained();
        let cfg = ServeConfig {
            default_m: 5,
            candidates: CandidatePolicy::FullCatalog,
            foldin: train_cfg,
            ..Default::default()
        };
        let f64_engine = EngineBuilder::from_model(model.clone())
            .dataset(r.clone())
            .config(cfg.clone())
            .build()
            .unwrap();
        assert_eq!(f64_engine.dtype(), None);
        for (dtype, name, tol) in [
            (QuantDtype::F32, "f32", 1e-5),
            (QuantDtype::I8, "int8", 5e-2),
        ] {
            let e = EngineBuilder::from_model(model.clone())
                .dataset(r.clone())
                .config(cfg.clone())
                .quantization(dtype)
                .build()
                .unwrap();
            assert_eq!(e.dtype(), Some(name));
            for u in 0..e.model().n_users() {
                let got = e.serve_one(&Request::Warm { user: u, m: 5 }).unwrap();
                let want = f64_engine
                    .serve_one(&Request::Warm { user: u, m: 5 })
                    .unwrap();
                // per-item probabilities stay within the dtype's error
                // envelope of the f64 path
                for (g, w) in got.items.iter().zip(&want.items) {
                    assert!(
                        (g.probability - w.probability).abs() <= tol,
                        "{name} user {u}: |{} - {}| > {tol}",
                        g.probability,
                        w.probability
                    );
                }
            }
            // cold requests fold in at f64 and narrow the folded row
            let served = e
                .serve_one(&Request::Cold {
                    basket: vec![0, 1],
                    m: 5,
                })
                .unwrap();
            assert_eq!(served.items.len(), 5);
        }
    }

    #[test]
    fn quantized_cluster_policy_serves_both_paths() {
        let (model, r, train_cfg) = trained();
        let e = EngineBuilder::from_model(model)
            .dataset(r)
            .index_config(IndexConfig {
                rel: 0.5,
                floor: 10,
            })
            .config(ServeConfig {
                default_m: 5,
                candidates: CandidatePolicy::Clusters { min_candidates: 1 },
                foldin: train_cfg,
                ..Default::default()
            })
            .quantization(QuantDtype::I8)
            .build()
            .unwrap();
        let (mut restricted, mut full) = (0, 0);
        for u in 0..e.model().n_users() {
            let served = e.serve_one(&Request::Warm { user: u, m: 3 }).unwrap();
            assert_eq!(served.items.len(), 3);
            if served.scored < e.model().n_items() {
                restricted += 1;
            } else {
                full += 1;
            }
        }
        assert!(restricted > 0, "candidate path must be exercised");
        let _ = full;
    }

    #[test]
    fn snapshot_carried_quant_is_adopted_or_requantized() {
        let (model, r, _) = trained();
        let snap =
            Snapshot::build(model, &IndexConfig::default()).with_quantization(QuantDtype::I8);
        // no builder request: the snapshot's copy is served as-is
        let e = EngineBuilder::from_snapshot(AnySnapshot::Ocular(snap.clone()))
            .dataset(r.clone())
            .build()
            .unwrap();
        assert_eq!(e.dtype(), Some("int8"));
        // a mismatching request re-quantizes from the f64 master
        let e = EngineBuilder::from_snapshot(AnySnapshot::Ocular(snap))
            .dataset(r)
            .quantization(QuantDtype::F32)
            .build()
            .unwrap();
        assert_eq!(e.dtype(), Some("f32"));
    }

    #[test]
    fn quantization_rejected_for_generic_kinds() {
        let (_, r, _) = trained();
        let built = EngineBuilder::from_recommender(Box::new(Popularity::fit(&r)))
            .dataset(r)
            .quantization(QuantDtype::F32)
            .build();
        assert!(matches!(built, Err(OcularError::InvalidConfig(_))));
    }

    #[test]
    fn intersection_size_counts() {
        assert_eq!(intersection_size(&[1, 3, 5], &[2, 3, 5, 7]), 2);
        assert_eq!(intersection_size(&[], &[1]), 0);
    }

    /// Attaches non-trivial external ids (user `u` ↔ `1000 + 7u`, item `i`
    /// ↔ `500 + 3i`) to the trained interactions.
    fn engine_with_ids(policy: CandidatePolicy) -> (ServeEngine, Dataset) {
        let (model, r, train_cfg) = trained();
        let users: Vec<u64> = (0..r.n_users() as u64).map(|u| 1000 + 7 * u).collect();
        let items: Vec<u64> = (0..r.n_items() as u64).map(|i| 500 + 3 * i).collect();
        let ids = ocular_sparse::IdMaps::new(users, items).unwrap();
        let d = Dataset::new(r.matrix().clone(), ids).unwrap();
        let cfg = ServeConfig {
            default_m: 5,
            candidates: policy,
            foldin: train_cfg,
            ..Default::default()
        };
        let e = EngineBuilder::from_model(model)
            .dataset(d.clone())
            .index_config(IndexConfig {
                rel: 0.5,
                floor: 10,
            })
            .config(cfg)
            .build()
            .unwrap();
        (e, d)
    }

    #[test]
    fn external_id_requests_resolve_to_internal_paths() {
        let (e, d) = engine_with_ids(CandidatePolicy::FullCatalog);
        for u in 0..d.n_users() {
            let via_external = e
                .serve_one(&Request::WarmExternal {
                    user: d.external_user(u),
                    m: 8,
                })
                .unwrap();
            let via_internal = e.serve_one(&Request::Warm { user: u, m: 8 }).unwrap();
            assert_eq!(
                via_external, via_internal,
                "external addressing must be a pure id translation for user {u}"
            );
        }
        // items in the response translate back through the engine's maps
        let served = e
            .serve_one(&Request::WarmExternal { user: 1000, m: 3 })
            .unwrap();
        for rec in &served.items {
            assert_eq!(e.external_item(rec.item), 500 + 3 * rec.item as u64);
            assert_eq!(
                e.dataset().item_index(e.external_item(rec.item)),
                Some(rec.item)
            );
        }
    }

    #[test]
    fn external_cold_basket_resolves_items() {
        let (e, d) = engine_with_ids(CandidatePolicy::Clusters { min_candidates: 5 });
        let internal = vec![0usize, 1, 2];
        let external: Vec<u64> = internal.iter().map(|&i| d.external_item(i)).collect();
        let a = e
            .serve_one(&Request::ColdExternal {
                basket: external,
                m: 5,
            })
            .unwrap();
        let b = e
            .serve_one(&Request::Cold {
                basket: internal,
                m: 5,
            })
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_external_ids_rejected_with_typed_error() {
        let (e, _) = engine_with_ids(CandidatePolicy::FullCatalog);
        assert!(matches!(
            e.serve_one(&Request::WarmExternal { user: 1, m: 3 }),
            Err(OcularError::UnknownExternalId {
                external: 1,
                entity: "user"
            })
        ));
        assert!(matches!(
            e.serve_one(&Request::ColdExternal {
                basket: vec![500, 2],
                m: 3
            }),
            Err(OcularError::UnknownExternalId {
                external: 2,
                entity: "item"
            })
        ));
    }

    #[test]
    fn identity_mapping_serves_external_ids_in_range() {
        // no id maps: external ids are the internal indices
        let (e, _) = engine(CandidatePolicy::FullCatalog);
        let a = e
            .serve_one(&Request::WarmExternal { user: 3, m: 4 })
            .unwrap();
        let b = e.serve_one(&Request::Warm { user: 3, m: 4 }).unwrap();
        assert_eq!(a, b);
        assert!(matches!(
            e.serve_one(&Request::WarmExternal {
                user: u64::MAX,
                m: 4
            }),
            Err(OcularError::UnknownExternalId { .. })
        ));
    }
}
