//! Versioned serving snapshots — kind-tagged, polymorphic over model
//! kinds, in two formats.
//!
//! A snapshot is what training ships to the serving tier. Two on-disk
//! representations carry identical bit content:
//!
//! * the **v3 binary container** ([`ocular_api::binary`]) — magic +
//!   kind tag + 8-aligned little-endian sections + trailing checksum.
//!   [`AnySnapshot::load_path`] memory-maps it and the loaded
//!   `FactorModel` / [`ClusterIndex`] / [`IdMaps`] **borrow** their
//!   large buffers from the mapping ([`AnySnapshot::load_v3`]), so
//!   engine start-up allocates nothing per payload and N serve
//!   processes share one page cache;
//! * the **v2 text envelope** below — human-inspectable, and the format
//!   every pre-v3 snapshot is stored in.
//!
//! [`AnySnapshot::load_path`] sniffs the magic bytes, so both load
//! transparently. The **v2** envelope tags the payload with its model
//! kind, so one serving binary loads and serves *any* model in the
//! workspace zoo:
//!
//! ```text
//! ocular-snapshot v2 <kind>
//! <kind-specific model payload, self-delimiting>
//! [cocluster-index v1 <n_clusters> <n_items> <rel>      (kind = ocular only)
//!  <n_clusters lines: "<len> <ascending item ids>">]
//! [id-maps v1 <n_users> <n_items>                       (optional)
//!  <n_users external user ids, one line>
//!  <n_items external item ids, one line>]
//! ocular-snapshot end
//! ```
//!
//! The optional `id-maps` section carries the training
//! [`Dataset`](ocular_sparse::Dataset)'s external↔internal id tables, so
//! the serving tier can answer requests addressed by external ids without
//! re-deriving the compaction from the raw interaction file — the
//! snapshot and the dataset agree on the id space by construction. Write
//! it with [`AnySnapshot::save_with_ids`]; [`AnySnapshot::load_with_ids`]
//! returns it alongside the model. Snapshots without the section (all
//! pre-existing ones) still load.
//!
//! For `kind = ocular` the payload is the `ocular-model v1` text format
//! plus the co-cluster candidate-generation index (built at snapshot time
//! so an engine can come up without re-deriving the inverted lists). For
//! the baselines the payload is each model's
//! [`SnapshotModel`] format (`wals-model v1`, `bpr-model v1`, …).
//!
//! **v1 snapshots still load**: the v1 envelope (`ocular-snapshot v1`) is
//! the OCuLaR-only predecessor with a byte-identical body, and both
//! [`Snapshot::load`] and [`AnySnapshot::load`] accept it.
//!
//! The trailing sentinel makes truncation detectable: a snapshot cut off
//! at any point — mid-factors, mid-index, or missing the last line — is
//! rejected instead of mis-loading.

use crate::index::{ClusterIndex, IndexConfig};
use ocular_api::binary::{is_v3, SectionReader, SectionWriter, SnapshotMeta};
use ocular_api::textio;
use ocular_api::{Model, OcularError, SnapshotModel};
use ocular_baselines::{Bpr, ItemKnn, Popularity, UserKnn, Wals};
use ocular_bytes::{shard_of_key, ModelBytes};
use ocular_core::FactorModel;
use ocular_linalg::{Matrix, QuantDtype, QuantizedFactors};
use ocular_sparse::{IdMaps, RawIdTable};
use std::io::{BufRead, Read, Write};
use std::path::{Path, PathBuf};

/// Magic first line of the legacy (OCuLaR-only) snapshot envelope.
const V1_HEADER: &str = "ocular-snapshot v1";
/// Prefix of the kind-tagged v2 envelope header.
const V2_PREFIX: &str = "ocular-snapshot v2";
/// Magic line opening the index section.
const INDEX_HEADER: &str = "cocluster-index v1";
/// Magic line opening the optional external-id-maps section.
const IDS_HEADER: &str = "id-maps v1";
/// Magic line opening the optional live-refresh metadata section
/// (generation + source-data watermark; see
/// [`ocular_api::binary::SnapshotMeta`]).
const META_HEADER: &str = "snapshot-meta v1";
/// Trailing sentinel proving the snapshot was written to completion.
const FOOTER: &str = "ocular-snapshot end";
/// The kind tag of OCuLaR snapshots (canonically defined on
/// [`FactorModel::KIND`], mirrored here for envelope dispatch).
pub const OCULAR_KIND: &str = FactorModel::KIND;

fn bad(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// [`textio::read_line`] adapted to the `io::Result` the text-envelope
/// loaders still speak.
fn read_line<R: BufRead + ?Sized>(mut r: &mut R) -> std::io::Result<String> {
    textio::read_line(&mut r).map_err(|e| bad(e.to_string()))
}

/// The on-disk representation a snapshot is written in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotFormat {
    /// The line-oriented v2 envelope — human-inspectable, and what every
    /// pre-v3 tool reads.
    Text,
    /// The `ocular-snapshot v3` binary container — mmap-able, checksummed,
    /// loaded zero-copy by the serving tier.
    #[default]
    Binary,
}

/// An OCuLaR serving snapshot: the fitted factor model plus its
/// candidate-generation index.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The fitted factor model.
    pub model: FactorModel,
    /// Per-cluster inverted item lists built at snapshot time.
    pub index: ClusterIndex,
    /// Optional quantized item factors (`f32` or per-row affine `int8`)
    /// for the serving fast path. Produced at save time by
    /// [`Snapshot::with_quantization`]; carried only by the v3 binary
    /// container — the text envelope drops it (the f64 master is always
    /// present, so a text round-trip loses nothing but the precomputed
    /// narrow copy).
    pub quant: Option<QuantizedFactors>,
}

impl Snapshot {
    /// Builds a snapshot from a fitted model, deriving the index with the
    /// given build parameters (see [`ClusterIndex::build`]).
    pub fn build(model: FactorModel, cfg: &IndexConfig) -> Self {
        let index = ClusterIndex::build(&model, cfg);
        Snapshot {
            model,
            index,
            quant: None,
        }
    }

    /// Attaches a quantized copy of the item factors, derived from the
    /// f64 master. Serving engines built from this snapshot score the
    /// catalog through the matching blocked kernel
    /// ([`QuantizedFactors::score_block`]) instead of the f64 path.
    pub fn with_quantization(mut self, dtype: QuantDtype) -> Self {
        self.quant = Some(QuantizedFactors::quantize(&self.model.item_factors, dtype));
        self
    }

    /// Serialises the snapshot (v2 envelope: model + index + sentinel) to
    /// a writer. Use [`AnySnapshot::save_with_ids`] to also embed the
    /// dataset's external-id tables.
    pub fn save<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let mut w = std::io::BufWriter::new(w);
        writeln!(w, "{V2_PREFIX} {OCULAR_KIND}")?;
        self.write_payload(&mut w)?;
        writeln!(w, "{FOOTER}")?;
        w.flush()
    }

    /// Writes the kind-specific payload (model + index), without envelope
    /// header or footer.
    fn write_payload<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        self.model.save(w)?;
        writeln!(
            w,
            "{INDEX_HEADER} {} {} {:e}",
            self.index.n_clusters(),
            self.index.n_items(),
            self.index.rel()
        )?;
        for c in 0..self.index.n_clusters() {
            let list = self.index.cluster_items(c);
            write!(w, "{}", list.len())?;
            for &i in list {
                write!(w, " {i}")?;
            }
            writeln!(w)?;
        }
        Ok(())
    }

    /// Loads an OCuLaR snapshot, accepting both the v1 envelope and a v2
    /// envelope tagged `ocular`, and validating the envelope, the index
    /// section shape, bounds, ordering, and the trailing sentinel. Any
    /// corruption or truncation is an `InvalidData` error.
    pub fn load<R: BufRead>(r: &mut R) -> std::io::Result<Snapshot> {
        let header = read_line(r)?;
        if header != V1_HEADER && header != format!("{V2_PREFIX} {OCULAR_KIND}") {
            return Err(bad(format!(
                "bad snapshot header, expected `{V1_HEADER}` or `{V2_PREFIX} {OCULAR_KIND}`"
            )));
        }
        Self::load_body(r)
    }

    /// Parses the envelope body after the header line: model, index, an
    /// optional (discarded) id-maps section, footer.
    fn load_body<R: BufRead>(r: &mut R) -> std::io::Result<Snapshot> {
        let snapshot = Self::load_payload(r)?;
        read_ids_then_footer(r).map_err(|e| bad(e.to_string()))?;
        Ok(snapshot)
    }

    /// Parses the kind-specific payload: model + index, stopping before
    /// any trailing section.
    fn load_payload<R: BufRead>(r: &mut R) -> std::io::Result<Snapshot> {
        let model = FactorModel::load(r)?;

        let header = read_line(r)?;
        let rest = header
            .strip_prefix(INDEX_HEADER)
            .ok_or_else(|| bad(format!("bad index header, expected `{INDEX_HEADER} …`")))?;
        let fields: Vec<&str> = rest.split_whitespace().collect();
        if fields.len() != 3 {
            return Err(bad("index header needs n_clusters n_items rel".into()));
        }
        let n_clusters: usize = fields[0]
            .parse()
            .map_err(|_| bad("bad index n_clusters".into()))?;
        let n_items: usize = fields[1]
            .parse()
            .map_err(|_| bad("bad index n_items".into()))?;
        let rel: f64 = fields[2]
            .parse()
            .map_err(|_| bad("bad index rel cutoff".into()))?;
        if n_clusters != model.n_clusters() {
            return Err(bad(format!(
                "index has {n_clusters} clusters but model has {}",
                model.n_clusters()
            )));
        }
        if n_items != model.n_items() {
            return Err(bad(format!(
                "index covers {n_items} items but model has {}",
                model.n_items()
            )));
        }

        let mut items = Vec::with_capacity(n_clusters);
        for c in 0..n_clusters {
            let line = read_line(r)?;
            let mut fields = line.split_whitespace();
            let len: usize = fields
                .next()
                .and_then(|f| f.parse().ok())
                .ok_or_else(|| bad(format!("cluster {c}: bad list length")))?;
            let list: Vec<u32> = fields
                .map(|f| f.parse::<u32>())
                .collect::<Result<_, _>>()
                .map_err(|_| bad(format!("cluster {c}: bad item id")))?;
            if list.len() != len {
                return Err(bad(format!(
                    "cluster {c}: declared {len} items, found {}",
                    list.len()
                )));
            }
            items.push(list);
        }
        let index =
            ClusterIndex::from_parts(rel, n_items, items).map_err(|e| bad(e.to_string()))?;
        Ok(Snapshot {
            model,
            index,
            quant: None,
        })
    }
}

/// Writes the optional external-id-maps section (header + one line per
/// axis).
fn write_ids_section<W: Write>(w: &mut W, ids: &IdMaps) -> std::io::Result<()> {
    writeln!(w, "{IDS_HEADER} {} {}", ids.n_users(), ids.n_items())?;
    for axis in [ids.users(), ids.items()] {
        let mut first = true;
        for &id in axis {
            if first {
                write!(w, "{id}")?;
                first = false;
            } else {
                write!(w, " {id}")?;
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads one line of exactly `n` external ids.
fn read_ids_line<R: BufRead + ?Sized>(
    r: &mut R,
    n: usize,
    what: &str,
) -> Result<Vec<u64>, OcularError> {
    let line = read_line(r)?;
    let ids: Vec<u64> = line
        .split_whitespace()
        .map(|f| f.parse::<u64>())
        .collect::<Result<_, _>>()
        .map_err(|_| OcularError::Corrupt(format!("id-maps: bad {what} id")))?;
    if ids.len() != n {
        return Err(OcularError::Corrupt(format!(
            "id-maps: declared {n} {what} ids, found {}",
            ids.len()
        )));
    }
    Ok(ids)
}

/// Writes the optional live-refresh metadata section (one line).
fn write_meta_section<W: Write>(w: &mut W, meta: &SnapshotMeta) -> std::io::Result<()> {
    writeln!(
        w,
        "{META_HEADER} {} {} {} {}",
        meta.generation, meta.n_users, meta.n_items, meta.nnz
    )
}

/// After the payload: parses the optional trailing sections in order —
/// `snapshot-meta v1`, then `id-maps v1` — then the trailing sentinel.
fn read_tail_sections<R: BufRead + ?Sized>(
    r: &mut R,
) -> Result<(Option<SnapshotMeta>, Option<IdMaps>), OcularError> {
    let mut line = read_line(r)?;
    let mut meta = None;
    if let Some(rest) = line
        .strip_prefix(META_HEADER)
        .and_then(|rest| rest.strip_prefix(' '))
    {
        let fields: Vec<u64> = rest
            .split_whitespace()
            .map(|f| f.parse::<u64>())
            .collect::<Result<_, _>>()
            .map_err(|_| OcularError::Corrupt("snapshot-meta: bad value".into()))?;
        let [generation, n_users, n_items, nnz] = fields[..] else {
            return Err(OcularError::Corrupt(
                "snapshot-meta header needs generation n_users n_items nnz".into(),
            ));
        };
        meta = Some(SnapshotMeta {
            generation,
            n_users,
            n_items,
            nnz,
        });
        line = read_line(r)?;
    }
    if line == FOOTER {
        return Ok((meta, None));
    }
    // the separator is part of the required prefix (same convention as
    // the v2 envelope header), so `id-maps v10 …` is corruption, not a
    // v1 section with a mis-binned count
    let rest = line
        .strip_prefix(IDS_HEADER)
        .and_then(|rest| rest.strip_prefix(' '))
        .ok_or_else(|| {
            OcularError::Corrupt(format!(
                "expected `{META_HEADER} …`, `{IDS_HEADER} …` or `{FOOTER}`, got `{line}`"
            ))
        })?;
    let fields: Vec<&str> = rest.split_whitespace().collect();
    if fields.len() != 2 {
        return Err(OcularError::Corrupt(
            "id-maps header needs n_users n_items".into(),
        ));
    }
    let n_users: usize = fields[0]
        .parse()
        .map_err(|_| OcularError::Corrupt("bad id-maps n_users".into()))?;
    let n_items: usize = fields[1]
        .parse()
        .map_err(|_| OcularError::Corrupt("bad id-maps n_items".into()))?;
    let users = read_ids_line(r, n_users, "user")?;
    let items = read_ids_line(r, n_items, "item")?;
    let ids =
        IdMaps::new(users, items).map_err(|e| OcularError::Corrupt(format!("id-maps: {e}")))?;
    if read_line(r)? != FOOTER {
        return Err(OcularError::Corrupt(format!("missing `{FOOTER}` sentinel")));
    }
    Ok((meta, Some(ids)))
}

/// [`read_tail_sections`] for loaders that only need the id maps.
fn read_ids_then_footer<R: BufRead + ?Sized>(r: &mut R) -> Result<Option<IdMaps>, OcularError> {
    read_tail_sections(r).map(|(_, ids)| ids)
}

impl Snapshot {
    /// Writes the OCuLaR payload (model + candidate index) as v3 binary
    /// sections.
    fn write_sections(&self, w: &mut SectionWriter) -> Result<(), OcularError> {
        self.model.write_sections(w)?;
        w.put_f64s("idxrel", &[self.index.rel()]);
        w.put_u64s("idxptr", self.index.indptr());
        w.put_u32s("idxdat", self.index.item_data());
        // quantized item factors (64-byte-aligned sections, see
        // `put_pod64`) so loaders feed them straight into the blocked
        // kernels without copying
        if let Some(q) = &self.quant {
            match q.dtype() {
                QuantDtype::F32 => w.put_f32s("if32", q.f32_data()),
                QuantDtype::I8 => {
                    let (codes, scale, zero, qsum) = q.i8_parts();
                    w.put_i8s("ii8", codes);
                    w.put_f32s("i8scl", scale);
                    w.put_f32s("i8zp", zero);
                    w.put_f32s("i8sum", qsum);
                }
            }
        }
        Ok(())
    }

    /// Reads the payload written by [`Snapshot::write_sections`], with the
    /// factor matrices and index arrays **borrowed** from the reader's
    /// byte region.
    fn read_sections(r: &SectionReader) -> Result<Snapshot, OcularError> {
        let model = FactorModel::read_sections(r)?;
        let [rel] = r.f64_meta::<1>("idxrel")?;
        let index =
            ClusterIndex::from_csr(rel, model.n_items(), r.u64s("idxptr")?, r.u32s("idxdat")?)
                .map_err(OcularError::Corrupt)?;
        if index.n_clusters() != model.n_clusters() {
            return Err(OcularError::Corrupt(format!(
                "index has {} clusters but model has {}",
                index.n_clusters(),
                model.n_clusters()
            )));
        }
        let (rows, cols) = (model.n_items(), model.item_factors.cols());
        let quant = if r.has("if32") {
            Some(
                QuantizedFactors::from_parts_f32(rows, cols, r.f32s("if32")?)
                    .map_err(OcularError::Corrupt)?,
            )
        } else if r.has("ii8") {
            Some(
                QuantizedFactors::from_parts_i8(
                    rows,
                    cols,
                    r.i8s("ii8")?,
                    r.f32s("i8scl")?,
                    r.f32s("i8zp")?,
                    r.f32s("i8sum")?,
                )
                .map_err(OcularError::Corrupt)?,
            )
        } else {
            None
        };
        Ok(Snapshot {
            model,
            index,
            quant,
        })
    }
}

/// Writes the optional id-map sections: both external-id order arrays
/// plus both raw lookup tables, so the serving tier probes the tables in
/// place instead of rebuilding hash maps.
fn write_ids_sections(w: &mut SectionWriter, ids: &IdMaps) {
    w.put_u64s("uids", ids.users());
    w.put_u64s("iids", ids.items());
    let (ut, it) = ids.raw_tables();
    w.put_u64s("uhk", ut.keys());
    w.put_u32s("uhv", ut.vals());
    w.put_u64s("ihk", it.keys());
    w.put_u32s("ihv", it.vals());
}

/// Reads the id-map sections written by [`write_ids_sections`], if
/// present. The tables are validated in full by
/// [`IdMaps::from_raw`]; on success every array is borrowed from the
/// reader's byte region.
fn read_ids_sections(r: &SectionReader) -> Result<Option<IdMaps>, OcularError> {
    if !r.has("uids") {
        return Ok(None);
    }
    let to_corrupt = |e: ocular_sparse::SparseError| OcularError::Corrupt(e.to_string());
    let user_table = RawIdTable::from_parts(r.u64s("uhk")?, r.u32s("uhv")?).map_err(to_corrupt)?;
    let item_table = RawIdTable::from_parts(r.u64s("ihk")?, r.u32s("ihv")?).map_err(to_corrupt)?;
    IdMaps::from_raw(r.u64s("uids")?, r.u64s("iids")?, user_table, item_table)
        .map(Some)
        .map_err(to_corrupt)
}

/// A snapshot of *any* model kind — what the polymorphic serving path
/// loads. OCuLaR snapshots keep their candidate-generation index; every
/// other kind is a bare [`Model`] trait object.
// One per load; boxing the OCuLaR variant would cost an indirection on
// every request for no memory win that matters at this cardinality.
#[allow(clippy::large_enum_variant)]
pub enum AnySnapshot {
    /// An OCuLaR model with its co-cluster index.
    Ocular(Snapshot),
    /// Any other model kind, served through the trait hierarchy.
    Other(Box<dyn Model>),
}

impl AnySnapshot {
    /// The snapshot's kind tag.
    pub fn kind(&self) -> &'static str {
        match self {
            AnySnapshot::Ocular(_) => OCULAR_KIND,
            AnySnapshot::Other(m) => m.kind(),
        }
    }

    /// Serialises the snapshot in the v2 envelope.
    ///
    /// An `Other` payload whose kind tag is `ocular` is rejected: the
    /// `ocular` kind's on-disk format includes the co-cluster index
    /// section, which only [`AnySnapshot::Ocular`] carries — saving a bare
    /// `FactorModel` under that tag would produce an envelope the loader
    /// (correctly) refuses.
    pub fn save<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        self.save_with_ids(None, w)
    }

    /// [`AnySnapshot::save`] plus the optional `id-maps` section: passing
    /// the training dataset's [`IdMaps`] makes the snapshot carry the
    /// external↔internal id tables to the serving tier, so external-id
    /// requests resolve without access to the original interaction file.
    pub fn save_with_ids<W: Write>(&self, ids: Option<&IdMaps>, w: &mut W) -> std::io::Result<()> {
        self.save_full(ids, None, w)
    }

    /// [`AnySnapshot::save_with_ids`] plus the optional `snapshot-meta`
    /// section carrying live-refresh provenance (retrain generation +
    /// source-data watermark).
    pub fn save_full<W: Write>(
        &self,
        ids: Option<&IdMaps>,
        meta: Option<&SnapshotMeta>,
        w: &mut W,
    ) -> std::io::Result<()> {
        let mut w = std::io::BufWriter::new(w);
        match self {
            AnySnapshot::Ocular(s) => {
                writeln!(w, "{V2_PREFIX} {OCULAR_KIND}")?;
                s.write_payload(&mut w)?;
            }
            AnySnapshot::Other(m) => {
                if m.kind() == OCULAR_KIND {
                    return Err(bad(format!(
                        "kind `{OCULAR_KIND}` must be snapshotted as AnySnapshot::Ocular \
                         (its format carries the co-cluster index)"
                    )));
                }
                writeln!(w, "{V2_PREFIX} {}", m.kind())?;
                m.save_model(&mut w)?;
            }
        }
        if let Some(meta) = meta {
            write_meta_section(&mut w, meta)?;
        }
        if let Some(ids) = ids {
            write_ids_section(&mut w, ids)?;
        }
        writeln!(w, "{FOOTER}")?;
        w.flush()
    }

    /// Loads a snapshot of any kind: the v1 envelope (implicitly
    /// `ocular`), or a v2 envelope whose kind tag is dispatched against
    /// the registry of known model kinds. Unknown kinds are
    /// [`OcularError::UnknownModelKind`]; corruption and truncation are
    /// [`OcularError::Corrupt`].
    pub fn load<R: BufRead>(r: &mut R) -> Result<AnySnapshot, OcularError> {
        Ok(Self::load_with_ids(r)?.0)
    }

    /// [`AnySnapshot::load`] that also surfaces the optional `id-maps`
    /// section (`None` for snapshots written without one).
    pub fn load_with_ids<R: BufRead>(
        r: &mut R,
    ) -> Result<(AnySnapshot, Option<IdMaps>), OcularError> {
        let loaded = Self::load_full(r)?;
        Ok((loaded.snapshot, loaded.ids))
    }

    /// [`AnySnapshot::load_with_ids`] that also surfaces the optional
    /// live-refresh metadata section.
    pub fn load_full<R: BufRead>(r: &mut R) -> Result<LoadedSnapshot, OcularError> {
        let header = read_line(r).map_err(OcularError::from)?;
        if header == V1_HEADER {
            let snapshot = Snapshot::load_payload(r).map_err(OcularError::from)?;
            let (meta, ids) = read_tail_sections(r)?;
            return Ok(LoadedSnapshot {
                snapshot: AnySnapshot::Ocular(snapshot),
                ids,
                meta,
            });
        }
        // the separator is part of the required prefix, so `v2wals` (no
        // space) and version strings like `v2.1` are rejected instead of
        // mis-binning into a kind tag
        let kind = header
            .strip_prefix(V2_PREFIX)
            .and_then(|rest| rest.strip_prefix(' '))
            .filter(|kind| !kind.is_empty() && !kind.contains(char::is_whitespace))
            .ok_or_else(|| {
                OcularError::Corrupt(format!(
                    "bad snapshot header, expected `{V1_HEADER}` or `{V2_PREFIX} <kind>`"
                ))
            })?;
        let snapshot = if kind == OCULAR_KIND {
            AnySnapshot::Ocular(Snapshot::load_payload(r).map_err(OcularError::from)?)
        } else {
            let model: Box<dyn Model> = match kind {
                Wals::KIND => Box::new(Wals::load_model(r)?),
                Bpr::KIND => Box::new(Bpr::load_model(r)?),
                UserKnn::KIND => Box::new(UserKnn::load_model(r)?),
                ItemKnn::KIND => Box::new(ItemKnn::load_model(r)?),
                Popularity::KIND => Box::new(Popularity::load_model(r)?),
                other => return Err(OcularError::UnknownModelKind(other.to_string())),
            };
            AnySnapshot::Other(model)
        };
        let (meta, ids) = read_tail_sections(r)?;
        Ok(LoadedSnapshot {
            snapshot,
            ids,
            meta,
        })
    }

    /// Serialises the snapshot (plus optional id maps) as an
    /// `ocular-snapshot v3` binary container and returns the bytes.
    ///
    /// Unlike the text format, the co-cluster index travels as typed
    /// sections alongside the model's own, so the `Other`-arm guard of
    /// [`AnySnapshot::save`] applies here too.
    pub fn to_v3_bytes(&self, ids: Option<&IdMaps>) -> Result<Vec<u8>, OcularError> {
        self.to_v3_bytes_full(ids, None)
    }

    /// [`AnySnapshot::to_v3_bytes`] plus the optional live-refresh
    /// metadata section (retrain generation + source-data watermark).
    pub fn to_v3_bytes_full(
        &self,
        ids: Option<&IdMaps>,
        meta: Option<&SnapshotMeta>,
    ) -> Result<Vec<u8>, OcularError> {
        let mut w = SectionWriter::new(self.kind());
        match self {
            AnySnapshot::Ocular(s) => s.write_sections(&mut w)?,
            AnySnapshot::Other(m) => {
                if m.kind() == OCULAR_KIND {
                    return Err(OcularError::InvalidConfig(format!(
                        "kind `{OCULAR_KIND}` must be snapshotted as AnySnapshot::Ocular \
                         (its format carries the co-cluster index)"
                    )));
                }
                m.write_sections(&mut w)?;
            }
        }
        if let Some(meta) = meta {
            meta.write_section(&mut w);
        }
        if let Some(ids) = ids {
            write_ids_sections(&mut w, ids);
        }
        Ok(w.finish())
    }

    /// Writes the v3 binary container to a writer.
    pub fn save_binary<W: Write>(
        &self,
        ids: Option<&IdMaps>,
        w: &mut W,
    ) -> Result<(), OcularError> {
        let bytes = self.to_v3_bytes(ids)?;
        w.write_all(&bytes).map_err(OcularError::from)
    }

    /// Saves the snapshot to a file in the chosen format.
    pub fn save_path(
        &self,
        path: &Path,
        ids: Option<&IdMaps>,
        format: SnapshotFormat,
    ) -> Result<(), OcularError> {
        self.save_path_full(path, ids, None, format)
    }

    /// [`AnySnapshot::save_path`] plus the optional live-refresh metadata
    /// section — what a retrain writes so the serving control plane can
    /// report the generation and fold in users newer than the watermark.
    pub fn save_path_full(
        &self,
        path: &Path,
        ids: Option<&IdMaps>,
        meta: Option<&SnapshotMeta>,
        format: SnapshotFormat,
    ) -> Result<(), OcularError> {
        let mut file = std::fs::File::create(path).map_err(OcularError::from)?;
        match format {
            SnapshotFormat::Text => self
                .save_full(ids, meta, &mut file)
                .map_err(OcularError::from),
            SnapshotFormat::Binary => {
                let bytes = self.to_v3_bytes_full(ids, meta)?;
                file.write_all(&bytes).map_err(OcularError::from)
            }
        }
    }

    /// Loads a v3 binary snapshot from a byte region (owned or mapped).
    /// The factor matrices, cluster index and id maps **borrow** their
    /// large buffers from the region — no per-payload allocation.
    pub fn load_v3(region: ModelBytes) -> Result<(AnySnapshot, Option<IdMaps>), OcularError> {
        let loaded = Self::load_v3_full(region)?;
        Ok((loaded.snapshot, loaded.ids))
    }

    /// [`AnySnapshot::load_v3`] that also surfaces the optional
    /// live-refresh metadata section.
    pub fn load_v3_full(region: ModelBytes) -> Result<LoadedSnapshot, OcularError> {
        let r = SectionReader::open(region)?;
        let snapshot = match r.kind() {
            OCULAR_KIND => AnySnapshot::Ocular(Snapshot::read_sections(&r)?),
            Wals::KIND => AnySnapshot::Other(Box::new(Wals::read_sections(&r)?)),
            Bpr::KIND => AnySnapshot::Other(Box::new(Bpr::read_sections(&r)?)),
            UserKnn::KIND => AnySnapshot::Other(Box::new(UserKnn::read_sections(&r)?)),
            ItemKnn::KIND => AnySnapshot::Other(Box::new(ItemKnn::read_sections(&r)?)),
            Popularity::KIND => AnySnapshot::Other(Box::new(Popularity::read_sections(&r)?)),
            other => return Err(OcularError::UnknownModelKind(other.to_string())),
        };
        let meta = SnapshotMeta::read_section(&r)?;
        let ids = read_ids_sections(&r)?;
        Ok(LoadedSnapshot {
            snapshot,
            ids,
            meta,
        })
    }

    /// Loads a snapshot file of **either** format, sniffing the magic
    /// bytes: v3 containers are memory-mapped and loaded zero-copy, v1/v2
    /// text envelopes keep loading through the line-oriented path — old
    /// snapshots work transparently.
    pub fn load_path(path: &Path) -> Result<(AnySnapshot, Option<IdMaps>), OcularError> {
        let loaded = Self::load_path_full(path)?;
        Ok((loaded.snapshot, loaded.ids))
    }

    /// [`AnySnapshot::load_path`] that also surfaces the optional
    /// live-refresh metadata (generation + watermark), in either format.
    pub fn load_path_full(path: &Path) -> Result<LoadedSnapshot, OcularError> {
        let mut prefix = [0u8; 8];
        let mut file = std::fs::File::open(path).map_err(OcularError::from)?;
        let n = file.read(&mut prefix).map_err(OcularError::from)?;
        if is_v3(&prefix[..n]) {
            drop(file);
            let region = ModelBytes::map_file(path).map_err(OcularError::from)?;
            return Self::load_v3_full(region);
        }
        // text path: re-open from the start (the probe consumed bytes)
        let file = std::fs::File::open(path).map_err(OcularError::from)?;
        Self::load_full(&mut std::io::BufReader::new(file))
    }
}

/// One shard of a user-split snapshot: a standalone [`Snapshot`] over the
/// shard's user-factor rows (item factors, cluster index and quantized
/// copy replicated in full), plus the global training rows those
/// shard-local rows came from, in ascending order.
pub struct SnapshotShard {
    /// The shard's snapshot — loadable and servable on its own.
    pub snapshot: Snapshot,
    /// Ascending global training row of each shard-local user row.
    pub global_rows: Vec<u64>,
}

impl Snapshot {
    /// Splits the model's user rows into `n_shards` groups by the stable
    /// hash of each row's external user id ([`ocular_bytes::shard_of_key`]
    /// over `external_ids`, or over the row index itself under the
    /// identity mapping), keeping ascending row order inside each group.
    ///
    /// The item-side state — item factors, co-cluster index, any
    /// quantized copy — is **replicated** into every shard rather than
    /// split: it is what cold fold-in and candidate generation read, and
    /// replicating it byte-identically is what makes every shard decide
    /// and score exactly like the unsharded engine. This is the same
    /// partition rule as [`ocular_sparse::ShardedDataset::split`], so
    /// shard-local model rows line up with the shard dataset's rows by
    /// construction.
    pub fn split_users(
        &self,
        external_ids: Option<&[u64]>,
        n_shards: usize,
    ) -> Result<Vec<SnapshotShard>, OcularError> {
        if n_shards == 0 {
            return Err(OcularError::InvalidConfig(
                "shard count must be positive".into(),
            ));
        }
        let n_users = self.model.n_users();
        if let Some(ids) = external_ids {
            if ids.len() != n_users {
                return Err(OcularError::InvalidConfig(format!(
                    "{} external user ids cannot address {n_users} model rows",
                    ids.len()
                )));
            }
        }
        let mut groups: Vec<Vec<u64>> = vec![Vec::new(); n_shards];
        for g in 0..n_users {
            let ext = external_ids.map_or(g as u64, |ids| ids[g]);
            groups[shard_of_key(ext, n_shards)].push(g as u64);
        }
        let k = self.model.user_factors.cols();
        Ok(groups
            .into_iter()
            .map(|rows| {
                let mut uf = Matrix::zeros(rows.len(), k);
                for (l, &g) in rows.iter().enumerate() {
                    uf.row_mut(l)
                        .copy_from_slice(self.model.user_factors.row(g as usize));
                }
                let model =
                    FactorModel::new(uf, self.model.item_factors.clone(), self.model.has_bias());
                SnapshotShard {
                    snapshot: Snapshot {
                        model,
                        index: self.index.clone(),
                        quant: self.quant.clone(),
                    },
                    global_rows: rows,
                }
            })
            .collect())
    }
}

/// File path of shard `s` of an `n`-way sharded snapshot:
/// `{base}.shard-{s}-of-{n}`. The suffix carries both coordinates so a
/// family of shard files is self-describing on disk and a worker pointed
/// at the wrong `--shards` count fails loudly instead of mapping a
/// mismatched file.
pub fn shard_path(base: &Path, shard: usize, n_shards: usize) -> PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(format!(".shard-{shard}-of-{n_shards}"));
    PathBuf::from(os)
}

/// A loaded sharded-snapshot family: one [`LoadedSnapshot`] per shard
/// plus each shard's global-row table, as read back by
/// [`AnySnapshot::load_path_sharded`].
pub struct ShardedLoad {
    /// Per-shard snapshots, in shard order. Every one is `Ocular`.
    pub shards: Vec<LoadedSnapshot>,
    /// Per shard: ascending global training row of each shard-local row.
    pub global_rows: Vec<Vec<u64>>,
}

impl AnySnapshot {
    /// Writes the snapshot as `n_shards` standalone v3 shard files next
    /// to `path` (see [`shard_path`]), splitting the user-factor rows by
    /// [`Snapshot::split_users`] and replicating the item-side state.
    ///
    /// Each shard file is a complete, independently loadable v3 snapshot
    /// — shard user rows, full item factors, full index, any quantized
    /// copy, the shard-scoped id maps (shard users × the full item
    /// table), and the same metadata section — plus two extra sections:
    /// `shgid` (the global training row of each shard-local row) and
    /// `shnfo` (`[shard, n_shards]`). A serve worker therefore mmaps
    /// only its own shard. Only OCuLaR snapshots have user-factor rows
    /// to split; other kinds are an [`OcularError::InvalidConfig`].
    pub fn save_path_sharded(
        &self,
        path: &Path,
        ids: Option<&IdMaps>,
        meta: Option<&SnapshotMeta>,
        n_shards: usize,
    ) -> Result<Vec<PathBuf>, OcularError> {
        let AnySnapshot::Ocular(snap) = self else {
            return Err(OcularError::InvalidConfig(format!(
                "sharded snapshots require an OCuLaR model; kind `{}` has no \
                 user-factor rows to split",
                self.kind()
            )));
        };
        if let Some(ids) = ids {
            if ids.n_users() != snap.model.n_users() || ids.n_items() != snap.model.n_items() {
                return Err(OcularError::InvalidConfig(format!(
                    "id maps cover {}×{} but the model is {}×{}",
                    ids.n_users(),
                    ids.n_items(),
                    snap.model.n_users(),
                    snap.model.n_items()
                )));
            }
        }
        let shards = snap.split_users(ids.map(IdMaps::users), n_shards)?;
        let mut paths = Vec::with_capacity(n_shards);
        for (s, shard) in shards.iter().enumerate() {
            let shard_ids = match ids {
                None => None,
                Some(ids) => {
                    let users: Vec<u64> = shard
                        .global_rows
                        .iter()
                        .map(|&g| ids.users()[g as usize])
                        .collect();
                    Some(
                        IdMaps::new(users, ids.items().to_vec())
                            .map_err(|e| OcularError::Corrupt(e.to_string()))?,
                    )
                }
            };
            let mut w = SectionWriter::new(OCULAR_KIND);
            shard.snapshot.write_sections(&mut w)?;
            if let Some(meta) = meta {
                meta.write_section(&mut w);
            }
            if let Some(sids) = &shard_ids {
                write_ids_sections(&mut w, sids);
            }
            w.put_u64s("shgid", &shard.global_rows);
            w.put_u64s("shnfo", &[s as u64, n_shards as u64]);
            let p = shard_path(path, s, n_shards);
            std::fs::write(&p, w.finish()).map_err(OcularError::from)?;
            paths.push(p);
        }
        Ok(paths)
    }

    /// Loads an `n_shards`-way shard family written by
    /// [`AnySnapshot::save_path_sharded`], memory-mapping each shard file
    /// zero-copy and validating the family: every file must be an OCuLaR
    /// v3 shard whose `shnfo` coordinates match its name, and the
    /// `shgid` tables must be a disjoint ascending cover of
    /// `0..total_users`.
    pub fn load_path_sharded(path: &Path, n_shards: usize) -> Result<ShardedLoad, OcularError> {
        if n_shards == 0 {
            return Err(OcularError::InvalidConfig(
                "shard count must be positive".into(),
            ));
        }
        let mut shards = Vec::with_capacity(n_shards);
        let mut global_rows = Vec::with_capacity(n_shards);
        for s in 0..n_shards {
            let p = shard_path(path, s, n_shards);
            let region = ModelBytes::map_file(&p).map_err(OcularError::from)?;
            let r = SectionReader::open(region)?;
            if r.kind() != OCULAR_KIND {
                return Err(OcularError::Corrupt(format!(
                    "shard file {} holds kind `{}`, not an OCuLaR shard",
                    p.display(),
                    r.kind()
                )));
            }
            let snapshot = Snapshot::read_sections(&r)?;
            let [shard_id, n] = r.u64_meta::<2>("shnfo")?;
            if shard_id != s as u64 || n != n_shards as u64 {
                return Err(OcularError::Corrupt(format!(
                    "shard file {} says shard {shard_id} of {n}, expected {s} of {n_shards}",
                    p.display()
                )));
            }
            let gid: Vec<u64> = r.u64s("shgid")?.to_vec();
            if gid.len() != snapshot.model.n_users() {
                return Err(OcularError::Corrupt(format!(
                    "shard file {} maps {} global rows onto {} user rows",
                    p.display(),
                    gid.len(),
                    snapshot.model.n_users()
                )));
            }
            if gid.windows(2).any(|w| w[0] >= w[1]) {
                return Err(OcularError::Corrupt(format!(
                    "shard file {} global rows are not strictly ascending",
                    p.display()
                )));
            }
            let meta = SnapshotMeta::read_section(&r)?;
            let ids = read_ids_sections(&r)?;
            shards.push(LoadedSnapshot {
                snapshot: AnySnapshot::Ocular(snapshot),
                ids,
                meta,
            });
            global_rows.push(gid);
        }
        // the shgid tables must partition 0..total exactly
        let total: usize = global_rows.iter().map(Vec::len).sum();
        let mut seen = vec![false; total];
        for gid in &global_rows {
            for &g in gid {
                let g = usize::try_from(g)
                    .ok()
                    .filter(|&g| g < total)
                    .ok_or_else(|| {
                        OcularError::Corrupt(format!("shard global row {g} outside 0..{total}"))
                    })?;
                if std::mem::replace(&mut seen[g], true) {
                    return Err(OcularError::Corrupt(format!(
                        "global row {g} claimed by two shards"
                    )));
                }
            }
        }
        Ok(ShardedLoad {
            shards,
            global_rows,
        })
    }
}

/// Everything a snapshot file can carry: the model payload, the optional
/// external-id tables, and the optional live-refresh metadata.
pub struct LoadedSnapshot {
    /// The model payload (with its index for `ocular`).
    pub snapshot: AnySnapshot,
    /// The training dataset's id tables, if embedded.
    pub ids: Option<IdMaps>,
    /// Retrain generation + source-data watermark, if embedded.
    pub meta: Option<SnapshotMeta>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocular_api::ScoreItems;
    use ocular_baselines::WalsConfig;
    use ocular_linalg::Matrix;
    use ocular_sparse::CsrMatrix;

    fn snapshot() -> Snapshot {
        let model = FactorModel::new(
            Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.2]]),
            Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 1.5], &[0.0, 3.0]]),
            false,
        );
        Snapshot::build(model, &IndexConfig { rel: 0.5, floor: 0 })
    }

    #[test]
    fn roundtrip() {
        let s = snapshot();
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        let loaded = Snapshot::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded, s);
    }

    #[test]
    fn v1_envelope_still_loads() {
        let s = snapshot();
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("ocular-snapshot v2 ocular\n"));
        let v1 = text.replacen("ocular-snapshot v2 ocular", V1_HEADER, 1);
        let loaded = Snapshot::load(&mut v1.as_bytes()).unwrap();
        assert_eq!(loaded, s);
        // and through the polymorphic loader
        match AnySnapshot::load(&mut v1.as_bytes()).unwrap() {
            AnySnapshot::Ocular(loaded) => assert_eq!(loaded, s),
            AnySnapshot::Other(_) => panic!("v1 must load as ocular"),
        }
    }

    #[test]
    fn truncation_at_every_line_rejected() {
        let s = snapshot();
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        for keep in 0..lines.len() {
            let partial = lines[..keep].join("\n");
            assert!(
                Snapshot::load(&mut partial.as_bytes()).is_err(),
                "truncation after {keep} lines must be rejected"
            );
            assert!(
                AnySnapshot::load(&mut partial.as_bytes()).is_err(),
                "AnySnapshot: truncation after {keep} lines must be rejected"
            );
        }
    }

    #[test]
    fn corrupt_sections_rejected() {
        let s = snapshot();
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // wrong envelope
        assert!(Snapshot::load(&mut "nope\n".as_bytes()).is_err());
        // tamper with the index header's cluster count
        let tampered = text.replace("cocluster-index v1 2", "cocluster-index v1 3");
        assert!(Snapshot::load(&mut tampered.as_bytes()).is_err());
        // non-numeric item id
        let tampered = text.replace("cocluster-index v1", "cocluster-index v9");
        assert!(Snapshot::load(&mut tampered.as_bytes()).is_err());
    }

    #[test]
    fn list_length_mismatch_rejected() {
        let s = snapshot();
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // cluster 0's list line is "2 0 1" (rel 0.5 keeps items 0, 1);
        // lie about its length
        assert!(text.contains("\n2 0 1\n"), "fixture drifted: {text}");
        let tampered = text.replace("\n2 0 1\n", "\n3 0 1\n");
        assert!(Snapshot::load(&mut tampered.as_bytes()).is_err());
        // out-of-order ids
        let tampered = text.replace("\n2 0 1\n", "\n2 1 0\n");
        assert!(Snapshot::load(&mut tampered.as_bytes()).is_err());
    }

    #[test]
    fn baseline_kind_roundtrips_through_any_snapshot() {
        let r = ocular_sparse::Dataset::from_matrix(
            CsrMatrix::from_pairs(4, 4, &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 2), (3, 3)]).unwrap(),
        );
        let wals = Wals::fit(
            &r,
            &WalsConfig {
                k: 2,
                iters: 5,
                ..Default::default()
            },
        );
        let mut want = Vec::new();
        wals.score_user(1, &mut want);
        let snap = AnySnapshot::Other(Box::new(wals));
        assert_eq!(snap.kind(), "wals");
        let mut buf = Vec::new();
        snap.save(&mut buf).unwrap();
        let loaded = AnySnapshot::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.kind(), "wals");
        match loaded {
            AnySnapshot::Other(m) => {
                let mut got = Vec::new();
                m.score_user(1, &mut got);
                assert_eq!(got, want, "scores must round-trip bitwise");
            }
            AnySnapshot::Ocular(_) => panic!("wals must not load as ocular"),
        }
        // truncation of a baseline payload is rejected
        let text = String::from_utf8(buf).unwrap();
        let cut: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(AnySnapshot::load(&mut cut.as_bytes()).is_err());
    }

    #[test]
    fn unknown_kind_rejected_with_typed_error() {
        let doc = "ocular-snapshot v2 neural-net\nwhatever\nocular-snapshot end\n";
        assert!(matches!(
            AnySnapshot::load(&mut doc.as_bytes()),
            Err(OcularError::UnknownModelKind(k)) if k == "neural-net"
        ));
    }

    #[test]
    fn malformed_v2_headers_are_corrupt_not_misbinned() {
        // no separator: must not parse as kind `wals`
        assert!(matches!(
            AnySnapshot::load(&mut "ocular-snapshot v2wals\n".as_bytes()),
            Err(OcularError::Corrupt(_))
        ));
        // future version strings must not strip into a bogus kind
        assert!(matches!(
            AnySnapshot::load(&mut "ocular-snapshot v2.1 wals\n".as_bytes()),
            Err(OcularError::Corrupt(_))
        ));
        // empty kind tag
        assert!(matches!(
            AnySnapshot::load(&mut "ocular-snapshot v2 \n".as_bytes()),
            Err(OcularError::Corrupt(_))
        ));
    }

    fn sample_ids() -> IdMaps {
        IdMaps::new(vec![101, 7], vec![900, 4, 55]).unwrap()
    }

    #[test]
    fn id_maps_section_round_trips_for_ocular() {
        let s = AnySnapshot::Ocular(snapshot());
        let ids = sample_ids();
        let mut buf = Vec::new();
        s.save_with_ids(Some(&ids), &mut buf).unwrap();
        let (loaded, got) = AnySnapshot::load_with_ids(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.kind(), "ocular");
        assert_eq!(got, Some(ids.clone()));
        // the typed loader tolerates (and discards) the section
        let via_typed = Snapshot::load(&mut buf.as_slice()).unwrap();
        match s {
            AnySnapshot::Ocular(inner) => assert_eq!(via_typed, inner),
            AnySnapshot::Other(_) => unreachable!(),
        }
        // truncation anywhere inside the ids section is rejected
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        for keep in 0..lines.len() {
            let partial = lines[..keep].join("\n");
            assert!(
                AnySnapshot::load_with_ids(&mut partial.as_bytes()).is_err(),
                "truncation after {keep} lines must be rejected"
            );
        }
    }

    #[test]
    fn id_maps_section_round_trips_for_baseline_kinds() {
        let r = CsrMatrix::from_pairs(2, 3, &[(0, 0), (0, 2), (1, 1)]).unwrap();
        let pop = ocular_baselines::Popularity::fit(&r.into());
        let ids = sample_ids();
        let mut buf = Vec::new();
        AnySnapshot::Other(Box::new(pop))
            .save_with_ids(Some(&ids), &mut buf)
            .unwrap();
        let (loaded, got) = AnySnapshot::load_with_ids(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.kind(), "popularity");
        assert_eq!(got, Some(ids));
        // ids-free load still works on the same bytes
        assert_eq!(
            AnySnapshot::load(&mut buf.as_slice()).unwrap().kind(),
            "popularity"
        );
    }

    #[test]
    fn snapshots_without_ids_load_with_none() {
        let s = AnySnapshot::Ocular(snapshot());
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        let (_, ids) = AnySnapshot::load_with_ids(&mut buf.as_slice()).unwrap();
        assert_eq!(ids, None);
    }

    #[test]
    fn corrupt_id_maps_rejected() {
        let s = AnySnapshot::Ocular(snapshot());
        let ids = sample_ids();
        let mut buf = Vec::new();
        s.save_with_ids(Some(&ids), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // wrong count
        let tampered = text.replace("id-maps v1 2 3", "id-maps v1 3 3");
        assert!(AnySnapshot::load_with_ids(&mut tampered.as_bytes()).is_err());
        // duplicate external id
        let tampered = text.replace("101 7", "101 101");
        assert!(AnySnapshot::load_with_ids(&mut tampered.as_bytes()).is_err());
        // non-numeric id
        let tampered = text.replace("900 4 55", "900 x 55");
        assert!(AnySnapshot::load_with_ids(&mut tampered.as_bytes()).is_err());
        // a future/corrupt section version must not mis-bin into v1
        // (`id-maps v10 …` would otherwise strip to a valid-looking count)
        let tampered = text.replace("id-maps v1 ", "id-maps v10 ");
        assert!(matches!(
            AnySnapshot::load_with_ids(&mut tampered.as_bytes()),
            Err(OcularError::Corrupt(_))
        ));
    }

    fn sample_meta() -> SnapshotMeta {
        SnapshotMeta {
            generation: 2,
            n_users: 2,
            n_items: 3,
            nnz: 4,
        }
    }

    #[test]
    fn snapshot_meta_round_trips_in_text_format() {
        let s = AnySnapshot::Ocular(snapshot());
        let (meta, ids) = (sample_meta(), sample_ids());
        let mut buf = Vec::new();
        s.save_full(Some(&ids), Some(&meta), &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("snapshot-meta v1 2 2 3 4\n"), "{text}");
        let loaded = AnySnapshot::load_full(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.meta, Some(meta));
        assert_eq!(loaded.ids, Some(ids));
        // legacy loaders tolerate (and discard) the section
        let (_, got_ids) = AnySnapshot::load_with_ids(&mut buf.as_slice()).unwrap();
        assert!(got_ids.is_some());
        assert!(Snapshot::load(&mut buf.as_slice()).is_ok());

        // meta without ids, and a corrupt meta line
        let mut buf = Vec::new();
        s.save_full(None, Some(&meta), &mut buf).unwrap();
        let loaded = AnySnapshot::load_full(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.meta, Some(meta));
        assert_eq!(loaded.ids, None);
        let tampered = String::from_utf8(buf)
            .unwrap()
            .replace("snapshot-meta v1 2 2 3 4", "snapshot-meta v1 2 2 3");
        assert!(AnySnapshot::load_full(&mut tampered.as_bytes()).is_err());
    }

    #[test]
    fn snapshot_meta_round_trips_in_v3_format() {
        let s = AnySnapshot::Ocular(snapshot());
        let (meta, ids) = (sample_meta(), sample_ids());
        let bytes = s.to_v3_bytes_full(Some(&ids), Some(&meta)).unwrap();
        let loaded = AnySnapshot::load_v3_full(ModelBytes::from_vec(bytes)).unwrap();
        assert_eq!(loaded.meta, Some(meta));
        assert_eq!(loaded.ids, Some(ids));
        // snapshots without the section load with None
        let bytes = s.to_v3_bytes(None).unwrap();
        let loaded = AnySnapshot::load_v3_full(ModelBytes::from_vec(bytes)).unwrap();
        assert_eq!(loaded.meta, None);
    }

    #[test]
    fn snapshot_meta_survives_save_path_in_both_formats() {
        let dir = std::env::temp_dir().join("ocular_serve_meta_path_test");
        std::fs::create_dir_all(&dir).unwrap();
        let s = AnySnapshot::Ocular(snapshot());
        let meta = sample_meta();
        for (name, format) in [
            ("snap.txt", SnapshotFormat::Text),
            ("snap.bin", SnapshotFormat::Binary),
        ] {
            let path = dir.join(name);
            s.save_path_full(&path, None, Some(&meta), format).unwrap();
            let loaded = AnySnapshot::load_path_full(&path).unwrap();
            assert_eq!(loaded.meta, Some(meta), "{name}");
            // the meta-blind loader still works on the same file
            assert!(AnySnapshot::load_path(&path).is_ok(), "{name}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quantized_sections_round_trip_in_v3_and_are_dropped_by_text() {
        for dtype in [QuantDtype::F32, QuantDtype::I8] {
            let s = snapshot().with_quantization(dtype);
            assert_eq!(s.quant.as_ref().unwrap().dtype(), dtype);
            let bytes = AnySnapshot::Ocular(s.clone()).to_v3_bytes(None).unwrap();
            let (loaded, _) = AnySnapshot::load_v3(ModelBytes::from_vec(bytes.clone())).unwrap();
            let AnySnapshot::Ocular(loaded) = loaded else {
                panic!("quantized ocular snapshot must load as ocular");
            };
            assert_eq!(loaded, s, "{dtype}: v3 round-trip must preserve quant");
            // v3 re-serialisation of the loaded snapshot is a fixed point
            let again = AnySnapshot::Ocular(loaded).to_v3_bytes(None).unwrap();
            assert_eq!(again, bytes, "{dtype}: v3 must be a fixed point");
            // the text envelope drops the narrow copy, keeping the master
            let mut buf = Vec::new();
            s.save(&mut buf).unwrap();
            let text_loaded = Snapshot::load(&mut buf.as_slice()).unwrap();
            assert_eq!(text_loaded.quant, None);
            assert_eq!(text_loaded.model, s.model);
        }
    }

    #[test]
    fn unquantized_v3_snapshots_load_with_no_quant() {
        let s = AnySnapshot::Ocular(snapshot());
        let bytes = s.to_v3_bytes(None).unwrap();
        let (loaded, _) = AnySnapshot::load_v3(ModelBytes::from_vec(bytes)).unwrap();
        match loaded {
            AnySnapshot::Ocular(inner) => assert_eq!(inner.quant, None),
            AnySnapshot::Other(_) => panic!("must load as ocular"),
        }
    }

    #[test]
    fn bare_factor_model_rejected_in_other_arm_at_save() {
        let model = FactorModel::new(
            Matrix::from_rows(&[&[1.0]]),
            Matrix::from_rows(&[&[1.0]]),
            false,
        );
        let snap = AnySnapshot::Other(Box::new(model));
        let mut buf = Vec::new();
        let err = snap.save(&mut buf).unwrap_err();
        assert!(
            err.to_string().contains("AnySnapshot::Ocular"),
            "saving a bare ocular payload must fail loudly: {err}"
        );
    }
}
