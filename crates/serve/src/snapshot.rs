//! Versioned serving snapshots: factor model + co-cluster index.
//!
//! A snapshot is what training ships to the serving tier. It wraps the
//! existing [`FactorModel::save`] text format (`ocular-model v1`) in an
//! outer envelope and appends a versioned co-cluster index section, so an
//! engine can come up without re-deriving the inverted lists from the
//! factors, and so format drift between trainer and server fails loudly at
//! load instead of corrupting lists at request time.
//!
//! ```text
//! ocular-snapshot v1
//! ocular-model v1 <n_users> <n_items> <k_total> <bias>
//! <n_users + n_items factor lines>
//! cocluster-index v1 <n_clusters> <n_items> <rel>
//! <n_clusters lines: "<len> <ascending item ids>">
//! ocular-snapshot end
//! ```
//!
//! The trailing sentinel makes truncation detectable: a snapshot cut off at
//! any point — mid-factors, mid-index, or missing the last line — is
//! rejected with `InvalidData`.

use crate::index::{ClusterIndex, IndexConfig};
use ocular_core::FactorModel;
use std::io::{BufRead, Write};

/// Magic first line of the snapshot envelope.
const HEADER: &str = "ocular-snapshot v1";
/// Magic line opening the index section.
const INDEX_HEADER: &str = "cocluster-index v1";
/// Trailing sentinel proving the snapshot was written to completion.
const FOOTER: &str = "ocular-snapshot end";

/// A serving snapshot: the fitted model plus its candidate-generation index.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The fitted factor model.
    pub model: FactorModel,
    /// Per-cluster inverted item lists built at snapshot time.
    pub index: ClusterIndex,
}

impl Snapshot {
    /// Builds a snapshot from a fitted model, deriving the index with the
    /// given build parameters (see [`ClusterIndex::build`]).
    pub fn build(model: FactorModel, cfg: &IndexConfig) -> Self {
        let index = ClusterIndex::build(&model, cfg);
        Snapshot { model, index }
    }

    /// Serialises the snapshot (model + index + sentinel) to a writer.
    pub fn save<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let mut w = std::io::BufWriter::new(w);
        writeln!(w, "{HEADER}")?;
        self.model.save(&mut w)?;
        writeln!(
            w,
            "{INDEX_HEADER} {} {} {:e}",
            self.index.n_clusters(),
            self.index.n_items(),
            self.index.rel()
        )?;
        for c in 0..self.index.n_clusters() {
            let list = self.index.cluster_items(c);
            write!(w, "{}", list.len())?;
            for &i in list {
                write!(w, " {i}")?;
            }
            writeln!(w)?;
        }
        writeln!(w, "{FOOTER}")?;
        w.flush()
    }

    /// Loads a snapshot produced by [`Snapshot::save`], validating the
    /// envelope, the index section shape, bounds, ordering, and the
    /// trailing sentinel. Any corruption or truncation is an
    /// `InvalidData` error.
    pub fn load<R: BufRead>(r: &mut R) -> std::io::Result<Snapshot> {
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let read_line = |r: &mut R| -> std::io::Result<String> {
            let mut line = String::new();
            if r.read_line(&mut line)? == 0 {
                return Err(bad("truncated snapshot".into()));
            }
            Ok(line.trim_end_matches(['\n', '\r']).to_string())
        };

        if read_line(r)? != HEADER {
            return Err(bad(format!("bad snapshot header, expected `{HEADER}`")));
        }
        let model = FactorModel::load(r)?;

        let header = read_line(r)?;
        let rest = header
            .strip_prefix(INDEX_HEADER)
            .ok_or_else(|| bad(format!("bad index header, expected `{INDEX_HEADER} …`")))?;
        let fields: Vec<&str> = rest.split_whitespace().collect();
        if fields.len() != 3 {
            return Err(bad("index header needs n_clusters n_items rel".into()));
        }
        let n_clusters: usize = fields[0]
            .parse()
            .map_err(|_| bad("bad index n_clusters".into()))?;
        let n_items: usize = fields[1]
            .parse()
            .map_err(|_| bad("bad index n_items".into()))?;
        let rel: f64 = fields[2]
            .parse()
            .map_err(|_| bad("bad index rel cutoff".into()))?;
        if n_clusters != model.n_clusters() {
            return Err(bad(format!(
                "index has {n_clusters} clusters but model has {}",
                model.n_clusters()
            )));
        }
        if n_items != model.n_items() {
            return Err(bad(format!(
                "index covers {n_items} items but model has {}",
                model.n_items()
            )));
        }

        let mut items = Vec::with_capacity(n_clusters);
        for c in 0..n_clusters {
            let line = read_line(r)?;
            let mut fields = line.split_whitespace();
            let len: usize = fields
                .next()
                .and_then(|f| f.parse().ok())
                .ok_or_else(|| bad(format!("cluster {c}: bad list length")))?;
            let list: Vec<u32> = fields
                .map(|f| f.parse::<u32>())
                .collect::<Result<_, _>>()
                .map_err(|_| bad(format!("cluster {c}: bad item id")))?;
            if list.len() != len {
                return Err(bad(format!(
                    "cluster {c}: declared {len} items, found {}",
                    list.len()
                )));
            }
            items.push(list);
        }
        let index = ClusterIndex::from_parts(rel, n_items, items).map_err(bad)?;

        if read_line(r)? != FOOTER {
            return Err(bad(format!("missing `{FOOTER}` sentinel")));
        }
        Ok(Snapshot { model, index })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocular_linalg::Matrix;

    fn snapshot() -> Snapshot {
        let model = FactorModel::new(
            Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.2]]),
            Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 1.5], &[0.0, 3.0]]),
            false,
        );
        Snapshot::build(model, &IndexConfig { rel: 0.5, floor: 0 })
    }

    #[test]
    fn roundtrip() {
        let s = snapshot();
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        let loaded = Snapshot::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded, s);
    }

    #[test]
    fn truncation_at_every_line_rejected() {
        let s = snapshot();
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        for keep in 0..lines.len() {
            let partial = lines[..keep].join("\n");
            assert!(
                Snapshot::load(&mut partial.as_bytes()).is_err(),
                "truncation after {keep} lines must be rejected"
            );
        }
    }

    #[test]
    fn corrupt_sections_rejected() {
        let s = snapshot();
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // wrong envelope
        assert!(Snapshot::load(&mut "nope\n".as_bytes()).is_err());
        // tamper with the index header's cluster count
        let tampered = text.replace("cocluster-index v1 2", "cocluster-index v1 3");
        assert!(Snapshot::load(&mut tampered.as_bytes()).is_err());
        // non-numeric item id
        let tampered = text.replace("cocluster-index v1", "cocluster-index v9");
        assert!(Snapshot::load(&mut tampered.as_bytes()).is_err());
    }

    #[test]
    fn list_length_mismatch_rejected() {
        let s = snapshot();
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // cluster 0's list line is "2 0 1" (rel 0.5 keeps items 0, 1);
        // lie about its length
        assert!(text.contains("\n2 0 1\n"), "fixture drifted: {text}");
        let tampered = text.replace("\n2 0 1\n", "\n3 0 1\n");
        assert!(Snapshot::load(&mut tampered.as_bytes()).is_err());
        // out-of-order ids
        let tampered = text.replace("\n2 0 1\n", "\n2 1 0\n");
        assert!(Snapshot::load(&mut tampered.as_bytes()).is_err());
    }
}
