//! Versioned serving snapshots — kind-tagged, polymorphic over model kinds.
//!
//! A snapshot is what training ships to the serving tier. The **v2**
//! envelope tags the payload with its model kind, so one serving binary
//! loads and serves *any* model in the workspace zoo:
//!
//! ```text
//! ocular-snapshot v2 <kind>
//! <kind-specific model payload, self-delimiting>
//! [cocluster-index v1 <n_clusters> <n_items> <rel>      (kind = ocular only)
//!  <n_clusters lines: "<len> <ascending item ids>">]
//! ocular-snapshot end
//! ```
//!
//! For `kind = ocular` the payload is the `ocular-model v1` text format
//! plus the co-cluster candidate-generation index (built at snapshot time
//! so an engine can come up without re-deriving the inverted lists). For
//! the baselines the payload is each model's
//! [`SnapshotModel`] format (`wals-model v1`, `bpr-model v1`, …).
//!
//! **v1 snapshots still load**: the v1 envelope (`ocular-snapshot v1`) is
//! the OCuLaR-only predecessor with a byte-identical body, and both
//! [`Snapshot::load`] and [`AnySnapshot::load`] accept it.
//!
//! The trailing sentinel makes truncation detectable: a snapshot cut off
//! at any point — mid-factors, mid-index, or missing the last line — is
//! rejected instead of mis-loading.

use crate::index::{ClusterIndex, IndexConfig};
use ocular_api::{Model, OcularError, SnapshotModel};
use ocular_baselines::{Bpr, ItemKnn, Popularity, UserKnn, Wals};
use ocular_core::FactorModel;
use std::io::{BufRead, Write};

/// Magic first line of the legacy (OCuLaR-only) snapshot envelope.
const V1_HEADER: &str = "ocular-snapshot v1";
/// Prefix of the kind-tagged v2 envelope header.
const V2_PREFIX: &str = "ocular-snapshot v2";
/// Magic line opening the index section.
const INDEX_HEADER: &str = "cocluster-index v1";
/// Trailing sentinel proving the snapshot was written to completion.
const FOOTER: &str = "ocular-snapshot end";
/// The kind tag of OCuLaR snapshots (canonically defined on
/// [`FactorModel::KIND`], mirrored here for envelope dispatch).
pub const OCULAR_KIND: &str = FactorModel::KIND;

fn bad(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

fn read_line<R: BufRead + ?Sized>(r: &mut R) -> std::io::Result<String> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(bad("truncated snapshot".into()));
    }
    Ok(line.trim_end_matches(['\n', '\r']).to_string())
}

/// An OCuLaR serving snapshot: the fitted factor model plus its
/// candidate-generation index.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The fitted factor model.
    pub model: FactorModel,
    /// Per-cluster inverted item lists built at snapshot time.
    pub index: ClusterIndex,
}

impl Snapshot {
    /// Builds a snapshot from a fitted model, deriving the index with the
    /// given build parameters (see [`ClusterIndex::build`]).
    pub fn build(model: FactorModel, cfg: &IndexConfig) -> Self {
        let index = ClusterIndex::build(&model, cfg);
        Snapshot { model, index }
    }

    /// Serialises the snapshot (v2 envelope: model + index + sentinel) to
    /// a writer.
    pub fn save<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let mut w = std::io::BufWriter::new(w);
        writeln!(w, "{V2_PREFIX} {OCULAR_KIND}")?;
        self.model.save(&mut w)?;
        writeln!(
            w,
            "{INDEX_HEADER} {} {} {:e}",
            self.index.n_clusters(),
            self.index.n_items(),
            self.index.rel()
        )?;
        for c in 0..self.index.n_clusters() {
            let list = self.index.cluster_items(c);
            write!(w, "{}", list.len())?;
            for &i in list {
                write!(w, " {i}")?;
            }
            writeln!(w)?;
        }
        writeln!(w, "{FOOTER}")?;
        w.flush()
    }

    /// Loads an OCuLaR snapshot, accepting both the v1 envelope and a v2
    /// envelope tagged `ocular`, and validating the envelope, the index
    /// section shape, bounds, ordering, and the trailing sentinel. Any
    /// corruption or truncation is an `InvalidData` error.
    pub fn load<R: BufRead>(r: &mut R) -> std::io::Result<Snapshot> {
        let header = read_line(r)?;
        if header != V1_HEADER && header != format!("{V2_PREFIX} {OCULAR_KIND}") {
            return Err(bad(format!(
                "bad snapshot header, expected `{V1_HEADER}` or `{V2_PREFIX} {OCULAR_KIND}`"
            )));
        }
        Self::load_body(r)
    }

    /// Parses the envelope body after the header line: model, index,
    /// footer.
    fn load_body<R: BufRead>(r: &mut R) -> std::io::Result<Snapshot> {
        let model = FactorModel::load(r)?;

        let header = read_line(r)?;
        let rest = header
            .strip_prefix(INDEX_HEADER)
            .ok_or_else(|| bad(format!("bad index header, expected `{INDEX_HEADER} …`")))?;
        let fields: Vec<&str> = rest.split_whitespace().collect();
        if fields.len() != 3 {
            return Err(bad("index header needs n_clusters n_items rel".into()));
        }
        let n_clusters: usize = fields[0]
            .parse()
            .map_err(|_| bad("bad index n_clusters".into()))?;
        let n_items: usize = fields[1]
            .parse()
            .map_err(|_| bad("bad index n_items".into()))?;
        let rel: f64 = fields[2]
            .parse()
            .map_err(|_| bad("bad index rel cutoff".into()))?;
        if n_clusters != model.n_clusters() {
            return Err(bad(format!(
                "index has {n_clusters} clusters but model has {}",
                model.n_clusters()
            )));
        }
        if n_items != model.n_items() {
            return Err(bad(format!(
                "index covers {n_items} items but model has {}",
                model.n_items()
            )));
        }

        let mut items = Vec::with_capacity(n_clusters);
        for c in 0..n_clusters {
            let line = read_line(r)?;
            let mut fields = line.split_whitespace();
            let len: usize = fields
                .next()
                .and_then(|f| f.parse().ok())
                .ok_or_else(|| bad(format!("cluster {c}: bad list length")))?;
            let list: Vec<u32> = fields
                .map(|f| f.parse::<u32>())
                .collect::<Result<_, _>>()
                .map_err(|_| bad(format!("cluster {c}: bad item id")))?;
            if list.len() != len {
                return Err(bad(format!(
                    "cluster {c}: declared {len} items, found {}",
                    list.len()
                )));
            }
            items.push(list);
        }
        let index =
            ClusterIndex::from_parts(rel, n_items, items).map_err(|e| bad(e.to_string()))?;

        if read_line(r)? != FOOTER {
            return Err(bad(format!("missing `{FOOTER}` sentinel")));
        }
        Ok(Snapshot { model, index })
    }
}

/// A snapshot of *any* model kind — what the polymorphic serving path
/// loads. OCuLaR snapshots keep their candidate-generation index; every
/// other kind is a bare [`Model`] trait object.
pub enum AnySnapshot {
    /// An OCuLaR model with its co-cluster index.
    Ocular(Snapshot),
    /// Any other model kind, served through the trait hierarchy.
    Other(Box<dyn Model>),
}

impl AnySnapshot {
    /// The snapshot's kind tag.
    pub fn kind(&self) -> &'static str {
        match self {
            AnySnapshot::Ocular(_) => OCULAR_KIND,
            AnySnapshot::Other(m) => m.kind(),
        }
    }

    /// Serialises the snapshot in the v2 envelope.
    ///
    /// An `Other` payload whose kind tag is `ocular` is rejected: the
    /// `ocular` kind's on-disk format includes the co-cluster index
    /// section, which only [`AnySnapshot::Ocular`] carries — saving a bare
    /// `FactorModel` under that tag would produce an envelope the loader
    /// (correctly) refuses.
    pub fn save<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        match self {
            AnySnapshot::Ocular(s) => s.save(w),
            AnySnapshot::Other(m) => {
                if m.kind() == OCULAR_KIND {
                    return Err(bad(format!(
                        "kind `{OCULAR_KIND}` must be snapshotted as AnySnapshot::Ocular \
                         (its format carries the co-cluster index)"
                    )));
                }
                let mut w = std::io::BufWriter::new(w);
                writeln!(w, "{V2_PREFIX} {}", m.kind())?;
                m.save_model(&mut w)?;
                writeln!(w, "{FOOTER}")?;
                w.flush()
            }
        }
    }

    /// Loads a snapshot of any kind: the v1 envelope (implicitly
    /// `ocular`), or a v2 envelope whose kind tag is dispatched against
    /// the registry of known model kinds. Unknown kinds are
    /// [`OcularError::UnknownModelKind`]; corruption and truncation are
    /// [`OcularError::Corrupt`].
    pub fn load<R: BufRead>(r: &mut R) -> Result<AnySnapshot, OcularError> {
        let header = read_line(r).map_err(OcularError::from)?;
        if header == V1_HEADER {
            return Ok(AnySnapshot::Ocular(
                Snapshot::load_body(r).map_err(OcularError::from)?,
            ));
        }
        // the separator is part of the required prefix, so `v2wals` (no
        // space) and version strings like `v2.1` are rejected instead of
        // mis-binning into a kind tag
        let kind = header
            .strip_prefix(V2_PREFIX)
            .and_then(|rest| rest.strip_prefix(' '))
            .filter(|kind| !kind.is_empty() && !kind.contains(char::is_whitespace))
            .ok_or_else(|| {
                OcularError::Corrupt(format!(
                    "bad snapshot header, expected `{V1_HEADER}` or `{V2_PREFIX} <kind>`"
                ))
            })?;
        if kind == OCULAR_KIND {
            return Ok(AnySnapshot::Ocular(
                Snapshot::load_body(r).map_err(OcularError::from)?,
            ));
        }
        let model: Box<dyn Model> = match kind {
            Wals::KIND => Box::new(Wals::load_model(r)?),
            Bpr::KIND => Box::new(Bpr::load_model(r)?),
            UserKnn::KIND => Box::new(UserKnn::load_model(r)?),
            ItemKnn::KIND => Box::new(ItemKnn::load_model(r)?),
            Popularity::KIND => Box::new(Popularity::load_model(r)?),
            other => return Err(OcularError::UnknownModelKind(other.to_string())),
        };
        let footer = read_line(r).map_err(OcularError::from)?;
        if footer != FOOTER {
            return Err(OcularError::Corrupt(format!("missing `{FOOTER}` sentinel")));
        }
        Ok(AnySnapshot::Other(model))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocular_api::ScoreItems;
    use ocular_baselines::WalsConfig;
    use ocular_linalg::Matrix;
    use ocular_sparse::CsrMatrix;

    fn snapshot() -> Snapshot {
        let model = FactorModel::new(
            Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.2]]),
            Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 1.5], &[0.0, 3.0]]),
            false,
        );
        Snapshot::build(model, &IndexConfig { rel: 0.5, floor: 0 })
    }

    #[test]
    fn roundtrip() {
        let s = snapshot();
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        let loaded = Snapshot::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded, s);
    }

    #[test]
    fn v1_envelope_still_loads() {
        let s = snapshot();
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("ocular-snapshot v2 ocular\n"));
        let v1 = text.replacen("ocular-snapshot v2 ocular", V1_HEADER, 1);
        let loaded = Snapshot::load(&mut v1.as_bytes()).unwrap();
        assert_eq!(loaded, s);
        // and through the polymorphic loader
        match AnySnapshot::load(&mut v1.as_bytes()).unwrap() {
            AnySnapshot::Ocular(loaded) => assert_eq!(loaded, s),
            AnySnapshot::Other(_) => panic!("v1 must load as ocular"),
        }
    }

    #[test]
    fn truncation_at_every_line_rejected() {
        let s = snapshot();
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        for keep in 0..lines.len() {
            let partial = lines[..keep].join("\n");
            assert!(
                Snapshot::load(&mut partial.as_bytes()).is_err(),
                "truncation after {keep} lines must be rejected"
            );
            assert!(
                AnySnapshot::load(&mut partial.as_bytes()).is_err(),
                "AnySnapshot: truncation after {keep} lines must be rejected"
            );
        }
    }

    #[test]
    fn corrupt_sections_rejected() {
        let s = snapshot();
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // wrong envelope
        assert!(Snapshot::load(&mut "nope\n".as_bytes()).is_err());
        // tamper with the index header's cluster count
        let tampered = text.replace("cocluster-index v1 2", "cocluster-index v1 3");
        assert!(Snapshot::load(&mut tampered.as_bytes()).is_err());
        // non-numeric item id
        let tampered = text.replace("cocluster-index v1", "cocluster-index v9");
        assert!(Snapshot::load(&mut tampered.as_bytes()).is_err());
    }

    #[test]
    fn list_length_mismatch_rejected() {
        let s = snapshot();
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // cluster 0's list line is "2 0 1" (rel 0.5 keeps items 0, 1);
        // lie about its length
        assert!(text.contains("\n2 0 1\n"), "fixture drifted: {text}");
        let tampered = text.replace("\n2 0 1\n", "\n3 0 1\n");
        assert!(Snapshot::load(&mut tampered.as_bytes()).is_err());
        // out-of-order ids
        let tampered = text.replace("\n2 0 1\n", "\n2 1 0\n");
        assert!(Snapshot::load(&mut tampered.as_bytes()).is_err());
    }

    #[test]
    fn baseline_kind_roundtrips_through_any_snapshot() {
        let r =
            CsrMatrix::from_pairs(4, 4, &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 2), (3, 3)]).unwrap();
        let wals = Wals::fit(
            &r,
            &WalsConfig {
                k: 2,
                iters: 5,
                ..Default::default()
            },
        );
        let mut want = Vec::new();
        wals.score_user(1, &mut want);
        let snap = AnySnapshot::Other(Box::new(wals));
        assert_eq!(snap.kind(), "wals");
        let mut buf = Vec::new();
        snap.save(&mut buf).unwrap();
        let loaded = AnySnapshot::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.kind(), "wals");
        match loaded {
            AnySnapshot::Other(m) => {
                let mut got = Vec::new();
                m.score_user(1, &mut got);
                assert_eq!(got, want, "scores must round-trip bitwise");
            }
            AnySnapshot::Ocular(_) => panic!("wals must not load as ocular"),
        }
        // truncation of a baseline payload is rejected
        let text = String::from_utf8(buf).unwrap();
        let cut: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(AnySnapshot::load(&mut cut.as_bytes()).is_err());
    }

    #[test]
    fn unknown_kind_rejected_with_typed_error() {
        let doc = "ocular-snapshot v2 neural-net\nwhatever\nocular-snapshot end\n";
        assert!(matches!(
            AnySnapshot::load(&mut doc.as_bytes()),
            Err(OcularError::UnknownModelKind(k)) if k == "neural-net"
        ));
    }

    #[test]
    fn malformed_v2_headers_are_corrupt_not_misbinned() {
        // no separator: must not parse as kind `wals`
        assert!(matches!(
            AnySnapshot::load(&mut "ocular-snapshot v2wals\n".as_bytes()),
            Err(OcularError::Corrupt(_))
        ));
        // future version strings must not strip into a bogus kind
        assert!(matches!(
            AnySnapshot::load(&mut "ocular-snapshot v2.1 wals\n".as_bytes()),
            Err(OcularError::Corrupt(_))
        ));
        // empty kind tag
        assert!(matches!(
            AnySnapshot::load(&mut "ocular-snapshot v2 \n".as_bytes()),
            Err(OcularError::Corrupt(_))
        ));
    }

    #[test]
    fn bare_factor_model_rejected_in_other_arm_at_save() {
        let model = FactorModel::new(
            Matrix::from_rows(&[&[1.0]]),
            Matrix::from_rows(&[&[1.0]]),
            false,
        );
        let snap = AnySnapshot::Other(Box::new(model));
        let mut buf = Vec::new();
        let err = snap.save(&mut buf).unwrap_err();
        assert!(
            err.to_string().contains("AnySnapshot::Ocular"),
            "saving a bare ocular payload must fail loudly: {err}"
        );
    }
}
