//! The versioned wire protocol — **one** definition of the request,
//! response and error shapes every transport speaks.
//!
//! The JSON-lines stdin CLI and the TCP/HTTP front-end ([`crate::net`])
//! both encode and decode through this module, so they produce
//! byte-identical bodies for the same request stream (asserted by the
//! conformance test) and the CLI is a thin transport around the same
//! protocol the network tier serves.
//!
//! ## Shapes (protocol version 1)
//!
//! Request — one JSON object per line/body:
//!
//! ```text
//! {"user": 17, "m": 5}            warm user by internal row index
//! {"basket": [0, 4, 9], "m": 5}   cold-start basket of internal items
//! {"user_id": 90210}              warm user by external id
//! {"basket_ids": [1193, 661]}     cold-start basket of external ids
//! ```
//!
//! plus an optional `"v": 1` version pin. Exactly one addressing key is
//! required; unknown fields are rejected (`bad_request`), and a `v` other
//! than [`PROTOCOL_VERSION`] is rejected (`unsupported_version`) — the
//! versioning rule is that v1 shapes never change, and any breaking
//! revision bumps the version and keeps decoding pinned v1 requests.
//!
//! Success response — request echo, then the served list:
//!
//! ```text
//! {"user":17,"items":[3,9],"item_ids":[503,527],"probs":[0.91,0.83],
//!  "scored":104,"fallback":false}
//! ```
//!
//! (`item_ids` present exactly when the engine has id maps; cold requests
//! echo `"cold":true`, external warm requests echo `"user_id"`.)
//!
//! Three v1-additive trailing fields carry live-refresh telemetry:
//! `"folded_in":true` when a warm user newer than the active snapshot was
//! served by request-time fold-in (absent means false), and
//! `"model_generation"` / `"kind"` identify the model that answered —
//! what lets a client observe a hot swap land. A fourth additive field,
//! `"dtype"`, names the quantized scoring representation (`"f32"` /
//! `"int8"`) when the engine serves one; absent means the f64 master.
//! Additive means the v1 shape is unchanged: decoders that ignore unknown
//! fields keep working, and the version stays `"v": 1`.
//!
//! Error response — a typed taxonomy mapped from
//! [`OcularError`], message first for human eyes, machine-readable code
//! second:
//!
//! ```text
//! {"error":"unknown user 99 (model has 4 users)","code":"unknown_user"}
//! ```

use crate::engine::{Request, ServedList};
use crate::json::{obj, Json};
use ocular_api::OcularError;

/// The current wire-protocol version; requests may pin it with `"v"`.
pub const PROTOCOL_VERSION: u64 = 1;

/// The machine-readable error taxonomy of the wire protocol.
///
/// Request-shape failures get [`ErrorCode::BadRequest`] /
/// [`ErrorCode::UnsupportedVersion`], admission control sheds load with
/// [`ErrorCode::Overloaded`], and engine failures map from
/// [`OcularError`] (see [`WireError::from`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The request line/body was not a valid v1 request object.
    BadRequest,
    /// The request pinned a `"v"` this server does not speak.
    UnsupportedVersion,
    /// A warm request named a user the model does not have.
    UnknownUser,
    /// A request named an item outside the catalog.
    UnknownItem,
    /// An external id was never seen at ingestion time.
    UnknownId,
    /// A cold-start basket was unusable (out of range, duplicates).
    BadBasket,
    /// The model kind lacks the requested capability (e.g. fold-in).
    Unsupported,
    /// Admission control shed the request: the pending queue was full.
    Overloaded,
    /// A control-plane reload is already in flight (one at a time).
    Reloading,
    /// Any other engine failure (I/O, corruption, shape mismatch).
    Internal,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::UnknownUser => "unknown_user",
            ErrorCode::UnknownItem => "unknown_item",
            ErrorCode::UnknownId => "unknown_id",
            ErrorCode::BadBasket => "bad_basket",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Reloading => "reloading",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses the wire spelling back (decode side).
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad_request" => ErrorCode::BadRequest,
            "unsupported_version" => ErrorCode::UnsupportedVersion,
            "unknown_user" => ErrorCode::UnknownUser,
            "unknown_item" => ErrorCode::UnknownItem,
            "unknown_id" => ErrorCode::UnknownId,
            "bad_basket" => ErrorCode::BadBasket,
            "unsupported" => ErrorCode::Unsupported,
            "overloaded" => ErrorCode::Overloaded,
            "reloading" => ErrorCode::Reloading,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// The HTTP status the TCP front-end answers this code with (the
    /// stdin CLI has no status line — the body alone is the contract).
    pub fn http_status(self) -> u16 {
        match self {
            ErrorCode::BadRequest | ErrorCode::UnsupportedVersion | ErrorCode::BadBasket => 400,
            ErrorCode::UnknownUser | ErrorCode::UnknownItem | ErrorCode::UnknownId => 404,
            ErrorCode::Unsupported => 501,
            ErrorCode::Overloaded => 429,
            ErrorCode::Reloading => 503,
            ErrorCode::Internal => 500,
        }
    }
}

/// A typed wire error: taxonomy code plus the human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Machine-readable taxonomy entry.
    pub code: ErrorCode,
    /// Human-readable description (for engine failures, the rendered
    /// [`OcularError`]).
    pub message: String,
}

impl WireError {
    /// A malformed-request error.
    pub fn bad_request(message: impl Into<String>) -> WireError {
        WireError {
            code: ErrorCode::BadRequest,
            message: message.into(),
        }
    }

    /// The control-plane busy response: a reload is already in flight.
    pub fn reloading() -> WireError {
        WireError {
            code: ErrorCode::Reloading,
            message: "reload already in flight; retry after it completes".into(),
        }
    }

    /// The admission-control shed response.
    pub fn overloaded(pending: usize, cap: usize) -> WireError {
        WireError {
            code: ErrorCode::Overloaded,
            message: format!(
                "overloaded: admission queue full ({pending} pending, capacity {cap})"
            ),
        }
    }

    /// Encodes as the wire JSON object.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("error", Json::Str(self.message.clone())),
            ("code", Json::Str(self.code.as_str().to_string())),
        ])
    }

    /// Decodes the wire JSON object (tests, load generator).
    pub fn from_json(v: &Json) -> Result<WireError, String> {
        let message = v
            .get("error")
            .and_then(Json::as_str)
            .ok_or("error object needs a string `error` field")?
            .to_string();
        let code = v
            .get("code")
            .and_then(Json::as_str)
            .ok_or("error object needs a string `code` field")?;
        Ok(WireError {
            code: ErrorCode::parse(code).ok_or_else(|| format!("unknown error code `{code}`"))?,
            message,
        })
    }
}

impl From<&OcularError> for WireError {
    /// The one taxonomy mapping from engine errors to wire codes.
    fn from(e: &OcularError) -> WireError {
        let code = match e {
            OcularError::UnknownUser { .. } => ErrorCode::UnknownUser,
            OcularError::UnknownItem { .. } => ErrorCode::UnknownItem,
            OcularError::UnknownExternalId { .. } => ErrorCode::UnknownId,
            OcularError::BadBasket(_) => ErrorCode::BadBasket,
            OcularError::Unsupported { .. } => ErrorCode::Unsupported,
            // InvalidConfig / ShapeMismatch / Corrupt / Io / … cannot be
            // provoked by a well-formed request, so they are server faults
            _ => ErrorCode::Internal,
        };
        WireError {
            code,
            message: e.to_string(),
        }
    }
}

/// A decoded v1 request (the engine [`Request`] plus nothing — the wire
/// shape carries no transport concerns).
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// The engine-level request.
    pub request: Request,
}

impl WireRequest {
    /// Decodes one request line/body. `m` defaults to 0, which the engine
    /// resolves to its configured `default_m`.
    pub fn decode(text: &str) -> Result<WireRequest, WireError> {
        let v = Json::parse(text).map_err(WireError::bad_request)?;
        let fields = match &v {
            Json::Obj(fields) => fields,
            _ => return Err(WireError::bad_request("request must be a JSON object")),
        };
        // strict v1: unknown fields are rejected so typos fail loudly
        // instead of silently serving defaults
        for (key, _) in fields {
            match key.as_str() {
                "v" | "m" | "user" | "basket" | "user_id" | "basket_ids" => {}
                other => {
                    return Err(WireError::bad_request(format!(
                        "unknown request field `{other}`"
                    )))
                }
            }
        }
        if let Some(ver) = v.get("v") {
            let ver = ver
                .as_u64()
                .ok_or_else(|| WireError::bad_request("`v` must be a non-negative integer"))?;
            if ver != PROTOCOL_VERSION {
                return Err(WireError {
                    code: ErrorCode::UnsupportedVersion,
                    message: format!(
                        "protocol version {ver} not supported (this server speaks v{PROTOCOL_VERSION})"
                    ),
                });
            }
        }
        let m = match v.get("m") {
            None => 0,
            Some(j) => j
                .as_usize()
                .ok_or_else(|| WireError::bad_request("`m` must be a non-negative integer"))?,
        };
        let keys = [
            v.get("user"),
            v.get("basket"),
            v.get("user_id"),
            v.get("basket_ids"),
        ];
        if keys.iter().filter(|k| k.is_some()).count() != 1 {
            return Err(WireError::bad_request(
                "request needs exactly one of `user`, `basket`, `user_id` or `basket_ids`",
            ));
        }
        let request = if let Some(u) = v.get("user") {
            Request::Warm {
                user: u.as_usize().ok_or_else(|| {
                    WireError::bad_request("`user` must be a non-negative integer")
                })?,
                m,
            }
        } else if let Some(b) = v.get("basket") {
            let items = b
                .as_array()
                .ok_or_else(|| WireError::bad_request("`basket` must be an array"))?;
            Request::Cold {
                basket: items
                    .iter()
                    .map(|j| {
                        j.as_usize().ok_or_else(|| {
                            WireError::bad_request("basket items must be non-negative integers")
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                m,
            }
        } else if let Some(u) = v.get("user_id") {
            Request::WarmExternal {
                user: u.as_u64().ok_or_else(|| {
                    WireError::bad_request("`user_id` must be a non-negative integer below 2^53")
                })?,
                m,
            }
        } else {
            let b = v.get("basket_ids").expect("one key is present");
            let items = b
                .as_array()
                .ok_or_else(|| WireError::bad_request("`basket_ids` must be an array"))?;
            Request::ColdExternal {
                basket: items
                    .iter()
                    .map(|j| {
                        j.as_u64().ok_or_else(|| {
                            WireError::bad_request(
                                "basket ids must be non-negative integers below 2^53",
                            )
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                m,
            }
        };
        Ok(WireRequest { request })
    }

    /// Encodes back to the v1 wire shape (load generator, round-trip
    /// tests). Always pins `"v"` and spells `m` explicitly.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("v", Json::Int(PROTOCOL_VERSION))];
        let m = match &self.request {
            Request::Warm { user, m } => {
                fields.push(("user", Json::Num(*user as f64)));
                *m
            }
            Request::Cold { basket, m } => {
                fields.push((
                    "basket",
                    Json::Arr(basket.iter().map(|&i| Json::Num(i as f64)).collect()),
                ));
                *m
            }
            Request::WarmExternal { user, m } => {
                fields.push(("user_id", Json::Int(*user)));
                *m
            }
            Request::ColdExternal { basket, m } => {
                fields.push((
                    "basket_ids",
                    Json::Arr(basket.iter().map(|&i| Json::Int(i)).collect()),
                ));
                *m
            }
        };
        fields.push(("m", Json::Num(m as f64)));
        obj(fields)
    }

    /// [`WireRequest::to_json`] as a single line.
    pub fn encode(&self) -> String {
        self.to_json().to_string()
    }
}

/// What a success response echoes about the request it answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Echo {
    /// Warm request by internal row: `"user": n`.
    User(usize),
    /// Warm request by external id: `"user_id": n`.
    UserId(u64),
    /// Cold-start request: `"cold": true`.
    Cold,
}

/// A decoded success response.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResponse {
    /// The request echo.
    pub echo: Echo,
    /// Served items as internal indices, score descending.
    pub items: Vec<usize>,
    /// Served items as external ids — present exactly when the serving
    /// dataset carries id maps.
    pub item_ids: Option<Vec<u64>>,
    /// Membership probabilities, aligned with `items`.
    pub probs: Vec<f64>,
    /// How many items were scored for this request.
    pub scored: usize,
    /// Whether candidate generation fell back to the full catalog.
    pub fallback: bool,
    /// Whether a warm request was answered by request-time fold-in
    /// because the user is newer than the active snapshot. Encoded only
    /// when true (v1 additive field — absent means false).
    pub folded_in: bool,
    /// Generation of the model that served this request (v1 additive
    /// field, present when the engine knows it).
    pub model_generation: Option<u64>,
    /// Kind tag of the model that served this request (v1 additive
    /// field, present when the engine knows it).
    pub kind: Option<String>,
    /// Quantized scoring dtype (`"f32"` / `"int8"`) that answered this
    /// request (v1 additive field, present only when the engine scores
    /// through a quantized representation — absent means the f64 master).
    pub dtype: Option<String>,
}

impl WireResponse {
    /// Builds the response for a served request. `external_item` supplies
    /// the internal→external translation when the engine has id maps.
    pub fn new(
        req: &Request,
        list: &ServedList,
        external_item: Option<&dyn Fn(usize) -> u64>,
    ) -> WireResponse {
        let echo = match req {
            Request::Warm { user, .. } => Echo::User(*user),
            Request::WarmExternal { user, .. } => Echo::UserId(*user),
            Request::Cold { .. } | Request::ColdExternal { .. } => Echo::Cold,
        };
        let items: Vec<usize> = list.items.iter().map(|r| r.item).collect();
        WireResponse {
            echo,
            item_ids: external_item.map(|f| items.iter().map(|&i| f(i)).collect()),
            probs: list.items.iter().map(|r| r.probability).collect(),
            items,
            scored: list.scored,
            fallback: list.fell_back,
            folded_in: list.folded_in,
            model_generation: None,
            kind: None,
            dtype: None,
        }
    }

    /// Stamps the serving engine's identity — model generation and kind —
    /// into the response (what lets clients observe a hot swap land).
    pub fn with_model(mut self, generation: u64, kind: &str) -> WireResponse {
        self.model_generation = Some(generation);
        self.kind = Some(kind.to_string());
        self
    }

    /// Stamps the engine's quantized scoring dtype into the response
    /// (`None` — the f64 path — leaves the field off the wire).
    pub fn with_dtype(mut self, dtype: Option<&str>) -> WireResponse {
        self.dtype = dtype.map(str::to_string);
        self
    }

    /// Encodes as the wire JSON object (field order is part of the
    /// format: echo, items, item_ids?, probs, scored, fallback).
    pub fn to_json(&self) -> Json {
        let mut fields = match self.echo {
            Echo::User(u) => vec![("user", Json::Num(u as f64))],
            Echo::UserId(u) => vec![("user_id", Json::Int(u))],
            Echo::Cold => vec![("cold", Json::Bool(true))],
        };
        fields.push((
            "items",
            Json::Arr(self.items.iter().map(|&i| Json::Num(i as f64)).collect()),
        ));
        if let Some(ids) = &self.item_ids {
            fields.push((
                "item_ids",
                Json::Arr(ids.iter().map(|&i| Json::Int(i)).collect()),
            ));
        }
        fields.push((
            "probs",
            Json::Arr(self.probs.iter().map(|&p| Json::Num(p)).collect()),
        ));
        fields.push(("scored", Json::Num(self.scored as f64)));
        fields.push(("fallback", Json::Bool(self.fallback)));
        if self.folded_in {
            fields.push(("folded_in", Json::Bool(true)));
        }
        if let Some(g) = self.model_generation {
            fields.push(("model_generation", Json::Int(g)));
        }
        if let Some(kind) = &self.kind {
            fields.push(("kind", Json::Str(kind.clone())));
        }
        if let Some(dtype) = &self.dtype {
            fields.push(("dtype", Json::Str(dtype.clone())));
        }
        obj(fields)
    }

    /// Decodes the wire JSON object (tests, load generator). External ids
    /// at or above 2^53 cannot be recovered from JSON numbers and are
    /// rejected, mirroring the request-side rule.
    pub fn from_json(v: &Json) -> Result<WireResponse, String> {
        let echo = if let Some(u) = v.get("user") {
            Echo::User(u.as_usize().ok_or("`user` echo must be an integer")?)
        } else if let Some(u) = v.get("user_id") {
            Echo::UserId(u.as_u64().ok_or("`user_id` echo must be an integer")?)
        } else if v.get("cold").is_some() {
            Echo::Cold
        } else {
            return Err("response echoes none of `user`, `user_id`, `cold`".into());
        };
        let items = v
            .get("items")
            .and_then(Json::as_array)
            .ok_or("response needs an `items` array")?
            .iter()
            .map(|j| j.as_usize().ok_or("`items` entries must be integers"))
            .collect::<Result<Vec<_>, _>>()?;
        let item_ids = match v.get("item_ids") {
            None => None,
            Some(ids) => Some(
                ids.as_array()
                    .ok_or("`item_ids` must be an array")?
                    .iter()
                    .map(|j| j.as_u64().ok_or("`item_ids` entries must be integers"))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
        };
        let probs = v
            .get("probs")
            .and_then(Json::as_array)
            .ok_or("response needs a `probs` array")?
            .iter()
            .map(|j| j.as_f64().ok_or("`probs` entries must be numbers"))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(WireResponse {
            echo,
            items,
            item_ids,
            probs,
            scored: v
                .get("scored")
                .and_then(Json::as_usize)
                .ok_or("response needs an integer `scored`")?,
            fallback: match v.get("fallback") {
                Some(Json::Bool(b)) => *b,
                _ => return Err("response needs a boolean `fallback`".into()),
            },
            folded_in: match v.get("folded_in") {
                None => false,
                Some(Json::Bool(b)) => *b,
                _ => return Err("`folded_in` must be a boolean".into()),
            },
            model_generation: match v.get("model_generation") {
                None => None,
                Some(g) => Some(g.as_u64().ok_or("`model_generation` must be an integer")?),
            },
            kind: match v.get("kind") {
                None => None,
                Some(k) => Some(k.as_str().ok_or("`kind` must be a string")?.to_string()),
            },
            dtype: match v.get("dtype") {
                None => None,
                Some(d) => Some(d.as_str().ok_or("`dtype` must be a string")?.to_string()),
            },
        })
    }
}

/// One wire reply — success or typed error — with a single encoding used
/// by every transport.
#[derive(Debug, Clone, PartialEq)]
pub enum WireReply {
    /// A served list.
    Ok(WireResponse),
    /// A typed failure.
    Err(WireError),
}

impl WireReply {
    /// The one-line JSON encoding (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            WireReply::Ok(r) => r.to_json().to_string(),
            WireReply::Err(e) => e.to_json().to_string(),
        }
    }

    /// Decodes a reply line: objects with an `error` field are errors,
    /// everything else must parse as a success response.
    pub fn decode(text: &str) -> Result<WireReply, String> {
        let v = Json::parse(text)?;
        if v.get("error").is_some() {
            Ok(WireReply::Err(WireError::from_json(&v)?))
        } else {
            Ok(WireReply::Ok(WireResponse::from_json(&v)?))
        }
    }

    /// The HTTP status the TCP front-end pairs with this body.
    pub fn http_status(&self) -> u16 {
        match self {
            WireReply::Ok(_) => 200,
            WireReply::Err(e) => e.code.http_status(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocular_core::Recommendation;

    #[test]
    fn decodes_all_request_shapes() {
        let r = WireRequest::decode(r#"{"user": 17, "m": 5}"#).unwrap();
        assert_eq!(r.request, Request::Warm { user: 17, m: 5 });
        let r = WireRequest::decode(r#"{"basket": [0, 4, 9]}"#).unwrap();
        assert_eq!(
            r.request,
            Request::Cold {
                basket: vec![0, 4, 9],
                m: 0
            }
        );
        let r = WireRequest::decode(r#"{"v": 1, "user_id": 90210}"#).unwrap();
        assert_eq!(r.request, Request::WarmExternal { user: 90210, m: 0 });
        let r = WireRequest::decode(r#"{"basket_ids": [1193, 661], "m": 2}"#).unwrap();
        assert_eq!(
            r.request,
            Request::ColdExternal {
                basket: vec![1193, 661],
                m: 2
            }
        );
    }

    #[test]
    fn rejects_malformed_requests_with_typed_codes() {
        for (text, code) in [
            ("{", ErrorCode::BadRequest),
            ("[]", ErrorCode::BadRequest),
            (r#"{"user": 1, "basket": [2]}"#, ErrorCode::BadRequest),
            (r#"{"m": 3}"#, ErrorCode::BadRequest),
            (r#"{"user": -1}"#, ErrorCode::BadRequest),
            (r#"{"user": 1, "extra": true}"#, ErrorCode::BadRequest),
            (r#"{"v": 2, "user": 1}"#, ErrorCode::UnsupportedVersion),
            (r#"{"v": "x", "user": 1}"#, ErrorCode::BadRequest),
        ] {
            let err = WireRequest::decode(text).unwrap_err();
            assert_eq!(err.code, code, "`{text}`");
        }
    }

    #[test]
    fn request_encode_decode_round_trips() {
        for req in [
            Request::Warm { user: 3, m: 7 },
            Request::Cold {
                basket: vec![1, 5],
                m: 0,
            },
            Request::WarmExternal {
                user: (1 << 53) - 1,
                m: 1,
            },
            Request::ColdExternal {
                basket: vec![0, 99],
                m: 4,
            },
        ] {
            let wire = WireRequest {
                request: req.clone(),
            };
            assert_eq!(WireRequest::decode(&wire.encode()).unwrap().request, req);
        }
    }

    #[test]
    fn response_round_trips_and_orders_fields() {
        let list = ServedList {
            items: vec![
                Recommendation {
                    item: 9,
                    probability: 0.75,
                },
                Recommendation {
                    item: 3,
                    probability: 0.25,
                },
            ],
            scored: 42,
            fell_back: true,
            folded_in: false,
        };
        let resp = WireResponse::new(&Request::Warm { user: 7, m: 2 }, &list, None);
        let line = WireReply::Ok(resp.clone()).encode();
        assert_eq!(
            line,
            r#"{"user":7,"items":[9,3],"probs":[0.75,0.25],"scored":42,"fallback":true}"#
        );
        assert_eq!(WireReply::decode(&line).unwrap(), WireReply::Ok(resp));

        // with id maps: item_ids appear between items and probs
        let resp = WireResponse::new(
            &Request::WarmExternal { user: 1007, m: 2 },
            &list,
            Some(&|i| 500 + 3 * i as u64),
        );
        let line = WireReply::Ok(resp.clone()).encode();
        assert_eq!(
            line,
            r#"{"user_id":1007,"items":[9,3],"item_ids":[527,509],"probs":[0.75,0.25],"scored":42,"fallback":true}"#
        );
        assert_eq!(WireReply::decode(&line).unwrap(), WireReply::Ok(resp));
    }

    #[test]
    fn error_taxonomy_maps_and_round_trips() {
        let cases = [
            (
                OcularError::UnknownUser {
                    user: 9,
                    n_users: 4,
                },
                ErrorCode::UnknownUser,
                404,
            ),
            (
                OcularError::UnknownExternalId {
                    external: 7,
                    entity: "user",
                },
                ErrorCode::UnknownId,
                404,
            ),
            (
                OcularError::BadBasket("duplicate items".into()),
                ErrorCode::BadBasket,
                400,
            ),
            (
                OcularError::Unsupported {
                    kind: "user-knn",
                    capability: "cold-start fold-in",
                },
                ErrorCode::Unsupported,
                501,
            ),
            (
                OcularError::Io("disk on fire".into()),
                ErrorCode::Internal,
                500,
            ),
        ];
        for (engine_err, code, status) in cases {
            let wire = WireError::from(&engine_err);
            assert_eq!(wire.code, code);
            assert_eq!(wire.message, engine_err.to_string());
            assert_eq!(wire.code.http_status(), status);
            let line = WireReply::Err(wire.clone()).encode();
            assert_eq!(WireReply::decode(&line).unwrap(), WireReply::Err(wire));
        }
        let shed = WireError::overloaded(128, 128);
        assert_eq!(shed.code.http_status(), 429);
        assert!(shed.message.contains("128 pending"));
    }

    #[test]
    fn live_refresh_fields_are_additive_and_round_trip() {
        let list = ServedList {
            items: vec![Recommendation {
                item: 4,
                probability: 0.5,
            }],
            scored: 10,
            fell_back: false,
            folded_in: true,
        };
        let resp = WireResponse::new(&Request::Warm { user: 91, m: 1 }, &list, None)
            .with_model(7, "ocular");
        let line = WireReply::Ok(resp.clone()).encode();
        assert_eq!(
            line,
            r#"{"user":91,"items":[4],"probs":[0.5],"scored":10,"fallback":false,"folded_in":true,"model_generation":7,"kind":"ocular"}"#
        );
        assert_eq!(WireReply::decode(&line).unwrap(), WireReply::Ok(resp));

        // absent fields decode to their defaults — pre-refresh responses
        // still parse
        let old = r#"{"user":91,"items":[4],"probs":[0.5],"scored":10,"fallback":false}"#;
        let WireReply::Ok(decoded) = WireReply::decode(old).unwrap() else {
            panic!("expected success reply");
        };
        assert!(!decoded.folded_in);
        assert_eq!(decoded.model_generation, None);
        assert_eq!(decoded.kind, None);
        assert_eq!(decoded.dtype, None);
    }

    #[test]
    fn dtype_field_is_additive_and_round_trips() {
        let list = ServedList {
            items: vec![Recommendation {
                item: 2,
                probability: 0.5,
            }],
            scored: 10,
            fell_back: false,
            folded_in: false,
        };
        let resp = WireResponse::new(&Request::Warm { user: 1, m: 1 }, &list, None)
            .with_model(4, "ocular")
            .with_dtype(Some("int8"));
        let line = WireReply::Ok(resp.clone()).encode();
        assert_eq!(
            line,
            r#"{"user":1,"items":[2],"probs":[0.5],"scored":10,"fallback":false,"model_generation":4,"kind":"ocular","dtype":"int8"}"#
        );
        assert_eq!(
            WireReply::decode(&line).unwrap(),
            WireReply::Ok(resp.clone())
        );
        // the f64 path leaves the field off the wire entirely
        let bare = resp.with_dtype(None);
        assert!(!WireReply::Ok(bare).encode().contains("dtype"));
    }

    #[test]
    fn reloading_code_maps_to_503_and_round_trips() {
        let busy = WireError::reloading();
        assert_eq!(busy.code, ErrorCode::Reloading);
        assert_eq!(busy.code.http_status(), 503);
        assert_eq!(ErrorCode::parse("reloading"), Some(ErrorCode::Reloading));
        let line = WireReply::Err(busy.clone()).encode();
        assert_eq!(WireReply::decode(&line).unwrap(), WireReply::Err(busy));
    }

    #[test]
    fn error_encoding_keeps_error_field_first() {
        // jq consumers key on `.error` being the message string
        let line = WireReply::Err(WireError::bad_request("nope")).encode();
        assert_eq!(line, r#"{"error":"nope","code":"bad_request"}"#);
    }
}
