//! # ocular-serve
//!
//! The online serving subsystem for the OCuLaR reproduction — the piece
//! that turns trained co-cluster factors into a request-path engine, per
//! the paper's scalability pitch (*"Scalable and interpretable product
//! recommendations via overlapping co-clustering"*, Heckel et al., ICDE
//! 2017, Sections IV-C and VIII).
//!
//! ## What serving adds over batch evaluation
//!
//! * **Snapshots** ([`snapshot`]) — versioned, **kind-tagged** on-disk
//!   artifacts with truncation/corruption detection, in two formats:
//!   the line-oriented text envelope (`ocular-snapshot v2 <kind>`) and
//!   the **mmap-able binary container** (`ocular-snapshot v3`,
//!   [`SnapshotFormat::Binary`]) whose factor matrices, cluster-index
//!   CSR and id-map tables are **borrowed zero-copy** from the mapped
//!   file at engine start. Every model kind in the workspace zoo
//!   (`ocular`, `wals`, `bpr`, `user-knn`, `item-knn`, `popularity`)
//!   snapshots through [`ocular_api::SnapshotModel`] and loads back
//!   through [`AnySnapshot`] (magic-byte sniffing picks the codec);
//!   legacy v1 OCuLaR snapshots still load.
//! * **Candidate generation** ([`index`]) — per-cluster inverted item
//!   lists built once at load; a request scores only items reachable from
//!   the requester's co-clusters, with a full-catalog fallback knob
//!   ([`CandidatePolicy`]).
//! * **Bounded-heap selection** — top-M via
//!   [`ocular_core::topm`], `O(candidates · log M)` instead of a full
//!   sort; in [`CandidatePolicy::FullCatalog`] mode the served lists are
//!   **bitwise identical** to [`ocular_core::recommend_top_m`].
//! * **Cold start** — unseen users are folded in at request time
//!   (OCuLaR via [`ocular_core::fold_in_user`]; other kinds through their
//!   [`ocular_api::FoldIn`] capability, with a typed
//!   [`ocular_api::OcularError::Unsupported`] answer where the algorithm
//!   admits none), then served through the same selection path.
//! * **Batching** ([`ServeEngine::serve_batch`]) — rayon-parallel over
//!   requests, deterministic in request order and output regardless of
//!   thread count.
//! * **A CLI** (`serve` binary) — JSON-lines requests on stdin, JSON-lines
//!   responses on stdout, plus a `--train` mode that fits a model from an
//!   edge list and writes a snapshot. See the README's *Serving* section.
//!
//! ## Example
//!
//! ```
//! use ocular_serve::Request;
//! use ocular_core::{fit, OcularConfig};
//! use ocular_sparse::io::read_edge_list_str;
//!
//! // ingestion → Dataset: external ids compacted, id maps kept
//! let r = read_edge_list_str(
//!     "100\t7\n100\t8\n200\t7\n200\t8\n300\t55\n300\t56\n400\t55\n400\t56\n",
//!     "\t", None,
//! ).unwrap().into_dataset();
//! let model = fit(&r, &OcularConfig { k: 2, lambda: 0.05, seed: 7, ..Default::default() }).model;
//! let engine = ocular_serve::EngineBuilder::from_model(model).dataset(r).build().unwrap();
//! // requests can arrive with the ingestion-time external ids
//! let out = engine.serve_one(&Request::WarmExternal { user: 100, m: 2 }).unwrap();
//! assert_eq!(out.items.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod index;
pub mod json;
pub mod net;
pub mod protocol;
pub mod shard;
pub mod snapshot;
pub mod swap;

pub use engine::{
    CandidatePolicy, EngineBuilder, Request, ServeConfig, ServeEngine, ServeError, ServedList,
};
pub use index::{ClusterIndex, IndexConfig};
pub use protocol::{WireError, WireReply, WireRequest, WireResponse, PROTOCOL_VERSION};
pub use shard::{AnyEngine, ShardStat, ShardedEngine};
pub use snapshot::{
    shard_path, AnySnapshot, LoadedSnapshot, ShardedLoad, Snapshot, SnapshotFormat, SnapshotShard,
    OCULAR_KIND,
};
// re-exported so CLI/transport layers name the quantized dtypes without a
// direct linalg dependency
pub use ocular_linalg::{QuantDtype, QuantizedFactors};
pub use swap::SwapEngine;
