//! Scatter-gather sharded serving: a coordinator over `N` per-shard
//! [`ServeEngine`]s, one per core, each owning a hash-disjoint slice of
//! the user rows and a **replicated** copy of the item-side state.
//!
//! This is the serving half of the paper's scalability argument (Heckel
//! et al. §VII): given the item factors, users decompose independently —
//! so the serving tier can put each user's row (and only it) on one
//! worker and still answer every request exactly. Three routing rules,
//! all keyed by [`ocular_bytes::shard_of_key`] — the same rule
//! [`ocular_sparse::ShardedDataset`] and the sharded snapshot writer use:
//!
//! * **Warm requests** go to the one shard that owns the user's row.
//!   The shard serves it exactly as an unsharded engine would (same
//!   floats, same ties, same fold-in fallback for post-snapshot users).
//! * **Cold requests in a batch** go whole to one shard, round-robin:
//!   the item-side state is replicated, so any shard folds and scores a
//!   basket bitwise-identically; spreading requests (not one request's
//!   work) is what scales throughput.
//! * **Cold requests served one at a time** scatter: the coordinator
//!   folds the basket once, every shard scores a contiguous span of the
//!   catalog (or of the candidate list), and the span top-Ms merge
//!   through the same bounded heap — [`ocular_linalg::TopK`] — whose
//!   total order (probability descending, ties by ascending item) makes
//!   the merged list exactly the single-pass selection.
//!
//! Because every path reduces to the unsharded engine's arithmetic over
//! the same data, wire replies are **byte-identical** to unsharded
//! serving at any shard count, and `N = 1` is the unsharded engine with
//! one extra table lookup per request.

use crate::engine::{EngineBuilder, Request, ServeConfig, ServeEngine, ServeError, ServedList};
use crate::protocol::WireReply;
use crate::snapshot::{AnySnapshot, ShardedLoad, Snapshot};
use ocular_api::OcularError;
use ocular_bytes::shard_of_key;
use ocular_core::Recommendation;
use ocular_linalg::{QuantDtype, TopK};
use ocular_sparse::{Dataset, ShardedDataset};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-shard serving telemetry, reported by `/stats` as the additive
/// `shard` field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStat {
    /// Shard index.
    pub shard: usize,
    /// Dataset users owned by this shard.
    pub users: usize,
    /// Requests dispatched to this shard since start: warm requests on
    /// the owning shard, batched cold requests on their round-robin
    /// shard, and every shard once per scattered cold request.
    pub requests: u64,
}

/// The scatter-gather coordinator: `N` shard engines plus the routing
/// tables. See the [module docs](self). Construct with
/// [`ShardedEngine::split`] (in-memory partition of one snapshot) or
/// [`ShardedEngine::assemble`] (from per-shard snapshot files written by
/// [`AnySnapshot::save_path_sharded`]).
pub struct ShardedEngine {
    shards: Vec<Arc<ServeEngine>>,
    /// Per global user row: `(shard, shard-local row)`.
    assign: Vec<(u32, u32)>,
    /// Whether the serving dataset carries id maps (external-id requests
    /// then route by hash; identity ids route by row index).
    has_ids: bool,
    n_items: usize,
    /// Requests dispatched per shard (see [`ShardStat::requests`]).
    requests: Vec<AtomicU64>,
    /// Round-robin cursor for batched cold requests.
    cold_rr: AtomicU64,
}

impl ShardedEngine {
    /// Partitions one OCuLaR snapshot and its serving dataset into
    /// `n_shards` shard engines, in memory. User-factor rows and dataset
    /// rows split along the same external-id hash, so shard-local model
    /// rows line up with shard dataset rows; item factors, cluster index
    /// and any quantized copy are replicated. `quantize` follows
    /// [`EngineBuilder::quantization`] semantics on every shard.
    ///
    /// The dataset may exceed the model on both axes (dataset ⊇ model);
    /// post-snapshot users sort after model users inside their shard and
    /// are served by fold-in, exactly like the unsharded engine.
    pub fn split(
        snapshot: Snapshot,
        dataset: &Dataset,
        n_shards: usize,
        cfg: ServeConfig,
        generation: u64,
        quantize: Option<QuantDtype>,
    ) -> Result<ShardedEngine, OcularError> {
        let (model_users, model_items) = (snapshot.model.n_users(), snapshot.model.n_items());
        if dataset.n_users() < model_users || dataset.n_items() < model_items {
            return Err(OcularError::ShapeMismatch {
                expected: (model_users, model_items),
                found: (dataset.n_users(), dataset.n_items()),
            });
        }
        let sharded = ShardedDataset::split(dataset, n_shards)
            .map_err(|e| OcularError::InvalidConfig(e.to_string()))?;
        let ids: Option<Vec<u64>> = dataset.ids().map(|m| m.users()[..model_users].to_vec());
        let parts = snapshot.split_users(ids.as_deref(), n_shards)?;
        let has_ids = dataset.ids().is_some();
        let n_items = dataset.n_items();
        let (datasets, global_of, assign) = sharded.into_parts();
        debug_assert!(parts.iter().zip(&global_of).all(|(p, g)| p
            .global_rows
            .iter()
            .zip(g.iter())
            .all(|(&a, &b)| a == b as u64)));
        let engines = datasets
            .into_iter()
            .zip(parts)
            .map(|(ds, part)| {
                let mut b = EngineBuilder::from_snapshot(AnySnapshot::Ocular(part.snapshot))
                    .dataset(ds)
                    .config(cfg.clone())
                    .generation(generation);
                if let Some(dtype) = quantize {
                    b = b.quantization(dtype);
                }
                b.build()
            })
            .collect::<Result<Vec<ServeEngine>, OcularError>>()?;
        Ok(Self::from_engines(engines, assign, has_ids, n_items))
    }

    /// Builds the coordinator from a loaded shard-file family (see
    /// [`AnySnapshot::load_path_sharded`]) plus the full serving dataset.
    /// The dataset is re-partitioned with the same hash rule and each
    /// shard file's `shgid` table must agree with the dataset partition —
    /// a family written against different ingestion data is a
    /// [`OcularError::Corrupt`], not a silently misrouted server.
    ///
    /// Each shard engine's generation is
    /// `max(generation_floor, file metadata generation)`, matching the
    /// unsharded CLI's reload semantics.
    pub fn assemble(
        load: ShardedLoad,
        dataset: &Dataset,
        cfg: ServeConfig,
        generation_floor: u64,
        quantize: Option<QuantDtype>,
    ) -> Result<ShardedEngine, OcularError> {
        let n_shards = load.shards.len();
        let sharded = ShardedDataset::split(dataset, n_shards)
            .map_err(|e| OcularError::InvalidConfig(e.to_string()))?;
        let total_model: usize = load.global_rows.iter().map(Vec::len).sum();
        let has_ids = dataset.ids().is_some();
        let n_items = dataset.n_items();
        let (datasets, global_of, assign) = sharded.into_parts();
        let mut engines = Vec::with_capacity(n_shards);
        for (s, ((loaded, gid), ds)) in load
            .shards
            .into_iter()
            .zip(load.global_rows)
            .zip(datasets)
            .enumerate()
        {
            // the dataset's model-row prefix in this shard must be exactly
            // the rows the shard file claims, in the same order
            let owned = &global_of[s];
            let aligned = gid.len() <= owned.len()
                && gid
                    .iter()
                    .zip(owned.iter())
                    .all(|(&a, &b)| a == u64::from(b))
                && owned[gid.len()..]
                    .iter()
                    .all(|&g| g as usize >= total_model);
            if !aligned {
                return Err(OcularError::Corrupt(format!(
                    "shard {s} snapshot file and dataset disagree on the user \
                     partition — the snapshot family was written against \
                     different ingestion data"
                )));
            }
            let generation = generation_floor.max(loaded.meta.as_ref().map_or(0, |m| m.generation));
            let mut b = EngineBuilder::from_snapshot(loaded.snapshot)
                .dataset(ds)
                .config(cfg.clone())
                .generation(generation);
            if let Some(dtype) = quantize {
                b = b.quantization(dtype);
            }
            engines.push(b.build()?);
        }
        Ok(Self::from_engines(engines, assign, has_ids, n_items))
    }

    fn from_engines(
        engines: Vec<ServeEngine>,
        assign: Vec<(u32, u32)>,
        has_ids: bool,
        n_items: usize,
    ) -> ShardedEngine {
        let requests = engines.iter().map(|_| AtomicU64::new(0)).collect();
        ShardedEngine {
            shards: engines.into_iter().map(Arc::new).collect(),
            assign,
            has_ids,
            n_items,
            requests,
            cold_rr: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total dataset users across all shards.
    pub fn n_users(&self) -> usize {
        self.assign.len()
    }

    /// Catalog width (identical on every shard).
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// The per-shard engines, in shard order.
    pub fn engines(&self) -> &[Arc<ServeEngine>] {
        &self.shards
    }

    /// The generation being served (identical on every shard).
    pub fn generation(&self) -> u64 {
        self.shards[0].generation()
    }

    /// The kind tag of the model being served.
    pub fn kind(&self) -> &'static str {
        self.shards[0].kind()
    }

    /// Active quantized scoring dtype, if any.
    pub fn dtype(&self) -> Option<&'static str> {
        self.shards[0].dtype()
    }

    /// Per-shard telemetry for `/stats`.
    pub fn shard_stats(&self) -> Vec<ShardStat> {
        self.shards
            .iter()
            .zip(&self.requests)
            .enumerate()
            .map(|(s, (eng, reqs))| ShardStat {
                shard: s,
                users: eng.dataset().n_users(),
                requests: reqs.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Routes one warm request to `(owning shard, shard-local request)`,
    /// reproducing the unsharded engine's error surface for unknown
    /// users/ids. Cold requests are not routed here — they either
    /// scatter ([`ShardedEngine::serve_one`]) or round-robin
    /// ([`ShardedEngine::serve_batch`]).
    fn route_warm(&self, req: &Request) -> Result<(usize, Request), ServeError> {
        match *req {
            Request::Warm { user, m } => {
                if user >= self.assign.len() {
                    return Err(OcularError::UnknownUser {
                        user,
                        n_users: self.assign.len(),
                    });
                }
                let (s, l) = self.assign[user];
                Ok((
                    s as usize,
                    Request::Warm {
                        user: l as usize,
                        m,
                    },
                ))
            }
            Request::WarmExternal { user, m } => {
                if self.has_ids {
                    // hash routing: the owning shard's id maps resolve the
                    // id, or answer UnknownExternalId exactly like the
                    // unsharded maps (an id present anywhere lives there)
                    Ok((shard_of_key(user, self.shards.len()), req.clone()))
                } else {
                    // identity mapping: resolve here (ext < n_users ⇒ row),
                    // then route the row like any warm request
                    let g = usize::try_from(user)
                        .ok()
                        .filter(|&g| g < self.assign.len())
                        .ok_or(OcularError::UnknownExternalId {
                            external: user,
                            entity: "user",
                        })?;
                    let (s, l) = self.assign[g];
                    Ok((
                        s as usize,
                        Request::Warm {
                            user: l as usize,
                            m,
                        },
                    ))
                }
            }
            Request::Cold { .. } | Request::ColdExternal { .. } => {
                unreachable!("cold requests are dispatched by the caller")
            }
        }
    }

    /// Serves one request on the calling thread. Warm requests run
    /// entirely on the owning shard; cold requests fold once and scatter
    /// the scoring across every shard's span of the item domain.
    pub fn serve_one(&self, req: &Request) -> Result<ServedList, ServeError> {
        match req {
            Request::Warm { .. } | Request::WarmExternal { .. } => {
                let (s, local) = self.route_warm(req)?;
                self.requests[s].fetch_add(1, Ordering::Relaxed);
                self.shards[s].serve_one(&local)
            }
            Request::Cold { basket, m } => self.scatter_cold(basket, *m),
            Request::ColdExternal { basket, m } => {
                // item maps are replicated: shard 0 resolves exactly like
                // the unsharded dataset (identity fallback included)
                let lead = self.shards[0].dataset();
                let internal = basket
                    .iter()
                    .map(|&ext| {
                        lead.item_index(ext).ok_or(OcularError::UnknownExternalId {
                            external: ext,
                            entity: "item",
                        })
                    })
                    .collect::<Result<Vec<usize>, _>>()?;
                self.scatter_cold(&internal, *m)
            }
        }
    }

    /// The scatter-gather cold path: fold the basket once on the calling
    /// thread's fold-in scratch, have every shard score its contiguous
    /// span with its replicated item-side state, and merge the span
    /// top-Ms through the shared bounded heap.
    fn scatter_cold(&self, basket: &[usize], m: usize) -> Result<ServedList, ServeError> {
        let lead = &self.shards[0];
        let m = lead.effective_m_pub(m);
        let (factors, exclude) = lead.fold_cold(basket)?;
        for c in &self.requests {
            c.fetch_add(1, Ordering::Relaxed);
        }
        let n = self.shards.len();
        let mut heap = TopK::new(m);
        let (scored, fell_back) = match lead.cold_plan(&factors, &exclude, m) {
            Some(candidates) => {
                // split the (ascending) candidate list into N contiguous
                // chunks, first `rem` chunks one longer
                let (chunk, rem) = (candidates.len() / n, candidates.len() % n);
                let mut scored = 0usize;
                let mut start = 0usize;
                for (s, eng) in self.shards.iter().enumerate() {
                    let len = chunk + usize::from(s < rem);
                    let (part, part_scored) = eng.score_candidates_span(
                        &factors,
                        &candidates[start..start + len],
                        &exclude,
                        m,
                    );
                    for r in part {
                        heap.push(r.item, r.probability);
                    }
                    scored += part_scored;
                    start += len;
                }
                (scored, false)
            }
            None => {
                let (chunk, rem) = (self.n_items / n, self.n_items % n);
                let mut start = 0usize;
                for (s, eng) in self.shards.iter().enumerate() {
                    let len = chunk + usize::from(s < rem);
                    let (part, _) = eng.score_full_span(&factors, &exclude, m, start, len);
                    for r in part {
                        heap.push(r.item, r.probability);
                    }
                    start += len;
                }
                (self.n_items, lead.full_catalog_is_fallback())
            }
        };
        let items = heap
            .into_sorted()
            .into_iter()
            .map(|(probability, item)| Recommendation { item, probability })
            .collect();
        Ok(ServedList {
            items,
            scored,
            fell_back,
            folded_in: false,
        })
    }

    /// Serves a batch with one worker thread per shard. Warm requests
    /// group on their owning shard; cold requests go whole to a
    /// round-robin shard (replicated item state makes any shard's answer
    /// byte-identical), so each shard's worker folds its own cold
    /// requests on its own thread-local scratch. Responses come back in
    /// request order and every one is identical to
    /// [`ShardedEngine::serve_one`] output up to the cold path's
    /// latency/throughput trade (the bytes are the same either way).
    pub fn serve_batch(&self, requests: &[Request]) -> Vec<Result<ServedList, ServeError>> {
        let n = self.shards.len();
        let mut results: Vec<Option<Result<ServedList, ServeError>>> =
            (0..requests.len()).map(|_| None).collect();
        let mut groups: Vec<Vec<(usize, Request)>> = vec![Vec::new(); n];
        for (i, req) in requests.iter().enumerate() {
            match req {
                Request::Warm { .. } | Request::WarmExternal { .. } => match self.route_warm(req) {
                    Ok((s, local)) => {
                        self.requests[s].fetch_add(1, Ordering::Relaxed);
                        groups[s].push((i, local));
                    }
                    Err(e) => results[i] = Some(Err(e)),
                },
                Request::Cold { .. } | Request::ColdExternal { .. } => {
                    let s = (self.cold_rr.fetch_add(1, Ordering::Relaxed) as usize) % n;
                    self.requests[s].fetch_add(1, Ordering::Relaxed);
                    groups[s].push((i, req.clone()));
                }
            }
        }
        std::thread::scope(|scope| {
            let workers: Vec<_> = groups
                .iter()
                .zip(&self.shards)
                .filter(|(group, _)| !group.is_empty())
                .map(|(group, eng)| {
                    scope.spawn(move || {
                        group
                            .iter()
                            .map(|(i, req)| (*i, eng.serve_one(req)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for worker in workers {
                for (i, r) in worker.join().expect("shard worker panicked") {
                    results[i] = Some(r);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every request routed or answered"))
            .collect()
    }

    /// Renders a wire reply. Delegates to shard 0: item-id translation
    /// reads the replicated item table and the model stamp is identical
    /// on every shard, so the reply matches the unsharded engine's byte
    /// for byte.
    pub fn wire_reply(&self, req: &Request, result: &Result<ServedList, ServeError>) -> WireReply {
        self.shards[0].wire_reply(req, result)
    }
}

/// A serving engine of either arity — one unsharded [`ServeEngine`] or a
/// [`ShardedEngine`] coordinator — behind the one surface the transports
/// (stdin CLI, TCP server, hot-swap tier) actually use.
// One per swap generation, held behind an `Arc` — never in a
// collection — so the variant size spread costs nothing.
#[allow(clippy::large_enum_variant)]
pub enum AnyEngine {
    /// The unsharded in-process engine.
    Single(ServeEngine),
    /// The scatter-gather coordinator.
    Sharded(ShardedEngine),
}

impl From<ServeEngine> for AnyEngine {
    fn from(e: ServeEngine) -> Self {
        AnyEngine::Single(e)
    }
}

impl From<ShardedEngine> for AnyEngine {
    fn from(e: ShardedEngine) -> Self {
        AnyEngine::Sharded(e)
    }
}

impl AnyEngine {
    /// Serves one request (see [`ServeEngine::serve_one`] /
    /// [`ShardedEngine::serve_one`]).
    pub fn serve_one(&self, req: &Request) -> Result<ServedList, ServeError> {
        match self {
            AnyEngine::Single(e) => e.serve_one(req),
            AnyEngine::Sharded(e) => e.serve_one(req),
        }
    }

    /// Serves a batch in request order.
    pub fn serve_batch(&self, requests: &[Request]) -> Vec<Result<ServedList, ServeError>> {
        match self {
            AnyEngine::Single(e) => e.serve_batch(requests),
            AnyEngine::Sharded(e) => e.serve_batch(requests),
        }
    }

    /// Batch serving under an explicit thread count. The sharded
    /// coordinator ignores the knob — its parallelism *is* the shard
    /// count, one worker per shard.
    pub fn serve_batch_threads(
        &self,
        requests: &[Request],
        threads: Option<usize>,
    ) -> Vec<Result<ServedList, ServeError>> {
        match self {
            AnyEngine::Single(e) => e.serve_batch_threads(requests, threads),
            AnyEngine::Sharded(e) => e.serve_batch(requests),
        }
    }

    /// Renders a wire reply for one request/result pair.
    pub fn wire_reply(&self, req: &Request, result: &Result<ServedList, ServeError>) -> WireReply {
        match self {
            AnyEngine::Single(e) => e.wire_reply(req, result),
            AnyEngine::Sharded(e) => e.wire_reply(req, result),
        }
    }

    /// The model generation being served.
    pub fn generation(&self) -> u64 {
        match self {
            AnyEngine::Single(e) => e.generation(),
            AnyEngine::Sharded(e) => e.generation(),
        }
    }

    /// The kind tag of the model being served.
    pub fn kind(&self) -> &'static str {
        match self {
            AnyEngine::Single(e) => e.kind(),
            AnyEngine::Sharded(e) => e.kind(),
        }
    }

    /// Active quantized scoring dtype, if any.
    pub fn dtype(&self) -> Option<&'static str> {
        match self {
            AnyEngine::Single(e) => e.dtype(),
            AnyEngine::Sharded(e) => e.dtype(),
        }
    }

    /// Total serving-dataset users.
    pub fn n_users(&self) -> usize {
        match self {
            AnyEngine::Single(e) => e.dataset().n_users(),
            AnyEngine::Sharded(e) => e.n_users(),
        }
    }

    /// Per-shard telemetry — `None` for unsharded engines, so `/stats`
    /// only grows its `shard` field when sharding is on.
    pub fn shard_stats(&self) -> Option<Vec<ShardStat>> {
        match self {
            AnyEngine::Single(_) => None,
            AnyEngine::Sharded(e) => Some(e.shard_stats()),
        }
    }

    /// The unsharded engine, when that is what this is (tests, embedded
    /// callers that need [`ServeEngine`]-only accessors).
    pub fn as_single(&self) -> Option<&ServeEngine> {
        match self {
            AnyEngine::Single(e) => Some(e),
            AnyEngine::Sharded(_) => None,
        }
    }
}
