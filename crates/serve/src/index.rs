//! Per-cluster inverted item lists — the candidate-generation index.
//!
//! The paper's pitch is that co-cluster factors make serving *scalable*: a
//! user's plausible recommendations live in the co-clusters the user
//! belongs to, so a request does not have to score the full catalog
//! (Section IV-C; candidate generation via clusters is the standard
//! production pattern for clustering-based recommenders). The index is
//! built once — at snapshot time or engine load — and maps each co-cluster
//! dimension to the items affiliated with it.
//!
//! Membership is **relative**, mirroring
//! [`extract_coclusters_relative`](ocular_core::coclusters::extract_coclusters_relative):
//! regularised training splits affiliation magnitude asymmetrically between
//! the large side (many users, individually small strengths) and the small
//! side of a co-cluster, so one absolute cutoff cannot fit both. Instead:
//!
//! * item `i` is indexed under cluster `c` iff `[f_i]_c ≥ rel · max_i [f_i]_c`;
//! * a requester (warm row or folded cold-start vector) *activates* cluster
//!   `c` iff `f[c] ≥ rel · max_c f[c]` — relative to its own strongest
//!   dimension, which also works for fold-in vectors never seen in training.
//!
//! Dimensions whose best user·item product cannot reach connection
//! probability ½ (`max_u · max_i < ln 2`) are dead — never clusters — and
//! get empty lists, pushing their (hopeless) requests to the fallback path.

use ocular_bytes::{U32Buf, U64Buf};
use ocular_core::FactorModel;
use ocular_sparse::col_index;

/// Dead-dimension rule: the strongest pair must connect with probability
/// ≥ ½, i.e. affinity ≥ ln 2 (the same rule as co-cluster extraction).
const MIN_TOP_PAIR_AFFINITY: f64 = core::f64::consts::LN_2;

/// Index build parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexConfig {
    /// Relative membership cutoff in `(0, 1]`: item `i` joins cluster `c`'s
    /// list when `[f_i]_c ≥ rel · max_i [f_i]_c`, and a requester activates
    /// `c` when `f[c] ≥ rel · max_c f[c]`.
    pub rel: f64,
    /// Minimum list length per live cluster: lists shorter than this under
    /// the relative rule are topped up with the cluster's next-strongest
    /// items (power-law item strengths otherwise leave lists of a handful
    /// of items, starving candidate generation). Capped by the catalog.
    pub floor: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            rel: 0.5,
            floor: 100,
        }
    }
}

/// Inverted item lists, one per co-cluster dimension, stored **CSR**:
/// one concatenated item array plus a row-pointer array. The CSR layout
/// is exactly what the v3 binary snapshot serialises, so an index loaded
/// from a snapshot **borrows** both arrays from the (possibly mmap'd)
/// byte region — engine start-up rebuilds nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterIndex {
    rel: f64,
    n_items: usize,
    /// `indptr[c]..indptr[c + 1]` bounds cluster `c`'s slice of `items`.
    indptr: U64Buf,
    /// Concatenated ascending item lists.
    items: U32Buf,
}

impl ClusterIndex {
    /// Builds the index from a fitted model's factors. Bias columns (when
    /// present) are never indexed — they are not co-clusters.
    ///
    /// Each live cluster's list holds the items within `cfg.rel` of the
    /// cluster's strongest item, topped up to `cfg.floor` items by strength
    /// (ties by ascending item index, so the build is deterministic).
    ///
    /// # Panics
    /// Panics if `cfg.rel` is outside `(0, 1]`.
    pub fn build(model: &FactorModel, cfg: &IndexConfig) -> Self {
        assert!(
            cfg.rel > 0.0 && cfg.rel <= 1.0,
            "relative membership cutoff must lie in (0, 1]"
        );
        let items = (0..model.n_clusters())
            .map(|c| {
                let max_u = (0..model.n_users())
                    .map(|u| model.user_factors.row(u)[c])
                    .fold(0.0f64, f64::max);
                let max_i = (0..model.n_items())
                    .map(|i| model.item_factors.row(i)[c])
                    .fold(0.0f64, f64::max);
                if max_u * max_i < MIN_TOP_PAIR_AFFINITY {
                    return Vec::new(); // dead dimension
                }
                // strength descending, ties by ascending item
                let mut by_strength: Vec<(f64, usize)> = (0..model.n_items())
                    .map(|i| (model.item_factors.row(i)[c], i))
                    .collect();
                by_strength.sort_by(|a, b| {
                    b.0.partial_cmp(&a.0)
                        .expect("finite factors")
                        .then_with(|| a.1.cmp(&b.1))
                });
                let mut list: Vec<u32> = by_strength
                    .into_iter()
                    .enumerate()
                    .take_while(|&(rank, (s, _))| {
                        s > 0.0 && (rank < cfg.floor || s >= cfg.rel * max_i)
                    })
                    .map(|(_, (_, i))| col_index(i))
                    .collect();
                list.sort_unstable();
                list
            })
            .collect();
        Self::from_lists(cfg.rel, model.n_items(), items)
    }

    /// Packs per-cluster lists into the CSR layout (trusted input: the
    /// builder and the validated loaders).
    fn from_lists(rel: f64, n_items: usize, lists: Vec<Vec<u32>>) -> Self {
        let mut indptr: Vec<u64> = Vec::with_capacity(lists.len() + 1);
        let total: usize = lists.iter().map(Vec::len).sum();
        let mut items: Vec<u32> = Vec::with_capacity(total);
        indptr.push(0);
        for list in lists {
            items.extend_from_slice(&list);
            indptr.push(items.len() as u64);
        }
        ClusterIndex {
            rel,
            n_items,
            indptr: indptr.into(),
            items: items.into(),
        }
    }

    /// Assembles an index from raw parts (the text snapshot loader).
    /// Validates that `rel` is in range and every list is strictly
    /// ascending and in-bounds (via [`ClusterIndex::from_csr`], which
    /// checks the packed layout).
    pub fn from_parts(rel: f64, n_items: usize, items: Vec<Vec<u32>>) -> Result<Self, String> {
        let lists = items;
        Self::from_csr(
            rel,
            n_items,
            {
                let mut indptr: Vec<u64> = Vec::with_capacity(lists.len() + 1);
                indptr.push(0);
                for list in &lists {
                    indptr.push(indptr.last().expect("non-empty") + list.len() as u64);
                }
                indptr.into()
            },
            lists.concat().into(),
        )
    }

    /// Assembles an index from (possibly region-borrowed) CSR arrays —
    /// the v3 binary snapshot load path. Validates `rel`, the row-pointer
    /// shape and every list's ordering/bounds, so corrupt bytes are an
    /// error here instead of wrong candidates at request time.
    pub fn from_csr(
        rel: f64,
        n_items: usize,
        indptr: U64Buf,
        items: U32Buf,
    ) -> Result<Self, String> {
        if !(rel > 0.0 && rel <= 1.0) {
            return Err(format!("bad index rel cutoff {rel}"));
        }
        if indptr.is_empty()
            || indptr[0] != 0
            || *indptr.last().expect("non-empty") != items.len() as u64
        {
            return Err("malformed index row-pointer array".into());
        }
        if indptr.windows(2).any(|w| w[0] > w[1]) {
            return Err("index row pointers must be monotonic".into());
        }
        for c in 0..indptr.len() - 1 {
            let list = &items[indptr[c] as usize..indptr[c + 1] as usize];
            if list.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("cluster {c} item list not strictly ascending"));
            }
            if let Some(&last) = list.last() {
                if last as usize >= n_items {
                    return Err(format!(
                        "cluster {c} item {last} out of bounds for {n_items} items"
                    ));
                }
            }
        }
        Ok(ClusterIndex {
            rel,
            n_items,
            indptr,
            items,
        })
    }

    /// The relative membership cutoff the index was built with.
    pub fn rel(&self) -> f64 {
        self.rel
    }

    /// Number of indexed co-cluster dimensions.
    pub fn n_clusters(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Number of items in the catalog the index was built over.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// The ascending item list of cluster `c`.
    pub fn cluster_items(&self, c: usize) -> &[u32] {
        &self.items[self.indptr[c] as usize..self.indptr[c + 1] as usize]
    }

    /// The CSR row-pointer array (snapshot serialization).
    pub fn indptr(&self) -> &[u64] {
        &self.indptr
    }

    /// The concatenated item array (snapshot serialization).
    pub fn item_data(&self) -> &[u32] {
        &self.items
    }

    /// Whether both CSR arrays borrow a shared byte region (the zero-copy
    /// snapshot load path) rather than owning heap allocations.
    pub fn is_shared(&self) -> bool {
        self.indptr.is_shared() && self.items.is_shared()
    }

    /// The clusters a factor vector activates: dimensions within `rel` of
    /// the vector's own strongest cluster dimension. Bias columns (entries
    /// past `n_clusters()`) never activate.
    pub fn active_clusters(&self, factors: &[f64]) -> Vec<usize> {
        let k = self.n_clusters().min(factors.len());
        let own_max = factors[..k].iter().copied().fold(0.0f64, f64::max);
        if own_max <= 0.0 {
            return Vec::new();
        }
        (0..k)
            .filter(|&c| factors[c] >= self.rel * own_max)
            .collect()
    }

    /// Candidate items for a factor vector: the sorted, deduplicated union
    /// of the item lists of its active clusters. Empty when the vector
    /// activates no (live) cluster — callers fall back to the full catalog.
    pub fn candidates(&self, factors: &[f64]) -> Vec<u32> {
        let active = self.active_clusters(factors);
        match active.len() {
            0 => Vec::new(),
            1 => self.cluster_items(active[0]).to_vec(),
            _ => {
                let mut union: Vec<u32> = active
                    .iter()
                    .flat_map(|&c| self.cluster_items(c).iter().copied())
                    .collect();
                union.sort_unstable();
                union.dedup();
                union
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocular_linalg::Matrix;

    /// A config with no floor top-up: the pure relative rule.
    fn rel_only(rel: f64) -> IndexConfig {
        IndexConfig { rel, floor: 0 }
    }

    fn model() -> FactorModel {
        // cluster 0: strong items {0, 1}; cluster 1: strong items {1, 3};
        // item 2 weak everywhere
        FactorModel::new(
            Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[0.1, 0.1]]),
            Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 1.5], &[0.2, 0.2], &[0.0, 3.0]]),
            false,
        )
    }

    #[test]
    fn build_inverts_item_memberships_relative() {
        // cluster 0 max_i = 2.0, rel 0.5 → cutoff 1.0 keeps items 0, 1;
        // cluster 1 max_i = 3.0 → cutoff 1.5 keeps items 1, 3
        let idx = ClusterIndex::build(&model(), &rel_only(0.5));
        assert_eq!(idx.n_clusters(), 2);
        assert_eq!(idx.cluster_items(0), &[0, 1]);
        assert_eq!(idx.cluster_items(1), &[1, 3]);
        // tighter cutoff keeps only the strongest item per side
        let tight = ClusterIndex::build(&model(), &rel_only(0.9));
        assert_eq!(tight.cluster_items(0), &[0]);
        assert_eq!(tight.cluster_items(1), &[3]);
    }

    #[test]
    fn active_clusters_relative_to_own_max() {
        let idx = ClusterIndex::build(&model(), &rel_only(0.5));
        assert_eq!(idx.active_clusters(&[1.0, 0.3]), vec![0]);
        assert_eq!(idx.active_clusters(&[1.0, 0.6]), vec![0, 1]);
        assert_eq!(idx.active_clusters(&[0.2, 1.0]), vec![1]);
        // all-zero vector activates nothing
        assert!(idx.active_clusters(&[0.0, 0.0]).is_empty());
    }

    #[test]
    fn candidates_union_active_clusters() {
        let idx = ClusterIndex::build(&model(), &rel_only(0.5));
        assert_eq!(idx.candidates(&[1.0, 0.1]), vec![0, 1]);
        assert_eq!(idx.candidates(&[0.1, 1.0]), vec![1, 3]);
        // overlap deduplicated
        assert_eq!(idx.candidates(&[1.0, 1.0]), vec![0, 1, 3]);
        assert!(idx.candidates(&[0.0, 0.0]).is_empty());
    }

    #[test]
    fn dead_dimensions_get_empty_lists() {
        // best pair product 0.3 · 0.3 = 0.09 < ln 2 → dead
        let m = FactorModel::new(
            Matrix::from_rows(&[&[2.0, 0.3]]),
            Matrix::from_rows(&[&[2.0, 0.3]]),
            false,
        );
        let idx = ClusterIndex::build(&m, &rel_only(0.5));
        assert_eq!(idx.cluster_items(0), &[0]);
        assert!(idx.cluster_items(1).is_empty());
    }

    #[test]
    fn bias_columns_never_indexed() {
        let m = FactorModel::new(
            Matrix::from_rows(&[&[2.0, 9.0, 1.0]]),
            Matrix::from_rows(&[&[2.0, 1.0, 9.0]]),
            true,
        );
        let idx = ClusterIndex::build(&m, &rel_only(0.5));
        assert_eq!(idx.n_clusters(), 1);
        // and bias entries in a request vector never activate clusters
        assert_eq!(idx.active_clusters(&[2.0, 9.0, 1.0]), vec![0]);
    }

    #[test]
    fn from_parts_validates() {
        assert!(ClusterIndex::from_parts(0.5, 4, vec![vec![0, 1], vec![3]]).is_ok());
        assert!(ClusterIndex::from_parts(0.5, 4, vec![vec![1, 0]]).is_err());
        assert!(ClusterIndex::from_parts(0.5, 4, vec![vec![2, 2]]).is_err());
        assert!(ClusterIndex::from_parts(0.5, 4, vec![vec![4]]).is_err());
        assert!(ClusterIndex::from_parts(0.0, 4, vec![]).is_err());
        assert!(ClusterIndex::from_parts(f64::NAN, 4, vec![]).is_err());
        assert!(ClusterIndex::from_parts(1.5, 4, vec![]).is_err());
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn build_rejects_bad_rel() {
        ClusterIndex::build(&model(), &rel_only(0.0));
    }
}
