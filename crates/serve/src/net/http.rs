//! A minimal HTTP/1.1 codec for the serving tier — request parsing on the
//! server side, response parsing on the client side (load generator,
//! conformance tests), and response formatting shared by both.
//!
//! Deliberately small: methods/paths/headers the wire protocol needs
//! (`Content-Length` framing, `Connection` keep-alive negotiation), hard
//! limits on head and body size, no chunked encoding, no multipart. The
//! interesting bytes — the request and response bodies — are entirely
//! owned by [`crate::protocol`].

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request head plus its body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target, e.g. `/recommend`.
    pub path: String,
    /// Whether the connection stays open after the response
    /// (HTTP/1.1 default yes, HTTP/1.0 default no, `Connection` header
    /// overrides either way).
    pub keep_alive: bool,
    /// The request body (`Content-Length` framed; empty when absent).
    pub body: Vec<u8>,
}

/// A framing-level failure: the HTTP status to answer with before closing
/// the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// Status code (400 malformed, 413 too large, 505 bad version).
    pub status: u16,
    /// Human-readable description, sent as the response body.
    pub message: String,
}

impl HttpError {
    fn bad(message: impl Into<String>) -> HttpError {
        HttpError {
            status: 400,
            message: message.into(),
        }
    }
}

/// Outcome of an incremental parse attempt over a connection's read
/// buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseOutcome {
    /// The buffer does not yet hold a complete request; read more.
    Incomplete,
    /// One complete request, consuming the first `usize` buffer bytes.
    Complete(HttpRequest, usize),
}

/// Attempts to parse one request from the front of `buf`. Returns
/// [`ParseOutcome::Incomplete`] until a full head (and `Content-Length`
/// body) is buffered; pipelined requests parse one call at a time.
pub fn parse_request(buf: &[u8]) -> Result<ParseOutcome, HttpError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError {
                status: 431,
                message: format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
            });
        }
        return Ok(ParseOutcome::Incomplete);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(HttpError {
            status: 431,
            message: format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
        });
    }
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::bad("request head is not valid UTF-8"))?;
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let method = parts
        .next()
        .ok_or_else(|| HttpError::bad("empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::bad("request line has no target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::bad("request line has no HTTP version"))?;
    let mut keep_alive = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(HttpError {
                status: 505,
                message: format!("unsupported HTTP version `{other}`"),
            })
        }
    };
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::bad(format!("malformed header line `{line}`")))?;
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| HttpError::bad(format!("bad Content-Length `{value}`")))?;
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError {
                status: 501,
                message: "transfer encodings are not supported; use Content-Length".into(),
            });
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError {
            status: 413,
            message: format!("request body exceeds {MAX_BODY_BYTES} bytes"),
        });
    }
    let total = head_end + content_length;
    if buf.len() < total {
        return Ok(ParseOutcome::Incomplete);
    }
    Ok(ParseOutcome::Complete(
        HttpRequest {
            method,
            path,
            keep_alive,
            body: buf[head_end..total].to_vec(),
        },
        total,
    ))
}

/// Byte offset just past the `\r\n\r\n` (or lenient `\n\n`) head
/// terminator, if buffered.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        match buf[i] {
            b'\n' if buf.get(i + 1) == Some(&b'\n') => return Some(i + 2),
            b'\n' if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') => {
                return Some(i + 3)
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// The reason phrase for the status codes this tier emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Formats a complete response: status line, `Content-Type:
/// application/json`, explicit `Content-Length` and `Connection` headers,
/// then the body.
pub fn format_response(status: u16, body: &[u8], keep_alive: bool) -> Vec<u8> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body);
    out
}

/// Formats a request (client side — load generator, conformance tests).
pub fn format_request(method: &str, path: &str, body: &[u8], keep_alive: bool) -> Vec<u8> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body);
    out
}

/// A parsed response (client side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Whether the server will keep the connection open.
    pub keep_alive: bool,
    /// The response body.
    pub body: Vec<u8>,
}

/// Reads one full response from a blocking reader (client side).
pub fn read_response<R: std::io::BufRead>(reader: &mut R) -> std::io::Result<HttpResponse> {
    use std::io::{Error, ErrorKind};
    let bad = |msg: &str| Error::new(ErrorKind::InvalidData, msg.to_string());
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if line.is_empty() {
        return Err(Error::new(ErrorKind::UnexpectedEof, "connection closed"));
    }
    let mut parts = line.split(' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(bad("not an HTTP response"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut keep_alive = true;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(bad("malformed response header"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().map_err(|_| bad("bad Content-Length"))?;
        } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close") {
            keep_alive = false;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(HttpResponse {
        status,
        keep_alive,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_complete_post() {
        let raw = b"POST /recommend HTTP/1.1\r\nContent-Length: 12\r\n\r\n{\"user\": 17}";
        let ParseOutcome::Complete(req, consumed) = parse_request(raw).unwrap() else {
            panic!("complete request must parse");
        };
        assert_eq!(consumed, raw.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/recommend");
        assert!(req.keep_alive);
        assert_eq!(req.body, b"{\"user\": 17}");
    }

    #[test]
    fn incremental_parse_waits_for_head_and_body() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        for cut in 0..raw.len() {
            assert_eq!(
                parse_request(&raw[..cut]).unwrap(),
                ParseOutcome::Incomplete,
                "cut at {cut}"
            );
        }
        assert!(matches!(
            parse_request(raw).unwrap(),
            ParseOutcome::Complete(_, n) if n == raw.len()
        ));
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let raw = b"GET /stats HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n";
        let ParseOutcome::Complete(first, n) = parse_request(raw).unwrap() else {
            panic!("first request");
        };
        assert_eq!(first.path, "/stats");
        let ParseOutcome::Complete(second, n2) = parse_request(&raw[n..]).unwrap() else {
            panic!("second request");
        };
        assert_eq!(second.path, "/healthz");
        assert_eq!(n + n2, raw.len());
    }

    #[test]
    fn keep_alive_negotiation() {
        let close = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let ParseOutcome::Complete(req, _) = parse_request(close).unwrap() else {
            panic!();
        };
        assert!(!req.keep_alive);
        let old = b"GET / HTTP/1.0\r\n\r\n";
        let ParseOutcome::Complete(req, _) = parse_request(old).unwrap() else {
            panic!();
        };
        assert!(!req.keep_alive);
        let old_ka = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        let ParseOutcome::Complete(req, _) = parse_request(old_ka).unwrap() else {
            panic!();
        };
        assert!(req.keep_alive);
    }

    #[test]
    fn framing_violations_carry_statuses() {
        let huge_head = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "x".repeat(9000));
        assert_eq!(parse_request(huge_head.as_bytes()).unwrap_err().status, 431);
        let huge_body = b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        assert_eq!(parse_request(huge_body).unwrap_err().status, 413);
        let bad_version = b"GET / HTTP/2\r\n\r\n";
        assert_eq!(parse_request(bad_version).unwrap_err().status, 505);
        let chunked = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert_eq!(parse_request(chunked).unwrap_err().status, 501);
        let garbled = b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n";
        assert_eq!(parse_request(garbled).unwrap_err().status, 400);
    }

    #[test]
    fn response_round_trips_through_client_parser() {
        let body = br#"{"user":1,"items":[2]}"#;
        let raw = format_response(200, body, true);
        let mut reader = std::io::BufReader::new(&raw[..]);
        let resp = read_response(&mut reader).unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.keep_alive);
        assert_eq!(resp.body, body);

        let raw = format_response(429, b"{}", false);
        let mut reader = std::io::BufReader::new(&raw[..]);
        let resp = read_response(&mut reader).unwrap();
        assert_eq!(resp.status, 429);
        assert!(!resp.keep_alive);
    }
}
