//! The non-blocking TCP front-end (Linux only): one epoll-driven I/O
//! thread feeding a [`WorkerPool`] that answers batches through
//! [`crate::ServeEngine::serve_batch`].
//!
//! ## Architecture
//!
//! ```text
//!             epoll (level-triggered)
//!   accept ──► per-connection read buffer ──► HTTP parse ──► admission
//!                                                              │
//!                              429 Overloaded ◄── queue full ──┤ queue ok
//!                                                              ▼
//!                                     inbox ──chunks──► WorkerPool
//!                                                              │
//!                  response slots ◄── mpsc completions ◄── serve_batch
//!                        │                    ▲
//!                        ▼                    └── eventfd wake
//!              in-order write-back (keep-alive / pipelining safe)
//! ```
//!
//! Responses are queued per connection in **request order**: each parsed
//! request claims a slot; a completion fills its slot; the writer only
//! flushes the front of the queue once it is ready, so HTTP/1.1
//! pipelining never reorders replies. Admission control is a bound on
//! engine work in flight — when the pending queue is full the request is
//! answered immediately with a typed [`WireError::overloaded`] (HTTP
//! 429) and the connection stays healthy; connections are never silently
//! dropped under load.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ocular_bytes::net::{Epoll, Event, EventFd, Interest};
use ocular_parallel::WorkerPool;

use crate::engine::Request;
use crate::net::http::{self, ParseOutcome};
use crate::net::stats::ServerStats;
use crate::protocol::{ErrorCode, WireError, WireReply, WireRequest};
use crate::swap::{ReloadError, SwapEngine};

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum engine requests in flight (queued + being served) before
    /// admission control starts answering `overloaded`.
    pub queue_cap: usize,
    /// Maximum requests coalesced into one [`crate::ServeEngine::serve_batch`]
    /// call.
    pub batch_max: usize,
    /// Serve worker threads (the I/O thread is separate).
    pub workers: usize,
    /// Maximum simultaneously open connections; extras are answered with
    /// a `503` and closed.
    pub max_connections: usize,
    /// Install `SIGINT`/`SIGTERM` handlers and honor them as a shutdown
    /// request (the CLI sets this; tests drive [`ServerHandle`] instead).
    pub handle_signals: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            queue_cap: 1024,
            batch_max: 256,
            workers: 1,
            max_connections: 1024,
            handle_signals: false,
        }
    }
}

/// A clonable remote control for a running server.
#[derive(Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    wake: Arc<EventFd>,
}

impl ServerHandle {
    /// Asks the event loop to drain in-flight work and exit.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        self.wake.notify();
    }
}

/// One queued response position on a connection. Requests claim slots in
/// arrival order; the writer flushes only ready slots from the front.
struct OutSlot {
    bytes: Option<Vec<u8>>,
    keep_alive: bool,
}

struct Conn {
    stream: TcpStream,
    token: u64,
    gen: u64,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    out: VecDeque<OutSlot>,
    /// Sequence number of the slot at `out[0]`.
    base_seq: u64,
    next_seq: u64,
    /// Peer sent EOF / half-closed: stop reading, flush the tail, close.
    peer_eof: bool,
    /// Framing is broken (or the server is draining): parse no further
    /// requests from this connection.
    stop_reading: bool,
    /// Close once the write buffer drains (set when a
    /// `Connection: close` response reaches the wire).
    close_after_flush: bool,
    interest: Interest,
}

impl Conn {
    fn has_flushable(&self) -> bool {
        self.write_pos < self.write_buf.len() || self.out.front().is_some_and(|s| s.bytes.is_some())
    }

    fn push_ready(&mut self, status: u16, body: &[u8], keep_alive: bool) {
        self.next_seq += 1;
        self.out.push_back(OutSlot {
            bytes: Some(http::format_response(status, body, keep_alive)),
            keep_alive,
        });
    }

    fn claim_slot(&mut self, keep_alive: bool) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.out.push_back(OutSlot {
            bytes: None,
            keep_alive,
        });
        seq
    }
}

/// A recommendation request parsed off a connection, waiting for a
/// worker.
struct PendingJob {
    conn_idx: usize,
    gen: u64,
    seq: u64,
    request: Request,
    keep_alive: bool,
    t0: Instant,
}

/// A worker's answer, routed back to the I/O thread.
struct Completion {
    conn_idx: usize,
    gen: u64,
    seq: u64,
    bytes: Vec<u8>,
}

/// The TCP serving front-end. [`Server::bind`] then [`Server::run`] on a
/// dedicated thread (or [`Server::spawn`] to get a [`RunningServer`]).
///
/// The server holds a [`SwapEngine`], not a bare engine: every worker
/// batch pins the engine current at dispatch time, so a hot swap
/// (`POST /admin/reload` or `SIGHUP`, when the handle has a reload
/// source) lands without dropping or mixing in-flight requests.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    engine: Arc<SwapEngine>,
    cfg: ServerConfig,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    wake: Arc<EventFd>,
}

impl Server {
    /// Binds the listening socket (non-blocking) without starting the
    /// event loop.
    pub fn bind<A: ToSocketAddrs>(
        engine: Arc<SwapEngine>,
        addr: A,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::new(cfg.workers));
        Ok(Server {
            listener,
            addr,
            engine,
            cfg,
            stats,
            stop: Arc::new(AtomicBool::new(false)),
            wake: Arc::new(EventFd::new()?),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's live counters and histograms.
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// A remote control usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: Arc::clone(&self.stop),
            wake: Arc::clone(&self.wake),
        }
    }

    /// Runs the server on a fresh thread and returns a handle bundle.
    pub fn spawn(self) -> RunningServer {
        let addr = self.addr;
        let handle = self.handle();
        let stats = self.stats();
        let thread = std::thread::Builder::new()
            .name("ocular-io".into())
            .spawn(move || self.run())
            .expect("failed to spawn server I/O thread");
        RunningServer {
            addr,
            handle,
            stats,
            thread: Some(thread),
        }
    }

    /// The blocking event loop. Returns after [`ServerHandle::shutdown`]
    /// (or `SIGINT`/`SIGTERM` with
    /// [`ServerConfig::handle_signals`]) once in-flight requests have
    /// drained.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            listener,
            addr: _,
            engine,
            cfg,
            stats,
            stop,
            wake,
        } = self;
        let signal_stop = cfg.handle_signals.then(ocular_bytes::net::shutdown_flag);
        let signal_reload = cfg.handle_signals.then(ocular_bytes::net::reload_flag);

        let epoll = Epoll::new()?;
        const TOKEN_LISTENER: u64 = 0;
        const TOKEN_WAKE: u64 = 1;
        const TOKEN_CONN_BASE: u64 = 2;
        epoll.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        epoll.add(wake.raw_fd(), TOKEN_WAKE, Interest::READ)?;

        let pool = WorkerPool::new(cfg.workers);
        let (comp_tx, comp_rx): (Sender<Completion>, Receiver<Completion>) = channel();

        let mut conns: Vec<Option<Conn>> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        let mut gen_counter: u64 = 0;
        let mut in_flight: usize = 0;
        let mut batch_counter: u64 = 0;
        let mut events: Vec<Event> = Vec::new();
        let mut inbox: Vec<PendingJob> = Vec::new();
        let mut draining = false;
        let mut drain_deadline = Instant::now();

        loop {
            // SIGHUP = hot reload, detached from the request path: the
            // event loop only spawns the reload thread and keeps serving.
            if let Some(flag) = signal_reload {
                if ocular_bytes::net::take_reload_request(flag) {
                    stats.reloads.fetch_add(1, Ordering::Relaxed);
                    let swap = Arc::clone(&engine);
                    let _ = std::thread::Builder::new()
                        .name("ocular-reload".into())
                        .spawn(move || {
                            if let Err(e) = swap.reload() {
                                eprintln!("reload (SIGHUP) failed: {e}");
                            }
                        });
                }
            }
            let stop_requested = stop.load(Ordering::Relaxed)
                || signal_stop.is_some_and(|f| f.load(Ordering::Relaxed));
            if stop_requested && !draining {
                draining = true;
                drain_deadline = Instant::now() + Duration::from_secs(5);
                let _ = epoll.delete(listener.as_raw_fd());
                for conn in conns.iter_mut().flatten() {
                    conn.stop_reading = true;
                }
            }
            if draining {
                let live: usize = conns
                    .iter()
                    .flatten()
                    .filter(|c| c.has_flushable() || !c.out.is_empty())
                    .count();
                if (in_flight == 0 && live == 0) || Instant::now() >= drain_deadline {
                    break;
                }
            }

            events.clear();
            let timeout = if draining { 20 } else { 1000 };
            epoll.wait(&mut events, timeout)?;

            for ev in &events {
                match ev.token {
                    TOKEN_LISTENER => accept_all(
                        &listener,
                        &epoll,
                        &mut conns,
                        &mut free,
                        &mut gen_counter,
                        &cfg,
                        stats.as_ref(),
                        TOKEN_CONN_BASE,
                    ),
                    TOKEN_WAKE => {
                        wake.drain();
                    }
                    token => {
                        let idx = (token - TOKEN_CONN_BASE) as usize;
                        if conns.get(idx).and_then(Option::as_ref).is_none() {
                            continue;
                        }
                        if ev.closed && !ev.readable {
                            // EPOLLERR / EPOLLHUP: the socket is dead.
                            close_conn(&epoll, &mut conns, &mut free, stats.as_ref(), idx);
                            continue;
                        }
                        if ev.readable {
                            if let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) {
                                read_and_route(
                                    idx,
                                    conn,
                                    stats.as_ref(),
                                    &mut inbox,
                                    &mut in_flight,
                                    cfg.queue_cap,
                                    &engine,
                                    &comp_tx,
                                    &wake,
                                );
                            }
                        }
                    }
                }
            }

            // Hand parsed requests to the workers in coalesced batches.
            while !inbox.is_empty() {
                let take = inbox.len().min(cfg.batch_max);
                let batch: Vec<PendingJob> = inbox.drain(..take).collect();
                let hist_idx = (batch_counter as usize) % stats.histograms.len();
                batch_counter += 1;
                // Pin the engine current at dispatch: the whole batch is
                // answered by one model generation, and a concurrent swap
                // cannot unmap it until this Arc (the last borrower) drops.
                let engine = engine.engine();
                let stats = Arc::clone(&stats);
                let tx = comp_tx.clone();
                let wake = Arc::clone(&wake);
                pool.execute(move || {
                    let reqs: Vec<Request> = batch.iter().map(|j| j.request.clone()).collect();
                    let results = engine.serve_batch(&reqs);
                    for (job, result) in batch.into_iter().zip(results) {
                        let reply = engine.wire_reply(&job.request, &result);
                        let mut body = reply.encode().into_bytes();
                        body.push(b'\n');
                        let bytes =
                            http::format_response(reply.http_status(), &body, job.keep_alive);
                        stats.histograms[hist_idx].record(job.t0.elapsed());
                        stats.served.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(Completion {
                            conn_idx: job.conn_idx,
                            gen: job.gen,
                            seq: job.seq,
                            bytes,
                        });
                    }
                    wake.notify();
                });
            }

            // Route completions back into their response slots.
            while let Ok(c) = comp_rx.try_recv() {
                in_flight -= 1;
                let Some(conn) = conns.get_mut(c.conn_idx).and_then(Option::as_mut) else {
                    continue; // connection died while the request was in flight
                };
                if conn.gen != c.gen {
                    continue; // slot index was reused by a newer connection
                }
                let slot = (c.seq - conn.base_seq) as usize;
                conn.out[slot].bytes = Some(c.bytes);
            }

            // Flush every connection with ready output; close the
            // finished ones.
            for idx in 0..conns.len() {
                let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                    continue;
                };
                if !flush_conn(conn, &epoll) {
                    close_conn(&epoll, &mut conns, &mut free, stats.as_ref(), idx);
                }
            }
        }

        // Drain deadline passed or everything flushed: tear down.
        for idx in 0..conns.len() {
            if conns[idx].is_some() {
                close_conn(&epoll, &mut conns, &mut free, &stats, idx);
            }
        }
        drop(pool); // joins workers (any stragglers finish first)
        Ok(())
    }
}

/// A server running on its own thread, as produced by [`Server::spawn`].
pub struct RunningServer {
    addr: SocketAddr,
    handle: ServerHandle,
    stats: Arc<ServerStats>,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl RunningServer {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's live counters and histograms.
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }

    /// A clonable remote control.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Requests shutdown and joins the I/O thread.
    pub fn shutdown(mut self) -> std::io::Result<()> {
        self.handle.shutdown();
        match self.thread.take() {
            Some(t) => t
                .join()
                .unwrap_or_else(|_| Err(std::io::Error::other("server I/O thread panicked"))),
            None => Ok(()),
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        if let Some(t) = self.thread.take() {
            self.handle.shutdown();
            let _ = t.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_all(
    listener: &TcpListener,
    epoll: &Epoll,
    conns: &mut Vec<Option<Conn>>,
    free: &mut Vec<usize>,
    gen_counter: &mut u64,
    cfg: &ServerConfig,
    stats: &ServerStats,
    token_base: u64,
) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        };
        let open = conns.iter().flatten().count();
        if open >= cfg.max_connections {
            // Best-effort 503 before dropping; never hang the loop on it.
            let mut s = stream;
            let body = WireError {
                code: crate::protocol::ErrorCode::Overloaded,
                message: format!("connection limit reached ({})", cfg.max_connections),
            }
            .to_json()
            .to_string();
            let _ = s.write_all(&http::format_response(503, body.as_bytes(), false));
            continue;
        }
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let _ = stream.set_nodelay(true);
        let idx = free.pop().unwrap_or_else(|| {
            conns.push(None);
            conns.len() - 1
        });
        let token = token_base + idx as u64;
        *gen_counter += 1;
        if epoll
            .add(stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            free.push(idx);
            continue;
        }
        stats.accepted.fetch_add(1, Ordering::Relaxed);
        conns[idx] = Some(Conn {
            stream,
            token,
            gen: *gen_counter,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            out: VecDeque::new(),
            base_seq: 0,
            next_seq: 0,
            peer_eof: false,
            stop_reading: false,
            close_after_flush: false,
            interest: Interest::READ,
        });
    }
}

/// Reads everything available, parses complete HTTP requests and routes
/// them: engine requests into `inbox` (or an immediate `overloaded` /
/// decode-error response), `/stats` and `/healthz` answered inline,
/// `/admin/reload` dispatched to a dedicated reload thread.
#[allow(clippy::too_many_arguments)]
fn read_and_route(
    conn_idx: usize,
    conn: &mut Conn,
    stats: &ServerStats,
    inbox: &mut Vec<PendingJob>,
    in_flight: &mut usize,
    queue_cap: usize,
    swap: &Arc<SwapEngine>,
    comp_tx: &Sender<Completion>,
    wake: &Arc<EventFd>,
) {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.peer_eof = true;
                break;
            }
            Ok(n) => conn.read_buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.peer_eof = true;
                break;
            }
        }
    }

    while !conn.stop_reading {
        match http::parse_request(&conn.read_buf) {
            Ok(ParseOutcome::Incomplete) => break,
            Ok(ParseOutcome::Complete(req, consumed)) => {
                conn.read_buf.drain(..consumed);
                stats.requests.fetch_add(1, Ordering::Relaxed);
                route(
                    conn_idx, conn, req, stats, inbox, in_flight, queue_cap, swap, comp_tx, wake,
                );
            }
            Err(e) => {
                // Framing is broken — answer once and close; there is no
                // reliable way to find the next request boundary.
                stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                let body = WireError::bad_request(e.message).to_json().to_string();
                conn.push_ready(e.status, body.as_bytes(), false);
                conn.stop_reading = true;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn route(
    conn_idx: usize,
    conn: &mut Conn,
    req: http::HttpRequest,
    stats: &ServerStats,
    inbox: &mut Vec<PendingJob>,
    in_flight: &mut usize,
    queue_cap: usize,
    swap: &Arc<SwapEngine>,
    comp_tx: &Sender<Completion>,
    wake: &Arc<EventFd>,
) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/recommend") | ("POST", "/") => {
            if *in_flight >= queue_cap {
                stats.shed.fetch_add(1, Ordering::Relaxed);
                let err = WireError::overloaded(*in_flight, queue_cap);
                let status = err.code.http_status();
                let mut body = WireReply::Err(err).encode();
                body.push('\n');
                conn.push_ready(status, body.as_bytes(), req.keep_alive);
                return;
            }
            let text = String::from_utf8_lossy(&req.body);
            match WireRequest::decode(&text) {
                Ok(wire) => {
                    let seq = conn.claim_slot(req.keep_alive);
                    *in_flight += 1;
                    inbox.push(PendingJob {
                        conn_idx,
                        gen: conn.gen,
                        seq,
                        request: wire.request,
                        keep_alive: req.keep_alive,
                        t0: Instant::now(),
                    });
                }
                Err(err) => {
                    stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                    let status = err.code.http_status();
                    let mut body = WireReply::Err(err).encode();
                    body.push('\n');
                    conn.push_ready(status, body.as_bytes(), req.keep_alive);
                }
            }
        }
        ("POST", "/admin/reload") => {
            // Claim a response slot now, run the reload on a dedicated
            // thread, and let it complete the slot like any worker batch:
            // the event loop never blocks on model loading, the client
            // gets the actual outcome, and a shutdown drain waits for it.
            stats.reloads.fetch_add(1, Ordering::Relaxed);
            let seq = conn.claim_slot(req.keep_alive);
            *in_flight += 1;
            let keep_alive = req.keep_alive;
            let conn_gen = conn.gen;
            let swap = Arc::clone(swap);
            let tx = comp_tx.clone();
            let thread_wake = Arc::clone(wake);
            let spawned = std::thread::Builder::new()
                .name("ocular-reload".into())
                .spawn(move || {
                    let (status, mut body) = match swap.reload() {
                        Ok(generation) => (
                            200,
                            format!("{{\"ok\":true,\"model_generation\":{generation}}}"),
                        ),
                        Err(e) => {
                            let err = reload_wire_error(e);
                            (err.code.http_status(), WireReply::Err(err).encode())
                        }
                    };
                    body.push('\n');
                    let _ = tx.send(Completion {
                        conn_idx,
                        gen: conn_gen,
                        seq,
                        bytes: http::format_response(status, body.as_bytes(), keep_alive),
                    });
                    thread_wake.notify();
                });
            if spawned.is_err() {
                let err = WireError {
                    code: ErrorCode::Internal,
                    message: "failed to spawn reload thread".into(),
                };
                let mut body = WireReply::Err(err).encode();
                body.push('\n');
                let _ = comp_tx.send(Completion {
                    conn_idx,
                    gen: conn_gen,
                    seq,
                    bytes: http::format_response(500, body.as_bytes(), keep_alive),
                });
                wake.notify();
            }
        }
        ("GET", "/stats") => {
            let current = swap.engine();
            let mut body = stats
                .to_json_with_model(
                    current.generation(),
                    current.kind(),
                    current.dtype(),
                    swap.swap_count(),
                    swap.reloading(),
                    current.shard_stats().as_deref(),
                )
                .to_string();
            body.push('\n');
            conn.push_ready(200, body.as_bytes(), req.keep_alive);
        }
        ("GET", "/healthz") => {
            conn.push_ready(200, b"{\"ok\":true}\n", req.keep_alive);
        }
        (_, path) => {
            let body = WireError::bad_request(format!("no such endpoint: {} {path}", req.method))
                .to_json()
                .to_string();
            conn.push_ready(404, body.as_bytes(), req.keep_alive);
        }
    }
}

/// Maps a reload failure to its wire error: `Busy` → the `reloading`
/// code (503), `NoSource` → `unsupported` (501), load/build failures →
/// the standard [`OcularError`] taxonomy mapping.
fn reload_wire_error(e: ReloadError) -> WireError {
    match e {
        ReloadError::Busy => WireError::reloading(),
        ReloadError::NoSource => WireError {
            code: ErrorCode::Unsupported,
            message: "server was started without a reload source".into(),
        },
        ReloadError::Failed(err) => WireError::from(&err),
    }
}

/// Writes as much queued output as the socket accepts, promoting ready
/// slots from the front of the response queue. Returns `false` when the
/// connection should be closed.
fn flush_conn(conn: &mut Conn, epoll: &Epoll) -> bool {
    loop {
        if conn.write_pos < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => return false,
                Ok(n) => conn.write_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        } else {
            conn.write_buf.clear();
            conn.write_pos = 0;
            if conn.close_after_flush {
                return false;
            }
            match conn.out.front() {
                Some(slot) if slot.bytes.is_some() => {
                    let slot = conn.out.pop_front().expect("front exists");
                    conn.base_seq += 1;
                    conn.write_buf = slot.bytes.expect("checked ready");
                    if !slot.keep_alive {
                        conn.close_after_flush = true;
                    }
                }
                _ => break,
            }
        }
    }

    let drained = conn.write_pos >= conn.write_buf.len();
    if drained && conn.close_after_flush {
        return false;
    }
    if drained && (conn.peer_eof || conn.stop_reading) && conn.out.is_empty() {
        // Nothing left to say and nothing more to hear.
        return false;
    }
    let desired = Interest {
        readable: !(conn.peer_eof || conn.stop_reading),
        writable: !drained,
    };
    if desired != conn.interest
        && epoll
            .modify(conn.stream.as_raw_fd(), conn.token, desired)
            .is_ok()
    {
        conn.interest = desired;
    }
    true
}

fn close_conn(
    epoll: &Epoll,
    conns: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    stats: &ServerStats,
    idx: usize,
) {
    if let Some(conn) = conns[idx].take() {
        let _ = epoll.delete(conn.stream.as_raw_fd());
        stats.closed.fetch_add(1, Ordering::Relaxed);
        free.push(idx);
    }
}
