//! Server-side observability: lock-free request counters and log-bucketed
//! latency histograms, merged on demand into the `GET /stats` JSON body.
//!
//! The histogram is the classic HdrHistogram-style log-linear layout: one
//! bucket per nanosecond below 16 ns, then 16 sub-buckets per power of two
//! above, which bounds the relative quantile error at 1/16 (~6%) across
//! the whole range while keeping the table small enough to live as plain
//! `AtomicU64`s. Workers record into their own histogram with relaxed
//! atomics — no locks, no contention — and `/stats` merges the per-worker
//! tables at read time.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::Json;

/// Sub-buckets per power of two above the linear range.
const SUB_BUCKETS: u64 = 16;
/// Log2 of [`SUB_BUCKETS`]: values below `2^(SUB_BITS)` get exact buckets.
const SUB_BITS: u32 = 4;
/// Total buckets: 16 linear + 16 per octave for octaves 4..=63.
const BUCKETS: usize = (SUB_BUCKETS as usize) + (64 - SUB_BITS as usize) * SUB_BUCKETS as usize;

/// A log-bucketed histogram of nanosecond durations, recordable from many
/// threads without locks.
pub struct LatencyHistogram {
    counts: Vec<AtomicU64>,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            max_ns: AtomicU64::new(0),
        }
    }

    fn bucket_of(ns: u64) -> usize {
        if ns < SUB_BUCKETS {
            return ns as usize;
        }
        let msb = 63 - ns.leading_zeros();
        let sub = (ns >> (msb - SUB_BITS)) & (SUB_BUCKETS - 1);
        ((msb - SUB_BITS) as u64 * SUB_BUCKETS + SUB_BUCKETS + sub) as usize
    }

    /// The midpoint of a bucket's value range, in nanoseconds.
    fn representative(bucket: usize) -> u64 {
        if bucket < SUB_BUCKETS as usize {
            return bucket as u64;
        }
        let idx = (bucket - SUB_BUCKETS as usize) as u64;
        let msb = (idx / SUB_BUCKETS) as u32 + SUB_BITS;
        let sub = idx % SUB_BUCKETS;
        let lo = (1u64 << msb) + (sub << (msb - SUB_BITS));
        lo + (1u64 << (msb - SUB_BITS)) / 2
    }

    /// Records one duration.
    pub fn record(&self, duration: std::time::Duration) {
        let ns = duration.as_nanos().min(u64::MAX as u128) as u64;
        self.counts[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Merges several histograms into one snapshot of bucket counts.
    fn merged(histograms: &[LatencyHistogram]) -> (Vec<u64>, u64) {
        let mut counts = vec![0u64; BUCKETS];
        let mut max_ns = 0u64;
        for h in histograms {
            for (acc, c) in counts.iter_mut().zip(&h.counts) {
                *acc += c.load(Ordering::Relaxed);
            }
            max_ns = max_ns.max(h.max_ns.load(Ordering::Relaxed));
        }
        (counts, max_ns)
    }

    /// The `q`-quantile (0..=1) in nanoseconds over merged histograms;
    /// `None` when no samples were recorded.
    pub fn quantile_merged(histograms: &[LatencyHistogram], q: f64) -> Option<u64> {
        let (counts, max_ns) = Self::merged(histograms);
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (b, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::representative(b).min(max_ns));
            }
        }
        Some(max_ns)
    }
}

/// Counters and latency histograms for one running server.
pub struct ServerStats {
    /// Connections accepted since start.
    pub accepted: AtomicU64,
    /// Connections closed since start (active = accepted − closed).
    pub closed: AtomicU64,
    /// HTTP requests parsed off the wire.
    pub requests: AtomicU64,
    /// Recommendation requests answered through the engine.
    pub served: AtomicU64,
    /// Requests answered `overloaded` by admission control.
    pub shed: AtomicU64,
    /// Requests rejected before the engine (HTTP or protocol decode).
    pub bad_requests: AtomicU64,
    /// Hot-reload attempts (`POST /admin/reload` + `SIGHUP`), successful
    /// or not; completed swaps are reported separately from the swap
    /// handle.
    pub reloads: AtomicU64,
    /// Per-worker latency histograms (request arrival → response bytes
    /// queued), merged at read time.
    pub histograms: Vec<LatencyHistogram>,
}

impl ServerStats {
    /// Fresh stats for `workers` serve workers.
    pub fn new(workers: usize) -> ServerStats {
        ServerStats {
            accepted: AtomicU64::new(0),
            closed: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            histograms: (0..workers.max(1))
                .map(|_| LatencyHistogram::new())
                .collect(),
        }
    }

    /// Connections currently open.
    pub fn active_connections(&self) -> u64 {
        self.accepted
            .load(Ordering::Relaxed)
            .saturating_sub(self.closed.load(Ordering::Relaxed))
    }

    /// The `GET /stats` body: counters plus merged latency quantiles in
    /// microseconds.
    pub fn to_json(&self) -> Json {
        let us = |q: f64| {
            LatencyHistogram::quantile_merged(&self.histograms, q)
                .map(|ns| Json::Num(ns as f64 / 1000.0))
                .unwrap_or(Json::Null)
        };
        let count: u64 = self.histograms.iter().map(|h| h.count()).sum();
        let max_ns = self
            .histograms
            .iter()
            .map(|h| h.max_ns.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0);
        let latency = Json::Obj(vec![
            ("count".into(), Json::Int(count)),
            ("p50".into(), us(0.50)),
            ("p90".into(), us(0.90)),
            ("p99".into(), us(0.99)),
            ("p999".into(), us(0.999)),
            (
                "max".into(),
                if count == 0 {
                    Json::Null
                } else {
                    Json::Num(max_ns as f64 / 1000.0)
                },
            ),
        ]);
        Json::Obj(vec![
            (
                "accepted".into(),
                Json::Int(self.accepted.load(Ordering::Relaxed)),
            ),
            (
                "active_connections".into(),
                Json::Int(self.active_connections()),
            ),
            (
                "requests".into(),
                Json::Int(self.requests.load(Ordering::Relaxed)),
            ),
            (
                "served".into(),
                Json::Int(self.served.load(Ordering::Relaxed)),
            ),
            ("shed".into(), Json::Int(self.shed.load(Ordering::Relaxed))),
            (
                "bad_requests".into(),
                Json::Int(self.bad_requests.load(Ordering::Relaxed)),
            ),
            ("latency_us".into(), latency),
        ])
    }

    /// The `/stats` body with the serving model's identity appended:
    /// which `model_generation` and `kind` answer requests right now,
    /// the quantized scoring `dtype` when one is active, how many hot
    /// `swaps` have landed, whether a reload is in flight, and how many
    /// `reloads` were attempted. A sharded engine additionally reports
    /// the per-shard `shard` array (`[{shard, users, requests}, …]`) —
    /// additive: unsharded servers omit the field entirely, so existing
    /// consumers parse unchanged.
    pub fn to_json_with_model(
        &self,
        generation: u64,
        kind: &str,
        dtype: Option<&str>,
        swaps: u64,
        reloading: bool,
        shards: Option<&[crate::shard::ShardStat]>,
    ) -> Json {
        let Json::Obj(mut fields) = self.to_json() else {
            unreachable!("stats body is an object");
        };
        fields.push(("model_generation".into(), Json::Int(generation)));
        fields.push(("kind".into(), Json::Str(kind.to_string())));
        fields.push((
            "dtype".into(),
            match dtype {
                Some(d) => Json::Str(d.to_string()),
                None => Json::Str("f64".to_string()),
            },
        ));
        fields.push(("swaps".into(), Json::Int(swaps)));
        fields.push(("reloading".into(), Json::Bool(reloading)));
        fields.push((
            "reloads".into(),
            Json::Int(self.reloads.load(Ordering::Relaxed)),
        ));
        if let Some(shards) = shards {
            let rows = shards
                .iter()
                .map(|s| {
                    Json::Obj(vec![
                        ("shard".into(), Json::Int(s.shard as u64)),
                        ("users".into(), Json::Int(s.users as u64)),
                        ("requests".into(), Json::Int(s.requests)),
                    ])
                })
                .collect();
            fields.push(("shard".into(), Json::Arr(rows)));
        }
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn buckets_are_monotone_and_bounded_error() {
        let mut prev = 0usize;
        for &ns in &[0u64, 1, 15, 16, 17, 100, 1_000, 65_537, 1 << 40, u64::MAX] {
            let b = LatencyHistogram::bucket_of(ns);
            assert!(b >= prev, "bucket order broke at {ns}");
            assert!(b < BUCKETS);
            prev = b;
            if ns >= 16 {
                let rep = LatencyHistogram::representative(b) as f64;
                let err = (rep - ns as f64).abs() / ns as f64;
                assert!(err <= 1.0 / 16.0 + 1e-9, "error {err} at {ns}");
            } else {
                assert_eq!(LatencyHistogram::representative(b), ns);
            }
        }
    }

    #[test]
    fn quantiles_over_known_distribution() {
        let h = LatencyHistogram::new();
        // 100 samples: 1µs ×90, 100µs ×9, 10ms ×1.
        for _ in 0..90 {
            h.record(Duration::from_micros(1));
        }
        for _ in 0..9 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(10));
        let hs = [h];
        let p50 = LatencyHistogram::quantile_merged(&hs, 0.50).unwrap();
        let p99 = LatencyHistogram::quantile_merged(&hs, 0.99).unwrap();
        let p999 = LatencyHistogram::quantile_merged(&hs, 0.999).unwrap();
        assert!((900..=1100).contains(&p50), "p50 {p50}");
        assert!((90_000..=110_000).contains(&p99), "p99 {p99}");
        assert_eq!(p999, 10_000_000, "p999 clamps to observed max");
    }

    #[test]
    fn merge_combines_worker_histograms() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for _ in 0..10 {
            a.record(Duration::from_micros(5));
            b.record(Duration::from_micros(500));
        }
        let hs = [a, b];
        let p50 = LatencyHistogram::quantile_merged(&hs, 0.5).unwrap();
        assert!((4_500..=5_500).contains(&p50), "p50 {p50}");
        let p99 = LatencyHistogram::quantile_merged(&hs, 0.99).unwrap();
        assert!((450_000..=550_000).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn stats_json_shape() {
        let stats = ServerStats::new(2);
        stats.accepted.store(3, Ordering::Relaxed);
        stats.closed.store(1, Ordering::Relaxed);
        stats.served.store(7, Ordering::Relaxed);
        stats.histograms[0].record(Duration::from_micros(42));
        let text = stats.to_json().to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("active_connections").unwrap().as_u64(), Some(2));
        assert_eq!(back.get("served").unwrap().as_u64(), Some(7));
        let lat = back.get("latency_us").unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(1));
        assert!(lat.get("p50").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn stats_json_carries_the_model_identity() {
        let stats = ServerStats::new(1);
        stats.reloads.store(4, Ordering::Relaxed);
        let text = stats
            .to_json_with_model(9, "ocular", None, 3, true, None)
            .to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("model_generation").unwrap().as_u64(), Some(9));
        assert_eq!(back.get("kind").unwrap().as_str(), Some("ocular"));
        assert_eq!(back.get("dtype").unwrap().as_str(), Some("f64"));
        assert_eq!(back.get("swaps").unwrap().as_u64(), Some(3));
        assert_eq!(back.get("reloading"), Some(&Json::Bool(true)));
        assert_eq!(back.get("reloads").unwrap().as_u64(), Some(4));
        // a quantized engine names its representation
        let text = stats
            .to_json_with_model(9, "ocular", Some("int8"), 3, false, None)
            .to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("dtype").unwrap().as_str(), Some("int8"));
        // unsharded bodies omit the shard field entirely
        assert_eq!(back.get("shard"), None);
        // a sharded engine appends the per-shard array
        let shards = vec![
            crate::shard::ShardStat {
                shard: 0,
                users: 3,
                requests: 7,
            },
            crate::shard::ShardStat {
                shard: 1,
                users: 2,
                requests: 5,
            },
        ];
        let text = stats
            .to_json_with_model(9, "ocular", None, 3, false, Some(&shards))
            .to_string();
        let back = Json::parse(&text).unwrap();
        let rows = back.get("shard").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("users").unwrap().as_u64(), Some(2));
        assert_eq!(rows[1].get("requests").unwrap().as_u64(), Some(5));
    }
}
