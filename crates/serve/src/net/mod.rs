//! The network serving tier: a hand-rolled non-blocking HTTP/1.1
//! front-end over the [`crate::protocol`] wire format.
//!
//! * [`http`] — the minimal HTTP codec (request parsing, response
//!   framing, a blocking client half for tools and tests);
//! * [`stats`] — lock-free counters and log-bucketed latency histograms
//!   behind `GET /stats`;
//! * [`server`] (Linux only) — the epoll event loop, worker-pool request
//!   coalescing, keep-alive + pipelining, admission control, and the
//!   control plane (`POST /admin/reload` + `SIGHUP` hot swaps through
//!   [`crate::swap::SwapEngine`]);
//! * [`loadgen`] — the closed-loop load generator used by the `loadgen`
//!   binary and the network benchmarks.
//!
//! The stdin CLI (`serve` binary) and this TCP tier decode and encode
//! through the same [`crate::protocol`] types, so a request line piped
//! into the CLI and the body of a `POST /recommend` produce byte-identical
//! response bodies — the conformance tests assert exactly that.

pub mod http;
pub mod loadgen;
#[cfg(target_os = "linux")]
pub mod server;
pub mod stats;

#[cfg(target_os = "linux")]
pub use server::{RunningServer, Server, ServerConfig, ServerHandle};
pub use stats::{LatencyHistogram, ServerStats};
