//! A closed-loop load generator for the TCP serving tier, shared by the
//! `loadgen` binary and the `net_latency` bench.
//!
//! Each connection is one thread driving keep-alive `POST /recommend`
//! requests back-to-back (closed loop: the next request leaves only after
//! the previous response arrives), recording round-trip latency into a
//! [`LatencyHistogram`]. Closed-loop throughput with a handful of
//! connections is the honest number for a single-core box: it measures
//! the server's service rate without coordinated-omission games.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::net::http;
use crate::net::stats::LatencyHistogram;

/// Load shape knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent connections (one thread each).
    pub connections: usize,
    /// Wall-clock run length.
    pub duration: Duration,
    /// Requested list length per request.
    pub m: usize,
    /// Warm users are drawn round-robin from `0..users`.
    pub users: usize,
    /// Target path (the server accepts `/recommend` and `/`).
    pub path: String,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            connections: 8,
            duration: Duration::from_secs(5),
            m: 10,
            users: 64,
            path: "/recommend".into(),
        }
    }
}

/// Aggregated result of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests sent (= responses received; closed loop).
    pub requests: u64,
    /// `200 OK` responses.
    pub ok: u64,
    /// `429` admission-control rejections.
    pub shed: u64,
    /// Any other status (decode errors, transport failures).
    pub errors: u64,
    /// Measured wall-clock seconds.
    pub seconds: f64,
    /// `requests / seconds`.
    pub throughput_rps: f64,
    /// Round-trip latency quantiles, microseconds.
    pub p50_us: f64,
    /// 90th percentile round trip, microseconds.
    pub p90_us: f64,
    /// 99th percentile round trip, microseconds.
    pub p99_us: f64,
    /// Slowest observed round trip, microseconds.
    pub max_us: f64,
}

impl LoadReport {
    /// The report as a JSON object (the `loadgen` binary's stdout).
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::Obj(vec![
            ("requests".into(), Json::Int(self.requests)),
            ("ok".into(), Json::Int(self.ok)),
            ("shed".into(), Json::Int(self.shed)),
            ("errors".into(), Json::Int(self.errors)),
            ("seconds".into(), Json::Num(self.seconds)),
            ("throughput_rps".into(), Json::Num(self.throughput_rps)),
            ("p50_us".into(), Json::Num(self.p50_us)),
            ("p90_us".into(), Json::Num(self.p90_us)),
            ("p99_us".into(), Json::Num(self.p99_us)),
            ("max_us".into(), Json::Num(self.max_us)),
        ])
    }
}

struct ConnTally {
    requests: u64,
    ok: u64,
    shed: u64,
    errors: u64,
    hist: LatencyHistogram,
}

/// Runs the closed loop against `addr` and aggregates a [`LoadReport`].
pub fn run(addr: &str, cfg: &LoadgenConfig) -> std::io::Result<LoadReport> {
    let started = Instant::now();
    let deadline = started + cfg.duration;
    let tallies: Vec<ConnTally> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for conn_id in 0..cfg.connections.max(1) {
            handles.push(scope.spawn(move || drive_connection(addr, cfg, conn_id, deadline)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen thread panicked"))
            .collect()
    });
    let seconds = started.elapsed().as_secs_f64().max(1e-9);

    let mut report = LoadReport {
        requests: 0,
        ok: 0,
        shed: 0,
        errors: 0,
        seconds,
        throughput_rps: 0.0,
        p50_us: 0.0,
        p90_us: 0.0,
        p99_us: 0.0,
        max_us: 0.0,
    };
    let mut hists = Vec::with_capacity(tallies.len());
    for t in tallies {
        report.requests += t.requests;
        report.ok += t.ok;
        report.shed += t.shed;
        report.errors += t.errors;
        hists.push(t.hist);
    }
    report.throughput_rps = report.requests as f64 / seconds;
    let q = |p: f64| {
        LatencyHistogram::quantile_merged(&hists, p)
            .map(|ns| ns as f64 / 1000.0)
            .unwrap_or(0.0)
    };
    report.p50_us = q(0.50);
    report.p90_us = q(0.90);
    report.p99_us = q(0.99);
    report.max_us = q(1.0);
    Ok(report)
}

fn drive_connection(
    addr: &str,
    cfg: &LoadgenConfig,
    conn_id: usize,
    deadline: Instant,
) -> ConnTally {
    let mut tally = ConnTally {
        requests: 0,
        ok: 0,
        shed: 0,
        errors: 0,
        hist: LatencyHistogram::new(),
    };
    let users = cfg.users.max(1);
    // Interleave users across connections so the request mix is uniform.
    let mut user = (conn_id * 31) % users;

    'reconnect: while Instant::now() < deadline {
        let Ok(stream) = TcpStream::connect(addr) else {
            tally.errors += 1;
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        let _ = stream.set_nodelay(true);
        let mut writer = stream.try_clone().expect("clone loadgen stream");
        let mut reader = BufReader::new(stream);

        while Instant::now() < deadline {
            let body = format!("{{\"v\":1,\"user\":{user},\"m\":{}}}", cfg.m);
            user = (user + 1) % users;
            let raw = http::format_request("POST", &cfg.path, body.as_bytes(), true);
            let t0 = Instant::now();
            if writer.write_all(&raw).is_err() {
                tally.errors += 1;
                continue 'reconnect;
            }
            match http::read_response(&mut reader) {
                Ok(resp) => {
                    tally.requests += 1;
                    tally.hist.record(t0.elapsed());
                    match resp.status {
                        200 => tally.ok += 1,
                        429 => tally.shed += 1,
                        _ => tally.errors += 1,
                    }
                    if !resp.keep_alive {
                        continue 'reconnect;
                    }
                }
                Err(_) => {
                    tally.errors += 1;
                    continue 'reconnect;
                }
            }
        }
        break;
    }
    tally
}
