//! Minimal JSON parsing and rendering for the serving CLI and the bench
//! artifact files (`BENCH_serve.json` / `BENCH_train.json`).
//!
//! The build environment is offline, so instead of `serde_json` this is a
//! ~150-line recursive-descent parser covering the JSON subset the request
//! protocol and bench artifacts need: objects, arrays, strings with the
//! standard escapes, finite numbers, booleans and null. Rendering uses
//! Rust's shortest-roundtrip float formatting, so probabilities survive a
//! parse→render→parse cycle bit-exactly.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// An exact unsigned integer — used when **rendering** external ids,
    /// which are `u64` and would silently lose precision past 2^53 if
    /// routed through `Num`'s `f64`. The parser never produces this
    /// variant (JSON numbers parse as `f64`); it exists so responses can
    /// carry any ingested id verbatim.
    Int(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number (exact for `Int`
    /// values up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= usize::MAX as f64 => {
                Some(*n as usize)
            }
            Json::Int(n) => usize::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a non-negative 64-bit integer, if it is one. Parsed
    /// numbers are stored as `f64`, so integers are only unambiguous
    /// strictly below 2^53 (2^53 itself is the first value a larger
    /// integer collapses onto) — anything past that is rejected rather
    /// than silently resolved to a neighbouring id.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no Inf/NaN; null is the least-bad rendering
                    write!(f, "null")
                }
            }
            Json::Int(n) => write!(f, "{n}"),
            Json::Str(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\r' => write!(f, "\\r")?,
                        '\t' => write!(f, "\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                write!(f, "}}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self
                .peek()
                .is_some_and(|b| b != b'"' && b != b'\\' && b >= 0x20)
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("truncated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code).ok_or("\\u escape is not a scalar value")?,
                            );
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number `{text}` at byte {start}"))
    }
}

/// Shorthand for building [`Json::Obj`] values.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_shapes() {
        let warm = Json::parse(r#"{"user": 17, "m": 10}"#).unwrap();
        assert_eq!(warm.get("user").unwrap().as_usize(), Some(17));
        assert_eq!(warm.get("m").unwrap().as_usize(), Some(10));
        let cold = Json::parse(r#"{"basket": [1, 2, 3]}"#).unwrap();
        let basket = cold.get("basket").unwrap().as_array().unwrap();
        assert_eq!(basket.len(), 3);
        assert_eq!(basket[2].as_usize(), Some(3));
    }

    #[test]
    fn int_renders_u64_exactly_past_f64_precision() {
        // 2^53 + 1 is the first integer f64 cannot represent
        let big = (1u64 << 53) + 1;
        assert_eq!(Json::Int(big).to_string(), big.to_string());
        assert_eq!(Json::Int(u64::MAX).to_string(), u64::MAX.to_string());
        assert_eq!(Json::Int(7).as_u64(), Some(7));
        assert_eq!(Json::Int(big).as_u64(), Some(big));
        assert_eq!(Json::Int(3).as_usize(), Some(3));
        assert_eq!(Json::Int(4).as_f64(), Some(4.0));
    }

    #[test]
    fn parsed_ids_at_the_f64_ambiguity_boundary_are_rejected() {
        // 2^53 parses exactly, but 2^53 + 1 collapses onto the same f64 —
        // a request for either must not silently resolve to a neighbour
        let at = Json::parse(&(1u64 << 53).to_string()).unwrap();
        assert_eq!(at.as_u64(), None);
        let below = Json::parse(&((1u64 << 53) - 1).to_string()).unwrap();
        assert_eq!(below.as_u64(), Some((1 << 53) - 1));
    }

    #[test]
    fn roundtrips_values() {
        for text in [
            r#"{"a":[1,2.5,-3e-2],"b":"x\"y\\z","c":true,"d":null,"e":{}}"#,
            r#"[[],{},[[1]]]"#,
            "0.1",
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        }
    }

    #[test]
    fn float_render_is_shortest_roundtrip() {
        let v = Json::Num(0.1 + 0.2);
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_f64(), Some(0.1 + 0.2));
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "nul",
            "{\"a\" 1}",
            "\"\\q\"",
            "1 2",
            "{\"a\":}",
            "--1",
            "\"\\u12\"",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn escapes_render() {
        let s = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(s.to_string(), r#""a\"b\\c\nd\u0001""#);
        assert_eq!(Json::parse(&s.to_string()).unwrap(), s);
    }

    #[test]
    fn as_usize_guards() {
        assert_eq!(Json::Num(-1.0).as_usize(), None);
        assert_eq!(Json::Num(1.5).as_usize(), None);
        assert_eq!(Json::Num(7.0).as_usize(), Some(7));
        assert_eq!(Json::Str("7".into()).as_usize(), None);
    }

    #[test]
    fn obj_builder() {
        let v = obj(vec![("x", Json::Num(1.0)), ("y", Json::Bool(false))]);
        assert_eq!(v.to_string(), r#"{"x":1,"y":false}"#);
    }
}
