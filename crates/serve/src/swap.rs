//! Zero-downtime snapshot hot-swap: a generation-counted handle that
//! atomically replaces the [`AnyEngine`] behind a running server —
//! unsharded engine and sharded scatter-gather coordinator alike.
//!
//! The live-refresh loop (append deltas → retrain → redeploy) ends here:
//! a freshly trained snapshot is loaded **off the request path** (on the
//! reload caller's thread), built into a complete engine, and
//! then published with one brief write-locked pointer store. Requests in
//! flight keep the `Arc` they grabbed at admission, so they finish
//! against the engine that admitted them — nothing is dropped, nothing
//! is answered half-old/half-new — and the old engine (with its mmap'd
//! snapshot region) is unmapped exactly when the last borrower drops it.
//!
//! Generations are strictly monotone across swaps: a reload that would
//! publish an equal-or-older generation is rejected, so clients watching
//! `model_generation` in responses or `/stats` observe a total order of
//! deployments. At most one reload runs at a time; a second request
//! while one is in flight answers [`ReloadError::Busy`] (wire code
//! `reloading`, HTTP 503) instead of queueing.

use crate::shard::AnyEngine;
use ocular_api::OcularError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// How a reload produces the next engine: called with the currently
/// served generation, must return an engine whose generation is strictly
/// greater (the CLI closure re-loads the snapshot and dataset from disk
/// and stamps `max(snapshot generation, current + 1)`). Reloads yield an
/// [`AnyEngine`], so a sharded deployment rebuilds its whole coordinator
/// atomically — shards never hot-swap independently.
pub type ReloadFn = Box<dyn Fn(u64) -> Result<AnyEngine, OcularError> + Send + Sync>;

/// Why a reload did not publish a new engine.
#[derive(Debug)]
pub enum ReloadError {
    /// Another reload is already in flight — retry after it completes.
    Busy,
    /// The handle was built without a reload source ([`SwapEngine::new`]).
    NoSource,
    /// Loading or building the next engine failed; the previous engine
    /// keeps serving untouched.
    Failed(OcularError),
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReloadError::Busy => write!(f, "reload already in flight"),
            ReloadError::NoSource => write!(f, "engine has no reload source configured"),
            ReloadError::Failed(e) => write!(f, "reload failed: {e}"),
        }
    }
}

/// The swap handle every transport holds instead of a bare engine.
///
/// [`SwapEngine::engine`] hands out the current `Arc<AnyEngine>` —
/// unsharded engine or scatter-gather coordinator alike; the caller
/// serves its whole request (or batch) against that pinned engine and
/// drops the `Arc` when done. [`SwapEngine::swap`] publishes a new
/// engine without disturbing pinned ones.
pub struct SwapEngine {
    current: RwLock<Arc<AnyEngine>>,
    reload: Option<ReloadFn>,
    reload_in_flight: AtomicBool,
    swaps: AtomicU64,
}

impl SwapEngine {
    /// Wraps an engine with no reload source — swaps only happen through
    /// explicit [`SwapEngine::swap`] calls (tests, embedded use).
    pub fn new(initial: impl Into<AnyEngine>) -> SwapEngine {
        SwapEngine {
            current: RwLock::new(Arc::new(initial.into())),
            reload: None,
            reload_in_flight: AtomicBool::new(false),
            swaps: AtomicU64::new(0),
        }
    }

    /// Wraps an engine with a reload source: `POST /admin/reload` and
    /// `SIGHUP` call `reload`, which rebuilds the engine from wherever
    /// the deployment keeps its artifacts (snapshot path + data log).
    pub fn with_reload(initial: impl Into<AnyEngine>, reload: ReloadFn) -> SwapEngine {
        SwapEngine {
            reload: Some(reload),
            ..SwapEngine::new(initial)
        }
    }

    /// The engine currently serving, pinned: callers hold the `Arc`
    /// across their whole request so a concurrent swap never changes the
    /// model mid-request, and the old engine stays mapped until the last
    /// such pin drops.
    pub fn engine(&self) -> Arc<AnyEngine> {
        Arc::clone(&self.current.read().expect("engine lock poisoned"))
    }

    /// The generation currently being served.
    pub fn generation(&self) -> u64 {
        self.engine().generation()
    }

    /// Completed swaps since start (reported by `/stats`).
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Whether a reload is currently in flight.
    pub fn reloading(&self) -> bool {
        self.reload_in_flight.load(Ordering::Acquire)
    }

    /// Publishes `next` as the serving engine. Rejects non-monotone
    /// generations (`next.generation() <= current`) without touching the
    /// serving state. Returns the published generation.
    pub fn swap(&self, next: impl Into<AnyEngine>) -> Result<u64, OcularError> {
        let next = Arc::new(next.into());
        let generation = next.generation();
        let mut current = self.current.write().expect("engine lock poisoned");
        if generation <= current.generation() {
            return Err(OcularError::InvalidConfig(format!(
                "refusing non-monotone hot swap: generation {generation} \
                 does not advance past the serving generation {}",
                current.generation()
            )));
        }
        *current = next;
        self.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(generation)
    }

    /// Runs the configured reload source and swaps the result in —
    /// synchronously, on the caller's thread (the server calls this from
    /// a dedicated thread so the event loop never blocks on model
    /// loading). One at a time: concurrent calls answer
    /// [`ReloadError::Busy`]. On any failure the previous engine keeps
    /// serving. Returns the newly published generation.
    pub fn reload(&self) -> Result<u64, ReloadError> {
        let reload = self.reload.as_ref().ok_or(ReloadError::NoSource)?;
        if self.reload_in_flight.swap(true, Ordering::AcqRel) {
            return Err(ReloadError::Busy);
        }
        let result = reload(self.generation())
            .and_then(|next| self.swap(next))
            .map_err(ReloadError::Failed);
        self.reload_in_flight.store(false, Ordering::Release);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineBuilder, Request, ServeEngine};
    use ocular_baselines::Popularity;
    use ocular_sparse::{Dataset, Triplets};

    fn engine(generation: u64, n: usize) -> ServeEngine {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i).unwrap();
            t.push(i, (i + 1) % n).unwrap();
        }
        let data = Dataset::from_matrix(t.into_csr());
        EngineBuilder::from_recommender(Box::new(Popularity::fit(&data)))
            .dataset(data)
            .generation(generation)
            .build()
            .unwrap()
    }

    #[test]
    fn swap_publishes_and_pins_stay_on_their_engine() {
        let swap = SwapEngine::new(engine(1, 4));
        let pinned = swap.engine();
        assert_eq!(swap.swap(engine(2, 6)).unwrap(), 2);
        // the pin still serves the old model; fresh grabs see the new one
        assert_eq!(pinned.generation(), 1);
        assert_eq!(pinned.n_users(), 4);
        assert_eq!(swap.generation(), 2);
        assert_eq!(swap.engine().n_users(), 6);
        assert_eq!(swap.swap_count(), 1);
        // the old engine dies exactly when the last pin drops
        let weak = Arc::downgrade(&pinned);
        drop(pinned);
        assert!(weak.upgrade().is_none());
    }

    #[test]
    fn non_monotone_swaps_are_rejected() {
        let swap = SwapEngine::new(engine(5, 4));
        for stale in [5, 4, 0] {
            let err = swap.swap(engine(stale, 4)).unwrap_err();
            assert!(matches!(err, OcularError::InvalidConfig(_)));
        }
        assert_eq!(swap.generation(), 5);
        assert_eq!(swap.swap_count(), 0);
    }

    #[test]
    fn reload_runs_the_source_and_reports_failures() {
        let swap = SwapEngine::with_reload(
            engine(1, 4),
            Box::new(|current| {
                if current >= 3 {
                    Err(OcularError::Io("artifact store unreachable".into()))
                } else {
                    Ok(engine(current + 1, 4).into())
                }
            }),
        );
        assert_eq!(swap.reload().unwrap(), 2);
        assert_eq!(swap.reload().unwrap(), 3);
        assert!(matches!(swap.reload(), Err(ReloadError::Failed(_))));
        // the failed reload left generation 3 serving
        assert_eq!(swap.generation(), 3);

        let no_source = SwapEngine::new(engine(1, 4));
        assert!(matches!(no_source.reload(), Err(ReloadError::NoSource)));
    }

    #[test]
    fn concurrent_reloads_answer_busy() {
        use std::sync::mpsc;
        let (entered_tx, entered_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = std::sync::Mutex::new(release_rx);
        let swap = Arc::new(SwapEngine::with_reload(
            engine(1, 4),
            Box::new(move |current| {
                entered_tx.send(()).unwrap();
                release_rx.lock().unwrap().recv().unwrap();
                Ok(engine(current + 1, 4).into())
            }),
        ));
        let slow = {
            let swap = Arc::clone(&swap);
            std::thread::spawn(move || swap.reload())
        };
        entered_rx.recv().unwrap();
        // while the first reload holds the guard, a second answers Busy
        // and requests keep being served by the old engine
        assert!(swap.reloading());
        assert!(matches!(swap.reload(), Err(ReloadError::Busy)));
        assert!(swap
            .engine()
            .serve_one(&Request::Warm { user: 0, m: 2 })
            .is_ok());
        release_tx.send(()).unwrap();
        assert_eq!(slow.join().unwrap().unwrap(), 2);
        assert!(!swap.reloading());
    }
}
