//! Property-based guards for the serving subsystem.
//!
//! 1. The bounded-heap top-M kernel equals sort-based selection on random
//!    score vectors — including heavy ties, which is where a wrong
//!    comparator or heap invariant would diverge.
//! 2. Snapshots round-trip exactly, and corrupted/truncated snapshot bytes
//!    are rejected rather than mis-loaded.

use ocular_core::topm::top_m_excluding;
use ocular_core::{FactorModel, Recommendation};
use ocular_linalg::Matrix;
use ocular_serve::{IndexConfig, Snapshot};
use proptest::prelude::*;

/// Reference: score everything, full sort (probability descending, ties by
/// ascending item), truncate — the selection the heap kernel replaced.
fn sort_based(scores: &[f64], exclude: &[u32], m: usize) -> Vec<Recommendation> {
    let mut all: Vec<Recommendation> = scores
        .iter()
        .enumerate()
        .filter(|(i, _)| exclude.binary_search_by(|&e| (e as usize).cmp(i)).is_err())
        .map(|(item, &probability)| Recommendation { item, probability })
        .collect();
    all.sort_by(|a, b| {
        b.probability
            .partial_cmp(&a.probability)
            .expect("finite")
            .then_with(|| a.item.cmp(&b.item))
    });
    all.truncate(m);
    all
}

/// Score vectors drawn from a *small* value set so ties are common, plus a
/// sorted exclusion list over the same index range.
fn arb_scores() -> impl Strategy<Value = (Vec<f64>, Vec<u32>)> {
    (1usize..120).prop_flat_map(|n| {
        (
            proptest::collection::vec(0u8..6, n),
            proptest::collection::btree_set(0..n as u32, 0..n.min(20)),
        )
            .prop_map(|(levels, excl)| {
                let scores: Vec<f64> = levels.into_iter().map(|l| l as f64 / 5.0).collect();
                (scores, excl.into_iter().collect::<Vec<u32>>())
            })
    })
}

fn arb_model() -> impl Strategy<Value = FactorModel> {
    (1usize..6, 1usize..8, 1usize..4).prop_flat_map(|(n_users, n_items, k)| {
        (
            proptest::collection::vec(0u8..40, n_users * k),
            proptest::collection::vec(0u8..40, n_items * k),
        )
            .prop_map(move |(u, i)| {
                let scale = |v: Vec<u8>| v.into_iter().map(|x| x as f64 / 10.0).collect();
                FactorModel::new(
                    Matrix::from_vec(n_users, k, scale(u)),
                    Matrix::from_vec(n_items, k, scale(i)),
                    false,
                )
            })
    })
}

proptest! {
    #[test]
    fn heap_equals_sort_including_ties((scores, exclude) in arb_scores(), m in 0usize..60) {
        let heap = top_m_excluding(&scores, &exclude, m);
        let sorted = sort_based(&scores, &exclude, m);
        prop_assert_eq!(heap, sorted);
    }

    #[test]
    fn snapshot_roundtrips_exactly(model in arb_model(), rel in 0.1f64..=1.0, floor in 0usize..8) {
        let snap = Snapshot::build(model, &IndexConfig { rel, floor });
        let mut buf = Vec::new();
        snap.save(&mut buf).unwrap();
        let loaded = Snapshot::load(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(loaded, snap);
    }

    #[test]
    fn truncated_snapshots_rejected(model in arb_model(), cut in 0usize..400) {
        let snap = Snapshot::build(model, &IndexConfig::default());
        let mut buf = Vec::new();
        snap.save(&mut buf).unwrap();
        // dropping only the final newline still leaves a complete document,
        // so cut at least one byte of the footer sentinel itself
        let cut = cut.min(buf.len().saturating_sub(2));
        prop_assert!(
            Snapshot::load(&mut &buf[..cut]).is_err(),
            "loading only {cut}/{} bytes must fail",
            buf.len()
        );
    }

    #[test]
    fn corrupted_snapshots_never_misload(model in arb_model(), pos in 0usize..400, byte in 0u8..=255) {
        let snap = Snapshot::build(model, &IndexConfig::default());
        let mut buf = Vec::new();
        snap.save(&mut buf).unwrap();
        let pos = pos % buf.len();
        if buf[pos] == byte {
            return Ok(()); // not a corruption
        }
        buf[pos] = byte;
        // either rejected, or the parse is still self-consistent — but it
        // must never panic, and a "successful" load must differ from the
        // original only if the flipped byte was inside a value it parsed
        if let Ok(loaded) = Snapshot::load(&mut buf.as_slice()) {
            prop_assert_eq!(loaded.index.n_items(), snap.index.n_items());
            prop_assert_eq!(loaded.model.n_users(), snap.model.n_users());
        }
    }
}
