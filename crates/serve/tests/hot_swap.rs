//! Zero-downtime hot swap under load: client threads hammer the TCP
//! front-end over keep-alive connections while the control plane drives
//! repeated `POST /admin/reload` swaps. The guarantees under test are the
//! live-refresh contract from the README:
//!
//! * **zero dropped requests** — every request sent during a swap gets a
//!   well-formed `200` success response (no resets, no errors, no
//!   `reloading` leaking onto the data plane);
//! * **monotone generations** — each connection observes a
//!   non-decreasing `model_generation` sequence, and `/stats` converges
//!   on the final generation with one recorded swap per reload;
//! * **bounded engine lifetime** — the swapped-out engine (and with it
//!   any mmap'd snapshot region it owns) is released exactly when the
//!   last in-flight borrower drops, never while a batch is serving.
#![cfg(target_os = "linux")]

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

use ocular_baselines::Popularity;
use ocular_serve::json::Json;
use ocular_serve::net::{http, Server, ServerConfig};
use ocular_serve::swap::SwapEngine;
use ocular_serve::{AnyEngine, EngineBuilder, ServeEngine};
use ocular_sparse::{Dataset, Triplets};

const N_USERS: usize = 48;
const RELOADS: u64 = 5;

fn engine(generation: u64) -> ServeEngine {
    let mut t = Triplets::new(N_USERS, N_USERS);
    for i in 0..N_USERS {
        t.push(i, (i + 1) % N_USERS).unwrap();
        t.push(i, (i + 3) % N_USERS).unwrap();
    }
    let data = Dataset::from_matrix(t.into_csr());
    EngineBuilder::from_recommender(Box::new(Popularity::fit(&data)))
        .dataset(data)
        .generation(generation)
        .build()
        .unwrap()
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, method: &str, path: &str, body: &str) {
        self.writer
            .write_all(&http::format_request(method, path, body.as_bytes(), true))
            .unwrap();
    }

    fn recv(&mut self) -> http::HttpResponse {
        http::read_response(&mut self.reader).unwrap()
    }

    fn round_trip(&mut self, method: &str, path: &str, body: &str) -> http::HttpResponse {
        self.send(method, path, body);
        self.recv()
    }
}

/// Parses a `/recommend` response body, panicking on anything that is not
/// a success, and returns the generation stamped on it.
fn generation_of(body: &[u8]) -> u64 {
    let text = String::from_utf8(body.to_vec()).unwrap();
    let v = Json::parse(text.trim_end()).unwrap_or_else(|e| panic!("bad body {text:?}: {e}"));
    assert!(
        v.get("error").is_none(),
        "request errored during hot swap: {text}"
    );
    v.get("model_generation")
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("response missing model_generation: {text}"))
}

#[test]
fn hot_swap_under_load_drops_nothing_and_keeps_generations_monotone() {
    let swap = Arc::new(SwapEngine::with_reload(
        engine(1),
        Box::new(|current| Ok(engine(current + 1).into())),
    ));
    // watch the initial engine's lifetime from outside
    let first_pin = swap.engine();
    let first: Weak<AnyEngine> = Arc::downgrade(&first_pin);
    drop(first_pin);

    let server = Server::bind(
        Arc::clone(&swap),
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..Default::default()
        },
    )
    .expect("bind ephemeral port")
    .spawn();
    let addr = server.addr();

    // closed-loop load: 3 connections, pipelined bursts of 8, until told
    // to stop; every response must be a success with a generation stamp
    let stop = Arc::new(AtomicBool::new(false));
    let loadgen: Vec<_> = (0..3)
        .map(|conn: usize| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut served = 0u64;
                let mut last_gen = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for i in 0..8usize {
                        let user = (conn * 7 + i * 5) % N_USERS;
                        client.send("POST", "/recommend", &format!("{{\"user\": {user}}}"));
                    }
                    for _ in 0..8 {
                        let resp = client.recv();
                        assert_eq!(resp.status, 200, "dropped or errored under swap");
                        let generation = generation_of(&resp.body);
                        assert!(
                            generation >= last_gen,
                            "generation went backwards on one connection: \
                             {generation} after {last_gen}"
                        );
                        last_gen = generation;
                        served += 1;
                    }
                }
                (served, last_gen)
            })
        })
        .collect();

    // the control plane: RELOADS sequential swaps while the load runs
    let mut admin = Client::connect(addr);
    for expect in 2..=(RELOADS + 1) {
        let resp = admin.round_trip("POST", "/admin/reload", "");
        assert_eq!(resp.status, 200, "reload must succeed");
        let body = String::from_utf8(resp.body).unwrap();
        let v = Json::parse(body.trim_end()).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("model_generation").and_then(Json::as_u64),
            Some(expect),
            "each reload bumps the generation by exactly one"
        );
        // let a few batches serve on the fresh engine before the next swap
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    stop.store(true, Ordering::Relaxed);
    let mut total = 0u64;
    for handle in loadgen {
        let (served, last_gen) = handle.join().expect("loadgen thread must not panic");
        assert!(served > 0, "each connection must have been served");
        assert!(last_gen >= 1, "every response carries a generation");
        total += served;
    }
    assert!(total > 0);

    // /stats reconciles: final generation, one swap per reload, idle plane
    let resp = admin.round_trip("GET", "/stats", "");
    assert_eq!(resp.status, 200);
    let body = String::from_utf8(resp.body).unwrap();
    let v = Json::parse(body.trim_end()).unwrap();
    assert_eq!(
        v.get("model_generation").and_then(Json::as_u64),
        Some(RELOADS + 1)
    );
    assert_eq!(v.get("swaps").and_then(Json::as_u64), Some(RELOADS));
    assert_eq!(v.get("reloading").and_then(Json::as_bool), Some(false));
    assert_eq!(v.get("served").and_then(Json::as_u64), Some(total));
    assert_eq!(v.get("shed").and_then(Json::as_u64), Some(0));
    assert_eq!(v.get("bad_requests").and_then(Json::as_u64), Some(0));

    server.shutdown().unwrap();

    // the first-generation engine must be gone: it was swapped out and
    // every batch that pinned it has finished — nothing may still hold
    // the (in production, mmap-backed) model alive
    assert!(
        first.upgrade().is_none(),
        "swapped-out engine still referenced after the last borrower dropped"
    );
    assert_eq!(swap.generation(), RELOADS + 1);
}

/// In-flight pipelined requests written *before* a reload is issued on
/// another connection must all be answered on the connection, in order,
/// successfully — the swap may not invalidate queued work.
#[test]
fn pipelined_requests_survive_a_mid_stream_swap() {
    let swap = Arc::new(SwapEngine::with_reload(
        engine(1),
        Box::new(|current| Ok(engine(current + 1).into())),
    ));
    let server = Server::bind(Arc::clone(&swap), "127.0.0.1:0", ServerConfig::default())
        .expect("bind ephemeral port")
        .spawn();
    let addr = server.addr();

    let mut client = Client::connect(addr);
    const BURST: usize = 24;
    for user in 0..BURST {
        client.send(
            "POST",
            "/recommend",
            &format!("{{\"user\": {}, \"m\": 2}}", user % N_USERS),
        );
    }
    // swap while the burst drains
    let mut admin = Client::connect(addr);
    let resp = admin.round_trip("POST", "/admin/reload", "");
    assert_eq!(resp.status, 200);

    let mut last_gen = 0;
    for user in 0..BURST {
        let resp = client.recv();
        assert_eq!(resp.status, 200);
        let generation = generation_of(&resp.body);
        let text = String::from_utf8(resp.body).unwrap();
        let v = Json::parse(text.trim_end()).unwrap();
        assert_eq!(
            v.get("user").and_then(Json::as_usize),
            Some(user % N_USERS),
            "pipelined order preserved across the swap"
        );
        assert!(generation >= last_gen, "generation monotone within a pipe");
        last_gen = generation;
    }
    server.shutdown().unwrap();
}
