//! Property-based guards for the wire protocol: every encodable value
//! decodes back to itself (requests, success responses, typed errors with
//! escape-heavy messages), and the decoder never panics on garbage.

use ocular_serve::protocol::{Echo, ErrorCode};
use ocular_serve::{Request, WireError, WireReply, WireRequest, WireResponse};
use proptest::prelude::*;

/// External ids must stay below 2^53: the JSON decoder reads numbers as
/// `f64`, so larger ids cannot round-trip and are rejected by design.
const MAX_EXACT: u64 = (1 << 53) - 1;

/// Characters the JSON string escaper must survive: quotes, backslashes,
/// every escape shorthand, raw control bytes, multi-byte unicode, and the
/// structural characters of JSON itself.
const NASTY: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '\n', '\r', '\t', '\u{0}', '\u{8}', '\u{b}', '\u{1f}', '{', '}',
    '[', ']', ':', ',', '/', 'é', '→', '𝄞', '\u{7f}',
];

fn arb_nasty_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..NASTY.len(), 0..60)
        .prop_map(|ix| ix.into_iter().map(|i| NASTY[i]).collect())
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        0usize..4,
        0..=MAX_EXACT,
        proptest::collection::vec(0..=MAX_EXACT, 0..20),
        0usize..10_000,
    )
        .prop_map(|(variant, id, ids, m)| match variant {
            0 => Request::Warm {
                user: (id & 0xf_ffff) as usize,
                m,
            },
            1 => Request::Cold {
                basket: ids.iter().map(|&i| (i & 0xf_ffff) as usize).collect(),
                m,
            },
            2 => Request::WarmExternal { user: id, m },
            _ => Request::ColdExternal { basket: ids, m },
        })
}

fn arb_response() -> impl Strategy<Value = WireResponse> {
    (
        (0usize..3, 0..=MAX_EXACT),
        proptest::collection::vec((0usize..1 << 20, any::<f64>()), 0..20),
        (any::<bool>(), 0usize..1 << 20, any::<bool>()),
        // live-refresh additions: fold-in marker + optional model identity
        // + optional quantized scoring dtype
        (any::<bool>(), any::<bool>(), 0..=MAX_EXACT, 0usize..5),
        0usize..3,
    )
        .prop_map(
            |(
                (which, id),
                pairs,
                (with_ids, scored, fallback),
                (folded_in, with_gen, generation, kind),
                dtype,
            )| {
                let echo = match which {
                    0 => Echo::User((id & 0xf_ffff) as usize),
                    1 => Echo::UserId(id),
                    _ => Echo::Cold,
                };
                let items: Vec<usize> = pairs.iter().map(|(i, _)| *i).collect();
                let probs: Vec<f64> = pairs.iter().map(|(_, p)| p.abs()).collect();
                let item_ids: Option<Vec<u64>> =
                    with_ids.then(|| items.iter().map(|&i| (i as u64 * 37) & MAX_EXACT).collect());
                let kind = match kind {
                    0 => None,
                    1 => Some("ocular".to_string()),
                    2 => Some("wals".to_string()),
                    3 => Some("popularity".to_string()),
                    _ => Some("item-knn".to_string()),
                };
                let dtype = match dtype {
                    0 => None,
                    1 => Some("f32".to_string()),
                    _ => Some("int8".to_string()),
                };
                WireResponse {
                    echo,
                    items,
                    item_ids,
                    probs,
                    scored,
                    fallback,
                    folded_in,
                    model_generation: with_gen.then_some(generation),
                    kind,
                    dtype,
                }
            },
        )
}

fn arb_error() -> impl Strategy<Value = WireError> {
    const CODES: &[ErrorCode] = &[
        ErrorCode::BadRequest,
        ErrorCode::UnsupportedVersion,
        ErrorCode::UnknownUser,
        ErrorCode::UnknownItem,
        ErrorCode::UnknownId,
        ErrorCode::BadBasket,
        ErrorCode::Unsupported,
        ErrorCode::Overloaded,
        ErrorCode::Reloading,
        ErrorCode::Internal,
    ];
    (0usize..CODES.len(), arb_nasty_string()).prop_map(|(c, message)| WireError {
        code: CODES[c],
        message,
    })
}

proptest! {
    #[test]
    fn requests_round_trip(req in arb_request()) {
        let wire = WireRequest { request: req.clone() };
        let line = wire.encode();
        prop_assert!(!line.contains('\n'), "one-line encoding");
        prop_assert_eq!(WireRequest::decode(&line).unwrap().request, req);
    }

    #[test]
    fn responses_round_trip(resp in arb_response()) {
        let line = WireReply::Ok(resp.clone()).encode();
        prop_assert!(!line.contains('\n'));
        prop_assert_eq!(WireReply::decode(&line).unwrap(), WireReply::Ok(resp));
    }

    #[test]
    fn errors_round_trip_with_escape_heavy_messages(err in arb_error()) {
        let reply = WireReply::Err(err);
        let line = reply.encode();
        prop_assert!(!line.contains('\n'), "escapes keep the line single");
        prop_assert_eq!(WireReply::decode(&line).unwrap(), reply);
    }

    #[test]
    fn decoder_never_panics_on_garbage(text in arb_nasty_string()) {
        // Any outcome is fine; panicking is not.
        let _ = WireRequest::decode(&text);
        let _ = WireReply::decode(&text);
    }

    #[test]
    fn request_decoder_rejects_unknown_fields(n in 0usize..10_000) {
        // `x<digits>` never collides with a known field name.
        let text = format!("{{\"user\": 1, \"x{n}\": 2}}");
        let err = WireRequest::decode(&text).unwrap_err();
        prop_assert_eq!(err.code, ErrorCode::BadRequest);
    }
}
