//! v3 binary snapshot suite: text↔binary bit-exactness for every model
//! kind, zero-copy serving from a read-only memory-mapped file, and
//! rejection (typed `OcularError`, never a panic or silent garbage) of
//! truncated and bit-flipped containers.

use ocular_api::OcularError;
use ocular_baselines::{
    BaselineConfigs, Bpr, BprConfig, ItemKnn, Popularity, UserKnn, Wals, WalsConfig,
};
use ocular_bytes::ModelBytes;
use ocular_core::{fit, OcularConfig};
use ocular_datasets::planted::{generate, PlantedConfig};
use ocular_serve::{
    AnySnapshot, CandidatePolicy, EngineBuilder, IndexConfig, Request, ServeConfig, Snapshot,
};
use ocular_sparse::{Dataset, IdMaps};
use proptest::prelude::*;

fn dataset() -> Dataset {
    generate(&PlantedConfig {
        n_users: 40,
        n_items: 30,
        k: 3,
        users_per_cluster: 14,
        items_per_cluster: 11,
        user_overlap: 0.25,
        item_overlap: 0.25,
        within_density: 0.6,
        noise_density: 0.02,
        seed: 11,
    })
    .matrix
}

/// The trained dataset with non-trivial external ids attached.
fn dataset_with_ids() -> Dataset {
    let r = dataset();
    let users: Vec<u64> = (0..r.n_users() as u64).map(|u| 1_000 + 7 * u).collect();
    let items: Vec<u64> = (0..r.n_items() as u64).map(|i| 500 + 3 * i).collect();
    let ids = IdMaps::new(users, items).unwrap();
    Dataset::new(r.matrix().clone(), ids).unwrap()
}

fn snapshot_zoo(r: &Dataset) -> Vec<AnySnapshot> {
    let cfgs = BaselineConfigs::seeded(3);
    let model = fit(
        r,
        &OcularConfig {
            k: 3,
            lambda: 0.3,
            max_iters: 25,
            seed: 9,
            ..Default::default()
        },
    )
    .model;
    vec![
        AnySnapshot::Ocular(Snapshot::build(model, &IndexConfig { rel: 0.5, floor: 5 })),
        AnySnapshot::Other(Box::new(Wals::fit(
            r,
            &WalsConfig {
                k: 3,
                iters: 6,
                ..cfgs.wals
            },
        ))),
        AnySnapshot::Other(Box::new(Bpr::fit(
            r,
            &BprConfig {
                k: 3,
                epochs: 8,
                ..cfgs.bpr
            },
        ))),
        AnySnapshot::Other(Box::new(UserKnn::fit(r, &cfgs.user_knn))),
        AnySnapshot::Other(Box::new(ItemKnn::fit(r, &cfgs.item_knn))),
        AnySnapshot::Other(Box::new(Popularity::fit(r))),
    ]
}

fn scores_of(snap: &AnySnapshot, u: usize) -> Vec<f64> {
    let mut out = Vec::new();
    match snap {
        AnySnapshot::Ocular(s) => s.model.score_user(u, &mut out),
        AnySnapshot::Other(m) => m.score_user(u, &mut out),
    }
    out
}

/// The text serialisation is the workspace's canonical bitwise-faithful
/// form, so "binary round-trips bit-exactly" is asserted by comparing
/// text serialisations before and after a binary cycle.
fn text_bytes(snap: &AnySnapshot, ids: Option<&IdMaps>) -> Vec<u8> {
    let mut buf = Vec::new();
    snap.save_with_ids(ids, &mut buf).unwrap();
    buf
}

#[test]
fn binary_and_text_round_trips_are_bit_exact_for_every_kind() {
    let r = dataset_with_ids();
    for snap in snapshot_zoo(&r) {
        let kind = snap.kind();
        let before = text_bytes(&snap, r.ids());
        let v3 = snap.to_v3_bytes(r.ids()).unwrap();
        let (loaded, ids) = AnySnapshot::load_v3(ModelBytes::from_vec(v3.clone())).unwrap();
        assert_eq!(loaded.kind(), kind);
        assert_eq!(
            ids.as_ref(),
            r.ids(),
            "kind {kind}: id maps must survive the binary cycle"
        );
        // bitwise: the text rendering of the reloaded model is identical
        assert_eq!(
            text_bytes(&loaded, ids.as_ref()),
            before,
            "kind {kind}: binary cycle must be bit-exact"
        );
        // and so are the served scores
        for u in 0..r.n_users() {
            assert_eq!(scores_of(&loaded, u), scores_of(&snap, u), "kind {kind}");
        }
        // the binary serialisation is itself a fixed point
        assert_eq!(
            loaded.to_v3_bytes(ids.as_ref()).unwrap(),
            v3,
            "kind {kind}: binary serialisation must be stable"
        );
    }
}

#[test]
fn zero_copy_load_borrows_from_the_region() {
    let r = dataset_with_ids();
    let snap = snapshot_zoo(&r).remove(0);
    let v3 = snap.to_v3_bytes(r.ids()).unwrap();
    let (loaded, ids) = AnySnapshot::load_v3(ModelBytes::from_vec(v3)).unwrap();
    let AnySnapshot::Ocular(s) = loaded else {
        panic!("ocular kind expected")
    };
    if cfg!(target_endian = "little") {
        assert!(
            s.model.user_factors.is_shared() && s.model.item_factors.is_shared(),
            "factor matrices must borrow the snapshot region, not re-allocate"
        );
        assert!(
            s.index.is_shared(),
            "cluster index CSR must borrow the snapshot region"
        );
        assert!(
            ids.expect("ids present").is_shared(),
            "id maps (order arrays + raw tables) must borrow the snapshot region"
        );
    }
}

#[test]
fn serves_correctly_from_a_read_only_mapped_file() {
    let r = dataset_with_ids();
    let snap = snapshot_zoo(&r).remove(0);
    let path = std::env::temp_dir().join(format!("ocular-v3-serve-{}.snap", std::process::id()));
    {
        let mut file = std::fs::File::create(&path).unwrap();
        snap.save_binary(r.ids(), &mut file).unwrap();
    }
    // read-only on disk: serving must not need write access
    let mut perms = std::fs::metadata(&path).unwrap().permissions();
    perms.set_readonly(true);
    std::fs::set_permissions(&path, perms).unwrap();

    let region = ModelBytes::map_file(&path).unwrap();
    if cfg!(all(unix, target_pointer_width = "64")) {
        assert!(region.is_mapped(), "v3 load must map, not read");
    }
    let (loaded, ids) = AnySnapshot::load_v3(region).unwrap();
    let mapped_engine = EngineBuilder::from_snapshot(loaded)
        .dataset(r.clone())
        .config(ServeConfig {
            default_m: 5,
            candidates: CandidatePolicy::Clusters { min_candidates: 5 },
            ..Default::default()
        })
        .build()
        .unwrap();
    let owned_engine = EngineBuilder::from_snapshot(snapshot_zoo(&r).remove(0))
        .dataset(r.clone())
        .config(ServeConfig {
            default_m: 5,
            candidates: CandidatePolicy::Clusters { min_candidates: 5 },
            ..Default::default()
        })
        .build()
        .unwrap();
    for u in 0..r.n_users() {
        let req = Request::Warm { user: u, m: 5 };
        assert_eq!(
            mapped_engine.serve_one(&req),
            owned_engine.serve_one(&req),
            "user {u}: serving from the mapped file must equal the in-memory engine"
        );
    }
    // external ids resolve through the region-borrowed id maps
    let ids = ids.expect("ids embedded");
    let ext = ids.users()[3];
    assert_eq!(
        mapped_engine
            .serve_one(&Request::WarmExternal { user: ext, m: 4 })
            .unwrap(),
        mapped_engine
            .serve_one(&Request::Warm { user: 3, m: 4 })
            .unwrap()
    );

    let mut perms = std::fs::metadata(&path).unwrap().permissions();
    #[allow(clippy::permissions_set_readonly_false)]
    perms.set_readonly(false);
    std::fs::set_permissions(&path, perms).unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn truncation_rejected_at_every_length_for_every_kind() {
    let r = dataset();
    for snap in snapshot_zoo(&r) {
        let kind = snap.kind();
        let v3 = snap.to_v3_bytes(None).unwrap();
        for keep in 0..v3.len() {
            let result = AnySnapshot::load_v3(ModelBytes::from_vec(v3[..keep].to_vec()));
            assert!(
                matches!(result, Err(OcularError::Corrupt(_))),
                "kind {kind}: truncation to {keep} bytes must be a typed Corrupt error"
            );
        }
    }
}

#[test]
fn unknown_kind_in_v3_container_is_typed() {
    let mut w = ocular_api::SectionWriter::new("neural-net");
    w.put_u64s("meta", &[1, 1]);
    let bytes = w.finish();
    assert!(matches!(
        AnySnapshot::load_v3(ModelBytes::from_vec(bytes)),
        Err(OcularError::UnknownModelKind(k)) if k == "neural-net"
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any single flipped bit anywhere in the container — header, payload,
    /// padding, table, checksum — must be rejected with a typed error.
    #[test]
    fn bit_flips_rejected(seed in 0u64..1_000_000, kind_ix in 0usize..6) {
        let r = dataset();
        let v3 = snapshot_zoo(&r)[kind_ix].to_v3_bytes(None).unwrap();
        let bit = (seed as usize) % (v3.len() * 8);
        let mut flipped = v3;
        flipped[bit / 8] ^= 1 << (bit % 8);
        let result = AnySnapshot::load_v3(ModelBytes::from_vec(flipped));
        prop_assert!(
            result.is_err(),
            "flipping bit {bit} must be rejected"
        );
    }

    /// Binary round-trips are bit-exact for arbitrary factor values,
    /// including subnormals, huge magnitudes and negative zero.
    #[test]
    fn arbitrary_factor_values_round_trip(bits in proptest::collection::vec(any::<u64>(), 4..24)) {
        // draw raw bit patterns and patch the non-finite ones with edge
        // cases the format must preserve exactly
        const EDGE: [f64; 5] = [0.0, -0.0, f64::MIN_POSITIVE, 1e308, 5e-324];
        let vals: Vec<f64> = bits
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                let v = f64::from_bits(b);
                if v.is_finite() { v } else { EDGE[i % EDGE.len()] }
            })
            .collect();
        let cols = 2;
        let rows = vals.len() / cols;
        let vals = &vals[..rows * cols];
        let user_factors = ocular_linalg::Matrix::from_vec(rows, cols, vals.to_vec());
        let item_factors = ocular_linalg::Matrix::from_vec(rows, cols, vals.to_vec());
        let model = ocular_core::FactorModel::new(user_factors, item_factors, false);
        let snap = AnySnapshot::Ocular(Snapshot::build(model, &IndexConfig { rel: 0.5, floor: 2 }));
        let v3 = snap.to_v3_bytes(None).unwrap();
        let (loaded, _) = AnySnapshot::load_v3(ModelBytes::from_vec(v3)).unwrap();
        let (AnySnapshot::Ocular(a), AnySnapshot::Ocular(b)) = (&snap, &loaded) else {
            panic!("ocular kind expected")
        };
        // PartialEq on f64 treats 0.0 == -0.0 and NaN != NaN; compare raw
        // bits for true bit-exactness
        let bits = |m: &ocular_linalg::Matrix| -> Vec<u64> {
            m.as_slice().iter().map(|v| v.to_bits()).collect()
        };
        prop_assert_eq!(bits(&a.model.user_factors), bits(&b.model.user_factors));
        prop_assert_eq!(bits(&a.model.item_factors), bits(&b.model.item_factors));
        prop_assert_eq!(&a.index, &b.index);
    }
}
