//! Transport conformance: the stdin CLI and the TCP front-end speak the
//! same `ocular_serve::protocol`, so the same request stream must produce
//! **byte-identical** response bodies on both — successes, typed errors,
//! malformed lines, everything. Plus the server behaviors no CLI can
//! exhibit: admission-control shedding, HTTP/1.1 keep-alive +
//! pipelining, `/stats`, and clean shutdown.
#![cfg(target_os = "linux")]

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Arc;

use ocular_core::OcularConfig;
use ocular_serve::json::Json;
use ocular_serve::net::http;
use ocular_serve::net::{RunningServer, Server, ServerConfig};
use ocular_serve::protocol::ErrorCode;
use ocular_serve::{
    AnySnapshot, CandidatePolicy, EngineBuilder, ServeConfig, ServeEngine, ShardedEngine,
    SwapEngine, WireReply,
};
use ocular_sparse::io::read_edge_list;

const EDGES: &str = "100\t7\n100\t8\n200\t7\n200\t8\n300\t55\n300\t56\n400\t55\n400\t56\n";

/// Writes the fixture edge list and trains a snapshot through the real
/// CLI binary, returning (edges path, snapshot path).
fn train_fixture(tag: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir();
    let edges = dir.join(format!("ocular-net-{tag}-{}.tsv", std::process::id()));
    let snap = dir.join(format!("ocular-net-{tag}-{}.snap", std::process::id()));
    std::fs::write(&edges, EDGES).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args([
            "--train",
            edges.to_str().unwrap(),
            "--snapshot",
            snap.to_str().unwrap(),
            "--k",
            "2",
            "--iters",
            "30",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "train failed: {out:?}");
    (edges, snap)
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        default_m: 10,
        candidates: CandidatePolicy::Clusters { min_candidates: 50 },
        foldin: OcularConfig {
            lambda: 0.5,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Builds the same engine the CLI's serve/listen modes build (default
/// flags), so both transports sit on identical state.
fn build_engine(edges: &Path, snap: &Path) -> ServeEngine {
    let loaded = AnySnapshot::load_path_full(snap).unwrap();
    let dataset = read_edge_list(edges.to_str().unwrap(), "\t", None)
        .unwrap()
        .into_dataset();
    EngineBuilder::from_loaded(loaded)
        .dataset(dataset)
        .config(serve_cfg())
        .build()
        .unwrap()
}

fn spawn_server(engine: ServeEngine, cfg: ServerConfig) -> RunningServer {
    Server::bind(Arc::new(SwapEngine::new(engine)), "127.0.0.1:0", cfg)
        .expect("bind ephemeral port")
        .spawn()
}

/// One keep-alive client connection with split read/write halves.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, method: &str, path: &str, body: &str) {
        self.writer
            .write_all(&http::format_request(method, path, body.as_bytes(), true))
            .unwrap();
    }

    fn recv(&mut self) -> http::HttpResponse {
        http::read_response(&mut self.reader).unwrap()
    }

    fn round_trip(&mut self, method: &str, path: &str, body: &str) -> http::HttpResponse {
        self.send(method, path, body);
        self.recv()
    }
}

/// The request stream both transports must answer identically: every
/// shape, internal and external ids, defaulted and explicit `m`, engine
/// errors, and malformed lines.
const REQUESTS: &[&str] = &[
    r#"{"user": 0}"#,
    r#"{"user": 1, "m": 2}"#,
    r#"{"v": 1, "user_id": 100}"#,
    r#"{"user_id": 300, "m": 1}"#,
    r#"{"basket": [0, 1], "m": 3}"#,
    r#"{"basket_ids": [55, 56]}"#,
    r#"{"user": 99}"#,
    r#"{"user_id": 12345}"#,
    r#"{"basket_ids": [7, 999]}"#,
    r#"{"nope": 1}"#,
    r#"not json at all"#,
    r#"{"v": 9, "user": 0}"#,
    r#"{"user": 0, "basket": [1]}"#,
];

#[test]
fn cli_and_tcp_serve_byte_identical_bodies() {
    let (edges, snap) = train_fixture("conform");

    // Transport A: the JSON-lines stdin CLI.
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args([
            "--model",
            snap.to_str().unwrap(),
            "--interactions",
            edges.to_str().unwrap(),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut stdin_lines = REQUESTS.join("\n");
    stdin_lines.push('\n');
    child
        .stdin
        .take()
        .unwrap()
        .write_all(stdin_lines.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "CLI must survive malformed lines");
    let cli_stdout = String::from_utf8(out.stdout).unwrap();
    let cli_lines: Vec<&str> = cli_stdout.lines().collect();
    assert_eq!(
        cli_lines.len(),
        REQUESTS.len(),
        "one response line per request line"
    );

    // Transport B: the TCP front-end over one keep-alive connection.
    let server = spawn_server(build_engine(&edges, &snap), ServerConfig::default());
    let mut client = Client::connect(server.addr());
    for (req, cli_line) in REQUESTS.iter().zip(&cli_lines) {
        let resp = client.round_trip("POST", "/recommend", req);
        let tcp_body = String::from_utf8(resp.body).unwrap();
        assert_eq!(
            tcp_body,
            format!("{cli_line}\n"),
            "transports disagree on `{req}`"
        );
        // The HTTP status must agree with the typed reply the body carries.
        let reply = WireReply::decode(cli_line).unwrap();
        assert_eq!(resp.status, reply.http_status(), "status for `{req}`");
        assert!(resp.keep_alive, "keep-alive connection must stay open");
    }

    // Every reply decodes through the shared protocol — no transport
    // invented its own shape.
    for line in &cli_lines {
        WireReply::decode(line).unwrap();
    }
    server.shutdown().unwrap();
    let _ = std::fs::remove_file(&edges);
    let _ = std::fs::remove_file(&snap);
}

/// The scatter-gather coordinator behind the TCP front-end must answer
/// the whole conformance stream byte-identically to the single engine,
/// and its `/stats` grows additive per-shard rows (absent unsharded).
#[test]
fn sharded_coordinator_serves_byte_identical_bodies_over_tcp() {
    let (edges, snap) = train_fixture("sharded");
    let single_server = spawn_server(build_engine(&edges, &snap), ServerConfig::default());

    // the same artifacts, split into a 4-shard coordinator
    let loaded = AnySnapshot::load_path_full(&snap).unwrap();
    let generation = loaded.meta.as_ref().map_or(0, |m| m.generation);
    let AnySnapshot::Ocular(snapshot) = loaded.snapshot else {
        panic!("fixture trains an ocular snapshot");
    };
    let dataset = read_edge_list(edges.to_str().unwrap(), "\t", None)
        .unwrap()
        .into_dataset();
    let n_users = dataset.n_users();
    let sharded = ShardedEngine::split(snapshot, &dataset, 4, serve_cfg(), generation, None)
        .expect("split coordinator");
    let sharded_server = Server::bind(
        Arc::new(SwapEngine::new(sharded)),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind ephemeral port")
    .spawn();

    let mut single = Client::connect(single_server.addr());
    let mut scatter = Client::connect(sharded_server.addr());
    for req in REQUESTS {
        let a = single.round_trip("POST", "/recommend", req);
        let b = scatter.round_trip("POST", "/recommend", req);
        assert_eq!(a.status, b.status, "status diverged on `{req}`");
        assert_eq!(
            String::from_utf8(a.body).unwrap(),
            String::from_utf8(b.body).unwrap(),
            "bodies diverged on `{req}`"
        );
    }

    // per-shard /stats rows reconcile: every user on exactly one shard,
    // and the engine-reaching requests above were each dispatched once
    let resp = scatter.round_trip("GET", "/stats", "");
    assert_eq!(resp.status, 200);
    let body = String::from_utf8(resp.body).unwrap();
    let v = Json::parse(body.trim_end()).unwrap();
    let rows = v.get("shard").and_then(Json::as_array).expect("shard rows");
    assert_eq!(rows.len(), 4);
    let users: u64 = rows
        .iter()
        .map(|r| r.get("users").and_then(Json::as_u64).unwrap())
        .sum();
    assert_eq!(users as usize, n_users);
    let dispatched: u64 = rows
        .iter()
        .map(|r| r.get("requests").and_then(Json::as_u64).unwrap())
        .sum();
    assert!(dispatched > 0);
    // the unsharded server's /stats must not grow the field
    let resp = single.round_trip("GET", "/stats", "");
    let body = String::from_utf8(resp.body).unwrap();
    assert!(Json::parse(body.trim_end()).unwrap().get("shard").is_none());

    single_server.shutdown().unwrap();
    sharded_server.shutdown().unwrap();
    let _ = std::fs::remove_file(&edges);
    let _ = std::fs::remove_file(&snap);
}

#[test]
fn full_admission_queue_sheds_with_typed_overloaded_errors() {
    let (edges, snap) = train_fixture("overload");
    // queue_cap 0: every engine request finds the queue full.
    let server = spawn_server(
        build_engine(&edges, &snap),
        ServerConfig {
            queue_cap: 0,
            ..Default::default()
        },
    );
    let mut client = Client::connect(server.addr());
    for _ in 0..5 {
        let resp = client.round_trip("POST", "/recommend", r#"{"user": 0}"#);
        assert_eq!(resp.status, 429);
        let body = String::from_utf8(resp.body).unwrap();
        let WireReply::Err(err) = WireReply::decode(body.trim_end()).unwrap() else {
            panic!("shed response must decode as a wire error: {body}");
        };
        assert_eq!(err.code, ErrorCode::Overloaded);
        assert!(
            err.message.contains("admission queue full"),
            "{}",
            err.message
        );
        // Shedding answers the request; it never drops the connection.
        assert!(resp.keep_alive);
    }
    // The same connection keeps working for non-engine endpoints.
    let resp = client.round_trip("GET", "/healthz", "");
    assert_eq!(resp.status, 200);
    let stats = server.stats();
    assert_eq!(stats.shed.load(std::sync::atomic::Ordering::Relaxed), 5);
    assert_eq!(stats.served.load(std::sync::atomic::Ordering::Relaxed), 0);
    server.shutdown().unwrap();
    let _ = std::fs::remove_file(&edges);
    let _ = std::fs::remove_file(&snap);
}

#[test]
fn pipelined_requests_answer_in_request_order() {
    let (edges, snap) = train_fixture("pipeline");
    let server = spawn_server(build_engine(&edges, &snap), ServerConfig::default());
    let mut client = Client::connect(server.addr());
    // Three requests written back-to-back before reading anything.
    for user in 0..3usize {
        client.send(
            "POST",
            "/recommend",
            &format!("{{\"user\": {user}, \"m\": 1}}"),
        );
    }
    for user in 0..3usize {
        let resp = client.recv();
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        let v = Json::parse(body.trim_end()).unwrap();
        assert_eq!(
            v.get("user").and_then(Json::as_usize),
            Some(user),
            "response order must match request order: {body}"
        );
    }
    server.shutdown().unwrap();
    let _ = std::fs::remove_file(&edges);
    let _ = std::fs::remove_file(&snap);
}

#[test]
fn stats_endpoint_reports_counters_and_latency() {
    let (edges, snap) = train_fixture("stats");
    let server = spawn_server(build_engine(&edges, &snap), ServerConfig::default());
    let mut client = Client::connect(server.addr());
    for user in 0..4usize {
        let resp = client.round_trip("POST", "/recommend", &format!("{{\"user\": {user}}}"));
        assert_eq!(resp.status, 200);
    }
    let resp = client.round_trip("GET", "/stats", "");
    assert_eq!(resp.status, 200);
    let body = String::from_utf8(resp.body).unwrap();
    let v = Json::parse(body.trim_end()).unwrap();
    assert_eq!(v.get("served").and_then(Json::as_u64), Some(4));
    assert_eq!(v.get("shed").and_then(Json::as_u64), Some(0));
    assert_eq!(v.get("active_connections").and_then(Json::as_u64), Some(1));
    assert!(v.get("requests").and_then(Json::as_u64).unwrap() >= 5);
    let latency = v.get("latency_us").expect("latency_us object");
    assert_eq!(latency.get("count").and_then(Json::as_u64), Some(4));
    for q in ["p50", "p90", "p99", "p999", "max"] {
        assert!(
            latency.get(q).and_then(Json::as_f64).unwrap() > 0.0,
            "{q} must be positive"
        );
    }
    // Unknown endpoints answer 404 without killing the connection.
    let resp = client.round_trip("GET", "/nope", "");
    assert_eq!(resp.status, 404);
    let resp = client.round_trip("GET", "/healthz", "");
    assert_eq!(resp.status, 200);
    // Clean shutdown: the I/O thread joins and reports no error.
    server.shutdown().unwrap();
    let _ = std::fs::remove_file(&edges);
    let _ = std::fs::remove_file(&snap);
}
