//! Scatter-gather conformance: sharded serving must be **byte-identical**
//! to the unsharded engine — same wire bytes, same telemetry, same typed
//! errors — for every warm user (internal and external addressing), cold
//! baskets (internal and external), unknown ids, and users appended
//! after the snapshot (fold-in overhang); across shard counts 1 and 4,
//! both id regimes, and every quantized dtype. Plus: the sharded v3
//! snapshot family round-trips through disk into an equally identical
//! coordinator, and per-shard `/stats` telemetry reconciles.

use ocular_api::SnapshotMeta;
use ocular_core::{fit, OcularConfig};
use ocular_datasets::planted::{generate, PlantedConfig};
use ocular_serve::{
    AnySnapshot, CandidatePolicy, EngineBuilder, IndexConfig, QuantDtype, Request, ServeConfig,
    ServeEngine, ShardedEngine, Snapshot,
};
use ocular_sparse::{Dataset, IdMaps};

fn dataset(with_ids: bool) -> Dataset {
    let r = generate(&PlantedConfig {
        n_users: 40,
        n_items: 30,
        k: 3,
        users_per_cluster: 14,
        items_per_cluster: 11,
        user_overlap: 0.25,
        item_overlap: 0.25,
        within_density: 0.6,
        noise_density: 0.02,
        seed: 11,
    })
    .matrix;
    if !with_ids {
        return r;
    }
    let users: Vec<u64> = (0..r.n_users() as u64).map(|u| 1_000 + 7 * u).collect();
    let items: Vec<u64> = (0..r.n_items() as u64).map(|i| 500 + 3 * i).collect();
    let ids = IdMaps::new(users, items).unwrap();
    Dataset::new(r.matrix().clone(), ids).unwrap()
}

fn snapshot(r: &Dataset) -> Snapshot {
    let model = fit(
        r,
        &OcularConfig {
            k: 3,
            lambda: 0.3,
            max_iters: 25,
            seed: 9,
            ..Default::default()
        },
    )
    .model;
    Snapshot::build(model, &IndexConfig { rel: 0.5, floor: 5 })
}

fn config() -> ServeConfig {
    ServeConfig {
        default_m: 6,
        // small floor so some baskets take the candidate path and others
        // fall back — both scatter branches get exercised
        candidates: CandidatePolicy::Clusters { min_candidates: 8 },
        ..Default::default()
    }
}

fn engines(
    snap: &Snapshot,
    d: &Dataset,
    n_shards: usize,
    quant: Option<QuantDtype>,
) -> (ServeEngine, ShardedEngine) {
    let mut b = EngineBuilder::from_snapshot(AnySnapshot::Ocular(snap.clone()))
        .dataset(d.clone())
        .config(config())
        .generation(7);
    if let Some(dtype) = quant {
        b = b.quantization(dtype);
    }
    let single = b.build().unwrap();
    let sharded = ShardedEngine::split(snap.clone(), d, n_shards, config(), 7, quant).unwrap();
    (single, sharded)
}

/// Every request shape the wire protocol can express, covering the whole
/// user population plus unknown-id and malformed-basket error paths.
fn request_zoo(d: &Dataset) -> Vec<Request> {
    let n_items = d.n_items();
    let mut reqs = Vec::new();
    for u in 0..d.n_users() {
        reqs.push(Request::Warm { user: u, m: 5 });
        reqs.push(Request::WarmExternal {
            user: d.external_user(u),
            m: 0,
        });
    }
    reqs.push(Request::Warm {
        user: d.n_users() + 3,
        m: 5,
    });
    reqs.push(Request::WarmExternal {
        user: 999_999_999,
        m: 5,
    });
    reqs.push(Request::Cold {
        basket: vec![0, 1, 2],
        m: 7,
    });
    reqs.push(Request::Cold {
        basket: vec![n_items - 1],
        m: 0,
    });
    reqs.push(Request::Cold {
        basket: vec![],
        m: 4,
    });
    reqs.push(Request::Cold {
        basket: vec![n_items + 5],
        m: 4,
    });
    reqs.push(Request::ColdExternal {
        basket: vec![d.external_item(0), d.external_item(2)],
        m: 6,
    });
    reqs.push(Request::ColdExternal {
        basket: vec![123_456_789],
        m: 6,
    });
    reqs
}

/// One-at-a-time and batched serving must both match the unsharded
/// engine byte for byte — wire encoding and structured telemetry alike.
fn assert_identical(single: &ServeEngine, sharded: &ShardedEngine, reqs: &[Request], label: &str) {
    for req in reqs {
        let a = single.serve_one(req);
        let b = sharded.serve_one(req);
        assert_eq!(
            single.wire_reply(req, &a).encode(),
            sharded.wire_reply(req, &b).encode(),
            "{label}: serve_one wire bytes diverged on {req:?}"
        );
        match (&a, &b) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "{label}: telemetry diverged on {req:?}"),
            (Err(x), Err(y)) => assert_eq!(
                format!("{x:?}"),
                format!("{y:?}"),
                "{label}: error diverged on {req:?}"
            ),
            _ => panic!("{label}: ok/err disagreement on {req:?}"),
        }
    }
    let batch_single = single.serve_batch(reqs);
    let batch_sharded = sharded.serve_batch(reqs);
    for ((req, x), y) in reqs.iter().zip(&batch_single).zip(&batch_sharded) {
        assert_eq!(
            single.wire_reply(req, x).encode(),
            sharded.wire_reply(req, y).encode(),
            "{label}: batch wire bytes diverged on {req:?}"
        );
    }
}

#[test]
fn sharded_serving_is_byte_identical_to_unsharded() {
    for with_ids in [false, true] {
        let d = dataset(with_ids);
        let snap = snapshot(&d);
        let reqs = request_zoo(&d);
        for quant in [None, Some(QuantDtype::F32), Some(QuantDtype::I8)] {
            for n_shards in [1usize, 4] {
                let (single, sharded) = engines(&snap, &d, n_shards, quant);
                assert_eq!(sharded.n_shards(), n_shards);
                assert_eq!(sharded.generation(), 7);
                assert_eq!(sharded.dtype(), single.dtype());
                assert_identical(
                    &single,
                    &sharded,
                    &reqs,
                    &format!("ids={with_ids} quant={quant:?} shards={n_shards}"),
                );
                // per-shard telemetry reconciles with the population
                let stats = sharded.shard_stats();
                assert_eq!(stats.len(), n_shards);
                let users: usize = stats.iter().map(|s| s.users).sum();
                assert_eq!(users, d.n_users());
                assert!(stats.iter().map(|s| s.requests).sum::<u64>() > 0);
            }
        }
    }
}

/// Users appended after the snapshot (the live-refresh overhang) are
/// served by request-time fold-in on their owning shard, byte-identical
/// to the unsharded fold-in path (`folded_in: true` included).
#[test]
fn post_snapshot_users_fold_in_identically_on_their_shard() {
    for with_ids in [false, true] {
        let d = dataset(with_ids);
        let snap = snapshot(&d);
        let mut staged = d.delta_builder();
        for (j, ext) in [770_001u64, 770_002, 770_003].iter().enumerate() {
            // identity datasets extend by their next row indices instead
            let user = if with_ids {
                *ext
            } else {
                (d.n_users() + j) as u64
            };
            staged.push(user, d.external_item(j)).unwrap();
            staged.push(user, d.external_item(j + 4)).unwrap();
        }
        let grown = staged.finish().unwrap();
        assert_eq!(grown.n_users(), d.n_users() + 3);

        let (single, sharded) = engines(&snap, &grown, 4, None);
        let mut reqs = Vec::new();
        for u in d.n_users()..grown.n_users() {
            reqs.push(Request::Warm { user: u, m: 5 });
            reqs.push(Request::WarmExternal {
                user: grown.external_user(u),
                m: 5,
            });
        }
        for req in &reqs {
            let got = sharded.serve_one(req).unwrap();
            assert!(got.folded_in, "overhang user must be folded in: {req:?}");
        }
        assert_identical(
            &single,
            &sharded,
            &reqs,
            &format!("overhang ids={with_ids}"),
        );
    }
}

/// The sharded v3 family round-trips through disk: `save_path_sharded` →
/// `load_path_sharded` → `assemble` serves byte-identically to the
/// unsharded engine, adopts the family's metadata generation, and a
/// wrong `--shards` count fails loudly instead of mapping a mismatch.
#[test]
fn sharded_snapshot_files_round_trip_into_an_identical_coordinator() {
    const N: usize = 4;
    for with_ids in [false, true] {
        let d = dataset(with_ids);
        let snap = snapshot(&d);
        let reqs = request_zoo(&d);
        let single = EngineBuilder::from_snapshot(AnySnapshot::Ocular(snap.clone()))
            .dataset(d.clone())
            .config(config())
            .generation(7)
            .build()
            .unwrap();

        let base = std::env::temp_dir().join(format!(
            "ocular-shard-conf-{}-{with_ids}.snap",
            std::process::id()
        ));
        let meta = SnapshotMeta {
            generation: 7,
            n_users: d.n_users() as u64,
            n_items: d.n_items() as u64,
            nnz: d.nnz() as u64,
        };
        let paths = AnySnapshot::Ocular(snap.clone())
            .save_path_sharded(&base, d.ids(), Some(&meta), N)
            .unwrap();
        assert_eq!(paths.len(), N);

        let load = AnySnapshot::load_path_sharded(&base, N).unwrap();
        let total_rows: usize = load.global_rows.iter().map(Vec::len).sum();
        assert_eq!(total_rows, d.n_users());
        let sharded = ShardedEngine::assemble(load, &d, config(), 0, None).unwrap();
        assert_eq!(
            sharded.generation(),
            7,
            "family metadata generation adopted"
        );
        assert_identical(&single, &sharded, &reqs, &format!("files ids={with_ids}"));

        // a family is only loadable under its own shard count
        assert!(AnySnapshot::load_path_sharded(&base, 3).is_err());
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }
}
