//! # ocular-baselines
//!
//! The one-class collaborative-filtering baselines OCuLaR is compared
//! against in Table I and Figure 5 of the paper, implemented from scratch:
//!
//! * [`wals`] — **wALS**, weighted alternating least squares (Pan et al.,
//!   *One-class collaborative filtering*, ICDM 2008): matrix factorization
//!   with unknowns down-weighted by `b < 1`, solved with the Gram trick and
//!   `K×K` Cholesky solves. State of the art, *not* interpretable.
//! * [`bpr`] — **BPR** (Rendle et al., UAI 2009): Bayesian personalized
//!   ranking matrix factorization trained by SGD over sampled
//!   (user, positive, unknown) triplets. Not interpretable.
//! * [`neighbors`] — **user-based** and **item-based** cosine kNN
//!   collaborative filtering (Sarwar et al. / Deshpande & Karypis): the
//!   paper's *interpretable* competitors.
//! * [`popularity`] — most-popular ranking; not in the paper but the
//!   standard floor every personalised method must clear.
//!
//! Every model implements the workspace trait hierarchy
//! ([`ocular_api`]): [`ScoreItems`] → [`Recommender`], plus
//! [`SnapshotModel`] (kind-tagged persistence, so the serving tier can
//! load and serve any of them) and, where the algorithm admits it,
//! [`FoldIn`] request-time cold start (wALS via a ridge solve, item-kNN
//! via basket scoring, popularity trivially). Evaluation, the Table I
//! harness and `ocular-serve` all consume them as `&dyn Recommender`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bpr;
pub mod neighbors;

pub mod popularity;
pub mod similarity;
pub mod wals;

pub use bpr::{Bpr, BprConfig};
pub use neighbors::{ItemKnn, KnnConfig, UserKnn};
pub use popularity::Popularity;
pub use wals::{Wals, WalsConfig};

// the trait hierarchy these models implement, re-exported so downstream
// code can keep importing it from here
pub use ocular_api::{
    FoldIn, Model, OcularError, Recommender, ScoreItems, ScoredItem, SnapshotModel,
};

use ocular_sparse::Dataset;

/// Per-model hyper-parameters for the Table-I model zoo, so harnesses stop
/// hard-coding each baseline's knobs inline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineConfigs {
    /// wALS hyper-parameters.
    pub wals: WalsConfig,
    /// BPR hyper-parameters.
    pub bpr: BprConfig,
    /// User-based kNN neighbourhood size.
    pub user_knn: KnnConfig,
    /// Item-based kNN neighbourhood size.
    pub item_knn: KnnConfig,
}

impl BaselineConfigs {
    /// Every model's defaults with the given RNG seed threaded into the
    /// seeded fitters (wALS, BPR). The kNN variants are deterministic and
    /// take no seed.
    pub fn seeded(seed: u64) -> Self {
        BaselineConfigs {
            wals: WalsConfig {
                seed,
                ..Default::default()
            },
            bpr: BprConfig {
                seed,
                ..Default::default()
            },
            user_knn: KnnConfig::default(),
            item_knn: KnnConfig::default(),
        }
    }
}

impl Default for BaselineConfigs {
    fn default() -> Self {
        Self::seeded(0)
    }
}

/// Fits every Table-I baseline (plus the popularity floor) with the given
/// per-model configurations and returns `(name, model)` pairs — the name
/// is each model's [`ScoreItems::name`], so report columns and bench
/// tables share one source of truth instead of duplicating the list.
pub fn all_baselines(
    r: &Dataset,
    cfgs: &BaselineConfigs,
) -> Vec<(&'static str, Box<dyn Recommender>)> {
    let models: Vec<Box<dyn Recommender>> = vec![
        Box::new(Wals::fit(r, &cfgs.wals)),
        Box::new(Bpr::fit(r, &cfgs.bpr)),
        Box::new(UserKnn::fit(r, &cfgs.user_knn)),
        Box::new(ItemKnn::fit(r, &cfgs.item_knn)),
        Box::new(Popularity::fit(r)),
    ];
    models
        .into_iter()
        .map(|m| {
            let name = m.name();
            (name, m)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocular_sparse::CsrMatrix;

    #[test]
    fn model_zoo_has_distinct_names() {
        let r = Dataset::from_matrix(
            CsrMatrix::from_pairs(4, 4, &[(0, 0), (1, 1), (2, 2), (3, 3)]).unwrap(),
        );
        let zoo = all_baselines(&r, &BaselineConfigs::seeded(0));
        let names: Vec<&str> = zoo.iter().map(|(name, _)| *name).collect();
        assert_eq!(names.len(), 5);
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 5, "names must be distinct: {names:?}");
        for (name, m) in &zoo {
            assert_eq!(*name, m.name(), "pair name must be the model's name");
            assert_eq!(m.n_users(), 4);
            assert_eq!(m.n_items(), 4);
        }
    }

    #[test]
    fn zoo_respects_per_model_configs() {
        let r = Dataset::from_matrix(
            CsrMatrix::from_pairs(4, 4, &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)]).unwrap(),
        );
        let a = all_baselines(&r, &BaselineConfigs::seeded(1));
        let b = all_baselines(&r, &BaselineConfigs::seeded(2));
        // the seeded fitters must actually see the seed
        let mut sa = Vec::new();
        let mut sb = Vec::new();
        a[0].1.score_user(0, &mut sa);
        b[0].1.score_user(0, &mut sb);
        assert_ne!(sa, sb, "wALS must differ across seeds");
    }
}
