//! # ocular-baselines
//!
//! The one-class collaborative-filtering baselines OCuLaR is compared
//! against in Table I and Figure 5 of the paper, implemented from scratch:
//!
//! * [`wals`] — **wALS**, weighted alternating least squares (Pan et al.,
//!   *One-class collaborative filtering*, ICDM 2008): matrix factorization
//!   with unknowns down-weighted by `b < 1`, solved with the Gram trick and
//!   `K×K` Cholesky solves. State of the art, *not* interpretable.
//! * [`bpr`] — **BPR** (Rendle et al., UAI 2009): Bayesian personalized
//!   ranking matrix factorization trained by SGD over sampled
//!   (user, positive, unknown) triplets. Not interpretable.
//! * [`neighbors`] — **user-based** and **item-based** cosine kNN
//!   collaborative filtering (Sarwar et al. / Deshpande & Karypis): the
//!   paper's *interpretable* competitors.
//! * [`popularity`] — most-popular ranking; not in the paper but the
//!   standard floor every personalised method must clear.
//!
//! All models implement the [`Recommender`] trait, so the evaluation harness
//! treats them and OCuLaR uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bpr;
pub mod neighbors;
pub mod popularity;
pub mod similarity;
pub mod wals;

pub use bpr::{Bpr, BprConfig};
pub use neighbors::{ItemKnn, KnnConfig, UserKnn};
pub use popularity::Popularity;
pub use wals::{Wals, WalsConfig};

use ocular_sparse::CsrMatrix;

/// A fitted one-class recommender: anything that can score every item for a
/// user. The evaluation protocol (`ocular_eval::protocol::evaluate`)
/// consumes these through a closure, and the Table I harness iterates over
/// `Box<dyn Recommender>`.
pub trait Recommender {
    /// Human-readable name for reports (e.g. `"wALS"`).
    fn name(&self) -> &'static str;

    /// Fills `out` (resized to `n_items`) with relevance scores for `u`.
    /// Higher is better; scales need not be comparable across models.
    fn score_user(&self, u: usize, out: &mut Vec<f64>);

    /// Number of users the model was fitted on.
    fn n_users(&self) -> usize;

    /// Number of items the model was fitted on.
    fn n_items(&self) -> usize;
}

/// Fits every Table-I baseline with the given seeds and returns them as
/// trait objects (the Table I harness's model zoo).
pub fn all_baselines(r: &CsrMatrix, seed: u64) -> Vec<Box<dyn Recommender>> {
    vec![
        Box::new(Wals::fit(
            r,
            &WalsConfig {
                seed,
                ..Default::default()
            },
        )),
        Box::new(Bpr::fit(
            r,
            &BprConfig {
                seed,
                ..Default::default()
            },
        )),
        Box::new(UserKnn::fit(r, &KnnConfig::default())),
        Box::new(ItemKnn::fit(r, &KnnConfig::default())),
        Box::new(Popularity::fit(r)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_zoo_has_distinct_names() {
        let r = CsrMatrix::from_pairs(4, 4, &[(0, 0), (1, 1), (2, 2), (3, 3)]).unwrap();
        let zoo = all_baselines(&r, 0);
        let names: Vec<&str> = zoo.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 5);
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 5, "names must be distinct: {names:?}");
        for m in &zoo {
            assert_eq!(m.n_users(), 4);
            assert_eq!(m.n_items(), 4);
        }
    }
}
