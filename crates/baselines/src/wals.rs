//! wALS — weighted alternating least squares for one-class CF
//! (Pan et al., *One-class collaborative filtering*, ICDM 2008).
//!
//! Minimises
//!
//! ```text
//! Σ_{u,i} w_ui (r_ui − ⟨f_u, f_i⟩)² + λ (Σ_u ‖f_u‖² + Σ_i ‖f_i‖²)
//! ```
//!
//! with `w_ui = 1` for positives and `w_ui = b < 1` for unknowns (Eq. 8 of
//! the OCuLaR paper; it uses `b = 0.01, λ = 0.01`). Each alternating update
//! solves a `K×K` system per entity; the **Gram trick** keeps that cheap:
//!
//! ```text
//! Σ_i w_ui f_i f_iᵀ = b · FᵀF + (1−b) · Σ_{i: r_ui=1} f_i f_iᵀ
//! ```
//!
//! so a sweep costs `O((n_u + n_i) K³ + nnz·K²)` with `FᵀF` computed once
//! per half-sweep. Unlike OCuLaR the factors are unconstrained (may go
//! negative), which is exactly why the paper calls the latent space hard to
//! interpret.
//!
//! The same per-entity solve doubles as request-time **cold start**
//! ([`ocular_api::FoldIn`]): a new user's factor vector is one ridge solve
//! against the frozen item factors — `O(K³ + basket·K²)` per request.

use ocular_api::textio::{bad, read_line, read_matrix, write_matrix};
use ocular_api::{validate_basket, FoldIn, OcularError, Recommender, ScoreItems, SnapshotModel};
use ocular_linalg::{ops, Cholesky, Matrix};
use ocular_sparse::{CsrMatrix, Dataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// wALS hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalsConfig {
    /// Latent dimensionality (the paper grid-searches this).
    pub k: usize,
    /// Weight of unknown examples, `0 < b < 1` (paper: 0.01).
    pub b: f64,
    /// Ridge regularization λ (paper: 0.01).
    pub lambda: f64,
    /// Number of alternating sweeps.
    pub iters: usize,
    /// Initialisation scale and seed.
    pub init_scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WalsConfig {
    fn default() -> Self {
        WalsConfig {
            k: 16,
            b: 0.01,
            lambda: 0.01,
            iters: 15,
            init_scale: 0.1,
            seed: 0,
        }
    }
}

impl WalsConfig {
    /// Validates parameter ranges.
    fn validate(&self) -> Result<(), OcularError> {
        if self.k == 0 {
            return Err(OcularError::InvalidConfig("k must be positive".into()));
        }
        if !(self.b > 0.0 && self.b < 1.0) {
            return Err(OcularError::InvalidConfig("b must lie in (0, 1)".into()));
        }
        if self.lambda <= 0.0 {
            return Err(OcularError::InvalidConfig(
                "lambda must be positive for SPD solves".into(),
            ));
        }
        Ok(())
    }
}

/// A fitted wALS model.
#[derive(Debug, Clone, PartialEq)]
pub struct Wals {
    /// `n_users × k` latent factors.
    pub user_factors: Matrix,
    /// `n_items × k` latent factors.
    pub item_factors: Matrix,
    /// Weighted squared-error objective after each sweep (for convergence
    /// diagnostics and the Figure 8-style comparisons).
    pub objective_trace: Vec<f64>,
    /// The hyper-parameters the model was fitted with (cold-start fold-in
    /// reuses `b` and `lambda`).
    pub config: WalsConfig,
    /// `FᵀF` of the item factors, cached for request-time fold-in.
    item_gram: Matrix,
}

fn init(rows: usize, k: usize, scale: f64, rng: &mut StdRng) -> Matrix {
    let mut m = Matrix::zeros(rows, k);
    for v in m.as_mut_slice() {
        *v = (rng.gen::<f64>() - 0.5) * 2.0 * scale;
    }
    m
}

/// One weighted ridge solve: the factor vector of an entity whose positive
/// counterparts (rows of `other`) are `positives`, against the precomputed
/// Gram matrix `gram = otherᵀ·other`. This is the per-entity step of
/// [`half_sweep`] and, with a basket as `positives`, the fold-in solve.
fn solve_entity(other: &Matrix, gram: &Matrix, positives: &[u32], b: f64, lambda: f64) -> Vec<f64> {
    let k = other.cols();
    // A = b·G + (1−b)·Σ_pos f fᵀ + λI  (lower triangle suffices)
    let mut a = Matrix::zeros(k, k);
    for r in 0..k {
        for c in 0..=r {
            a[(r, c)] = b * gram[(r, c)];
        }
        a[(r, r)] += lambda;
    }
    let mut rhs = vec![0.0; k];
    for &i in positives {
        let f = other.row(i as usize);
        for r in 0..k {
            let fr = f[r];
            rhs[r] += fr;
            if fr != 0.0 {
                let w = (1.0 - b) * fr;
                for c in 0..=r {
                    a[(r, c)] += w * f[c];
                }
            }
        }
    }
    let chol = Cholesky::factor(&a).expect("A = b·G + ΣffT + λI is SPD for λ > 0");
    chol.solve_in_place(&mut rhs);
    rhs
}

/// One half-sweep: updates every row of `own` against `other`.
/// `adjacency.row(e)` lists the positive counterparts of entity `e`.
fn half_sweep(own: &mut Matrix, other: &Matrix, adjacency: &CsrMatrix, b: f64, lambda: f64) {
    let gram = other.gram();
    for e in 0..own.rows() {
        let solved = solve_entity(other, &gram, adjacency.row(e), b, lambda);
        own.row_mut(e).copy_from_slice(&solved);
    }
}

/// Weighted squared-error objective, evaluated with the same Gram trick:
/// `Σ w (r − p)² = b·Σ_all p² + Σ_pos [(1−p)² − b·p²] + reg`, and
/// `Σ_all p² = Σ_u f_uᵀ G_i f_u`.
fn wals_objective(r: &CsrMatrix, uf: &Matrix, itf: &Matrix, b: f64, lambda: f64) -> f64 {
    let gi = itf.gram();
    let k = uf.cols();
    let mut all_sq = 0.0;
    for u in 0..uf.rows() {
        let fu = uf.row(u);
        // f G fᵀ
        for r in 0..k {
            let fr = fu[r];
            if fr == 0.0 {
                continue;
            }
            for c in 0..k {
                all_sq += fr * gi[(r, c)] * fu[c];
            }
        }
    }
    let mut q = b * all_sq;
    for u in 0..r.n_rows() {
        let fu = uf.row(u);
        for &i in r.row(u) {
            let p = ops::dot(fu, itf.row(i as usize));
            q += (1.0 - p) * (1.0 - p) - b * p * p;
        }
    }
    q + lambda * (uf.frobenius_sq() + itf.frobenius_sq())
}

impl Wals {
    /// Model name in reports and error messages.
    pub const NAME: &'static str = "wALS";
    /// Snapshot kind tag.
    pub const KIND: &'static str = "wals";

    /// Fits by alternating least squares.
    ///
    /// # Panics
    /// Panics if `k == 0`, `b` is outside `(0, 1)`, or `lambda <= 0`
    /// (λ must be positive for the normal equations to stay SPD). Use
    /// [`Wals::try_fit`] for a fallible variant.
    pub fn fit(data: &Dataset, cfg: &WalsConfig) -> Self {
        Self::try_fit(data, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Wals::fit`]: returns [`OcularError::InvalidConfig`] on a
    /// bad configuration instead of panicking. The item half-sweep reads
    /// the dataset's build-once CSC dual view instead of re-transposing.
    pub fn try_fit(data: &Dataset, cfg: &WalsConfig) -> Result<Self, OcularError> {
        cfg.validate()?;
        let r: &CsrMatrix = data.matrix();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut user_factors = init(r.n_rows(), cfg.k, cfg.init_scale, &mut rng);
        let mut item_factors = init(r.n_cols(), cfg.k, cfg.init_scale, &mut rng);
        let rt = data.item_view();
        let mut objective_trace = vec![wals_objective(
            r,
            &user_factors,
            &item_factors,
            cfg.b,
            cfg.lambda,
        )];
        for _ in 0..cfg.iters {
            half_sweep(&mut user_factors, &item_factors, r, cfg.b, cfg.lambda);
            half_sweep(&mut item_factors, &user_factors, rt, cfg.b, cfg.lambda);
            objective_trace.push(wals_objective(
                r,
                &user_factors,
                &item_factors,
                cfg.b,
                cfg.lambda,
            ));
        }
        let item_gram = item_factors.gram();
        Ok(Wals {
            user_factors,
            item_factors,
            objective_trace,
            config: *cfg,
            item_gram,
        })
    }

    /// Predicted preference `⟨f_u, f_i⟩`.
    pub fn predict(&self, u: usize, i: usize) -> f64 {
        ops::dot(self.user_factors.row(u), self.item_factors.row(i))
    }

    /// Folds in an unseen user with the given basket: one weighted ridge
    /// solve against the frozen item factors (the exact user-subproblem of
    /// the training sweep, so an existing user's basket reproduces their
    /// training-time update). Out-of-range or duplicate basket items are
    /// [`OcularError::BadBasket`].
    pub fn fold_in(&self, basket: &[u32]) -> Result<Vec<f64>, OcularError> {
        let items: Vec<usize> = basket.iter().map(|&i| i as usize).collect();
        validate_basket(&items, self.item_factors.rows())?;
        Ok(solve_entity(
            &self.item_factors,
            &self.item_gram,
            basket,
            self.config.b,
            self.config.lambda,
        ))
    }
}

impl ScoreItems for Wals {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn n_users(&self) -> usize {
        self.user_factors.rows()
    }

    fn n_items(&self) -> usize {
        self.item_factors.rows()
    }

    fn score_user(&self, u: usize, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.item_factors.rows(), 0.0);
        let fu = self.user_factors.row(u);
        for (i, o) in out.iter_mut().enumerate() {
            *o = ops::dot(fu, self.item_factors.row(i));
        }
    }
}

impl Recommender for Wals {
    fn as_fold_in(&self) -> Option<&dyn FoldIn> {
        Some(self)
    }
}

impl FoldIn for Wals {
    fn score_basket(&self, basket: &[usize], out: &mut Vec<f64>) -> Result<(), OcularError> {
        let positives = validate_basket(basket, self.item_factors.rows())?;
        // already validated — solve directly rather than through fold_in's
        // second validation pass
        let fu = solve_entity(
            &self.item_factors,
            &self.item_gram,
            &positives,
            self.config.b,
            self.config.lambda,
        );
        out.clear();
        out.resize(self.item_factors.rows(), 0.0);
        for (i, o) in out.iter_mut().enumerate() {
            *o = ops::dot(&fu, self.item_factors.row(i));
        }
        Ok(())
    }
}

impl SnapshotModel for Wals {
    fn kind(&self) -> &'static str {
        Self::KIND
    }

    fn save_model(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        let c = &self.config;
        writeln!(
            w,
            "wals-model v1 {} {} {} {:e} {:e} {} {:e} {}",
            self.user_factors.rows(),
            self.item_factors.rows(),
            c.k,
            c.b,
            c.lambda,
            c.iters,
            c.init_scale,
            c.seed
        )?;
        write_matrix(w, &self.user_factors)?;
        write_matrix(w, &self.item_factors)?;
        write!(w, "trace {}", self.objective_trace.len())?;
        for v in &self.objective_trace {
            write!(w, " {v:e}")?;
        }
        writeln!(w)
    }

    fn load_model(r: &mut dyn std::io::BufRead) -> Result<Self, OcularError> {
        let header = read_line(r)?;
        let f: Vec<&str> = header.split_whitespace().collect();
        if f.len() != 10 || f[0] != "wals-model" || f[1] != "v1" {
            return Err(bad("bad wals-model header"));
        }
        let n_users: usize = f[2].parse().map_err(|_| bad("bad n_users"))?;
        let n_items: usize = f[3].parse().map_err(|_| bad("bad n_items"))?;
        let config = WalsConfig {
            k: f[4].parse().map_err(|_| bad("bad k"))?,
            b: f[5].parse().map_err(|_| bad("bad b"))?,
            lambda: f[6].parse().map_err(|_| bad("bad lambda"))?,
            iters: f[7].parse().map_err(|_| bad("bad iters"))?,
            init_scale: f[8].parse().map_err(|_| bad("bad init_scale"))?,
            seed: f[9].parse().map_err(|_| bad("bad seed"))?,
        };
        config.validate()?;
        let user_factors = read_matrix(r, n_users, config.k)?;
        let item_factors = read_matrix(r, n_items, config.k)?;
        let trace_line = read_line(r)?;
        let mut fields = trace_line.split_whitespace();
        if fields.next() != Some("trace") {
            return Err(bad("missing trace section"));
        }
        let len: usize = fields
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("bad trace length"))?;
        let objective_trace: Vec<f64> = fields
            .map(|v| v.parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|_| bad("bad trace value"))?;
        if objective_trace.len() != len {
            return Err(bad("trace length mismatch"));
        }
        let item_gram = item_factors.gram();
        Ok(Wals {
            user_factors,
            item_factors,
            objective_trace,
            config,
            item_gram,
        })
    }

    fn write_sections(&self, w: &mut ocular_api::SectionWriter) -> Result<(), OcularError> {
        let c = &self.config;
        w.put_u64s(
            "meta",
            &[
                self.user_factors.rows() as u64,
                self.item_factors.rows() as u64,
                c.k as u64,
                c.iters as u64,
                c.seed,
            ],
        );
        w.put_f64s("cfg", &[c.b, c.lambda, c.init_scale]);
        w.put_f64s("ufact", self.user_factors.as_slice());
        w.put_f64s("ifact", self.item_factors.as_slice());
        w.put_f64s("trace", &self.objective_trace);
        Ok(())
    }

    fn read_sections(r: &ocular_api::SectionReader) -> Result<Self, OcularError> {
        use ocular_api::SectionReader;
        let [n_users, n_items, k, iters, seed] = r.u64_meta::<5>("meta")?;
        let [b, lambda, init_scale] = r.f64_meta::<3>("cfg")?;
        let config = WalsConfig {
            k: SectionReader::shape(k, "k")?,
            b,
            lambda,
            iters: SectionReader::shape(iters, "iters")?,
            init_scale,
            seed,
        };
        config.validate()?;
        let n_users = SectionReader::shape(n_users, "n_users")?;
        let n_items = SectionReader::shape(n_items, "n_items")?;
        let user_factors = Matrix::from_shared(n_users, config.k, r.f64s("ufact")?)
            .map_err(OcularError::Corrupt)?;
        let item_factors = Matrix::from_shared(n_items, config.k, r.f64s("ifact")?)
            .map_err(OcularError::Corrupt)?;
        let item_gram = item_factors.gram();
        Ok(Wals {
            user_factors,
            item_factors,
            objective_trace: r.f64s("trace")?.into_vec(),
            config,
            item_gram,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blocks() -> Dataset {
        Dataset::from_matrix(two_blocks_matrix())
    }

    fn two_blocks_matrix() -> CsrMatrix {
        CsrMatrix::from_pairs(
            6,
            6,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 0),
                (2, 1),
                (2, 2),
                (3, 3),
                (3, 4),
                (3, 5),
                (4, 3),
                (4, 4),
                (4, 5),
                (5, 3),
                (5, 4),
                (5, 5),
            ],
        )
        .unwrap()
    }

    fn cfg() -> WalsConfig {
        WalsConfig {
            k: 2,
            iters: 20,
            seed: 1,
            ..Default::default()
        }
    }

    #[test]
    fn objective_decreases() {
        let r = two_blocks();
        let m = Wals::fit(&r, &cfg());
        let t = &m.objective_trace;
        assert!(t.len() >= 2);
        for w in t.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-8,
                "ALS objective must not rise: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn block_structure_recovered() {
        let r = two_blocks();
        let m = Wals::fit(&r, &cfg());
        let within = m.predict(0, 1).min(m.predict(4, 5));
        let cross = m.predict(0, 4).max(m.predict(4, 0));
        assert!(within > cross + 0.3, "within {within} vs cross {cross}");
    }

    #[test]
    fn positives_predicted_near_one() {
        let r = two_blocks();
        let m = Wals::fit(&r, &cfg());
        for (u, i) in r.iter_nnz() {
            let p = m.predict(u, i);
            assert!(p > 0.6, "positive ({u},{i}) predicted {p}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let r = two_blocks();
        let a = Wals::fit(&r, &cfg());
        let b = Wals::fit(&r, &cfg());
        assert_eq!(a.user_factors, b.user_factors);
        let c = Wals::fit(&r, &WalsConfig { seed: 9, ..cfg() });
        assert_ne!(a.user_factors, c.user_factors);
    }

    #[test]
    fn score_user_matches_predict() {
        let r = two_blocks();
        let m = Wals::fit(&r, &cfg());
        let mut scores = Vec::new();
        m.score_user(2, &mut scores);
        for i in 0..6 {
            assert!((scores[i] - m.predict(2, i)).abs() < 1e-12);
        }
    }

    #[test]
    fn handles_cold_entities() {
        let r = Dataset::from_matrix(CsrMatrix::from_pairs(3, 3, &[(0, 0)]).unwrap());
        let m = Wals::fit(&r, &cfg());
        // cold user factors shrink towards zero (pure ridge against b-weighted
        // unknowns); predictions stay finite and small
        let p = m.predict(2, 2).abs();
        assert!(p < 0.5, "cold prediction should be small, got {p}");
    }

    #[test]
    fn fold_in_lands_near_training_solution() {
        // folding in an existing user's full basket is the same ridge
        // solve as the training half-sweep, but against the *final* item
        // factors (training's user sweep ran before the last item sweep),
        // so the vectors agree closely rather than bitwise
        let r = two_blocks();
        let m = Wals::fit(&r, &cfg());
        let fu = m.fold_in(r.row(0)).unwrap();
        for (a, b) in fu.iter().zip(m.user_factors.row(0)) {
            assert!((a - b).abs() < 0.1, "fold {a} vs trained {b}");
        }
        // and the induced predictions preserve the block structure
        let p_in = ops::dot(&fu, m.item_factors.row(1));
        let p_out = ops::dot(&fu, m.item_factors.row(4));
        assert!(p_in > p_out + 0.3, "in-block {p_in} vs out-block {p_out}");
        // invalid baskets are typed errors, not index panics
        assert!(matches!(m.fold_in(&[99]), Err(OcularError::BadBasket(_))));
    }

    #[test]
    fn score_basket_validates_and_ranks_in_block() {
        let r = two_blocks();
        let m = Wals::fit(&r, &cfg());
        let mut scores = Vec::new();
        m.score_basket(&[0, 1], &mut scores).unwrap();
        assert!(
            scores[2] > scores[4],
            "basket in block A must rank item 2 up"
        );
        assert!(matches!(
            m.score_basket(&[99], &mut scores),
            Err(OcularError::BadBasket(_))
        ));
    }

    #[test]
    fn snapshot_roundtrip_bitwise() {
        let r = two_blocks();
        let m = Wals::fit(&r, &cfg());
        let mut buf: Vec<u8> = Vec::new();
        m.save_model(&mut buf).unwrap();
        let loaded = <Wals as SnapshotModel>::load_model(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded, m);
        assert!(matches!(
            <Wals as SnapshotModel>::load_model(&mut "junk".as_bytes()),
            Err(OcularError::Corrupt(_))
        ));
    }

    #[test]
    #[should_panic(expected = "b must lie in (0, 1)")]
    fn rejects_bad_b() {
        Wals::fit(
            &two_blocks(),
            &WalsConfig {
                b: 1.5,
                ..Default::default()
            },
        );
    }

    #[test]
    fn try_fit_reports_bad_configs() {
        let r = two_blocks();
        assert!(matches!(
            Wals::try_fit(&r, &WalsConfig { k: 0, ..cfg() }),
            Err(OcularError::InvalidConfig(_))
        ));
        assert!(matches!(
            Wals::try_fit(
                &r,
                &WalsConfig {
                    lambda: 0.0,
                    ..cfg()
                }
            ),
            Err(OcularError::InvalidConfig(_))
        ));
    }
}
