//! wALS — weighted alternating least squares for one-class CF
//! (Pan et al., *One-class collaborative filtering*, ICDM 2008).
//!
//! Minimises
//!
//! ```text
//! Σ_{u,i} w_ui (r_ui − ⟨f_u, f_i⟩)² + λ (Σ_u ‖f_u‖² + Σ_i ‖f_i‖²)
//! ```
//!
//! with `w_ui = 1` for positives and `w_ui = b < 1` for unknowns (Eq. 8 of
//! the OCuLaR paper; it uses `b = 0.01, λ = 0.01`). Each alternating update
//! solves a `K×K` system per entity; the **Gram trick** keeps that cheap:
//!
//! ```text
//! Σ_i w_ui f_i f_iᵀ = b · FᵀF + (1−b) · Σ_{i: r_ui=1} f_i f_iᵀ
//! ```
//!
//! so a sweep costs `O((n_u + n_i) K³ + nnz·K²)` with `FᵀF` computed once
//! per half-sweep. Unlike OCuLaR the factors are unconstrained (may go
//! negative), which is exactly why the paper calls the latent space hard to
//! interpret.

use crate::Recommender;
use ocular_linalg::{ops, Cholesky, Matrix};
use ocular_sparse::CsrMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// wALS hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct WalsConfig {
    /// Latent dimensionality (the paper grid-searches this).
    pub k: usize,
    /// Weight of unknown examples, `0 < b < 1` (paper: 0.01).
    pub b: f64,
    /// Ridge regularization λ (paper: 0.01).
    pub lambda: f64,
    /// Number of alternating sweeps.
    pub iters: usize,
    /// Initialisation scale and seed.
    pub init_scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WalsConfig {
    fn default() -> Self {
        WalsConfig {
            k: 16,
            b: 0.01,
            lambda: 0.01,
            iters: 15,
            init_scale: 0.1,
            seed: 0,
        }
    }
}

/// A fitted wALS model.
pub struct Wals {
    /// `n_users × k` latent factors.
    pub user_factors: Matrix,
    /// `n_items × k` latent factors.
    pub item_factors: Matrix,
    /// Weighted squared-error objective after each sweep (for convergence
    /// diagnostics and the Figure 8-style comparisons).
    pub objective_trace: Vec<f64>,
}

fn init(rows: usize, k: usize, scale: f64, rng: &mut StdRng) -> Matrix {
    let mut m = Matrix::zeros(rows, k);
    for v in m.as_mut_slice() {
        *v = (rng.gen::<f64>() - 0.5) * 2.0 * scale;
    }
    m
}

/// One half-sweep: updates every row of `own` against `other`.
/// `adjacency.row(e)` lists the positive counterparts of entity `e`.
fn half_sweep(own: &mut Matrix, other: &Matrix, adjacency: &CsrMatrix, b: f64, lambda: f64) {
    let k = own.cols();
    let gram = other.gram();
    for e in 0..own.rows() {
        // A = b·G + (1−b)·Σ_pos f fᵀ + λI  (lower triangle suffices)
        let mut a = Matrix::zeros(k, k);
        for r in 0..k {
            for c in 0..=r {
                a[(r, c)] = b * gram[(r, c)];
            }
            a[(r, r)] += lambda;
        }
        let mut rhs = vec![0.0; k];
        for &i in adjacency.row(e) {
            let f = other.row(i as usize);
            for r in 0..k {
                let fr = f[r];
                rhs[r] += fr;
                if fr != 0.0 {
                    let w = (1.0 - b) * fr;
                    for c in 0..=r {
                        a[(r, c)] += w * f[c];
                    }
                }
            }
        }
        let chol = Cholesky::factor(&a).expect("A = b·G + ΣffT + λI is SPD for λ > 0");
        chol.solve_in_place(&mut rhs);
        own.row_mut(e).copy_from_slice(&rhs);
    }
}

/// Weighted squared-error objective, evaluated with the same Gram trick:
/// `Σ w (r − p)² = b·Σ_all p² + Σ_pos [(1−p)² − b·p²] + reg`, and
/// `Σ_all p² = Σ_u f_uᵀ G_i f_u`.
fn wals_objective(r: &CsrMatrix, uf: &Matrix, itf: &Matrix, b: f64, lambda: f64) -> f64 {
    let gi = itf.gram();
    let k = uf.cols();
    let mut all_sq = 0.0;
    for u in 0..uf.rows() {
        let fu = uf.row(u);
        // f G fᵀ
        for r in 0..k {
            let fr = fu[r];
            if fr == 0.0 {
                continue;
            }
            for c in 0..k {
                all_sq += fr * gi[(r, c)] * fu[c];
            }
        }
    }
    let mut q = b * all_sq;
    for u in 0..r.n_rows() {
        let fu = uf.row(u);
        for &i in r.row(u) {
            let p = ops::dot(fu, itf.row(i as usize));
            q += (1.0 - p) * (1.0 - p) - b * p * p;
        }
    }
    q + lambda * (uf.frobenius_sq() + itf.frobenius_sq())
}

impl Wals {
    /// Fits by alternating least squares.
    ///
    /// # Panics
    /// Panics if `k == 0`, `b` is outside `(0, 1)`, or `lambda <= 0`
    /// (λ must be positive for the normal equations to stay SPD).
    pub fn fit(r: &CsrMatrix, cfg: &WalsConfig) -> Self {
        assert!(cfg.k > 0, "k must be positive");
        assert!(cfg.b > 0.0 && cfg.b < 1.0, "b must lie in (0, 1)");
        assert!(cfg.lambda > 0.0, "lambda must be positive for SPD solves");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut user_factors = init(r.n_rows(), cfg.k, cfg.init_scale, &mut rng);
        let mut item_factors = init(r.n_cols(), cfg.k, cfg.init_scale, &mut rng);
        let rt = r.transpose();
        let mut objective_trace = vec![wals_objective(
            r,
            &user_factors,
            &item_factors,
            cfg.b,
            cfg.lambda,
        )];
        for _ in 0..cfg.iters {
            half_sweep(&mut user_factors, &item_factors, r, cfg.b, cfg.lambda);
            half_sweep(&mut item_factors, &user_factors, &rt, cfg.b, cfg.lambda);
            objective_trace.push(wals_objective(
                r,
                &user_factors,
                &item_factors,
                cfg.b,
                cfg.lambda,
            ));
        }
        Wals {
            user_factors,
            item_factors,
            objective_trace,
        }
    }

    /// Predicted preference `⟨f_u, f_i⟩`.
    pub fn predict(&self, u: usize, i: usize) -> f64 {
        ops::dot(self.user_factors.row(u), self.item_factors.row(i))
    }
}

impl Recommender for Wals {
    fn name(&self) -> &'static str {
        "wALS"
    }

    fn score_user(&self, u: usize, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.item_factors.rows(), 0.0);
        let fu = self.user_factors.row(u);
        for (i, o) in out.iter_mut().enumerate() {
            *o = ops::dot(fu, self.item_factors.row(i));
        }
    }

    fn n_users(&self) -> usize {
        self.user_factors.rows()
    }

    fn n_items(&self) -> usize {
        self.item_factors.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blocks() -> CsrMatrix {
        CsrMatrix::from_pairs(
            6,
            6,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 0),
                (2, 1),
                (2, 2),
                (3, 3),
                (3, 4),
                (3, 5),
                (4, 3),
                (4, 4),
                (4, 5),
                (5, 3),
                (5, 4),
                (5, 5),
            ],
        )
        .unwrap()
    }

    fn cfg() -> WalsConfig {
        WalsConfig {
            k: 2,
            iters: 20,
            seed: 1,
            ..Default::default()
        }
    }

    #[test]
    fn objective_decreases() {
        let r = two_blocks();
        let m = Wals::fit(&r, &cfg());
        let t = &m.objective_trace;
        assert!(t.len() >= 2);
        for w in t.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-8,
                "ALS objective must not rise: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn block_structure_recovered() {
        let r = two_blocks();
        let m = Wals::fit(&r, &cfg());
        let within = m.predict(0, 1).min(m.predict(4, 5));
        let cross = m.predict(0, 4).max(m.predict(4, 0));
        assert!(within > cross + 0.3, "within {within} vs cross {cross}");
    }

    #[test]
    fn positives_predicted_near_one() {
        let r = two_blocks();
        let m = Wals::fit(&r, &cfg());
        for (u, i) in r.iter_nnz() {
            let p = m.predict(u, i);
            assert!(p > 0.6, "positive ({u},{i}) predicted {p}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let r = two_blocks();
        let a = Wals::fit(&r, &cfg());
        let b = Wals::fit(&r, &cfg());
        assert_eq!(a.user_factors, b.user_factors);
        let c = Wals::fit(&r, &WalsConfig { seed: 9, ..cfg() });
        assert_ne!(a.user_factors, c.user_factors);
    }

    #[test]
    fn score_user_matches_predict() {
        let r = two_blocks();
        let m = Wals::fit(&r, &cfg());
        let mut scores = Vec::new();
        m.score_user(2, &mut scores);
        for i in 0..6 {
            assert!((scores[i] - m.predict(2, i)).abs() < 1e-12);
        }
    }

    #[test]
    fn handles_cold_entities() {
        let r = CsrMatrix::from_pairs(3, 3, &[(0, 0)]).unwrap();
        let m = Wals::fit(&r, &cfg());
        // cold user factors shrink towards zero (pure ridge against b-weighted
        // unknowns); predictions stay finite and small
        let p = m.predict(2, 2).abs();
        assert!(p < 0.5, "cold prediction should be small, got {p}");
    }

    #[test]
    #[should_panic(expected = "b must lie in (0, 1)")]
    fn rejects_bad_b() {
        Wals::fit(
            &two_blocks(),
            &WalsConfig {
                b: 1.5,
                ..Default::default()
            },
        );
    }
}
