//! Cosine similarity between binary interaction vectors.
//!
//! For binary vectors the cosine reduces to co-occurrence counts:
//! `sim(a, b) = |N(a) ∩ N(b)| / sqrt(|N(a)| · |N(b)|)`. Neighbourhoods are
//! computed by accumulating counts through the bipartite structure (for
//! users: via each shared item's user list), which costs
//! `O(Σ_i deg(i)²)` overall — the standard approach for sparse data.

use ocular_linalg::topk::TopK;
use ocular_sparse::CsrMatrix;

/// A neighbour with its similarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the neighbouring entity (user or item, by context).
    pub index: u32,
    /// Cosine similarity in `(0, 1]`.
    pub similarity: f64,
}

/// Computes, for every *row entity* of `m`, its `k` most cosine-similar
/// other row entities. `mt` must be the transpose of `m`.
///
/// Returned lists are sorted by similarity descending (ties: index
/// ascending) and never contain the entity itself or zero similarities.
pub fn top_k_neighbors(m: &CsrMatrix, mt: &CsrMatrix, k: usize) -> Vec<Vec<Neighbor>> {
    let n = m.n_rows();
    let degrees: Vec<usize> = m.row_degrees();
    let mut result = Vec::with_capacity(n);
    // dense accumulator + touched list ("workhorse" buffers reused per row)
    let mut counts = vec![0u32; n];
    let mut touched: Vec<u32> = Vec::new();
    for a in 0..n {
        touched.clear();
        for &col in m.row(a) {
            for &b in mt.row(col as usize) {
                let b = b as usize;
                if b == a {
                    continue;
                }
                if counts[b] == 0 {
                    touched.push(b as u32);
                }
                counts[b] += 1;
            }
        }
        let da = degrees[a] as f64;
        // bounded-heap selection through the workspace's one ranking
        // kernel (similarity descending, ties by ascending index) —
        // `O(candidates log k)` instead of sorting every candidate
        let mut heap = TopK::new(k);
        for &b in &touched {
            heap.push(
                b as usize,
                counts[b as usize] as f64 / (da * degrees[b as usize] as f64).sqrt(),
            );
        }
        let neighbors: Vec<Neighbor> = heap
            .into_sorted()
            .into_iter()
            .map(|(similarity, index)| Neighbor {
                index: index as u32,
                similarity,
            })
            .collect();
        for &b in &touched {
            counts[b as usize] = 0;
        }
        result.push(neighbors);
    }
    result
}

/// Exact cosine similarity between two rows of `m` (test helper and spot
/// queries). O(deg(a) + deg(b)).
pub fn cosine(m: &CsrMatrix, a: usize, b: usize) -> f64 {
    let (ra, rb) = (m.row(a), m.row(b));
    if ra.is_empty() || rb.is_empty() {
        return 0.0;
    }
    let (mut i, mut j, mut inter) = (0, 0, 0usize);
    while i < ra.len() && j < rb.len() {
        match ra[i].cmp(&rb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter as f64 / ((ra.len() * rb.len()) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> CsrMatrix {
        // user 0: {0,1,2}; user 1: {0,1}; user 2: {3}; user 3: {} (cold)
        CsrMatrix::from_pairs(4, 4, &[(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (2, 3)]).unwrap()
    }

    #[test]
    fn cosine_hand_computed() {
        let m = m();
        // |{0,1}| shared / sqrt(3·2)
        assert!((cosine(&m, 0, 1) - 2.0 / 6.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(cosine(&m, 0, 2), 0.0);
        assert_eq!(cosine(&m, 0, 3), 0.0, "cold user has similarity 0");
        assert!((cosine(&m, 0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_matches_pairwise_cosine() {
        let m = m();
        let mt = m.transpose();
        let nn = top_k_neighbors(&m, &mt, 10);
        assert_eq!(nn.len(), 4);
        // user 0's only overlapping neighbour is user 1
        assert_eq!(nn[0].len(), 1);
        assert_eq!(nn[0][0].index, 1);
        assert!((nn[0][0].similarity - cosine(&m, 0, 1)).abs() < 1e-12);
        // symmetric
        assert_eq!(nn[1][0].index, 0);
        // user 2 overlaps nobody
        assert!(nn[2].is_empty());
        // cold user has no neighbours
        assert!(nn[3].is_empty());
    }

    #[test]
    fn truncation_keeps_best() {
        // user 0 shares 2 items with user 1, 1 item with user 2
        let m =
            CsrMatrix::from_pairs(3, 3, &[(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (2, 2)]).unwrap();
        let mt = m.transpose();
        let nn = top_k_neighbors(&m, &mt, 1);
        assert_eq!(nn[0].len(), 1);
        assert_eq!(
            nn[0][0].index, 1,
            "strongest neighbour must survive truncation"
        );
    }

    #[test]
    fn self_never_a_neighbor() {
        let m = m();
        let mt = m.transpose();
        for (a, list) in top_k_neighbors(&m, &mt, 10).into_iter().enumerate() {
            assert!(list.iter().all(|n| n.index as usize != a));
        }
    }

    #[test]
    fn similarity_tie_breaks_by_index() {
        // users 1 and 2 both share exactly item 0 with user 0 and have
        // equal degree → equal similarity; index order must decide
        let m = CsrMatrix::from_pairs(3, 2, &[(0, 0), (1, 0), (2, 0)]).unwrap();
        let mt = m.transpose();
        let nn = top_k_neighbors(&m, &mt, 2);
        assert_eq!(nn[0][0].index, 1);
        assert_eq!(nn[0][1].index, 2);
    }
}
