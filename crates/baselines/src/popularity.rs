//! Most-popular baseline: rank items by global purchase count.
//!
//! Not part of the paper's Table I, but the canonical sanity floor for
//! one-class recommenders — any personalised method that loses to raw
//! popularity is broken. Included in the harness for calibration. The
//! ranking is user-independent, so cold-start fold-in is trivially
//! supported: a basket request gets the same global ranking with the
//! basket excluded.

use ocular_api::textio::{bad, read_floats, read_line, write_floats};
use ocular_api::{validate_basket, FoldIn, OcularError, Recommender, ScoreItems, SnapshotModel};
use ocular_sparse::Dataset;

/// Fitted popularity model: a single global ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct Popularity {
    scores: Vec<f64>,
    n_users: usize,
}

impl Popularity {
    /// Model name in reports and error messages.
    pub const NAME: &'static str = "popularity";
    /// Snapshot kind tag.
    pub const KIND: &'static str = "popularity";

    /// Reads the dataset's cached item-degree (popularity) stats.
    pub fn fit(data: &Dataset) -> Self {
        Popularity {
            scores: data.item_degrees().iter().map(|&d| d as f64).collect(),
            n_users: data.n_users(),
        }
    }
}

impl ScoreItems for Popularity {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn n_users(&self) -> usize {
        self.n_users
    }

    fn n_items(&self) -> usize {
        self.scores.len()
    }

    fn score_user(&self, _u: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.scores);
    }
}

impl Recommender for Popularity {
    fn as_fold_in(&self) -> Option<&dyn FoldIn> {
        Some(self)
    }
}

impl FoldIn for Popularity {
    fn score_basket(&self, basket: &[usize], out: &mut Vec<f64>) -> Result<(), OcularError> {
        validate_basket(basket, self.scores.len())?;
        out.clear();
        out.extend_from_slice(&self.scores);
        Ok(())
    }
}

impl SnapshotModel for Popularity {
    fn kind(&self) -> &'static str {
        Self::KIND
    }

    fn save_model(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        writeln!(
            w,
            "popularity-model v1 {} {}",
            self.n_users,
            self.scores.len()
        )?;
        write_floats(w, &self.scores)
    }

    fn load_model(r: &mut dyn std::io::BufRead) -> Result<Self, OcularError> {
        let header = read_line(r)?;
        let f: Vec<&str> = header.split_whitespace().collect();
        if f.len() != 4 || f[0] != "popularity-model" || f[1] != "v1" {
            return Err(bad("bad popularity-model header"));
        }
        let n_users: usize = f[2].parse().map_err(|_| bad("bad n_users"))?;
        let n_items: usize = f[3].parse().map_err(|_| bad("bad n_items"))?;
        let scores = read_floats(r, n_items)?;
        Ok(Popularity { scores, n_users })
    }

    fn write_sections(&self, w: &mut ocular_api::SectionWriter) -> Result<(), OcularError> {
        w.put_u64s("meta", &[self.n_users as u64, self.scores.len() as u64]);
        w.put_f64s("scores", &self.scores);
        Ok(())
    }

    fn read_sections(r: &ocular_api::SectionReader) -> Result<Self, OcularError> {
        use ocular_api::SectionReader;
        let [n_users, n_items] = r.u64_meta::<2>("meta")?;
        let n_users = SectionReader::shape(n_users, "n_users")?;
        let n_items = SectionReader::shape(n_items, "n_items")?;
        let scores = r.f64s("scores")?;
        if scores.len() != n_items {
            return Err(bad(format!(
                "scores section holds {} values but metadata says {n_items} items",
                scores.len()
            )));
        }
        Ok(Popularity {
            scores: scores.into_vec(),
            n_users,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocular_sparse::CsrMatrix;

    #[test]
    fn scores_equal_item_degrees() {
        let r = Dataset::from_matrix(
            CsrMatrix::from_pairs(3, 3, &[(0, 0), (1, 0), (2, 0), (0, 1)]).unwrap(),
        );
        let m = Popularity::fit(&r);
        let mut s = Vec::new();
        m.score_user(0, &mut s);
        assert_eq!(s, vec![3.0, 1.0, 0.0]);
        // identical for every user
        let mut s2 = Vec::new();
        m.score_user(2, &mut s2);
        assert_eq!(s, s2);
    }

    #[test]
    fn cold_baskets_get_the_global_ranking() {
        let r = Dataset::from_matrix(
            CsrMatrix::from_pairs(3, 3, &[(0, 0), (1, 0), (2, 0), (0, 1)]).unwrap(),
        );
        let m = Popularity::fit(&r);
        let recs = m.recommend_for_basket(&[0], 2).unwrap();
        let items: Vec<usize> = recs.iter().map(|s| s.item).collect();
        assert_eq!(items, vec![1, 2], "basket item 0 must be excluded");
        assert!(matches!(
            m.recommend_for_basket(&[9], 2),
            Err(OcularError::BadBasket(_))
        ));
    }

    #[test]
    fn snapshot_roundtrip_bitwise() {
        let r =
            Dataset::from_matrix(CsrMatrix::from_pairs(5, 7, &[(0, 0), (1, 6), (2, 3)]).unwrap());
        let m = Popularity::fit(&r);
        let mut buf: Vec<u8> = Vec::new();
        m.save_model(&mut buf).unwrap();
        let loaded = <Popularity as SnapshotModel>::load_model(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded, m);
        assert!(<Popularity as SnapshotModel>::load_model(&mut "junk".as_bytes()).is_err());
    }

    #[test]
    fn dimensions() {
        let r = Dataset::from_matrix(CsrMatrix::empty(5, 7));
        let m = Popularity::fit(&r);
        assert_eq!(m.n_users(), 5);
        assert_eq!(m.n_items(), 7);
        assert_eq!(m.name(), "popularity");
    }
}
