//! Most-popular baseline: rank items by global purchase count.
//!
//! Not part of the paper's Table I, but the canonical sanity floor for
//! one-class recommenders — any personalised method that loses to raw
//! popularity is broken. Included in the harness for calibration.

use crate::Recommender;
use ocular_sparse::CsrMatrix;

/// Fitted popularity model: a single global ranking.
pub struct Popularity {
    scores: Vec<f64>,
    n_users: usize,
}

impl Popularity {
    /// Counts item degrees.
    pub fn fit(r: &CsrMatrix) -> Self {
        Popularity {
            scores: r.col_degrees().into_iter().map(|d| d as f64).collect(),
            n_users: r.n_rows(),
        }
    }
}

impl Recommender for Popularity {
    fn name(&self) -> &'static str {
        "popularity"
    }

    fn score_user(&self, _u: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.scores);
    }

    fn n_users(&self) -> usize {
        self.n_users
    }

    fn n_items(&self) -> usize {
        self.scores.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_equal_item_degrees() {
        let r = CsrMatrix::from_pairs(3, 3, &[(0, 0), (1, 0), (2, 0), (0, 1)]).unwrap();
        let m = Popularity::fit(&r);
        let mut s = Vec::new();
        m.score_user(0, &mut s);
        assert_eq!(s, vec![3.0, 1.0, 0.0]);
        // identical for every user
        let mut s2 = Vec::new();
        m.score_user(2, &mut s2);
        assert_eq!(s, s2);
    }

    #[test]
    fn dimensions() {
        let r = CsrMatrix::empty(5, 7);
        let m = Popularity::fit(&r);
        assert_eq!(m.n_users(), 5);
        assert_eq!(m.n_items(), 7);
        assert_eq!(m.name(), "popularity");
    }
}
