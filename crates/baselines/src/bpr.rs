//! BPR — Bayesian personalized ranking matrix factorization
//! (Rendle et al., *BPR: Bayesian personalized ranking from implicit
//! feedback*, UAI 2009).
//!
//! BPR treats the one-class data as *relative* preferences: for each triplet
//! `(u, i, j)` with `r_ui = 1, r_uj = 0` the model should rank `i` above
//! `j`. The criterion is
//!
//! ```text
//! max Σ ln σ(x̂_uij) − λ‖Θ‖²,   x̂_uij = ⟨f_u, f_i⟩ − ⟨f_u, f_j⟩
//! ```
//!
//! optimised by SGD with bootstrap-sampled triplets (the LearnBPR algorithm
//! of the original paper). This is the second state-of-the-art,
//! non-interpretable baseline of Table I; the OCuLaR paper used the
//! `theano-bpr` implementation, which this module replaces from scratch.

use ocular_api::textio::{bad, read_line, read_matrix, write_matrix};
use ocular_api::{OcularError, Recommender, ScoreItems, SnapshotModel};
use ocular_linalg::{ops, Matrix};
use ocular_sparse::{CsrMatrix, Dataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// BPR hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BprConfig {
    /// Latent dimensionality.
    pub k: usize,
    /// Regularization for user and item factors.
    pub lambda: f64,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Epochs; each epoch draws `nnz` bootstrap triplets.
    pub epochs: usize,
    /// Initialisation scale.
    pub init_scale: f64,
    /// RNG seed (initialisation and sampling).
    pub seed: u64,
}

impl Default for BprConfig {
    fn default() -> Self {
        BprConfig {
            k: 16,
            lambda: 0.01,
            learning_rate: 0.05,
            epochs: 30,
            init_scale: 0.1,
            seed: 0,
        }
    }
}

/// A fitted BPR model.
#[derive(Debug, Clone, PartialEq)]
pub struct Bpr {
    /// `n_users × k` latent factors.
    pub user_factors: Matrix,
    /// `n_items × k` latent factors.
    pub item_factors: Matrix,
    /// The hyper-parameters the model was fitted with.
    pub config: BprConfig,
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl Bpr {
    /// Model name in reports and error messages.
    pub const NAME: &'static str = "BPR";
    /// Snapshot kind tag.
    pub const KIND: &'static str = "bpr";

    /// Fits by LearnBPR (bootstrap SGD).
    ///
    /// Users with no positives, or with a full row (no unknowns to sample),
    /// are never drawn.
    ///
    /// # Panics
    /// Panics if `k == 0` or the learning rate is not positive. Use
    /// [`Bpr::try_fit`] for a fallible variant.
    pub fn fit(data: &Dataset, cfg: &BprConfig) -> Self {
        Self::try_fit(data, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Bpr::fit`]: returns [`OcularError::InvalidConfig`] on a
    /// bad configuration instead of panicking.
    pub fn try_fit(data: &Dataset, cfg: &BprConfig) -> Result<Self, OcularError> {
        if cfg.k == 0 {
            return Err(OcularError::InvalidConfig("k must be positive".into()));
        }
        if cfg.learning_rate <= 0.0 {
            return Err(OcularError::InvalidConfig(
                "learning rate must be positive".into(),
            ));
        }
        let r: &CsrMatrix = data.matrix();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut uf = Matrix::zeros(r.n_rows(), cfg.k);
        let mut itf = Matrix::zeros(r.n_cols(), cfg.k);
        for v in uf.as_mut_slice().iter_mut().chain(itf.as_mut_slice()) {
            *v = (rng.gen::<f64>() - 0.5) * 2.0 * cfg.init_scale;
        }
        // users eligible for sampling: ≥1 positive and ≥1 unknown
        let eligible: Vec<u32> = (0..r.n_rows())
            .filter(|&u| r.row_nnz(u) > 0 && r.row_nnz(u) < r.n_cols())
            .map(ocular_sparse::col_index)
            .collect();
        if eligible.is_empty() {
            return Ok(Bpr {
                user_factors: uf,
                item_factors: itf,
                config: *cfg,
            });
        }
        let samples = cfg.epochs * r.nnz().max(1);
        let lr = cfg.learning_rate;
        let reg = cfg.lambda;
        for _ in 0..samples {
            let u = eligible[rng.gen_range(0..eligible.len())] as usize;
            let row = r.row(u);
            let i = row[rng.gen_range(0..row.len())] as usize;
            // rejection-sample an unknown item (row is sparse, terminates
            // fast); widen stored u32s so huge catalogs can't wrap the test
            let j = loop {
                let cand = rng.gen_range(0..r.n_cols());
                if row.binary_search_by(|&e| (e as usize).cmp(&cand)).is_err() {
                    break cand;
                }
            };
            let x = ops::dot(uf.row(u), itf.row(i)) - ops::dot(uf.row(u), itf.row(j));
            let g = 1.0 - sigmoid(x); // = σ(−x), the gradient magnitude
                                      // simultaneous updates on disjoint rows
            let (fi, fj) = itf.rows_mut_pair(i, j);
            let fu = uf.row_mut(u);
            for c in 0..cfg.k {
                let (wu, wi, wj) = (fu[c], fi[c], fj[c]);
                fu[c] += lr * (g * (wi - wj) - reg * wu);
                fi[c] += lr * (g * wu - reg * wi);
                fj[c] += lr * (-g * wu - reg * wj);
            }
        }
        Ok(Bpr {
            user_factors: uf,
            item_factors: itf,
            config: *cfg,
        })
    }

    /// Ranking score `⟨f_u, f_i⟩` (only relative order is meaningful).
    pub fn predict(&self, u: usize, i: usize) -> f64 {
        ops::dot(self.user_factors.row(u), self.item_factors.row(i))
    }

    /// Empirical AUC on a set of held-out positives: the probability that a
    /// held-out positive outranks a random unknown. Diagnostic used in
    /// tests and the harness.
    pub fn auc(&self, train: &CsrMatrix, test: &CsrMatrix, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut wins = 0usize;
        let mut total = 0usize;
        for u in 0..test.n_rows() {
            for &i in test.row(u) {
                for _ in 0..4 {
                    let j = rng.gen_range(0..train.n_cols());
                    if train.contains(u, j) || test.contains(u, j) {
                        continue;
                    }
                    total += 1;
                    if self.predict(u, i as usize) > self.predict(u, j) {
                        wins += 1;
                    }
                }
            }
        }
        if total == 0 {
            0.5
        } else {
            wins as f64 / total as f64
        }
    }
}

impl ScoreItems for Bpr {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn n_users(&self) -> usize {
        self.user_factors.rows()
    }

    fn n_items(&self) -> usize {
        self.item_factors.rows()
    }

    fn score_user(&self, u: usize, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.item_factors.rows(), 0.0);
        let fu = self.user_factors.row(u);
        for (i, o) in out.iter_mut().enumerate() {
            *o = ops::dot(fu, self.item_factors.row(i));
        }
    }
}

// BPR has no closed-form fold-in (its criterion is defined over sampled
// triplets), so `as_fold_in` stays `None`: cold-start requests against a
// BPR snapshot are a typed `Unsupported` error, not a panic.
impl Recommender for Bpr {}

impl SnapshotModel for Bpr {
    fn kind(&self) -> &'static str {
        Self::KIND
    }

    fn save_model(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        let c = &self.config;
        writeln!(
            w,
            "bpr-model v1 {} {} {} {:e} {:e} {} {:e} {}",
            self.user_factors.rows(),
            self.item_factors.rows(),
            c.k,
            c.lambda,
            c.learning_rate,
            c.epochs,
            c.init_scale,
            c.seed
        )?;
        write_matrix(w, &self.user_factors)?;
        write_matrix(w, &self.item_factors)
    }

    fn load_model(r: &mut dyn std::io::BufRead) -> Result<Self, OcularError> {
        let header = read_line(r)?;
        let f: Vec<&str> = header.split_whitespace().collect();
        if f.len() != 10 || f[0] != "bpr-model" || f[1] != "v1" {
            return Err(bad("bad bpr-model header"));
        }
        let n_users: usize = f[2].parse().map_err(|_| bad("bad n_users"))?;
        let n_items: usize = f[3].parse().map_err(|_| bad("bad n_items"))?;
        let config = BprConfig {
            k: f[4].parse().map_err(|_| bad("bad k"))?,
            lambda: f[5].parse().map_err(|_| bad("bad lambda"))?,
            learning_rate: f[6].parse().map_err(|_| bad("bad learning_rate"))?,
            epochs: f[7].parse().map_err(|_| bad("bad epochs"))?,
            init_scale: f[8].parse().map_err(|_| bad("bad init_scale"))?,
            seed: f[9].parse().map_err(|_| bad("bad seed"))?,
        };
        if config.k == 0 || config.learning_rate <= 0.0 {
            return Err(bad("bpr-model header fails config validation"));
        }
        let user_factors = read_matrix(r, n_users, config.k)?;
        let item_factors = read_matrix(r, n_items, config.k)?;
        Ok(Bpr {
            user_factors,
            item_factors,
            config,
        })
    }

    fn write_sections(&self, w: &mut ocular_api::SectionWriter) -> Result<(), OcularError> {
        let c = &self.config;
        w.put_u64s(
            "meta",
            &[
                self.user_factors.rows() as u64,
                self.item_factors.rows() as u64,
                c.k as u64,
                c.epochs as u64,
                c.seed,
            ],
        );
        w.put_f64s("cfg", &[c.lambda, c.learning_rate, c.init_scale]);
        w.put_f64s("ufact", self.user_factors.as_slice());
        w.put_f64s("ifact", self.item_factors.as_slice());
        Ok(())
    }

    fn read_sections(r: &ocular_api::SectionReader) -> Result<Self, OcularError> {
        use ocular_api::SectionReader;
        let [n_users, n_items, k, epochs, seed] = r.u64_meta::<5>("meta")?;
        let [lambda, learning_rate, init_scale] = r.f64_meta::<3>("cfg")?;
        let config = BprConfig {
            k: SectionReader::shape(k, "k")?,
            lambda,
            learning_rate,
            epochs: SectionReader::shape(epochs, "epochs")?,
            init_scale,
            seed,
        };
        if config.k == 0 || config.learning_rate <= 0.0 {
            return Err(bad("bpr-model metadata fails config validation"));
        }
        let n_users = SectionReader::shape(n_users, "n_users")?;
        let n_items = SectionReader::shape(n_items, "n_items")?;
        let user_factors = Matrix::from_shared(n_users, config.k, r.f64s("ufact")?)
            .map_err(OcularError::Corrupt)?;
        let item_factors = Matrix::from_shared(n_items, config.k, r.f64s("ifact")?)
            .map_err(OcularError::Corrupt)?;
        Ok(Bpr {
            user_factors,
            item_factors,
            config,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blocks() -> Dataset {
        Dataset::from_matrix(two_blocks_matrix())
    }

    fn two_blocks_matrix() -> CsrMatrix {
        CsrMatrix::from_pairs(
            6,
            6,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 0),
                (2, 1),
                (2, 2),
                (3, 3),
                (3, 4),
                (3, 5),
                (4, 3),
                (4, 4),
                (4, 5),
                (5, 3),
                (5, 4),
                (5, 5),
            ],
        )
        .unwrap()
    }

    #[test]
    fn sigmoid_sane() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(30.0) > 0.999999);
        assert!(sigmoid(-30.0) < 1e-6);
        // symmetric: σ(x) + σ(−x) = 1
        for &x in &[0.3, 1.7, 5.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ranks_positives_above_unknowns() {
        let r = two_blocks();
        let m = Bpr::fit(
            &r,
            &BprConfig {
                k: 4,
                epochs: 120,
                seed: 2,
                ..Default::default()
            },
        );
        // block membership: user 0's positives must outrank the other block
        let pos = m.predict(0, 1);
        let neg = m.predict(0, 4);
        assert!(pos > neg, "positive {pos} must outrank unknown {neg}");
    }

    #[test]
    fn cross_block_holdout_auc_high() {
        // hold out one cell per block; BPR should rank it above cross-block
        // items
        let r = two_blocks();
        let m = Bpr::fit(
            &r,
            &BprConfig {
                k: 4,
                epochs: 150,
                seed: 3,
                ..Default::default()
            },
        );
        // within-block unknown... all block cells are positive, so test the
        // relative order directly across many pairs
        let mut correct = 0;
        let mut total = 0;
        for u in 0..3 {
            for i in 0..3 {
                for j in 3..6 {
                    total += 1;
                    if m.predict(u, i) > m.predict(u, j) {
                        correct += 1;
                    }
                }
            }
        }
        let auc = correct as f64 / total as f64;
        assert!(auc > 0.9, "block AUC {auc}");
    }

    #[test]
    fn deterministic_per_seed() {
        let r = two_blocks();
        let cfg = BprConfig {
            epochs: 10,
            seed: 5,
            ..Default::default()
        };
        let a = Bpr::fit(&r, &cfg);
        let b = Bpr::fit(&r, &cfg);
        assert_eq!(a.user_factors, b.user_factors);
        let c = Bpr::fit(&r, &BprConfig { seed: 6, ..cfg });
        assert_ne!(a.user_factors, c.user_factors);
    }

    #[test]
    fn degenerate_matrices_do_not_hang() {
        // empty matrix: no eligible users, returns init factors
        let empty = Dataset::from_matrix(CsrMatrix::empty(3, 3));
        let m = Bpr::fit(
            &empty,
            &BprConfig {
                epochs: 5,
                ..Default::default()
            },
        );
        assert_eq!(m.n_users(), 3);
        // full matrix: no unknowns to sample → also no eligible users
        let mut pairs = Vec::new();
        for u in 0..3 {
            for i in 0..3 {
                pairs.push((u, i));
            }
        }
        let full = Dataset::from_matrix(CsrMatrix::from_pairs(3, 3, &pairs).unwrap());
        let m = Bpr::fit(
            &full,
            &BprConfig {
                epochs: 5,
                ..Default::default()
            },
        );
        assert_eq!(m.n_items(), 3);
    }

    #[test]
    fn snapshot_roundtrip_bitwise() {
        let r = two_blocks();
        let m = Bpr::fit(
            &r,
            &BprConfig {
                k: 3,
                epochs: 10,
                seed: 4,
                ..Default::default()
            },
        );
        let mut buf: Vec<u8> = Vec::new();
        m.save_model(&mut buf).unwrap();
        let loaded = <Bpr as SnapshotModel>::load_model(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded, m);
        assert!(<Bpr as SnapshotModel>::load_model(&mut "junk".as_bytes()).is_err());
    }

    #[test]
    fn try_fit_reports_bad_configs() {
        let r = two_blocks();
        assert!(matches!(
            Bpr::try_fit(
                &r,
                &BprConfig {
                    k: 0,
                    ..Default::default()
                }
            ),
            Err(OcularError::InvalidConfig(_))
        ));
        assert!(matches!(
            Bpr::try_fit(
                &r,
                &BprConfig {
                    learning_rate: 0.0,
                    ..Default::default()
                }
            ),
            Err(OcularError::InvalidConfig(_))
        ));
    }

    #[test]
    fn auc_of_oracle_model_near_one() {
        let r = two_blocks();
        let m = Bpr::fit(
            &r,
            &BprConfig {
                k: 4,
                epochs: 120,
                seed: 7,
                ..Default::default()
            },
        );
        // use the training positives as "test": a fitted model should rank
        // them above random unknowns
        let auc = m.auc(&CsrMatrix::empty(6, 6), &r, 11);
        assert!(auc > 0.8, "auc {auc}");
    }
}
