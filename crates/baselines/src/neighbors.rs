//! User-based and item-based cosine kNN collaborative filtering — the
//! paper's interpretable baselines (Section VII-B2).
//!
//! * **User-based** (Sarwar et al., EC 2000): *"item i is recommended
//!   because the similar users u₁…u_k also bought item i"* —
//!   `score(u, i) = Σ_{v ∈ kNN(u), r_vi = 1} sim(u, v)`.
//! * **Item-based** (Deshpande & Karypis, TOIS 2004): *"item i is
//!   recommended because user u bought the similar items i₁…i_k"* —
//!   `score(u, i) = Σ_{j ∈ basket(u)} sim_k(i, j)`, with similarities kept
//!   only for each basket item's top-k neighbours.
//!
//! The paper grid-searches the neighbourhood size; [`KnnConfig::k`] is that
//! knob.

use crate::similarity::{top_k_neighbors, Neighbor};
use crate::Recommender;
use ocular_sparse::CsrMatrix;

/// Configuration for both kNN models.
#[derive(Debug, Clone, Copy)]
pub struct KnnConfig {
    /// Neighbourhood size (the paper tunes this by grid search).
    pub k: usize,
}

impl Default for KnnConfig {
    fn default() -> Self {
        KnnConfig { k: 50 }
    }
}

/// Fitted user-based cosine kNN model.
pub struct UserKnn {
    neighbors: Vec<Vec<Neighbor>>,
    r: CsrMatrix,
}

impl UserKnn {
    /// Computes every user's top-k neighbours.
    pub fn fit(r: &CsrMatrix, cfg: &KnnConfig) -> Self {
        let rt = r.transpose();
        UserKnn {
            neighbors: top_k_neighbors(r, &rt, cfg.k),
            r: r.clone(),
        }
    }

    /// The neighbours of `u` (for explanations: "similar users also
    /// bought…").
    pub fn neighbors_of(&self, u: usize) -> &[Neighbor] {
        &self.neighbors[u]
    }
}

impl Recommender for UserKnn {
    fn name(&self) -> &'static str {
        "user-based"
    }

    fn score_user(&self, u: usize, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.r.n_cols(), 0.0);
        for n in &self.neighbors[u] {
            for &i in self.r.row(n.index as usize) {
                out[i as usize] += n.similarity;
            }
        }
    }

    fn n_users(&self) -> usize {
        self.r.n_rows()
    }

    fn n_items(&self) -> usize {
        self.r.n_cols()
    }
}

/// Fitted item-based cosine kNN model.
pub struct ItemKnn {
    /// `neighbors[j]` = top-k items similar to item `j`.
    neighbors: Vec<Vec<Neighbor>>,
    r: CsrMatrix,
}

impl ItemKnn {
    /// Computes every item's top-k neighbours (on the transposed matrix).
    pub fn fit(r: &CsrMatrix, cfg: &KnnConfig) -> Self {
        let rt = r.transpose();
        ItemKnn {
            neighbors: top_k_neighbors(&rt, r, cfg.k),
            r: r.clone(),
        }
    }

    /// The neighbours of item `j` (for explanations: "user bought the
    /// similar items…").
    pub fn neighbors_of(&self, j: usize) -> &[Neighbor] {
        &self.neighbors[j]
    }
}

impl Recommender for ItemKnn {
    fn name(&self) -> &'static str {
        "item-based"
    }

    fn score_user(&self, u: usize, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.r.n_cols(), 0.0);
        for &j in self.r.row(u) {
            for n in &self.neighbors[j as usize] {
                out[n.index as usize] += n.similarity;
            }
        }
    }

    fn n_users(&self) -> usize {
        self.r.n_rows()
    }

    fn n_items(&self) -> usize {
        self.r.n_cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two user groups with one bridge: users {0,1} like items {0,1};
    /// users {2,3} like items {2,3}; user 1 additionally owns item 2.
    fn blocks() -> CsrMatrix {
        CsrMatrix::from_pairs(
            4,
            4,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 2),
                (2, 3),
                (3, 2),
                (3, 3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn user_knn_recommends_from_neighbors() {
        let r = blocks();
        let model = UserKnn::fit(&r, &KnnConfig { k: 2 });
        let mut scores = Vec::new();
        model.score_user(0, &mut scores);
        // user 0's only overlapping neighbour is user 1, who owns item 2
        assert!(scores[2] > 0.0, "bridge item must get positive score");
        assert_eq!(scores[3], 0.0, "item 3 is outside the neighbourhood");
        // all of user 1's items receive that single neighbour's similarity
        assert!((scores[0] - scores[2]).abs() < 1e-12);
    }

    #[test]
    fn item_knn_recommends_similar_items() {
        let r = blocks();
        let model = ItemKnn::fit(&r, &KnnConfig { k: 2 });
        let mut scores = Vec::new();
        model.score_user(0, &mut scores);
        // user 0 owns {0,1}; item 2 is similar to both (via user 1)
        assert!(scores[2] > 0.0);
        assert!(scores[2] > scores[3], "item 3 shares no users with 0/1");
    }

    #[test]
    fn scores_zero_for_cold_users() {
        let r = CsrMatrix::from_pairs(3, 3, &[(0, 0), (1, 1)]).unwrap();
        let u = UserKnn::fit(&r, &KnnConfig::default());
        let i = ItemKnn::fit(&r, &KnnConfig::default());
        let mut scores = Vec::new();
        u.score_user(2, &mut scores);
        assert!(scores.iter().all(|&s| s == 0.0));
        i.score_user(2, &mut scores);
        assert!(scores.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn neighbourhood_size_limits_influence() {
        let r = blocks();
        let narrow = UserKnn::fit(&r, &KnnConfig { k: 1 });
        assert!(narrow.neighbors_of(0).len() <= 1);
        let wide = UserKnn::fit(&r, &KnnConfig { k: 10 });
        assert!(wide.neighbors_of(0).len() >= narrow.neighbors_of(0).len());
    }

    #[test]
    fn user_knn_matches_manual_computation() {
        let r = blocks();
        let model = UserKnn::fit(&r, &KnnConfig { k: 10 });
        let mut scores = Vec::new();
        model.score_user(3, &mut scores);
        // manual: neighbours of 3 are users 2 (shares {2,3}) and 1 (shares {2})
        let sim32 = crate::similarity::cosine(&r, 3, 2);
        let sim31 = crate::similarity::cosine(&r, 3, 1);
        assert!((scores[2] - (sim32 + sim31)).abs() < 1e-12);
        assert!((scores[3] - sim32).abs() < 1e-12);
        assert!((scores[0] - sim31).abs() < 1e-12);
    }

    #[test]
    fn trait_dimensions() {
        let r = blocks();
        let m = ItemKnn::fit(&r, &KnnConfig::default());
        assert_eq!(m.n_users(), 4);
        assert_eq!(m.n_items(), 4);
        assert_eq!(m.name(), "item-based");
    }
}
