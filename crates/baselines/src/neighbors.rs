//! User-based and item-based cosine kNN collaborative filtering — the
//! paper's interpretable baselines (Section VII-B2).
//!
//! * **User-based** (Sarwar et al., EC 2000): *"item i is recommended
//!   because the similar users u₁…u_k also bought item i"* —
//!   `score(u, i) = Σ_{v ∈ kNN(u), r_vi = 1} sim(u, v)`.
//! * **Item-based** (Deshpande & Karypis, TOIS 2004): *"item i is
//!   recommended because user u bought the similar items i₁…i_k"* —
//!   `score(u, i) = Σ_{j ∈ basket(u)} sim_k(i, j)`, with similarities kept
//!   only for each basket item's top-k neighbours.
//!
//! The paper grid-searches the neighbourhood size; [`KnnConfig::k`] is that
//! knob. Item-based kNN scores a basket directly, so it supports
//! request-time cold start ([`ocular_api::FoldIn`]); user-based kNN needs
//! the new user's similarity to every training user, which this
//! implementation does not precompute — its `as_fold_in` stays `None`.

use crate::similarity::{top_k_neighbors, Neighbor};
use ocular_api::textio::{bad, read_csr, read_line, write_csr};
use ocular_api::{validate_basket, FoldIn, OcularError, Recommender, ScoreItems, SnapshotModel};
use ocular_sparse::{CsrMatrix, Dataset};
use std::io::{BufRead, Write};

/// Configuration for both kNN models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnnConfig {
    /// Neighbourhood size (the paper tunes this by grid search).
    pub k: usize,
}

impl Default for KnnConfig {
    fn default() -> Self {
        KnnConfig { k: 50 }
    }
}

/// Writes neighbour lists, one `len idx:sim …` line per entity.
fn write_neighbors(w: &mut dyn Write, lists: &[Vec<Neighbor>]) -> std::io::Result<()> {
    for list in lists {
        write!(w, "{}", list.len())?;
        for n in list {
            write!(w, " {}:{:e}", n.index, n.similarity)?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads `n` neighbour-list lines written by [`write_neighbors`].
fn read_neighbors(r: &mut dyn BufRead, n: usize) -> Result<Vec<Vec<Neighbor>>, OcularError> {
    let mut lists = Vec::with_capacity(n);
    for e in 0..n {
        let line = read_line(r)?;
        let mut fields = line.split_whitespace();
        let len: usize = fields
            .next()
            .and_then(|f| f.parse().ok())
            .ok_or_else(|| bad(format!("entity {e}: bad neighbour count")))?;
        let list: Vec<Neighbor> = fields
            .map(|f| {
                let (idx, sim) = f
                    .split_once(':')
                    .ok_or_else(|| bad(format!("entity {e}: bad neighbour entry")))?;
                let neighbor = Neighbor {
                    index: idx
                        .parse()
                        .map_err(|_| bad(format!("entity {e}: bad neighbour index")))?,
                    similarity: sim
                        .parse()
                        .map_err(|_| bad(format!("entity {e}: bad similarity")))?,
                };
                if !neighbor.similarity.is_finite() {
                    return Err(bad(format!("entity {e}: non-finite similarity")));
                }
                Ok(neighbor)
            })
            .collect::<Result<_, OcularError>>()?;
        if list.len() != len {
            return Err(bad(format!(
                "entity {e}: declared {len} neighbours, found {}",
                list.len()
            )));
        }
        lists.push(list);
    }
    Ok(lists)
}

/// Writes neighbour lists (as a CSR triple) plus the interaction matrix
/// as v3 binary sections — the payload shape shared by both kNN kinds.
fn write_knn_sections(w: &mut ocular_api::SectionWriter, lists: &[Vec<Neighbor>], r: &CsrMatrix) {
    let total: usize = lists.iter().map(Vec::len).sum();
    let mut nbrptr: Vec<u64> = Vec::with_capacity(lists.len() + 1);
    let mut nbridx: Vec<u32> = Vec::with_capacity(total);
    let mut nbrsim: Vec<f64> = Vec::with_capacity(total);
    nbrptr.push(0);
    for list in lists {
        for n in list {
            nbridx.push(n.index);
            nbrsim.push(n.similarity);
        }
        nbrptr.push(nbridx.len() as u64);
    }
    w.put_u64s("nbrptr", &nbrptr);
    w.put_u32s("nbridx", &nbridx);
    w.put_f64s("nbrsim", &nbrsim);
    let (rows, cols, indptr, col_ixs) = r.as_parts();
    w.put_u64s("rmeta", &[rows as u64, cols as u64]);
    let rptr: Vec<u64> = indptr.iter().map(|&x| x as u64).collect();
    w.put_u64s("rptr", &rptr);
    w.put_u32s("rcol", col_ixs);
}

/// Validates that a CSR row-pointer array is well-formed for `rows` rows
/// over `nnz` entries: length, leading zero, monotonicity, total.
fn check_indptr(ptr: &[u64], rows: usize, nnz: usize, what: &str) -> Result<(), OcularError> {
    if ptr.len() != rows + 1 || ptr.first() != Some(&0) || ptr.last() != Some(&(nnz as u64)) {
        return Err(bad(format!("{what}: malformed row-pointer array")));
    }
    if ptr.windows(2).any(|w| w[0] > w[1]) {
        return Err(bad(format!("{what}: row pointers must be monotonic")));
    }
    Ok(())
}

/// Reads the payload written by [`write_knn_sections`], validating every
/// shape (corrupt bytes are typed errors, never panics or garbage).
fn read_knn_sections(
    r: &ocular_api::SectionReader,
) -> Result<(Vec<Vec<Neighbor>>, CsrMatrix), OcularError> {
    use ocular_api::SectionReader;
    let nbrptr = r.u64s("nbrptr")?;
    let nbridx = r.u32s("nbridx")?;
    let nbrsim = r.f64s("nbrsim")?;
    if nbridx.len() != nbrsim.len() {
        return Err(bad("neighbour index and similarity arrays disagree"));
    }
    if nbrptr.is_empty() {
        return Err(bad("empty neighbour row-pointer array"));
    }
    let n = nbrptr.len() - 1;
    check_indptr(&nbrptr, n, nbridx.len(), "neighbour lists")?;
    let mut lists = Vec::with_capacity(n);
    for e in 0..n {
        let (lo, hi) = (nbrptr[e] as usize, nbrptr[e + 1] as usize);
        let list: Vec<Neighbor> = (lo..hi)
            .map(|at| Neighbor {
                index: nbridx[at],
                similarity: nbrsim[at],
            })
            .collect();
        if list.iter().any(|nb| !nb.similarity.is_finite()) {
            return Err(bad(format!("entity {e}: non-finite similarity")));
        }
        lists.push(list);
    }
    let [rows, cols] = r.u64_meta::<2>("rmeta")?;
    let rows = SectionReader::shape(rows, "n_rows")?;
    let cols = SectionReader::shape(cols, "n_cols")?;
    let rptr = r.u64s("rptr")?;
    let rcol = r.u32s("rcol")?;
    check_indptr(&rptr, rows, rcol.len(), "interactions")?;
    let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(rcol.len());
    for u in 0..rows {
        for at in rptr[u] as usize..rptr[u + 1] as usize {
            pairs.push((u, rcol[at] as usize));
        }
    }
    let matrix = CsrMatrix::from_pairs(rows, cols, &pairs).map_err(|e| bad(e.to_string()))?;
    Ok((lists, matrix))
}

/// Validates that every neighbour index in `lists` addresses an entity
/// below `bound` — corrupt snapshots must be rejected at load, not panic
/// at request time.
fn check_neighbor_bounds(lists: &[Vec<Neighbor>], bound: usize) -> Result<(), OcularError> {
    for (e, list) in lists.iter().enumerate() {
        for n in list {
            if n.index as usize >= bound {
                return Err(bad(format!(
                    "entity {e}: neighbour index {} out of bounds for {bound} entities",
                    n.index
                )));
            }
        }
    }
    Ok(())
}

/// Fitted user-based cosine kNN model.
#[derive(Debug, Clone, PartialEq)]
pub struct UserKnn {
    neighbors: Vec<Vec<Neighbor>>,
    r: CsrMatrix,
}

impl UserKnn {
    /// Model name in reports and error messages.
    pub const NAME: &'static str = "user-based";
    /// Snapshot kind tag.
    pub const KIND: &'static str = "user-knn";

    /// Computes every user's top-k neighbours; similarity accumulation
    /// walks the dataset's build-once CSC dual view.
    pub fn fit(data: &Dataset, cfg: &KnnConfig) -> Self {
        UserKnn {
            neighbors: top_k_neighbors(data.matrix(), data.item_view(), cfg.k),
            r: data.matrix().clone(),
        }
    }

    /// The neighbours of `u` (for explanations: "similar users also
    /// bought…").
    pub fn neighbors_of(&self, u: usize) -> &[Neighbor] {
        &self.neighbors[u]
    }
}

impl ScoreItems for UserKnn {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn n_users(&self) -> usize {
        self.r.n_rows()
    }

    fn n_items(&self) -> usize {
        self.r.n_cols()
    }

    fn score_user(&self, u: usize, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.r.n_cols(), 0.0);
        for n in &self.neighbors[u] {
            for &i in self.r.row(n.index as usize) {
                out[i as usize] += n.similarity;
            }
        }
    }
}

// Scoring a cold basket user-based would need similarities against every
// training user, which are not precomputed — `as_fold_in` stays `None`.
impl Recommender for UserKnn {}

impl SnapshotModel for UserKnn {
    fn kind(&self) -> &'static str {
        Self::KIND
    }

    fn save_model(&self, w: &mut dyn Write) -> std::io::Result<()> {
        writeln!(w, "user-knn-model v1 {}", self.neighbors.len())?;
        write_neighbors(w, &self.neighbors)?;
        write_csr(w, &self.r)
    }

    fn load_model(r: &mut dyn BufRead) -> Result<Self, OcularError> {
        let header = read_line(r)?;
        let f: Vec<&str> = header.split_whitespace().collect();
        if f.len() != 3 || f[0] != "user-knn-model" || f[1] != "v1" {
            return Err(bad("bad user-knn-model header"));
        }
        let n: usize = f[2].parse().map_err(|_| bad("bad entity count"))?;
        let neighbors = read_neighbors(r, n)?;
        let matrix = read_csr(r)?;
        if matrix.n_rows() != n {
            return Err(bad("neighbour lists and interactions disagree on users"));
        }
        // user neighbours index rows of the interaction matrix
        check_neighbor_bounds(&neighbors, matrix.n_rows())?;
        Ok(UserKnn {
            neighbors,
            r: matrix,
        })
    }

    fn write_sections(&self, w: &mut ocular_api::SectionWriter) -> Result<(), OcularError> {
        write_knn_sections(w, &self.neighbors, &self.r);
        Ok(())
    }

    fn read_sections(r: &ocular_api::SectionReader) -> Result<Self, OcularError> {
        let (neighbors, matrix) = read_knn_sections(r)?;
        if matrix.n_rows() != neighbors.len() {
            return Err(bad("neighbour lists and interactions disagree on users"));
        }
        check_neighbor_bounds(&neighbors, matrix.n_rows())?;
        Ok(UserKnn {
            neighbors,
            r: matrix,
        })
    }
}

/// Fitted item-based cosine kNN model.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemKnn {
    /// `neighbors[j]` = top-k items similar to item `j`.
    neighbors: Vec<Vec<Neighbor>>,
    r: CsrMatrix,
}

impl ItemKnn {
    /// Model name in reports and error messages.
    pub const NAME: &'static str = "item-based";
    /// Snapshot kind tag.
    pub const KIND: &'static str = "item-knn";

    /// Computes every item's top-k neighbours (on the dataset's item×user
    /// dual view — no transpose is built here).
    pub fn fit(data: &Dataset, cfg: &KnnConfig) -> Self {
        ItemKnn {
            neighbors: top_k_neighbors(data.item_view(), data.matrix(), cfg.k),
            r: data.matrix().clone(),
        }
    }

    /// The neighbours of item `j` (for explanations: "user bought the
    /// similar items…").
    pub fn neighbors_of(&self, j: usize) -> &[Neighbor] {
        &self.neighbors[j]
    }

    /// Scores an arbitrary basket of items — the shared core of warm
    /// scoring (`basket` = the user's training row) and cold-start fold-in.
    fn score_items(&self, basket: impl Iterator<Item = usize>, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.r.n_cols(), 0.0);
        for j in basket {
            for n in &self.neighbors[j] {
                out[n.index as usize] += n.similarity;
            }
        }
    }
}

impl ScoreItems for ItemKnn {
    fn name(&self) -> &'static str {
        Self::NAME
    }

    fn n_users(&self) -> usize {
        self.r.n_rows()
    }

    fn n_items(&self) -> usize {
        self.r.n_cols()
    }

    fn score_user(&self, u: usize, out: &mut Vec<f64>) {
        self.score_items(self.r.row(u).iter().map(|&j| j as usize), out);
    }
}

impl Recommender for ItemKnn {
    fn as_fold_in(&self) -> Option<&dyn FoldIn> {
        Some(self)
    }
}

impl FoldIn for ItemKnn {
    fn score_basket(&self, basket: &[usize], out: &mut Vec<f64>) -> Result<(), OcularError> {
        validate_basket(basket, self.r.n_cols())?;
        self.score_items(basket.iter().copied(), out);
        Ok(())
    }
}

impl SnapshotModel for ItemKnn {
    fn kind(&self) -> &'static str {
        Self::KIND
    }

    fn save_model(&self, w: &mut dyn Write) -> std::io::Result<()> {
        writeln!(w, "item-knn-model v1 {}", self.neighbors.len())?;
        write_neighbors(w, &self.neighbors)?;
        write_csr(w, &self.r)
    }

    fn load_model(r: &mut dyn BufRead) -> Result<Self, OcularError> {
        let header = read_line(r)?;
        let f: Vec<&str> = header.split_whitespace().collect();
        if f.len() != 3 || f[0] != "item-knn-model" || f[1] != "v1" {
            return Err(bad("bad item-knn-model header"));
        }
        let n: usize = f[2].parse().map_err(|_| bad("bad entity count"))?;
        let neighbors = read_neighbors(r, n)?;
        let matrix = read_csr(r)?;
        if matrix.n_cols() != n {
            return Err(bad("neighbour lists and interactions disagree on items"));
        }
        // item neighbours index columns of the interaction matrix
        check_neighbor_bounds(&neighbors, matrix.n_cols())?;
        Ok(ItemKnn {
            neighbors,
            r: matrix,
        })
    }

    fn write_sections(&self, w: &mut ocular_api::SectionWriter) -> Result<(), OcularError> {
        write_knn_sections(w, &self.neighbors, &self.r);
        Ok(())
    }

    fn read_sections(r: &ocular_api::SectionReader) -> Result<Self, OcularError> {
        let (neighbors, matrix) = read_knn_sections(r)?;
        if matrix.n_cols() != neighbors.len() {
            return Err(bad("neighbour lists and interactions disagree on items"));
        }
        check_neighbor_bounds(&neighbors, matrix.n_cols())?;
        Ok(ItemKnn {
            neighbors,
            r: matrix,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two user groups with one bridge: users {0,1} like items {0,1};
    /// users {2,3} like items {2,3}; user 1 additionally owns item 2.
    fn blocks() -> Dataset {
        Dataset::from_matrix(blocks_matrix())
    }

    fn blocks_matrix() -> CsrMatrix {
        CsrMatrix::from_pairs(
            4,
            4,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 2),
                (2, 3),
                (3, 2),
                (3, 3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn user_knn_recommends_from_neighbors() {
        let r = blocks();
        let model = UserKnn::fit(&r, &KnnConfig { k: 2 });
        let mut scores = Vec::new();
        model.score_user(0, &mut scores);
        // user 0's only overlapping neighbour is user 1, who owns item 2
        assert!(scores[2] > 0.0, "bridge item must get positive score");
        assert_eq!(scores[3], 0.0, "item 3 is outside the neighbourhood");
        // all of user 1's items receive that single neighbour's similarity
        assert!((scores[0] - scores[2]).abs() < 1e-12);
    }

    #[test]
    fn item_knn_recommends_similar_items() {
        let r = blocks();
        let model = ItemKnn::fit(&r, &KnnConfig { k: 2 });
        let mut scores = Vec::new();
        model.score_user(0, &mut scores);
        // user 0 owns {0,1}; item 2 is similar to both (via user 1)
        assert!(scores[2] > 0.0);
        assert!(scores[2] > scores[3], "item 3 shares no users with 0/1");
    }

    #[test]
    fn item_knn_cold_basket_matches_warm_row() {
        let r = blocks();
        let model = ItemKnn::fit(&r, &KnnConfig { k: 2 });
        // a cold basket equal to user 0's row scores identically
        let mut cold = Vec::new();
        model.score_basket(&[0, 1], &mut cold).unwrap();
        let mut warm = Vec::new();
        model.score_user(0, &mut warm);
        assert_eq!(cold, warm);
        // invalid baskets are typed errors
        assert!(matches!(
            model.score_basket(&[9], &mut cold),
            Err(OcularError::BadBasket(_))
        ));
        assert!(model.as_fold_in().is_some());
        let user_model = UserKnn::fit(&r, &KnnConfig { k: 2 });
        assert!(user_model.as_fold_in().is_none());
    }

    #[test]
    fn scores_zero_for_cold_users() {
        let r = Dataset::from_matrix(CsrMatrix::from_pairs(3, 3, &[(0, 0), (1, 1)]).unwrap());
        let u = UserKnn::fit(&r, &KnnConfig::default());
        let i = ItemKnn::fit(&r, &KnnConfig::default());
        let mut scores = Vec::new();
        u.score_user(2, &mut scores);
        assert!(scores.iter().all(|&s| s == 0.0));
        i.score_user(2, &mut scores);
        assert!(scores.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn neighbourhood_size_limits_influence() {
        let r = blocks();
        let narrow = UserKnn::fit(&r, &KnnConfig { k: 1 });
        assert!(narrow.neighbors_of(0).len() <= 1);
        let wide = UserKnn::fit(&r, &KnnConfig { k: 10 });
        assert!(wide.neighbors_of(0).len() >= narrow.neighbors_of(0).len());
    }

    #[test]
    fn user_knn_matches_manual_computation() {
        let r = blocks();
        let model = UserKnn::fit(&r, &KnnConfig { k: 10 });
        let mut scores = Vec::new();
        model.score_user(3, &mut scores);
        // manual: neighbours of 3 are users 2 (shares {2,3}) and 1 (shares {2})
        let sim32 = crate::similarity::cosine(&r, 3, 2);
        let sim31 = crate::similarity::cosine(&r, 3, 1);
        assert!((scores[2] - (sim32 + sim31)).abs() < 1e-12);
        assert!((scores[3] - sim32).abs() < 1e-12);
        assert!((scores[0] - sim31).abs() < 1e-12);
    }

    #[test]
    fn snapshot_roundtrips_bitwise_for_both_variants() {
        let r = blocks();
        let user_model = UserKnn::fit(&r, &KnnConfig { k: 2 });
        let mut buf: Vec<u8> = Vec::new();
        user_model.save_model(&mut buf).unwrap();
        assert_eq!(
            <UserKnn as SnapshotModel>::load_model(&mut buf.as_slice()).unwrap(),
            user_model
        );
        let item_model = ItemKnn::fit(&r, &KnnConfig { k: 2 });
        buf.clear();
        item_model.save_model(&mut buf).unwrap();
        assert_eq!(
            <ItemKnn as SnapshotModel>::load_model(&mut buf.as_slice()).unwrap(),
            item_model
        );
        // payloads are kind-tagged: loading one as the other is rejected
        assert!(<UserKnn as SnapshotModel>::load_model(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn corrupt_neighbour_payloads_rejected_at_load() {
        let r = blocks();
        let model = ItemKnn::fit(&r, &KnnConfig { k: 2 });
        let mut buf: Vec<u8> = Vec::new();
        model.save_model(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // out-of-bounds neighbour index: must fail at load, not panic when
        // a request later indexes the score buffer
        let first_entry_pos = text.find(" 1:").or_else(|| text.find(" 0:")).unwrap();
        let tampered = format!(
            "{}{}{}",
            &text[..first_entry_pos],
            " 999:",
            &text[first_entry_pos + 3..]
        );
        assert!(matches!(
            <ItemKnn as SnapshotModel>::load_model(&mut tampered.as_bytes()),
            Err(OcularError::Corrupt(msg)) if msg.contains("out of bounds")
        ));
        // non-finite similarity: rejected instead of panicking in topk
        let sim_pos = text.find(':').unwrap();
        let end = text[sim_pos..]
            .find([' ', '\n'])
            .map(|o| sim_pos + o)
            .unwrap();
        let tampered = format!("{}:NaN{}", &text[..sim_pos], &text[end..]);
        assert!(matches!(
            <ItemKnn as SnapshotModel>::load_model(&mut tampered.as_bytes()),
            Err(OcularError::Corrupt(msg)) if msg.contains("similarity")
        ));
    }

    #[test]
    fn trait_dimensions() {
        let r = blocks();
        let m = ItemKnn::fit(&r, &KnnConfig::default());
        assert_eq!(m.n_users(), 4);
        assert_eq!(m.n_items(), 4);
        assert_eq!(m.name(), "item-based");
    }
}
