//! Comparative integration tests: every baseline must behave sanely on
//! planted overlapping co-cluster data (the Table I shape, from the
//! baselines' side).

use ocular_baselines::{
    all_baselines, BaselineConfigs, Bpr, BprConfig, ItemKnn, KnnConfig, Popularity, Recommender,
    UserKnn, Wals, WalsConfig,
};
use ocular_datasets::planted::{generate, PlantedConfig};
use ocular_eval::protocol::evaluate;
use ocular_sparse::{Split, SplitConfig};

fn dataset() -> ocular_datasets::PlantedDataset {
    generate(&PlantedConfig {
        n_users: 200,
        n_items: 120,
        k: 4,
        users_per_cluster: 60,
        items_per_cluster: 35,
        user_overlap: 0.5,
        item_overlap: 0.5,
        within_density: 0.5,
        noise_density: 0.004,
        seed: 13,
    })
}

fn recall_of(model: &dyn Recommender, split: &Split, m: usize) -> f64 {
    evaluate(model, &split.train, &split.test, m).recall
}

#[test]
fn every_personalised_baseline_beats_popularity() {
    let data = dataset();
    let split = Split::new(&data.matrix, &SplitConfig::default());
    let pop = Popularity::fit(&split.train);
    let pop_recall = recall_of(&pop, &split, 25);
    let personalised: Vec<Box<dyn Recommender>> = vec![
        Box::new(Wals::fit(
            &split.train,
            &WalsConfig {
                k: 4,
                ..Default::default()
            },
        )),
        Box::new(Bpr::fit(
            &split.train,
            &BprConfig {
                k: 4,
                epochs: 60,
                ..Default::default()
            },
        )),
        Box::new(UserKnn::fit(&split.train, &KnnConfig { k: 40 })),
        Box::new(ItemKnn::fit(&split.train, &KnnConfig { k: 40 })),
    ];
    for model in &personalised {
        let r = recall_of(model.as_ref(), &split, 25);
        assert!(
            r > pop_recall + 0.05,
            "{} ({r:.3}) must beat popularity ({pop_recall:.3}) on block data",
            model.name()
        );
    }
}

#[test]
fn wals_and_bpr_scores_rank_positives_high() {
    let data = dataset();
    let split = Split::new(
        &data.matrix,
        &SplitConfig {
            seed: 1,
            ..Default::default()
        },
    );
    let wals = Wals::fit(
        &split.train,
        &WalsConfig {
            k: 4,
            ..Default::default()
        },
    );
    let bpr = Bpr::fit(
        &split.train,
        &BprConfig {
            k: 4,
            epochs: 60,
            ..Default::default()
        },
    );
    for model in [&wals as &dyn Recommender, &bpr] {
        let mut scores = Vec::new();
        let mut pos_better = 0usize;
        let mut total = 0usize;
        for u in 0..split.train.n_rows() {
            if split.train.row_nnz(u) == 0 || split.test.row_nnz(u) == 0 {
                continue;
            }
            model.score_user(u, &mut scores);
            // a held-out positive should usually outrank a uniformly chosen
            // unknown (AUC-style spot check on a few pairs)
            for &i in split.test.row(u).iter().take(2) {
                for j in 0..4 {
                    let probe = (i as usize + 7 * j + 1) % split.train.n_cols();
                    if split.train.contains(u, probe) || split.test.contains(u, probe) {
                        continue;
                    }
                    total += 1;
                    if scores[i as usize] > scores[probe] {
                        pos_better += 1;
                    }
                }
            }
        }
        let auc = pos_better as f64 / total.max(1) as f64;
        assert!(auc > 0.7, "{}: spot AUC {auc:.3} too low", model.name());
    }
}

#[test]
fn knn_variants_agree_on_easy_structure() {
    let data = dataset();
    let split = Split::new(
        &data.matrix,
        &SplitConfig {
            seed: 2,
            ..Default::default()
        },
    );
    let user = UserKnn::fit(&split.train, &KnnConfig { k: 40 });
    let item = ItemKnn::fit(&split.train, &KnnConfig { k: 40 });
    let ru = recall_of(&user, &split, 25);
    let ri = recall_of(&item, &split, 25);
    assert!(
        (ru - ri).abs() < 0.25,
        "user {ru:.3} vs item {ri:.3} should be in the same band"
    );
}

#[test]
fn model_zoo_is_evaluable_end_to_end() {
    let data = dataset();
    let split = Split::new(
        &data.matrix,
        &SplitConfig {
            seed: 3,
            ..Default::default()
        },
    );
    for (name, model) in all_baselines(&split.train, &BaselineConfigs::seeded(0)) {
        let report = evaluate(model.as_ref(), &split.train, &split.test, 10);
        assert_eq!(name, model.name(), "zoo pair must carry the model's name");
        assert!(report.evaluated_users > 0, "{name}: nobody evaluated");
        assert!(
            (0.0..=1.0).contains(&report.recall) && (0.0..=1.0).contains(&report.map),
            "{name}: metrics out of range"
        );
    }
}

#[test]
fn baselines_deterministic_across_runs() {
    let data = dataset();
    let split = Split::new(
        &data.matrix,
        &SplitConfig {
            seed: 4,
            ..Default::default()
        },
    );
    let a = Wals::fit(
        &split.train,
        &WalsConfig {
            k: 4,
            seed: 9,
            ..Default::default()
        },
    );
    let b = Wals::fit(
        &split.train,
        &WalsConfig {
            k: 4,
            seed: 9,
            ..Default::default()
        },
    );
    assert_eq!(a.user_factors, b.user_factors);
    let a = Bpr::fit(
        &split.train,
        &BprConfig {
            seed: 9,
            epochs: 5,
            ..Default::default()
        },
    );
    let b = Bpr::fit(
        &split.train,
        &BprConfig {
            seed: 9,
            epochs: 5,
            ..Default::default()
        },
    );
    assert_eq!(a.item_factors, b.item_factors);
}
