//! The `ocular-snapshot v3` binary container — a magic-tagged,
//! checksummed, **mmap-able** section file.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! offset    size  field
//! 0         8     magic  "OCULAR3\0"
//! 8         16    model kind tag, NUL-padded ("ocular", "wals", …)
//! 24        …     payload sections, each starting on an 8-byte boundary
//!                 (zero-padded between sections)
//! T         24·n  section table: n entries of
//!                   { name: [u8; 8] NUL-padded, offset: u64, len: u64 }
//! len-24    8     T  (table offset)
//! len-16    8     n  (section count)
//! len-8     8     FNV-1a 64 checksum of bytes[0 .. len-8]
//! ```
//!
//! Payload sections are flat little-endian arrays of `f64`/`u64`/`u32`
//! (or raw bytes). Because every section starts 8-aligned inside an
//! 8-aligned region ([`ocular_bytes::ModelBytes`]), a little-endian
//! target can hand out **borrowed** typed slices over the file bytes —
//! loading a snapshot performs no per-payload allocation, and N serving
//! processes mapping the same file share one page cache.
//!
//! The trailing checksum covers the entire file, so truncation and bit
//! corruption anywhere (header, payload, table, padding) are detected at
//! open — a corrupt snapshot is a typed
//! [`OcularError::Corrupt`], never garbage scores.
//!
//! [`SectionWriter`] builds the container; [`SectionReader`] validates
//! and serves it. Model kinds plug in through
//! [`SnapshotModel::write_sections`](crate::SnapshotModel::write_sections)
//! / [`SnapshotModel::read_sections`](crate::SnapshotModel::read_sections).

use crate::error::OcularError;
use ocular_bytes::{fnv1a64, F32Buf, F64Buf, I8Buf, ModelBytes, Pod, PodBuf, U32Buf, U64Buf};
use std::sync::Arc;

/// First eight bytes of every v3 binary snapshot.
pub const MAGIC: [u8; 8] = *b"OCULAR3\0";

/// Maximum kind-tag length (the header reserves a fixed field for it).
const KIND_FIELD: usize = 16;

/// Maximum section-name length (one table entry reserves 8 bytes).
const NAME_FIELD: usize = 8;

/// Bytes of the fixed header (magic + kind field).
const HEADER: usize = 8 + KIND_FIELD;

/// Bytes of the fixed footer (table offset + section count + checksum).
const FOOTER: usize = 24;

/// Whether a byte prefix is a v3 binary snapshot — the magic sniff the
/// serving CLI uses to keep v1/v2 text snapshots loading transparently.
pub fn is_v3(prefix: &[u8]) -> bool {
    prefix.len() >= MAGIC.len() && prefix[..MAGIC.len()] == MAGIC
}

fn corrupt(msg: impl Into<String>) -> OcularError {
    OcularError::Corrupt(msg.into())
}

/// Builds a v3 container: typed `put_*` calls append aligned sections,
/// [`SectionWriter::finish`] appends the table and checksum.
pub struct SectionWriter {
    buf: Vec<u8>,
    sections: Vec<([u8; NAME_FIELD], u64, u64)>,
}

impl SectionWriter {
    /// Starts a container for the given model kind tag.
    ///
    /// # Panics
    /// Panics if the kind tag is empty, longer than 16 bytes, or contains
    /// NUL — kind tags are compile-time constants, so this is a
    /// programmer error, not input validation.
    pub fn new(kind: &str) -> SectionWriter {
        assert!(
            !kind.is_empty() && kind.len() <= KIND_FIELD && !kind.contains('\0'),
            "kind tag must be 1..=16 NUL-free bytes, got {kind:?}"
        );
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(kind.as_bytes());
        buf.resize(HEADER, 0);
        SectionWriter {
            buf,
            sections: Vec::new(),
        }
    }

    /// Pads to an 8-byte boundary and records a new section's start.
    fn begin(&mut self, name: &str) -> usize {
        assert!(
            !name.is_empty() && name.len() <= NAME_FIELD && !name.contains('\0'),
            "section name must be 1..=8 NUL-free bytes, got {name:?}"
        );
        assert!(
            !self
                .sections
                .iter()
                .any(|(n, _, _)| &n[..name.len()] == name.as_bytes()
                    && n[name.len()..] == [0; NAME_FIELD][name.len()..]),
            "duplicate section name {name:?}"
        );
        while self.buf.len() % 8 != 0 {
            self.buf.push(0);
        }
        self.buf.len()
    }

    fn end(&mut self, name: &str, offset: usize) {
        let mut tag = [0u8; NAME_FIELD];
        tag[..name.len()].copy_from_slice(name.as_bytes());
        self.sections
            .push((tag, offset as u64, (self.buf.len() - offset) as u64));
    }

    fn put_pod<T: Pod>(&mut self, name: &str, vals: &[T]) {
        let offset = self.begin(name);
        self.buf.reserve(vals.len() * T::WIDTH);
        for &v in vals {
            v.write_le(&mut self.buf);
        }
        self.end(name, offset);
    }

    /// Like [`put_pod`](Self::put_pod) but starts the section on a
    /// **64-byte** boundary, so borrowed views over a 64-aligned region
    /// (owned storage and mmap pages both are) land on cache-line
    /// boundaries — the layout the blocked scoring kernels want for
    /// quantized factor sections. 64-aligned offsets trivially satisfy
    /// the reader's 8-alignment check.
    fn put_pod64<T: Pod>(&mut self, name: &str, vals: &[T]) {
        self.begin(name);
        while self.buf.len() % 64 != 0 {
            self.buf.push(0);
        }
        let offset = self.buf.len();
        self.buf.reserve(vals.len() * T::WIDTH);
        for &v in vals {
            v.write_le(&mut self.buf);
        }
        self.end(name, offset);
    }

    /// Appends an `f64` array section.
    pub fn put_f64s(&mut self, name: &str, vals: &[f64]) {
        self.put_pod(name, vals);
    }

    /// Appends a `u64` array section.
    pub fn put_u64s(&mut self, name: &str, vals: &[u64]) {
        self.put_pod(name, vals);
    }

    /// Appends a `u32` array section.
    pub fn put_u32s(&mut self, name: &str, vals: &[u32]) {
        self.put_pod(name, vals);
    }

    /// Appends an `f32` array section on a 64-byte boundary (quantized
    /// factor payloads).
    pub fn put_f32s(&mut self, name: &str, vals: &[f32]) {
        self.put_pod64(name, vals);
    }

    /// Appends an `i8` array section on a 64-byte boundary (int8-quantized
    /// factor payloads).
    pub fn put_i8s(&mut self, name: &str, vals: &[i8]) {
        self.put_pod64(name, vals);
    }

    /// Appends a raw byte section.
    pub fn put_bytes(&mut self, name: &str, bytes: &[u8]) {
        let offset = self.begin(name);
        self.buf.extend_from_slice(bytes);
        self.end(name, offset);
    }

    /// Appends the section table and trailing checksum, returning the
    /// complete container bytes.
    pub fn finish(mut self) -> Vec<u8> {
        while self.buf.len() % 8 != 0 {
            self.buf.push(0);
        }
        let table_offset = self.buf.len() as u64;
        for (name, offset, len) in &self.sections {
            self.buf.extend_from_slice(name);
            self.buf.extend_from_slice(&offset.to_le_bytes());
            self.buf.extend_from_slice(&len.to_le_bytes());
        }
        self.buf.extend_from_slice(&table_offset.to_le_bytes());
        self.buf
            .extend_from_slice(&(self.sections.len() as u64).to_le_bytes());
        let checksum = fnv1a64(&self.buf);
        self.buf.extend_from_slice(&checksum.to_le_bytes());
        self.buf
    }
}

/// Live-refresh provenance carried by a snapshot: which retrain
/// **generation** produced it and a **watermark** of the source data it
/// was fitted on (shape + positives at train time). The serving tier
/// reports the generation in responses and `/stats`, and compares the
/// watermark against its (possibly delta-extended) dataset to decide
/// which users must be folded in at request time.
///
/// Stored as an optional fixed-shape `u64` section
/// ([`SnapshotMeta::SECTION`]), so pre-existing snapshots without it
/// keep loading unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Monotonically increasing retrain counter (1 = first train).
    pub generation: u64,
    /// Users in the source dataset at train time.
    pub n_users: u64,
    /// Items in the source dataset at train time.
    pub n_items: u64,
    /// Positive interactions in the source dataset at train time.
    pub nnz: u64,
}

impl SnapshotMeta {
    /// The v3 section name holding the metadata.
    pub const SECTION: &'static str = "genmeta";

    /// Appends the metadata section to a container under construction.
    pub fn write_section(&self, w: &mut SectionWriter) {
        w.put_u64s(
            Self::SECTION,
            &[self.generation, self.n_users, self.n_items, self.nnz],
        );
    }

    /// Reads the metadata section if present (`None` for snapshots that
    /// predate live refresh).
    pub fn read_section(r: &SectionReader) -> Result<Option<SnapshotMeta>, OcularError> {
        if !r.has(Self::SECTION) {
            return Ok(None);
        }
        let [generation, n_users, n_items, nnz] = r.u64_meta::<4>(Self::SECTION)?;
        Ok(Some(SnapshotMeta {
            generation,
            n_users,
            n_items,
            nnz,
        }))
    }
}

/// A validated, open v3 container serving typed section views that
/// **borrow** the underlying (possibly memory-mapped) byte region.
pub struct SectionReader {
    region: Arc<ModelBytes>,
    kind: String,
    /// `(name, byte offset, byte length)` per section.
    sections: Vec<(String, usize, usize)>,
}

fn read_u64_at(bytes: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(bytes[offset..offset + 8].try_into().expect("8-byte read"))
}

/// Decodes a NUL-padded fixed field: UTF-8 content followed only by NULs.
fn padded_str(bytes: &[u8], what: &str) -> Result<String, OcularError> {
    let end = bytes.iter().position(|&b| b == 0).unwrap_or(bytes.len());
    if bytes[end..].iter().any(|&b| b != 0) {
        return Err(corrupt(format!("{what} field has bytes after the NUL pad")));
    }
    let s = std::str::from_utf8(&bytes[..end])
        .map_err(|_| corrupt(format!("{what} field is not UTF-8")))?;
    if s.is_empty() {
        return Err(corrupt(format!("empty {what} field")));
    }
    Ok(s.to_string())
}

impl SectionReader {
    /// Validates a byte region as a v3 container: magic, checksum, header
    /// fields, section-table shape and every section's bounds/alignment.
    /// Any failure is a typed [`OcularError::Corrupt`].
    pub fn open(region: ModelBytes) -> Result<SectionReader, OcularError> {
        let region = Arc::new(region);
        let bytes = region.as_bytes();
        if bytes.len() < HEADER + FOOTER {
            return Err(corrupt(format!(
                "{} bytes is too short for a v3 snapshot",
                bytes.len()
            )));
        }
        if !is_v3(bytes) {
            return Err(corrupt("bad magic, not an ocular-snapshot v3"));
        }
        let checksum = read_u64_at(bytes, bytes.len() - 8);
        let computed = fnv1a64(&bytes[..bytes.len() - 8]);
        if checksum != computed {
            return Err(corrupt(format!(
                "checksum mismatch: file says {checksum:#018x}, content hashes to {computed:#018x} \
                 (truncated or corrupt snapshot)"
            )));
        }
        let kind = padded_str(&bytes[8..HEADER], "kind")?;
        let table_offset = read_u64_at(bytes, bytes.len() - FOOTER);
        let n_sections = read_u64_at(bytes, bytes.len() - 16);
        let table_offset = usize::try_from(table_offset)
            .ok()
            .filter(|&t| t >= HEADER && t % 8 == 0 && t <= bytes.len() - FOOTER)
            .ok_or_else(|| corrupt("section table offset out of range"))?;
        let table_bytes = bytes.len() - FOOTER - table_offset;
        if table_bytes % 24 != 0 || n_sections != (table_bytes / 24) as u64 {
            return Err(corrupt(format!(
                "section table of {table_bytes} bytes does not hold {n_sections} entries"
            )));
        }
        let mut sections = Vec::with_capacity(table_bytes / 24);
        for e in 0..table_bytes / 24 {
            let at = table_offset + e * 24;
            let name = padded_str(&bytes[at..at + NAME_FIELD], "section name")?;
            let offset = read_u64_at(bytes, at + 8);
            let len = read_u64_at(bytes, at + 16);
            let offset = usize::try_from(offset)
                .ok()
                .filter(|&o| o >= HEADER && o % 8 == 0)
                .ok_or_else(|| corrupt(format!("section `{name}` offset out of range")))?;
            let len = usize::try_from(len)
                .ok()
                .filter(|&l| offset.checked_add(l).is_some_and(|end| end <= table_offset))
                .ok_or_else(|| corrupt(format!("section `{name}` exceeds the payload area")))?;
            if sections.iter().any(|(n, _, _)| n == &name) {
                return Err(corrupt(format!("duplicate section `{name}`")));
            }
            sections.push((name, offset, len));
        }
        Ok(SectionReader {
            region,
            kind,
            sections,
        })
    }

    /// The container's model kind tag.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Whether a section is present.
    pub fn has(&self, name: &str) -> bool {
        self.sections.iter().any(|(n, _, _)| n == name)
    }

    /// The names of all sections, in file order.
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|(n, _, _)| n.as_str()).collect()
    }

    fn find(&self, name: &str) -> Result<(usize, usize), OcularError> {
        self.sections
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|&(_, offset, len)| (offset, len))
            .ok_or_else(|| corrupt(format!("missing section `{name}`")))
    }

    fn pods<T: Pod>(&self, name: &str) -> Result<PodBuf<T>, OcularError> {
        let (offset, len) = self.find(name)?;
        if len % T::WIDTH != 0 {
            return Err(corrupt(format!(
                "section `{name}` of {len} bytes is not a whole number of {}-byte elements",
                T::WIDTH
            )));
        }
        PodBuf::from_region(&self.region, offset, len / T::WIDTH)
            .map_err(|e| corrupt(format!("section `{name}`: {e}")))
    }

    /// A (zero-copy where possible) `f64` view of a section.
    pub fn f64s(&self, name: &str) -> Result<F64Buf, OcularError> {
        self.pods(name)
    }

    /// A (zero-copy where possible) `u64` view of a section.
    pub fn u64s(&self, name: &str) -> Result<U64Buf, OcularError> {
        self.pods(name)
    }

    /// A (zero-copy where possible) `u32` view of a section.
    pub fn u32s(&self, name: &str) -> Result<U32Buf, OcularError> {
        self.pods(name)
    }

    /// A (zero-copy where possible) `f32` view of a section.
    pub fn f32s(&self, name: &str) -> Result<F32Buf, OcularError> {
        self.pods(name)
    }

    /// A (zero-copy where possible) `i8` view of a section.
    pub fn i8s(&self, name: &str) -> Result<I8Buf, OcularError> {
        self.pods(name)
    }

    /// A raw byte view of a section.
    pub fn bytes(&self, name: &str) -> Result<&[u8], OcularError> {
        let (offset, len) = self.find(name)?;
        Ok(&self.region.as_bytes()[offset..offset + len])
    }

    /// Reads a fixed-shape `u64` metadata section into a small owned
    /// array, validating the element count — the conventional shape of
    /// each kind's `meta` section.
    pub fn u64_meta<const N: usize>(&self, name: &str) -> Result<[u64; N], OcularError> {
        let buf = self.u64s(name)?;
        let slice: &[u64] = &buf;
        <[u64; N]>::try_from(slice).map_err(|_| {
            corrupt(format!(
                "section `{name}` holds {} values, expected {N}",
                buf.len()
            ))
        })
    }

    /// Reads a fixed-shape `f64` metadata section, validating the count.
    pub fn f64_meta<const N: usize>(&self, name: &str) -> Result<[f64; N], OcularError> {
        let buf = self.f64s(name)?;
        let slice: &[f64] = &buf;
        <[f64; N]>::try_from(slice).map_err(|_| {
            corrupt(format!(
                "section `{name}` holds {} values, expected {N}",
                buf.len()
            ))
        })
    }

    /// Converts a `u64` metadata value into a `usize` shape, rejecting
    /// values outside the platform's address space.
    pub fn shape(value: u64, what: &str) -> Result<usize, OcularError> {
        usize::try_from(value).map_err(|_| corrupt(format!("{what} {value} exceeds usize")))
    }

    /// Whether the underlying region is a file mapping (serving telemetry
    /// and tests).
    pub fn is_mapped(&self) -> bool {
        self.region.is_mapped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = SectionWriter::new("test-kind");
        w.put_u64s("meta", &[3, 4]);
        w.put_f64s("facts", &[1.5, -2.0, 1e-300]);
        w.put_u32s("ids", &[7, 8, 9, 10, 11]);
        w.put_bytes("blob", b"hello");
        w.finish()
    }

    #[test]
    fn writer_reader_round_trip() {
        let bytes = sample();
        assert!(is_v3(&bytes));
        let r = SectionReader::open(ModelBytes::from_vec(bytes)).unwrap();
        assert_eq!(r.kind(), "test-kind");
        assert_eq!(r.u64_meta::<2>("meta").unwrap(), [3, 4]);
        assert_eq!(&*r.f64s("facts").unwrap(), &[1.5, -2.0, 1e-300]);
        assert_eq!(&*r.u32s("ids").unwrap(), &[7, 8, 9, 10, 11]);
        assert_eq!(r.bytes("blob").unwrap(), b"hello");
        assert!(r.has("blob"));
        assert!(!r.has("nope"));
        assert_eq!(r.section_names(), vec!["meta", "facts", "ids", "blob"]);
        // zero-copy on little-endian targets
        if cfg!(target_endian = "little") {
            assert!(r.f64s("facts").unwrap().is_shared());
        }
        assert!(matches!(
            r.f64s("nope"),
            Err(OcularError::Corrupt(msg)) if msg.contains("missing section")
        ));
        // wrong element width rejected
        assert!(r.f64s("blob").is_err());
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let bytes = sample();
        for keep in 0..bytes.len() {
            let partial = ModelBytes::from_vec(bytes[..keep].to_vec());
            assert!(
                matches!(SectionReader::open(partial), Err(OcularError::Corrupt(_))),
                "truncation to {keep} bytes must be rejected"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_rejected() {
        let bytes = sample();
        for byte in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[byte] ^= 1;
            assert!(
                SectionReader::open(ModelBytes::from_vec(flipped)).is_err(),
                "bit flip at byte {byte} must be rejected"
            );
        }
    }

    #[test]
    fn snapshot_meta_round_trips_and_is_optional() {
        let meta = SnapshotMeta {
            generation: 3,
            n_users: 10,
            n_items: 20,
            nnz: 55,
        };
        let mut w = SectionWriter::new("k");
        w.put_u64s("meta", &[1]);
        meta.write_section(&mut w);
        let r = SectionReader::open(ModelBytes::from_vec(w.finish())).unwrap();
        assert_eq!(SnapshotMeta::read_section(&r).unwrap(), Some(meta));

        // absent section -> None, not an error
        let mut w = SectionWriter::new("k");
        w.put_u64s("meta", &[1]);
        let r = SectionReader::open(ModelBytes::from_vec(w.finish())).unwrap();
        assert_eq!(SnapshotMeta::read_section(&r).unwrap(), None);

        // wrong shape -> typed corruption error
        let mut w = SectionWriter::new("k");
        w.put_u64s(SnapshotMeta::SECTION, &[1, 2]);
        let r = SectionReader::open(ModelBytes::from_vec(w.finish())).unwrap();
        assert!(SnapshotMeta::read_section(&r).is_err());
    }

    #[test]
    fn f32_and_i8_sections_round_trip_on_64_byte_boundaries() {
        let mut w = SectionWriter::new("quant");
        w.put_u64s("meta", &[2, 3]);
        w.put_f32s("if32", &[0.5f32, -1.25, 3.0, 0.0, 9.75, 2.5]);
        w.put_i8s("ii8", &[-128i8, -7, 0, 7, 127, 1]);
        w.put_f32s("i8scl", &[0.01f32, 0.02]);
        let r = SectionReader::open(ModelBytes::from_vec(w.finish())).unwrap();
        let f = r.f32s("if32").unwrap();
        assert_eq!(&*f, &[0.5f32, -1.25, 3.0, 0.0, 9.75, 2.5]);
        let q = r.i8s("ii8").unwrap();
        assert_eq!(&*q, &[-128i8, -7, 0, 7, 127, 1]);
        assert_eq!(&*r.f32s("i8scl").unwrap(), &[0.01f32, 0.02]);
        if cfg!(target_endian = "little") {
            assert!(f.is_shared(), "f32 sections must borrow the region");
            assert!(q.is_shared(), "i8 sections must borrow the region");
            // quantized sections start on cache-line boundaries inside the
            // 64-aligned region
            assert_eq!(f.as_slice().as_ptr() as usize % 64, 0);
            assert_eq!(q.as_slice().as_ptr() as usize % 64, 0);
        }
    }

    #[test]
    fn empty_container_is_valid() {
        let bytes = SectionWriter::new("k").finish();
        let r = SectionReader::open(ModelBytes::from_vec(bytes)).unwrap();
        assert_eq!(r.kind(), "k");
        assert!(r.section_names().is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate section")]
    fn duplicate_sections_panic_in_writer() {
        let mut w = SectionWriter::new("k");
        w.put_u64s("a", &[1]);
        w.put_u64s("a", &[2]);
    }

    #[test]
    fn garbage_rejected() {
        for doc in [
            &b""[..],
            &b"OCULAR3\0"[..],
            &b"ocular-snapshot v2 wals\n..."[..],
            &[0u8; 64][..],
        ] {
            assert!(SectionReader::open(ModelBytes::from_vec(doc.to_vec())).is_err());
        }
    }
}
