//! The canonical trait hierarchy.
//!
//! ```text
//! ScoreItems                 per-item scoring: the capability every model has
//!   └── Recommender          top-M lists via the shared bounded-heap kernel
//!         ├── FoldIn         request-time cold start from a basket (optional)
//!         ├── Explain        co-cluster provenance (optional, OCuLaR-only)
//!         └── SnapshotModel  kind-tagged serialize / deserialize (optional)
//!               Model = Recommender + SnapshotModel (what serving loads)
//! ```
//!
//! Optional capabilities are discovered at runtime through
//! [`Recommender::as_fold_in`] / [`Recommender::as_explain`], so a serving
//! engine holding a `Box<dyn Model>` can degrade gracefully — a cold-start
//! request against a model without [`FoldIn`] is a typed
//! [`OcularError::Unsupported`], not a panic.

use crate::binary::{SectionReader, SectionWriter};
use crate::error::OcularError;
use ocular_linalg::topk::top_k_excluding;
use ocular_sparse::CsrMatrix;
use std::io::{BufRead, Write};

/// One ranked item with the score its model assigned. For OCuLaR the score
/// is a probability; for the baselines it is a model score whose scale is
/// only meaningful within one model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredItem {
    /// The recommended item index.
    pub item: usize,
    /// The model's relevance score (higher is better).
    pub score: f64,
}

/// A fitted model that can score every item for a user — the base
/// capability of the hierarchy, and all the evaluation protocol needs.
///
/// `Send + Sync` is a supertrait bound because trait objects flow into
/// rayon-parallel serving batches.
pub trait ScoreItems: Send + Sync {
    /// Human-readable name for reports and error messages (e.g. `"wALS"`).
    fn name(&self) -> &'static str;

    /// Number of users the model was fitted on.
    fn n_users(&self) -> usize;

    /// Number of items the model was fitted on.
    fn n_items(&self) -> usize;

    /// Fills `out` (cleared and resized to [`ScoreItems::n_items`]) with
    /// relevance scores for user `u`. Higher is better; scales need not be
    /// comparable across models.
    fn score_user(&self, u: usize, out: &mut Vec<f64>);
}

/// A model that produces top-M recommendation lists.
///
/// The default method routes selection through
/// [`ocular_linalg::topk`] — the one shared implementation of the
/// workspace's ranking-ties convention (score descending, ties by
/// ascending item index) — so offline evaluation, batch recommendation and
/// online serving cannot silently diverge.
pub trait Recommender: ScoreItems {
    /// The top-`m` items for user `user`, skipping the ascending exclusion
    /// list `exclude` (typically the user's training basket, in the CSR row
    /// convention). Sorted by score descending, ties by ascending item.
    fn recommend(
        &self,
        user: usize,
        exclude: &[u32],
        m: usize,
    ) -> Result<Vec<ScoredItem>, OcularError> {
        if user >= self.n_users() {
            return Err(OcularError::UnknownUser {
                user,
                n_users: self.n_users(),
            });
        }
        let mut scores = Vec::new();
        self.score_user(user, &mut scores);
        Ok(top_k_excluding(&scores, exclude, m)
            .into_iter()
            .map(|(score, item)| ScoredItem { item, score })
            .collect())
    }

    /// Runtime capability query: the model's cold-start interface, if it
    /// has one. Serving engines use this to answer basket requests for any
    /// model kind and to reject them with a typed error otherwise.
    fn as_fold_in(&self) -> Option<&dyn FoldIn> {
        None
    }

    /// Runtime capability query: the model's provenance interface, if it
    /// has one (OCuLaR-only in this workspace).
    fn as_explain(&self) -> Option<&dyn Explain> {
        None
    }
}

/// Request-time cold start: scoring a user never seen in training from a
/// basket of item indices alone (the paper's Section VIII deployment path).
pub trait FoldIn: ScoreItems {
    /// Fills `out` (cleared and resized to [`ScoreItems::n_items`]) with
    /// scores for an unseen user described only by `basket`. The basket is
    /// validated (bounds, duplicates) but **not** excluded — callers
    /// exclude it when ranking, exactly like a warm user's owned items.
    fn score_basket(&self, basket: &[usize], out: &mut Vec<f64>) -> Result<(), OcularError>;

    /// Top-`m` recommendations for a cold basket, excluding the basket
    /// itself, through the shared selection kernel.
    fn recommend_for_basket(
        &self,
        basket: &[usize],
        m: usize,
    ) -> Result<Vec<ScoredItem>, OcularError> {
        let exclude = validate_basket(basket, self.n_items())?;
        let mut scores = Vec::new();
        self.score_basket(basket, &mut scores)?;
        Ok(top_k_excluding(&scores, &exclude, m)
            .into_iter()
            .map(|(score, item)| ScoredItem { item, score })
            .collect())
    }
}

/// The part of a recommendation's provenance contributed by one co-cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterEvidence {
    /// Factor dimension of the contributing co-cluster.
    pub cluster: usize,
    /// This cluster's share of the total affinity, in `[0, 1]`.
    pub share: f64,
    /// Cluster members (strongest first) who bought the recommended item.
    pub co_users: Vec<usize>,
    /// Cluster items the target user already owns.
    pub supporting_items: Vec<usize>,
}

/// A structured recommendation rationale — the interpretability dividend
/// the paper claims over wALS/BPR (Figures 3 and 10).
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// The user receiving the recommendation.
    pub user: usize,
    /// The recommended item.
    pub item: usize,
    /// The model's score for the pair.
    pub score: f64,
    /// Contributing co-clusters, largest contribution first.
    pub evidence: Vec<ClusterEvidence>,
}

/// Co-cluster provenance: *why* an item was recommended, grounded in the
/// interaction matrix so every named co-purchase is verifiable.
pub trait Explain: ScoreItems {
    /// Builds the provenance of recommending `item` to `user`.
    /// `interactions` must be the matrix the model was fitted on (shapes
    /// are checked); at most `max_co_users` similar users are named per
    /// cluster.
    fn provenance(
        &self,
        interactions: &CsrMatrix,
        user: usize,
        item: usize,
        max_co_users: usize,
    ) -> Result<Provenance, OcularError>;
}

/// Versioned model persistence with a kind tag, so a serving snapshot can
/// carry *any* model kind and the loader dispatches on the tag instead of
/// guessing at bytes.
///
/// Two codecs per kind, same kind tag, same bitwise content:
///
/// * **text** ([`SnapshotModel::save_model`] / [`SnapshotModel::load_model`])
///   — the line-oriented v1/v2 envelope payloads, human-inspectable and
///   the compatibility format old snapshots keep loading through;
/// * **binary v3** ([`SnapshotModel::write_sections`] /
///   [`SnapshotModel::read_sections`]) — typed sections in the mmap-able
///   [`crate::binary`] container. `read_sections` should **borrow** its
///   large payloads from the reader's byte region
///   ([`SectionReader::f64s`] and friends return region-backed buffers),
///   so loading a binary snapshot is allocation-free for the bulk data.
pub trait SnapshotModel: ScoreItems {
    /// The stable kind tag written into snapshot envelopes (e.g. `"wals"`).
    /// Lowercase, no spaces; distinct per implementing type.
    fn kind(&self) -> &'static str;

    /// Writes the model payload. The format must be self-delimiting (the
    /// snapshot envelope appends a footer right after it).
    fn save_model(&self, w: &mut dyn Write) -> std::io::Result<()>;

    /// Reads a payload written by [`SnapshotModel::save_model`], validating
    /// shape and values.
    fn load_model(r: &mut dyn BufRead) -> Result<Self, OcularError>
    where
        Self: Sized;

    /// Writes the model's payload as typed sections of a v3 binary
    /// snapshot. Must round-trip bitwise against
    /// [`SnapshotModel::read_sections`] *and* agree with the text codec
    /// (the conformance suite asserts both).
    fn write_sections(&self, w: &mut SectionWriter) -> Result<(), OcularError>;

    /// Reads a payload written by [`SnapshotModel::write_sections`],
    /// validating shapes and values, borrowing large buffers from the
    /// reader's byte region where the platform allows.
    fn read_sections(r: &SectionReader) -> Result<Self, OcularError>
    where
        Self: Sized;
}

/// What a serving engine holds: a recommender that can also be snapshotted.
/// Blanket-implemented, so every model that implements the two supertraits
/// is a [`Model`] automatically.
pub trait Model: Recommender + SnapshotModel {}

impl<T: Recommender + SnapshotModel> Model for T {}

/// Validates a cold-start basket against a catalog of `n_items` items and
/// returns it as the sorted ascending `u32` exclusion list the selection
/// kernels expect. Rejects out-of-range and duplicate items.
pub fn validate_basket(basket: &[usize], n_items: usize) -> Result<Vec<u32>, OcularError> {
    let mut exclude: Vec<u32> = Vec::with_capacity(basket.len());
    for &i in basket {
        if i >= n_items {
            return Err(OcularError::BadBasket(format!(
                "item {i} out of range for {n_items} items"
            )));
        }
        exclude.push(ocular_sparse::col_index(i));
    }
    exclude.sort_unstable();
    if exclude.windows(2).any(|w| w[0] == w[1]) {
        return Err(OcularError::BadBasket("duplicate items".into()));
    }
    Ok(exclude)
}

/// Adapts a scoring function to the hierarchy — the bridge for oracles and
/// synthetic scorers in tests and probes, where fitting a real model would
/// obscure the point.
pub struct FnScorer<F> {
    name: &'static str,
    n_users: usize,
    n_items: usize,
    score: F,
}

impl<F: Fn(usize, &mut Vec<f64>) + Send + Sync> FnScorer<F> {
    /// Wraps `score`, which fills a pre-sized buffer (length `n_items`,
    /// zero-initialised) with scores for the given user.
    pub fn new(name: &'static str, n_users: usize, n_items: usize, score: F) -> Self {
        FnScorer {
            name,
            n_users,
            n_items,
            score,
        }
    }
}

impl<F: Fn(usize, &mut Vec<f64>) + Send + Sync> ScoreItems for FnScorer<F> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn n_users(&self) -> usize {
        self.n_users
    }

    fn n_items(&self) -> usize {
        self.n_items
    }

    fn score_user(&self, u: usize, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.n_items, 0.0);
        (self.score)(u, out);
    }
}

impl<F: Fn(usize, &mut Vec<f64>) + Send + Sync> Recommender for FnScorer<F> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn scorer() -> FnScorer<impl Fn(usize, &mut Vec<f64>) + Send + Sync> {
        // user u scores item i as (i + u) mod 4, producing heavy ties
        FnScorer::new("synthetic", 3, 10, |u, buf| {
            for (i, b) in buf.iter_mut().enumerate() {
                *b = ((i + u) % 4) as f64;
            }
        })
    }

    #[test]
    fn default_recommend_matches_sort_under_ties() {
        let s = scorer();
        let mut scores = Vec::new();
        for u in 0..3 {
            s.score_user(u, &mut scores);
            for m in 0..=11 {
                let got = s.recommend(u, &[2, 5], m).unwrap();
                let mut want: Vec<ScoredItem> = scores
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| ![2usize, 5].contains(i))
                    .map(|(item, &score)| ScoredItem { item, score })
                    .collect();
                want.sort_by(|a, b| {
                    b.score
                        .partial_cmp(&a.score)
                        .unwrap()
                        .then_with(|| a.item.cmp(&b.item))
                });
                want.truncate(m);
                assert_eq!(got, want, "u={u} m={m}");
            }
        }
    }

    #[test]
    fn recommend_rejects_unknown_users() {
        let s = scorer();
        assert!(matches!(
            s.recommend(99, &[], 3),
            Err(OcularError::UnknownUser { user: 99, .. })
        ));
    }

    #[test]
    fn capability_queries_default_to_none() {
        let s = scorer();
        assert!(s.as_fold_in().is_none());
        assert!(s.as_explain().is_none());
    }

    #[test]
    fn validate_basket_sorts_and_rejects() {
        assert_eq!(validate_basket(&[4, 1, 2], 5).unwrap(), vec![1, 2, 4]);
        assert!(matches!(
            validate_basket(&[5], 5),
            Err(OcularError::BadBasket(_))
        ));
        assert!(matches!(
            validate_basket(&[1, 1], 5),
            Err(OcularError::BadBasket(_))
        ));
        assert_eq!(validate_basket(&[], 0).unwrap(), Vec::<u32>::new());
    }
}
