//! # ocular-api
//!
//! The canonical model API of the OCuLaR workspace: **one trait hierarchy
//! from training to serving**. Every algorithm in the workspace — OCuLaR
//! itself ([`ocular-core`]'s `FactorModel`) and the Table-I baselines
//! (wALS, BPR, user-/item-kNN, popularity) — implements these traits, so
//! the evaluation protocol, the bench harness and the serving engine all
//! consume `&dyn Recommender` instead of per-crate traits or ad-hoc
//! closures.
//!
//! ```text
//! ScoreItems                 per-item scoring (evaluation's only need)
//!   └── Recommender          top-M via the shared ocular_linalg::topk kernel
//!         ├── FoldIn         request-time cold start (optional capability)
//!         ├── Explain        co-cluster provenance (optional, OCuLaR-only)
//!         └── SnapshotModel  kind-tagged serialize / deserialize
//!               Model = Recommender + SnapshotModel
//! ```
//!
//! Failures flow through the unified [`OcularError`] — fallible
//! constructors (`try_fit`, `try_new`) return it instead of panicking, and
//! serving requests carry it per response.
//!
//! [`ocular-core`]: https://docs.rs/ocular-core

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod error;
pub mod textio;
pub mod traits;

pub use binary::{SectionReader, SectionWriter, SnapshotMeta};
pub use error::OcularError;
pub use traits::{
    validate_basket, ClusterEvidence, Explain, FnScorer, FoldIn, Model, Provenance, Recommender,
    ScoreItems, ScoredItem, SnapshotModel,
};
