//! Shared line-oriented **text** persistence helpers — the one
//! implementation of the workspace's `{:e}` float round-trip convention.
//!
//! Every text model payload (`ocular-model v1`, `wals-model v1`, …) and
//! the text snapshot envelope are line-oriented: floats are written with
//! `{:e}` (Rust's shortest round-trippable representation), so a
//! save/load cycle reproduces every `f64` **bitwise**. These helpers used
//! to be duplicated between `ocular-serve`'s snapshot module and
//! `ocular-baselines`' persistence module; they live here so the text
//! and binary codecs sit side by side under one roof and cannot drift.

use crate::error::OcularError;
use ocular_linalg::Matrix;
use ocular_sparse::CsrMatrix;
use std::io::{BufRead, Write};

/// Shorthand for a corrupt-payload error.
pub fn bad(msg: impl Into<String>) -> OcularError {
    OcularError::Corrupt(msg.into())
}

/// Reads one line (without the trailing newline); EOF is an error.
pub fn read_line(r: &mut dyn BufRead) -> Result<String, OcularError> {
    let mut line = String::new();
    if r.read_line(&mut line).map_err(OcularError::from)? == 0 {
        return Err(bad("truncated model payload"));
    }
    Ok(line.trim_end_matches(['\n', '\r']).to_string())
}

/// Writes a float slice as one space-separated `{:e}` line.
pub fn write_floats(w: &mut dyn Write, vals: &[f64]) -> std::io::Result<()> {
    let row: Vec<String> = vals.iter().map(|v| format!("{v:e}")).collect();
    writeln!(w, "{}", row.join(" "))
}

/// Parses one space-separated float line of exactly `n` values.
pub fn read_floats(r: &mut dyn BufRead, n: usize) -> Result<Vec<f64>, OcularError> {
    let line = read_line(r)?;
    let vals: Vec<f64> = line
        .split_whitespace()
        .map(|f| f.parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|_| bad("bad float value"))?;
    if vals.len() != n {
        return Err(bad(format!("expected {n} floats, found {}", vals.len())));
    }
    Ok(vals)
}

/// Writes a dense matrix, one row per line.
pub fn write_matrix(w: &mut dyn Write, m: &Matrix) -> std::io::Result<()> {
    for r in 0..m.rows() {
        write_floats(w, m.row(r))?;
    }
    Ok(())
}

/// Reads a `rows × cols` matrix written by [`write_matrix`].
pub fn read_matrix(r: &mut dyn BufRead, rows: usize, cols: usize) -> Result<Matrix, OcularError> {
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows {
        data.extend(read_floats(r, cols)?);
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

/// Writes a binary CSR matrix: a shape line, then one `len id id …` line
/// per row.
pub fn write_csr(w: &mut dyn Write, m: &CsrMatrix) -> std::io::Result<()> {
    writeln!(w, "interactions {} {}", m.n_rows(), m.n_cols())?;
    for u in 0..m.n_rows() {
        let row = m.row(u);
        write!(w, "{}", row.len())?;
        for &i in row {
            write!(w, " {i}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads a matrix written by [`write_csr`].
pub fn read_csr(r: &mut dyn BufRead) -> Result<CsrMatrix, OcularError> {
    let header = read_line(r)?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 3 || fields[0] != "interactions" {
        return Err(bad("bad interactions header"));
    }
    let n_rows: usize = fields[1].parse().map_err(|_| bad("bad n_rows"))?;
    let n_cols: usize = fields[2].parse().map_err(|_| bad("bad n_cols"))?;
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for u in 0..n_rows {
        let line = read_line(r)?;
        let mut fields = line.split_whitespace();
        let len: usize = fields
            .next()
            .and_then(|f| f.parse().ok())
            .ok_or_else(|| bad(format!("row {u}: bad length")))?;
        let ids: Vec<usize> = fields
            .map(|f| f.parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|_| bad(format!("row {u}: bad item id")))?;
        if ids.len() != len {
            return Err(bad(format!(
                "row {u}: declared {len} items, found {}",
                ids.len()
            )));
        }
        pairs.extend(ids.into_iter().map(|i| (u, i)));
    }
    CsrMatrix::from_pairs(n_rows, n_cols, &pairs).map_err(|e| bad(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_roundtrip_is_bitwise() {
        let m = Matrix::from_vec(
            2,
            3,
            vec![0.1, -2.5e-17, 3.0, f64::MIN_POSITIVE, 1e300, 0.0],
        );
        let mut buf: Vec<u8> = Vec::new();
        write_matrix(&mut buf, &m).unwrap();
        let loaded = read_matrix(&mut buf.as_slice(), 2, 3).unwrap();
        assert_eq!(loaded, m);
    }

    #[test]
    fn csr_roundtrip_and_validation() {
        let m = CsrMatrix::from_pairs(3, 4, &[(0, 1), (0, 3), (2, 0)]).unwrap();
        let mut buf: Vec<u8> = Vec::new();
        write_csr(&mut buf, &m).unwrap();
        assert_eq!(read_csr(&mut buf.as_slice()).unwrap(), m);
        assert!(read_csr(&mut "nope 1 1\n".as_bytes()).is_err());
        assert!(read_csr(&mut "interactions 1 1\n2 0\n".as_bytes()).is_err());
    }

    #[test]
    fn float_lines_validated() {
        assert!(read_floats(&mut "1.0 2.0\n".as_bytes(), 3).is_err());
        assert!(read_floats(&mut "1.0 x\n".as_bytes(), 2).is_err());
        assert_eq!(
            read_floats(&mut "1.0 2.0\n".as_bytes(), 2).unwrap(),
            [1.0, 2.0]
        );
    }
}
