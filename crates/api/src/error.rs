//! The workspace-wide error type.
//!
//! Every fallible public entry point — fallible constructors, snapshot
//! loading, serving requests — reports failures through [`OcularError`]
//! instead of panicking or inventing a per-crate error enum. The enum is
//! `#[non_exhaustive]`: new failure modes can be added without a breaking
//! release, so downstream `match`es must carry a wildcard arm.

use std::fmt;

/// The unified error of the OCuLaR workspace.
///
/// Variants carry rendered context (no borrowed data, no `io::Error`
/// payloads) so the type stays `Clone + PartialEq` — serving batches store
/// per-request results, and tests compare them directly.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OcularError {
    /// A hyper-parameter or solver knob is outside its legal range.
    InvalidConfig(String),
    /// Two shapes that must agree (model vs. interactions, user vs. item
    /// factors) do not.
    ShapeMismatch {
        /// Rows × columns the operation expected.
        expected: (usize, usize),
        /// Rows × columns it was given.
        found: (usize, usize),
    },
    /// A request named a user row outside the model.
    UnknownUser {
        /// The requested user index.
        user: usize,
        /// Number of users the model was fitted on.
        n_users: usize,
    },
    /// A request named an item outside the catalog.
    UnknownItem {
        /// The requested item index.
        item: usize,
        /// Number of items the model was fitted on.
        n_items: usize,
    },
    /// A request referenced an external id absent from the dataset's id
    /// maps (serving with external ids requires the id to have been seen
    /// at ingestion time).
    UnknownExternalId {
        /// The external id as it appeared in the request.
        external: u64,
        /// Which axis was addressed: `"user"` or `"item"`.
        entity: &'static str,
    },
    /// A cold-start basket was unusable (out-of-range or duplicate items).
    BadBasket(String),
    /// The model kind does not implement the requested capability (e.g.
    /// cold-start fold-in on a model without a [`crate::FoldIn`] impl).
    Unsupported {
        /// The model's [`crate::ScoreItems::name`].
        kind: &'static str,
        /// What was asked of it.
        capability: &'static str,
    },
    /// A snapshot carried a kind tag no loader is registered for.
    UnknownModelKind(String),
    /// A snapshot or model payload failed validation (truncated, tampered,
    /// or shape-inconsistent).
    Corrupt(String),
    /// An underlying I/O operation failed (message pre-rendered).
    Io(String),
}

impl fmt::Display for OcularError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OcularError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            OcularError::ShapeMismatch { expected, found } => write!(
                f,
                "shape mismatch: expected {}×{}, found {}×{}",
                expected.0, expected.1, found.0, found.1
            ),
            OcularError::UnknownUser { user, n_users } => {
                write!(f, "unknown user {user} (model has {n_users} users)")
            }
            OcularError::UnknownItem { item, n_items } => {
                write!(f, "unknown item {item} (model has {n_items} items)")
            }
            OcularError::UnknownExternalId { external, entity } => {
                write!(f, "unknown external {entity} id {external}")
            }
            OcularError::BadBasket(msg) => write!(f, "bad basket: {msg}"),
            OcularError::Unsupported { kind, capability } => {
                write!(f, "model kind `{kind}` does not support {capability}")
            }
            OcularError::UnknownModelKind(kind) => write!(f, "unknown model kind `{kind}`"),
            OcularError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            OcularError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for OcularError {}

impl From<std::io::Error> for OcularError {
    fn from(e: std::io::Error) -> Self {
        // InvalidData is how the text loaders report validation failures;
        // everything else is a genuine I/O problem
        if e.kind() == std::io::ErrorKind::InvalidData {
            OcularError::Corrupt(e.to_string())
        } else {
            OcularError::Io(e.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = OcularError::UnknownUser {
            user: 9,
            n_users: 4,
        };
        assert!(e.to_string().contains("unknown user 9"));
        let e = OcularError::InvalidConfig("b must lie in (0, 1)".into());
        assert!(e.to_string().contains("b must lie in (0, 1)"));
        let e = OcularError::Unsupported {
            kind: "BPR",
            capability: "cold-start fold-in",
        };
        assert!(e.to_string().contains("BPR"));
        assert!(e.to_string().contains("cold-start"));
    }

    #[test]
    fn io_errors_split_by_kind() {
        let bad = std::io::Error::new(std::io::ErrorKind::InvalidData, "truncated");
        assert!(matches!(OcularError::from(bad), OcularError::Corrupt(_)));
        let gone = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        assert!(matches!(OcularError::from(gone), OcularError::Io(_)));
    }

    #[test]
    fn clone_and_eq_work_for_request_results() {
        let a = OcularError::BadBasket("duplicate items".into());
        assert_eq!(a.clone(), a);
        assert_ne!(a, OcularError::Io("disk".into()));
    }
}
