//! Reproduction of the paper's Figure 2: on the overlapping toy example,
//! neither Modularity (non-overlapping) nor BIGCLAM (overlapping but
//! unipartite and unregularised) recovers the planted co-cluster structure,
//! and each identifies at most one of the three candidate recommendations.

use ocular_community::graph::Graph;
use ocular_community::{greedy_modularity, Bigclam, BigclamConfig};
use ocular_datasets::figure1::{figure1, HELD_OUT, N_USERS};
use ocular_datasets::recovery::{best_match_f1, held_out_coverage, RecoveredCluster};

fn to_recovered(communities: &[ocular_community::Community]) -> Vec<RecoveredCluster> {
    communities
        .iter()
        .map(|c| {
            let (users, items) = c.split_bipartite(N_USERS);
            RecoveredCluster::new(users, items)
        })
        .collect()
}

#[test]
fn modularity_cannot_express_overlap() {
    let f = figure1();
    let g = Graph::from_bipartite(&f.matrix);
    let (communities, _q) = greedy_modularity(&g);
    let recovered = to_recovered(&communities);
    // a partition cannot place user 6 (or item 4) in two clusters, so the
    // match against the overlapping truth must be imperfect
    let f1 = best_match_f1(&f.truth, &recovered);
    assert!(
        f1 < 0.95,
        "a non-overlapping partition cannot reach perfect F1, got {f1}"
    );
    // Figure 2's operational criterion: the partition misses candidate
    // recommendations (the paper's figure catches 1 of 3; the exact count
    // depends on where the held-out cells sit relative to the merge the
    // partitioner picks, but it can never catch all 3 because the cell in
    // the A/C overlap region is torn apart by any partition)
    let coverage = held_out_coverage(&HELD_OUT, &recovered);
    assert!(
        coverage <= 2.0 / 3.0 + 1e-9,
        "modularity must miss at least one candidate, covered {coverage}"
    );
}

#[test]
fn bigclam_on_bipartite_graph_misses_structure() {
    let f = figure1();
    let g = Graph::from_bipartite(&f.matrix);
    let m = Bigclam::fit(
        &g,
        &BigclamConfig {
            k: 3,
            seed: 7,
            ..Default::default()
        },
    );
    let recovered = to_recovered(&m.communities(Bigclam::default_threshold(&g)));
    let f1 = best_match_f1(&f.truth, &recovered);
    assert!(
        f1 < 0.9,
        "unregularised unipartite BIGCLAM should blur the co-clusters, got F1 {f1}"
    );
}

#[test]
fn ocular_beats_both_on_recovery() {
    use ocular_core::{default_threshold, extract_coclusters, fit, OcularConfig};
    let f = figure1();
    // OCuLaR
    let result = fit(
        &f.matrix,
        &OcularConfig {
            k: 3,
            lambda: 0.05,
            max_iters: 400,
            tol: 1e-7,
            seed: 42,
            ..Default::default()
        },
    );
    let oc: Vec<RecoveredCluster> = extract_coclusters(&result.model, default_threshold())
        .into_iter()
        .map(|c| RecoveredCluster::new(c.users, c.items))
        .collect();
    let f1_ocular = best_match_f1(&f.truth, &oc);

    // baselines
    let g = Graph::from_bipartite(&f.matrix);
    let (mod_comms, _) = greedy_modularity(&g);
    let f1_modularity = best_match_f1(&f.truth, &to_recovered(&mod_comms));
    let big = Bigclam::fit(
        &g,
        &BigclamConfig {
            k: 3,
            seed: 7,
            ..Default::default()
        },
    );
    let f1_bigclam = best_match_f1(
        &f.truth,
        &to_recovered(&big.communities(Bigclam::default_threshold(&g))),
    );

    assert!(
        f1_ocular > f1_modularity,
        "OCuLaR ({f1_ocular:.3}) must beat modularity ({f1_modularity:.3})"
    );
    assert!(
        f1_ocular > f1_bigclam,
        "OCuLaR ({f1_ocular:.3}) must beat BIGCLAM ({f1_bigclam:.3})"
    );
    assert!(
        f1_ocular > 0.75,
        "OCuLaR recovery should be strong, got {f1_ocular:.3}"
    );
}
