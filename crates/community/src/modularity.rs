//! Greedy modularity maximisation (Newman, PNAS 2006 / Clauset-Newman-Moore
//! agglomeration) — the non-overlapping "Modularity" baseline of Figure 2.
//!
//! Modularity of a partition: `Q = Σ_c (e_c/m − (a_c/2m)²)` where `e_c` is
//! the number of intra-community edges and `a_c` the total degree of `c`.
//! The greedy algorithm starts from singleton communities and repeatedly
//! merges the connected pair with the largest ΔQ while ΔQ > 0 — it
//! *"automatically discovers the number of communities"* (Section II) but
//! cannot produce overlapping ones, which is exactly why it fails on the
//! paper's toy example.

use crate::graph::{assignment_to_communities, Community, Graph};
use std::collections::BTreeMap;

/// Modularity `Q` of a node→community assignment.
pub fn modularity_score(g: &Graph, assignment: &[usize]) -> f64 {
    assert_eq!(assignment.len(), g.n_nodes(), "assignment length mismatch");
    let m = g.n_edges() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let n_comm = assignment.iter().copied().max().map(|x| x + 1).unwrap_or(0);
    let mut intra = vec![0.0f64; n_comm];
    let mut degree = vec![0.0f64; n_comm];
    for (a, b) in g.edges() {
        if assignment[a] == assignment[b] {
            intra[assignment[a]] += 1.0;
        }
    }
    for v in 0..g.n_nodes() {
        degree[assignment[v]] += g.degree(v) as f64;
    }
    (0..n_comm)
        .map(|c| intra[c] / m - (degree[c] / (2.0 * m)).powi(2))
        .sum()
}

/// Runs greedy agglomerative modularity maximisation. Returns the detected
/// communities and the final modularity. O(n² log n)-ish on dense merge
/// structures — intended for the paper-scale comparisons, not web graphs
/// (use [`crate::louvain`] for those).
pub fn greedy_modularity(g: &Graph) -> (Vec<Community>, f64) {
    let n = g.n_nodes();
    let m2 = (2 * g.n_edges()) as f64;
    if g.n_edges() == 0 {
        let communities = (0..n).map(|v| Community::new(vec![v])).collect();
        return (communities, 0.0);
    }
    // community bookkeeping: label = representative index
    let mut label: Vec<usize> = (0..n).collect();
    // e[(c,d)] = number of edges between communities c and d (c < d)
    let mut between: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for (a, b) in g.edges() {
        let key = if a < b { (a, b) } else { (b, a) };
        *between.entry(key).or_insert(0.0) += 1.0;
    }
    let mut total_degree: Vec<f64> = (0..n).map(|v| g.degree(v) as f64).collect();
    let mut alive: Vec<bool> = (0..n).map(|v| g.degree(v) > 0).collect();

    loop {
        // find the best merge among connected community pairs
        let mut best: Option<((usize, usize), f64)> = None;
        for (&(c, d), &e_cd) in &between {
            if !alive[c] || !alive[d] {
                continue;
            }
            let dq = 2.0 * (e_cd / m2 - (total_degree[c] / m2) * (total_degree[d] / m2));
            if best.map(|(_, b)| dq > b).unwrap_or(true) {
                best = Some(((c, d), dq));
            }
        }
        let Some(((c, d), dq)) = best else { break };
        if dq <= 1e-12 {
            break;
        }
        // merge d into c
        for l in label.iter_mut() {
            if *l == d {
                *l = c;
            }
        }
        total_degree[c] += total_degree[d];
        alive[d] = false;
        // rewire `between`: edges touching d now touch c
        let touching: Vec<((usize, usize), f64)> = between
            .iter()
            .filter(|(&(x, y), _)| x == d || y == d)
            .map(|(&k, &v)| (k, v))
            .collect();
        for (k, v) in touching {
            between.remove(&k);
            let other = if k.0 == d { k.1 } else { k.0 };
            if other == c {
                continue; // now internal
            }
            let nk = if other < c { (other, c) } else { (c, other) };
            *between.entry(nk).or_insert(0.0) += v;
        }
    }

    // compact labels
    let mut remap: Vec<usize> = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut assignment = vec![0usize; n];
    for v in 0..n {
        let l = label[v];
        if remap[l] == usize::MAX {
            remap[l] = next;
            next += 1;
        }
        assignment[v] = remap[l];
    }
    let q = modularity_score(g, &assignment);
    (assignment_to_communities(&assignment), q)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 4-cliques joined by a single bridge edge.
    fn two_cliques() -> Graph {
        let mut edges = Vec::new();
        for a in 0..4 {
            for b in a + 1..4 {
                edges.push((a, b));
                edges.push((a + 4, b + 4));
            }
        }
        edges.push((0, 4));
        Graph::from_edges(8, &edges)
    }

    #[test]
    fn two_cliques_found() {
        let g = two_cliques();
        let (communities, q) = greedy_modularity(&g);
        assert_eq!(communities.len(), 2, "got {communities:?}");
        let mut sizes: Vec<usize> = communities.iter().map(|c| c.nodes.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![4, 4]);
        assert!(q > 0.3, "modularity {q}");
    }

    #[test]
    fn score_matches_known_partition() {
        let g = two_cliques();
        // perfect partition
        let assignment = [0, 0, 0, 0, 1, 1, 1, 1];
        let q = modularity_score(&g, &assignment);
        // m = 13; intra each = 6; degree each = 13
        let expected = 2.0 * (6.0 / 13.0 - (13.0 / 26.0f64).powi(2));
        assert!((q - expected).abs() < 1e-12, "q {q} vs {expected}");
        // the all-in-one partition scores 0
        assert!(modularity_score(&g, &[0; 8]).abs() < 1e-12);
    }

    #[test]
    fn greedy_beats_trivial_partitions() {
        let g = two_cliques();
        let (_, q) = greedy_modularity(&g);
        assert!(q >= modularity_score(&g, &[0; 8]));
    }

    #[test]
    fn empty_graph_all_singletons() {
        let g = Graph::from_edges(3, &[]);
        let (communities, q) = greedy_modularity(&g);
        assert_eq!(communities.len(), 3);
        assert_eq!(q, 0.0);
    }

    #[test]
    fn ring_of_cliques() {
        // three triangles in a ring
        let mut edges = vec![];
        for c in 0..3 {
            let base = c * 3;
            edges.push((base, base + 1));
            edges.push((base, base + 2));
            edges.push((base + 1, base + 2));
        }
        edges.push((2, 3));
        edges.push((5, 6));
        edges.push((8, 0));
        let g = Graph::from_edges(9, &edges);
        let (communities, q) = greedy_modularity(&g);
        assert_eq!(communities.len(), 3, "got {communities:?}");
        assert!(q > 0.4);
    }

    #[test]
    fn communities_are_nonoverlapping_partition() {
        let g = two_cliques();
        let (communities, _) = greedy_modularity(&g);
        let mut seen = vec![false; 8];
        for c in &communities {
            for &v in &c.nodes {
                assert!(!seen[v], "node {v} in two communities");
                seen[v] = true;
            }
        }
        assert!(
            seen.into_iter().all(|s| s),
            "partition must cover all nodes"
        );
    }
}
