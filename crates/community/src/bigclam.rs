//! BIGCLAM — Cluster Affiliation Model for Big Networks
//! (Yang & Leskovec, WSDM 2013).
//!
//! The overlapping community detector most related to OCuLaR (Section II):
//! non-negative affiliation vectors `F_v ∈ R₊^K` generate edges with
//! `P[(u,v) ∈ E] = 1 − exp(−⟨F_u, F_v⟩)` and are fitted by maximising
//!
//! ```text
//! l(F) = Σ_{(u,v)∈E} log(1 − e^{−⟨F_u,F_v⟩}) − Σ_{(u,v)∉E} ⟨F_u, F_v⟩
//! ```
//!
//! by projected gradient ascent per node with the same `Σ_v F_v` sum-trick
//! OCuLaR borrows. The two deliberate differences from OCuLaR, which the
//! paper shows to matter (Figure 2): BIGCLAM sees only the *unipartite*
//! graph (users and items mixed into one node set) and has **no**
//! regularization.

use crate::graph::{Community, Graph};
use ocular_linalg::{ops, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Clamp guard shared with OCuLaR's loss (see `ocular_core::model::P_MIN`).
const P_MIN: f64 = 1e-10;

/// BIGCLAM hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct BigclamConfig {
    /// Number of communities `K`.
    pub k: usize,
    /// Maximum full passes over the nodes.
    pub max_iters: usize,
    /// Relative log-likelihood improvement below which training stops.
    pub tol: f64,
    /// Initial ascent step; halved on failure up to `backtracks` times.
    pub step: f64,
    /// Backtracking halvings per node update.
    pub backtracks: usize,
    /// Initialisation scale and RNG seed.
    pub seed: u64,
}

impl Default for BigclamConfig {
    fn default() -> Self {
        BigclamConfig {
            k: 4,
            max_iters: 200,
            tol: 1e-6,
            step: 0.5,
            backtracks: 12,
            seed: 0,
        }
    }
}

/// A fitted BIGCLAM model.
pub struct Bigclam {
    /// `n_nodes × k` non-negative affiliations.
    pub factors: Matrix,
    /// Log-likelihood after each pass (ascending).
    pub loglik_trace: Vec<f64>,
}

#[inline]
fn edge_ll(p: f64) -> f64 {
    (-(-p.max(P_MIN)).exp_m1()).ln()
}

/// Full log-likelihood via the sum-trick:
/// `Σ_{∉E} ⟨F_u,F_v⟩ = ½(⟨S,S⟩ − Σ_v ‖F_v‖²) − Σ_{∈E} ⟨F_u,F_v⟩`.
fn loglik(g: &Graph, f: &Matrix) -> f64 {
    let mut ll = 0.0;
    let mut pos_aff = 0.0;
    for (a, b) in g.edges() {
        let p = ops::dot(f.row(a), f.row(b));
        ll += edge_ll(p);
        pos_aff += p;
    }
    let s = f.column_sums();
    let all_pairs = 0.5 * (ops::dot(&s, &s) - f.frobenius_sq());
    ll - (all_pairs - pos_aff)
}

impl Bigclam {
    /// Fits the affiliation model on `g`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn fit(g: &Graph, cfg: &BigclamConfig) -> Bigclam {
        assert!(cfg.k > 0, "k must be positive");
        let n = g.n_nodes();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let scale = (1.0 / cfg.k as f64).sqrt();
        let mut f = Matrix::zeros(n, cfg.k);
        for v in f.as_mut_slice() {
            *v = rng.gen::<f64>() * scale;
        }
        let mut s = f.column_sums();
        let mut trace = vec![loglik(g, &f)];
        let mut grad = vec![0.0; cfg.k];
        let mut negsum = vec![0.0; cfg.k];
        let mut candidate = vec![0.0; cfg.k];
        for _ in 0..cfg.max_iters {
            for u in 0..n {
                if g.degree(u) == 0 {
                    continue; // isolated nodes stay at their init (no signal)
                }
                // negsum = S − f_u − Σ_{v∈N(u)} f_v  (held fixed this step)
                negsum.copy_from_slice(&s);
                for (ns, &fv) in negsum.iter_mut().zip(f.row(u)) {
                    *ns -= fv;
                }
                for &v in g.neighbors(u) {
                    for (ns, &fv) in negsum.iter_mut().zip(f.row(v as usize)) {
                        *ns -= fv;
                    }
                }
                // local objective (negated ll restricted to u, negsum fixed)
                let local = |own: &[f64], f: &Matrix| -> f64 {
                    let mut l = -ops::dot(own, &negsum);
                    for &v in g.neighbors(u) {
                        l += edge_ll(ops::dot(own, f.row(v as usize)));
                    }
                    l
                };
                // gradient of the local objective
                grad.copy_from_slice(&negsum);
                for g_i in grad.iter_mut() {
                    *g_i = -*g_i;
                }
                for &v in g.neighbors(u) {
                    let row = f.row(v as usize);
                    let p = ops::dot(f.row(u), row);
                    let coef = 1.0 / p.max(P_MIN).exp_m1();
                    ops::axpy(coef, row, &mut grad);
                }
                let l0 = local(f.row(u), &f);
                let mut eta = cfg.step;
                for _ in 0..cfg.backtracks {
                    for ((c, &o), &gr) in candidate.iter_mut().zip(f.row(u)).zip(grad.iter()) {
                        *c = (o + eta * gr).max(0.0);
                    }
                    if local(&candidate, &f) > l0 {
                        // accept: maintain S incrementally
                        for (sv, (&new, &old)) in s.iter_mut().zip(candidate.iter().zip(f.row(u))) {
                            *sv += new - old;
                        }
                        f.row_mut(u).copy_from_slice(&candidate);
                        break;
                    }
                    eta *= 0.5;
                }
            }
            let ll = loglik(g, &f);
            let prev = *trace.last().expect("trace non-empty");
            trace.push(ll);
            if ll - prev <= cfg.tol * prev.abs().max(1.0) {
                break;
            }
        }
        Bigclam {
            factors: f,
            loglik_trace: trace,
        }
    }

    /// The membership threshold of the BIGCLAM paper:
    /// `δ = sqrt(−log(1−ε))` with `ε` the background edge probability
    /// `2m / (n(n−1))`.
    pub fn default_threshold(g: &Graph) -> f64 {
        let n = g.n_nodes() as f64;
        if n < 2.0 {
            return f64::INFINITY;
        }
        let eps = (2.0 * g.n_edges() as f64 / (n * (n - 1.0))).clamp(1e-9, 1.0 - 1e-9);
        (-(1.0 - eps).ln()).sqrt()
    }

    /// Extracts communities: node `v` belongs to community `c` iff
    /// `F_vc ≥ threshold`. Empty communities are dropped.
    pub fn communities(&self, threshold: f64) -> Vec<Community> {
        let mut out = Vec::new();
        for c in 0..self.factors.cols() {
            let members: Vec<usize> = (0..self.factors.rows())
                .filter(|&v| self.factors.row(v)[c] >= threshold)
                .collect();
            if !members.is_empty() {
                out.push(Community::new(members));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 5-cliques sharing one node (the canonical overlap case).
    fn overlapping_cliques() -> Graph {
        let mut edges = Vec::new();
        for a in 0..5 {
            for b in a + 1..5 {
                edges.push((a, b)); // clique A: nodes 0–4
                edges.push((a + 4, b + 4)); // clique B: nodes 4–8
            }
        }
        Graph::from_edges(9, &edges)
    }

    fn cfg() -> BigclamConfig {
        BigclamConfig {
            k: 2,
            max_iters: 300,
            seed: 1,
            ..Default::default()
        }
    }

    #[test]
    fn loglik_increases() {
        let g = overlapping_cliques();
        let m = Bigclam::fit(&g, &cfg());
        for w in m.loglik_trace.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "ll must ascend: {} -> {}", w[0], w[1]);
        }
        assert!(m.loglik_trace.len() >= 2);
    }

    #[test]
    fn factors_nonnegative() {
        let g = overlapping_cliques();
        let m = Bigclam::fit(&g, &cfg());
        assert!(m.factors.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn recovers_overlapping_cliques() {
        let g = overlapping_cliques();
        let m = Bigclam::fit(&g, &cfg());
        let communities = m.communities(Bigclam::default_threshold(&g));
        assert_eq!(communities.len(), 2, "got {communities:?}");
        // the shared node 4 must appear in both
        let containing: usize = communities.iter().filter(|c| c.nodes.contains(&4)).count();
        assert_eq!(containing, 2, "node 4 should overlap: {communities:?}");
        // each community covers its clique
        let mut sizes: Vec<usize> = communities.iter().map(|c| c.nodes.len()).collect();
        sizes.sort_unstable();
        assert!(sizes[0] >= 4, "communities too small: {communities:?}");
    }

    #[test]
    fn edge_probabilities_fit_structure() {
        let g = overlapping_cliques();
        let m = Bigclam::fit(&g, &cfg());
        let p_edge = ops::dot(m.factors.row(0), m.factors.row(1));
        let p_non = ops::dot(m.factors.row(0), m.factors.row(8));
        assert!(
            p_edge > 3.0 * p_non + 0.1,
            "clique pair {p_edge} must dominate non-edge {p_non}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = overlapping_cliques();
        let a = Bigclam::fit(&g, &cfg());
        let b = Bigclam::fit(&g, &cfg());
        assert_eq!(a.factors, b.factors);
    }

    #[test]
    fn threshold_formula() {
        let g = overlapping_cliques();
        let delta = Bigclam::default_threshold(&g);
        // ε = 2·24 / (9·8) = 0.666…; δ = sqrt(−ln(1/3))
        let eps = 2.0 * g.n_edges() as f64 / (9.0 * 8.0);
        assert!((delta - (-(1.0 - eps).ln()).sqrt()).abs() < 1e-12);
        // tiny graphs
        assert_eq!(
            Bigclam::default_threshold(&Graph::from_edges(1, &[])),
            f64::INFINITY
        );
    }

    #[test]
    fn isolated_nodes_join_nothing() {
        let mut edges = Vec::new();
        for a in 0..4 {
            for b in a + 1..4 {
                edges.push((a, b));
            }
        }
        let g = Graph::from_edges(6, &edges); // nodes 4, 5 isolated
        let m = Bigclam::fit(
            &g,
            &BigclamConfig {
                k: 1,
                seed: 3,
                ..Default::default()
            },
        );
        let communities = m.communities(Bigclam::default_threshold(&g));
        for c in &communities {
            assert!(!c.nodes.contains(&4) || !c.nodes.contains(&5));
        }
    }
}
