//! Louvain method (Blondel et al. 2008): multi-level modularity
//! optimisation on a weighted working graph. Included as the scalable
//! non-overlapping detector (the greedy agglomeration of
//! [`crate::modularity`] matches the paper's Figure 2 reference but is
//! quadratic in the node count).

use crate::graph::{assignment_to_communities, Community, Graph};
use crate::modularity::modularity_score;
use std::collections::BTreeMap;

/// Weighted undirected working graph used across aggregation levels.
struct WGraph {
    /// `adj[v]` = (neighbour, weight) pairs, excluding self-loops.
    adj: Vec<Vec<(u32, f64)>>,
    /// Self-loop weight per node (intra-community weight after folding).
    self_loop: Vec<f64>,
    /// Total edge weight `m` (each edge once, self-loops included once).
    m: f64,
}

impl WGraph {
    fn from_graph(g: &Graph) -> WGraph {
        let adj = (0..g.n_nodes())
            .map(|v| g.neighbors(v).iter().map(|&u| (u, 1.0)).collect())
            .collect();
        WGraph {
            adj,
            self_loop: vec![0.0; g.n_nodes()],
            m: g.n_edges() as f64,
        }
    }

    fn n_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Weighted degree: Σ neighbour weights + 2 × self-loop.
    fn degree(&self, v: usize) -> f64 {
        self.adj[v].iter().map(|&(_, w)| w).sum::<f64>() + 2.0 * self.self_loop[v]
    }
}

/// One local-move phase. Returns true if any node moved.
fn local_moves(g: &WGraph, assignment: &mut [usize]) -> bool {
    let m = g.m;
    if m == 0.0 {
        return false;
    }
    let n = g.n_nodes();
    let mut sigma_tot = vec![0.0f64; n];
    for v in 0..n {
        sigma_tot[assignment[v]] += g.degree(v);
    }
    let mut links = vec![0.0f64; n];
    let mut touched: Vec<usize> = Vec::new();
    let mut moved_any = false;
    let mut improved = true;
    while improved {
        improved = false;
        for v in 0..n {
            let kv = g.degree(v);
            if kv == 0.0 {
                continue;
            }
            let home = assignment[v];
            touched.clear();
            for &(u, w) in &g.adj[v] {
                let c = assignment[u as usize];
                if links[c] == 0.0 {
                    touched.push(c);
                }
                links[c] += w;
            }
            sigma_tot[home] -= kv;
            // gain of placing v in community c (standard Louvain):
            //   Δ(c) = links[c]/m − k_v·Σ_tot(c)/(2m²)
            let gain = |c: usize| links[c] / m - kv * sigma_tot[c] / (2.0 * m * m);
            let mut best_c = home;
            let mut best_gain = gain(home);
            for &c in &touched {
                if c == home {
                    continue;
                }
                let gc = gain(c);
                if gc > best_gain + 1e-12 {
                    best_gain = gc;
                    best_c = c;
                }
            }
            sigma_tot[best_c] += kv;
            if best_c != home {
                assignment[v] = best_c;
                improved = true;
                moved_any = true;
            }
            for &c in &touched {
                links[c] = 0.0;
            }
        }
    }
    moved_any
}

/// Folds communities into single nodes, summing edge weights; intra-
/// community weight becomes a self-loop. Returns the aggregated graph and
/// the node→aggregated-node map.
fn aggregate(g: &WGraph, assignment: &[usize]) -> (WGraph, Vec<usize>) {
    let n = g.n_nodes();
    let mut remap = vec![usize::MAX; n];
    let mut next = 0usize;
    for v in 0..n {
        let c = assignment[v];
        if remap[c] == usize::MAX {
            remap[c] = next;
            next += 1;
        }
    }
    let compact: Vec<usize> = (0..n).map(|v| remap[assignment[v]]).collect();
    let mut weights: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    let mut self_loop = vec![0.0f64; next];
    for v in 0..n {
        self_loop[compact[v]] += g.self_loop[v];
        for &(u, w) in &g.adj[v] {
            let u = u as usize;
            if u < v {
                continue; // visit each edge once
            }
            let (a, b) = (compact[v], compact[u]);
            if a == b {
                self_loop[a] += w;
            } else {
                let key = if a < b { (a, b) } else { (b, a) };
                *weights.entry(key).or_insert(0.0) += w;
            }
        }
    }
    let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); next];
    let mut m = self_loop.iter().sum::<f64>();
    for (&(a, b), &w) in &weights {
        adj[a].push((b as u32, w));
        adj[b].push((a as u32, w));
        m += w;
    }
    (WGraph { adj, self_loop, m }, compact)
}

/// Runs multi-level Louvain; returns communities of the *original* graph
/// and their (unweighted) modularity.
pub fn louvain(g: &Graph) -> (Vec<Community>, f64) {
    let n = g.n_nodes();
    let mut membership: Vec<usize> = (0..n).collect(); // original node → community
    let mut work = WGraph::from_graph(g);
    let mut level_assignment: Vec<usize> = (0..work.n_nodes()).collect();
    for _level in 0..16 {
        let moved = local_moves(&work, &mut level_assignment);
        if !moved {
            break;
        }
        let (agg, compact) = aggregate(&work, &level_assignment);
        // fold this level into the original membership
        for slot in membership.iter_mut() {
            *slot = compact[*slot];
        }
        work = agg;
        level_assignment = (0..work.n_nodes()).collect();
    }
    let q = modularity_score(g, &membership);
    (assignment_to_communities(&membership), q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques() -> Graph {
        let mut edges = Vec::new();
        for a in 0..5 {
            for b in a + 1..5 {
                edges.push((a, b));
                edges.push((a + 5, b + 5));
            }
        }
        edges.push((0, 5));
        Graph::from_edges(10, &edges)
    }

    #[test]
    fn separates_cliques() {
        let (communities, q) = louvain(&two_cliques());
        assert_eq!(communities.len(), 2, "got {communities:?}");
        assert!(q > 0.3, "q = {q}");
    }

    #[test]
    fn agrees_with_greedy_on_easy_graphs() {
        let g = two_cliques();
        let (_, q_louvain) = louvain(&g);
        let (_, q_greedy) = crate::modularity::greedy_modularity(&g);
        assert!(
            (q_louvain - q_greedy).abs() < 0.05,
            "{q_louvain} vs {q_greedy}"
        );
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(4, &[]);
        let (communities, q) = louvain(&g);
        assert_eq!(q, 0.0);
        assert_eq!(communities.len(), 4);
    }

    #[test]
    fn star_graph_single_community() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let (communities, _) = louvain(&g);
        // a star has no community structure to split profitably
        assert!(communities.len() <= 2, "got {communities:?}");
    }

    #[test]
    fn ring_of_cliques() {
        let mut edges = vec![];
        for c in 0..4 {
            let base = c * 4;
            for a in 0..4 {
                for b in a + 1..4 {
                    edges.push((base + a, base + b));
                }
            }
        }
        edges.extend([(3, 4), (7, 8), (11, 12), (15, 0)]);
        let g = Graph::from_edges(16, &edges);
        let (communities, q) = louvain(&g);
        assert_eq!(communities.len(), 4, "got {communities:?}");
        assert!(q > 0.5, "q = {q}");
    }

    #[test]
    fn partition_covers_all_connected_nodes() {
        let g = two_cliques();
        let (communities, _) = louvain(&g);
        let mut seen = vec![false; 10];
        for c in &communities {
            for &v in &c.nodes {
                assert!(!seen[v]);
                seen[v] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }
}
