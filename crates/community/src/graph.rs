//! Undirected graph substrate for the community detectors.
//!
//! The positive examples of the interaction matrix are *"the edges in a
//! bipartite graph of users and items"* (Section II); community detection
//! operates on that graph with users mapped to nodes `0..n_users` and items
//! to nodes `n_users..n_users+n_items`.

use ocular_sparse::CsrMatrix;

/// A simple undirected graph with sorted adjacency lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    adjacency: Vec<Vec<u32>>,
    n_edges: usize,
}

impl Graph {
    /// Builds from an edge list; duplicate and self edges are discarded.
    pub fn from_edges(n_nodes: usize, edges: &[(usize, usize)]) -> Graph {
        let mut adjacency = vec![Vec::new(); n_nodes];
        let mut cleaned: Vec<(usize, usize)> = edges
            .iter()
            .filter(|&&(a, b)| a != b && a < n_nodes && b < n_nodes)
            .map(|&(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        cleaned.sort_unstable();
        cleaned.dedup();
        for &(a, b) in &cleaned {
            adjacency[a].push(b as u32);
            adjacency[b].push(a as u32);
        }
        for list in adjacency.iter_mut() {
            list.sort_unstable();
        }
        Graph {
            adjacency,
            n_edges: cleaned.len(),
        }
    }

    /// Builds the user-item bipartite graph of an interaction matrix: node
    /// `u` for each user, node `n_users + i` for each item, one edge per
    /// positive example.
    pub fn from_bipartite(r: &CsrMatrix) -> Graph {
        let n_users = r.n_rows();
        let edges: Vec<(usize, usize)> = r.iter_nnz().map(|(u, i)| (u, n_users + i)).collect();
        Graph::from_edges(n_users + r.n_cols(), &edges)
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of (undirected) edges `m`.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Sorted neighbours of `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adjacency[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency[v].len()
    }

    /// Whether `{a, b}` is an edge. O(log deg).
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adjacency[a].binary_search(&(b as u32)).is_ok()
    }

    /// Iterator over all edges `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n_nodes()).flat_map(move |a| {
            self.adjacency[a]
                .iter()
                .filter(move |&&b| (b as usize) > a)
                .map(move |&b| (a, b as usize))
        })
    }
}

/// A set of nodes forming one community (sorted).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Community {
    /// Sorted member nodes.
    pub nodes: Vec<usize>,
}

impl Community {
    /// Builds with sorted, deduplicated members.
    pub fn new(mut nodes: Vec<usize>) -> Self {
        nodes.sort_unstable();
        nodes.dedup();
        Community { nodes }
    }

    /// Splits a community of a bipartite graph back into (users, items).
    pub fn split_bipartite(&self, n_users: usize) -> (Vec<usize>, Vec<usize>) {
        let users: Vec<usize> = self
            .nodes
            .iter()
            .copied()
            .filter(|&v| v < n_users)
            .collect();
        let items: Vec<usize> = self
            .nodes
            .iter()
            .copied()
            .filter(|&v| v >= n_users)
            .map(|v| v - n_users)
            .collect();
        (users, items)
    }
}

/// Converts a node→community assignment into community node sets, dropping
/// empty labels.
pub fn assignment_to_communities(assignment: &[usize]) -> Vec<Community> {
    let max = assignment.iter().copied().max().map(|m| m + 1).unwrap_or(0);
    let mut sets: Vec<Vec<usize>> = vec![Vec::new(); max];
    for (node, &c) in assignment.iter().enumerate() {
        sets[c].push(node);
    }
    sets.into_iter()
        .filter(|s| !s.is_empty())
        .map(Community::new)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_dedups_and_drops_self_loops() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 0), (2, 2), (1, 3), (9, 1)]);
        assert_eq!(g.n_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(3, 1));
        assert!(!g.has_edge(2, 2));
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn bipartite_mapping() {
        let r = CsrMatrix::from_pairs(2, 3, &[(0, 0), (1, 2)]).unwrap();
        let g = Graph::from_bipartite(&r);
        assert_eq!(g.n_nodes(), 5);
        assert_eq!(g.n_edges(), 2);
        assert!(g.has_edge(0, 2)); // user 0 – item 0 (node 2)
        assert!(g.has_edge(1, 4)); // user 1 – item 2 (node 4)
        assert!(!g.has_edge(0, 1), "users never connect directly");
    }

    #[test]
    fn edges_iterator_yields_each_once() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        for (a, b) in edges {
            assert!(a < b);
        }
    }

    #[test]
    fn community_split() {
        let c = Community::new(vec![0, 3, 2, 5, 3]);
        assert_eq!(c.nodes, vec![0, 2, 3, 5]);
        let (users, items) = c.split_bipartite(3);
        assert_eq!(users, vec![0, 2]);
        assert_eq!(items, vec![0, 2]); // nodes 3, 5 → items 0, 2
    }

    #[test]
    fn assignment_conversion() {
        let communities = assignment_to_communities(&[0, 2, 0, 2]);
        assert_eq!(communities.len(), 2, "label 1 is empty and dropped");
        assert_eq!(communities[0].nodes, vec![0, 2]);
        assert_eq!(communities[1].nodes, vec![1, 3]);
    }
}
