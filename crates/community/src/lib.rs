//! # ocular-community
//!
//! The community-detection comparators of the paper's Figure 2, implemented
//! from scratch:
//!
//! * [`modularity`] — non-overlapping community detection by greedy
//!   modularity maximisation (Newman's agglomerative method, the
//!   "Modularity" panel of Figure 2), plus [`louvain`] as the standard
//!   large-graph alternative;
//! * [`bigclam`] — **BIGCLAM** (Yang & Leskovec, WSDM 2013), the
//!   *overlapping* community detector whose generative model OCuLaR builds
//!   on. The two key differences, per Section II of the paper: OCuLaR works
//!   on the user-item *bipartite* structure directly and adds `ℓ2`
//!   regularization, "which turns out to be crucial for recommendation
//!   performance".
//!
//! The paper's point (Figure 2): both baselines *fail to reveal the correct
//! co-clustering structure* of the toy example — Modularity because it
//! cannot overlap, BIGCLAM because unregularised unipartite affiliation
//! blurs the blocks — and would have surfaced only 1 of the 3 candidate
//! recommendations. The `figure2` integration test and bench binary
//! reproduce exactly that comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bigclam;
pub mod graph;
pub mod louvain;
pub mod modularity;

pub use bigclam::{Bigclam, BigclamConfig};
pub use graph::{Community, Graph};
pub use modularity::greedy_modularity;
