//! Star-rating synthesis and the paper's thresholding convention.
//!
//! *"In both the Movielens and the Netflix dataset, the users provide
//! ratings between 1 and 5 stars. … we adopt the convention from many
//! previous works to only consider ratings greater than or equal to 3 as
//! positive examples and ignore all other ratings."* (Section VII-A)
//!
//! This module generates 1–5 star ratings on top of a planted structure and
//! applies the ≥ threshold conversion, exercising the same pipeline a user
//! of the real MovieLens/Netflix files would run through
//! [`ocular_sparse::io::read_movielens`].

use crate::planted::PlantedDataset;
use ocular_sparse::{CsrMatrix, Triplets};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A rated interaction `(user, item, stars)`.
pub type Rating = (usize, usize, u8);

/// The paper's positive-example threshold for star ratings.
pub const PAPER_THRESHOLD: u8 = 3;

/// Generates star ratings for a planted dataset: every positive pair of the
/// planted matrix is rated, with in-cluster pairs skewed towards high stars
/// and noise pairs towards low stars. Mean in-cluster rating ≈ 4, noise ≈ 2.
pub fn synthesize_ratings(d: &PlantedDataset, seed: u64) -> Vec<Rating> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(d.matrix.nnz());
    for (u, i) in d.matrix.iter_nnz() {
        let in_cluster = d.truth.pair_in_some_cluster(u, i);
        let base: f64 = if in_cluster { 4.0 } else { 2.0 };
        let noise: f64 = rng.gen_range(-1.5..1.5);
        let stars = (base + noise).round().clamp(1.0, 5.0) as u8;
        out.push((u, i, stars));
    }
    out
}

/// Applies the threshold conversion: ratings `>= threshold` become positive
/// examples; everything else is dropped (treated as unknown, *not* negative).
pub fn threshold_ratings(
    ratings: &[Rating],
    n_users: usize,
    n_items: usize,
    threshold: u8,
) -> CsrMatrix {
    let mut t = Triplets::new(n_users, n_items);
    for &(u, i, s) in ratings {
        if s >= threshold {
            t.push(u, i).expect("caller guarantees bounds");
        }
    }
    t.into_csr()
}

/// End-to-end convenience: planted dataset → star ratings → thresholded
/// one-class matrix (the exact preprocessing the paper applies to
/// MovieLens/Netflix).
pub fn rated_one_class(d: &PlantedDataset, threshold: u8, seed: u64) -> CsrMatrix {
    let ratings = synthesize_ratings(d, seed);
    threshold_ratings(&ratings, d.matrix.n_rows(), d.matrix.n_cols(), threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planted::{generate, PlantedConfig};

    fn small() -> PlantedDataset {
        generate(&PlantedConfig {
            n_users: 60,
            n_items: 40,
            k: 3,
            users_per_cluster: 20,
            items_per_cluster: 12,
            noise_density: 0.02,
            ..Default::default()
        })
    }

    #[test]
    fn ratings_cover_all_positives() {
        let d = small();
        let r = synthesize_ratings(&d, 0);
        assert_eq!(r.len(), d.matrix.nnz());
        for &(u, i, s) in &r {
            assert!(d.matrix.contains(u, i));
            assert!((1..=5).contains(&s));
        }
    }

    #[test]
    fn in_cluster_ratings_are_higher() {
        let d = small();
        let r = synthesize_ratings(&d, 0);
        let (mut in_sum, mut in_n, mut out_sum, mut out_n) = (0.0, 0, 0.0, 0);
        for &(u, i, s) in &r {
            if d.truth.pair_in_some_cluster(u, i) {
                in_sum += s as f64;
                in_n += 1;
            } else {
                out_sum += s as f64;
                out_n += 1;
            }
        }
        if in_n > 0 && out_n > 0 {
            assert!(in_sum / in_n as f64 > out_sum / out_n as f64 + 0.8);
        }
    }

    #[test]
    fn threshold_keeps_only_high_ratings() {
        let ratings = vec![(0, 0, 5), (0, 1, 3), (1, 0, 2), (1, 1, 1)];
        let m = threshold_ratings(&ratings, 2, 2, PAPER_THRESHOLD);
        assert_eq!(m.nnz(), 2);
        assert!(m.contains(0, 0));
        assert!(m.contains(0, 1));
        assert!(!m.contains(1, 0));
    }

    #[test]
    fn thresholding_filters_noise_disproportionately() {
        let d = small();
        let m = rated_one_class(&d, PAPER_THRESHOLD, 0);
        assert!(m.nnz() < d.matrix.nnz());
        // the kept positives should be biased towards in-cluster pairs
        let kept_in = m
            .iter_nnz()
            .filter(|&(u, i)| d.truth.pair_in_some_cluster(u, i))
            .count();
        let orig_in = d
            .matrix
            .iter_nnz()
            .filter(|&(u, i)| d.truth.pair_in_some_cluster(u, i))
            .count();
        let kept_frac = kept_in as f64 / m.nnz() as f64;
        let orig_frac = orig_in as f64 / d.matrix.nnz() as f64;
        assert!(
            kept_frac >= orig_frac,
            "thresholding should not reduce the in-cluster fraction"
        );
    }

    #[test]
    fn deterministic() {
        let d = small();
        assert_eq!(synthesize_ratings(&d, 5), synthesize_ratings(&d, 5));
        assert_ne!(synthesize_ratings(&d, 5), synthesize_ratings(&d, 6));
    }
}
