//! Planted overlapping co-cluster generator.
//!
//! This is the synthetic ground-truth machine behind every experiment that
//! needs to *know* the co-cluster structure: a set of `K` co-clusters, each a
//! (user-set × item-set) block; users and items may belong to several
//! blocks (the paper's central modelling assumption); positives appear
//! within blocks with probability `within_density` and anywhere with
//! probability `noise_density`.

use ocular_sparse::{Dataset, Triplets};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Ground-truth overlapping co-clusters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoClusterTruth {
    /// `user_sets[c]` = sorted users belonging to co-cluster `c`.
    pub user_sets: Vec<Vec<usize>>,
    /// `item_sets[c]` = sorted items belonging to co-cluster `c`.
    pub item_sets: Vec<Vec<usize>>,
}

impl CoClusterTruth {
    /// Number of co-clusters.
    pub fn k(&self) -> usize {
        self.user_sets.len()
    }

    /// Whether the pair `(u, i)` lies inside at least one co-cluster.
    pub fn pair_in_some_cluster(&self, u: usize, i: usize) -> bool {
        self.user_sets
            .iter()
            .zip(&self.item_sets)
            .any(|(us, is)| us.binary_search(&u).is_ok() && is.binary_search(&i).is_ok())
    }

    /// Co-clusters containing the pair `(u, i)`.
    pub fn clusters_of_pair(&self, u: usize, i: usize) -> Vec<usize> {
        (0..self.k())
            .filter(|&c| {
                self.user_sets[c].binary_search(&u).is_ok()
                    && self.item_sets[c].binary_search(&i).is_ok()
            })
            .collect()
    }

    /// Number of co-clusters user `u` belongs to.
    pub fn user_membership_count(&self, u: usize) -> usize {
        self.user_sets
            .iter()
            .filter(|s| s.binary_search(&u).is_ok())
            .count()
    }
}

/// Configuration of the planted generator.
#[derive(Debug, Clone)]
pub struct PlantedConfig {
    /// Number of users (rows).
    pub n_users: usize,
    /// Number of items (columns).
    pub n_items: usize,
    /// Number of planted co-clusters.
    pub k: usize,
    /// Cap on users per co-cluster (oversized clusters are trimmed; natural
    /// size before trimming is `n_users · (1 + user_overlap) / k`).
    pub users_per_cluster: usize,
    /// Cap on items per co-cluster.
    pub items_per_cluster: usize,
    /// Expected number of *extra* cluster memberships per user beyond the
    /// first; `0.0` reproduces non-overlapping co-clustering.
    pub user_overlap: f64,
    /// Expected number of extra cluster memberships per item.
    pub item_overlap: f64,
    /// Probability that an in-cluster `(u, i)` pair is a positive example.
    pub within_density: f64,
    /// Probability that an arbitrary pair is a positive example regardless
    /// of structure (background noise).
    pub noise_density: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantedConfig {
    fn default() -> Self {
        PlantedConfig {
            n_users: 300,
            n_items: 200,
            k: 6,
            users_per_cluster: 50,
            items_per_cluster: 30,
            user_overlap: 0.5,
            item_overlap: 0.5,
            within_density: 0.6,
            noise_density: 0.002,
            seed: 0,
        }
    }
}

/// A generated dataset together with its ground truth.
#[derive(Debug, Clone)]
pub struct PlantedDataset {
    /// The binary interaction store (identity id maps — synthetic data has
    /// no external ids).
    pub matrix: Dataset,
    /// Planted co-cluster structure.
    pub truth: CoClusterTruth,
    /// The configuration that produced it.
    pub config: PlantedConfig,
}

/// Generates a dataset with planted overlapping co-clusters.
///
/// Memberships: every user joins one uniformly chosen cluster, plus each
/// other cluster independently with probability `user_overlap / (k-1)`
/// (so the expected extra memberships equal `user_overlap`); items likewise.
/// Cluster sizes are then trimmed/padded towards the configured sizes by
/// random selection, keeping the membership distribution unbiased.
///
/// # Panics
/// Panics if `k == 0`, if densities are outside `[0, 1]`, or if cluster
/// sizes exceed the matrix dimensions.
pub fn generate(cfg: &PlantedConfig) -> PlantedDataset {
    assert!(cfg.k > 0, "need at least one co-cluster");
    assert!(
        (0.0..=1.0).contains(&cfg.within_density),
        "within_density in [0,1]"
    );
    assert!(
        (0.0..=1.0).contains(&cfg.noise_density),
        "noise_density in [0,1]"
    );
    assert!(
        cfg.users_per_cluster <= cfg.n_users,
        "users_per_cluster > n_users"
    );
    assert!(
        cfg.items_per_cluster <= cfg.n_items,
        "items_per_cluster > n_items"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let user_sets = assign_sets(
        cfg.n_users,
        cfg.k,
        cfg.users_per_cluster,
        cfg.user_overlap,
        &mut rng,
    );
    let item_sets = assign_sets(
        cfg.n_items,
        cfg.k,
        cfg.items_per_cluster,
        cfg.item_overlap,
        &mut rng,
    );

    let mut t = Triplets::new(cfg.n_users, cfg.n_items);
    // in-cluster positives
    for c in 0..cfg.k {
        for &u in &user_sets[c] {
            for &i in &item_sets[c] {
                if rng.gen::<f64>() < cfg.within_density {
                    t.push(u, i).expect("in-bounds by construction");
                }
            }
        }
    }
    // background noise: sample the expected count of noise edges uniformly
    if cfg.noise_density > 0.0 {
        let cells = cfg.n_users as f64 * cfg.n_items as f64;
        let n_noise = (cells * cfg.noise_density).round() as usize;
        for _ in 0..n_noise {
            let u = rng.gen_range(0..cfg.n_users);
            let i = rng.gen_range(0..cfg.n_items);
            t.push(u, i).expect("in-bounds");
        }
    }

    PlantedDataset {
        matrix: Dataset::from_matrix(t.into_csr()),
        truth: CoClusterTruth {
            user_sets,
            item_sets,
        },
        config: cfg.clone(),
    }
}

/// Assigns `n` entities to `k` clusters with the requested expected overlap.
/// Every entity joins one uniformly chosen home cluster plus each other
/// cluster independently with probability `overlap / (k-1)`; `size` acts as
/// a *cap* — oversized clusters are trimmed at random (no padding, so the
/// overlap parameter genuinely controls membership counts). Empty clusters
/// receive one random member so that every co-cluster contains at least one
/// user and one item, as the model requires.
fn assign_sets(n: usize, k: usize, size: usize, overlap: f64, rng: &mut StdRng) -> Vec<Vec<usize>> {
    let extra_p = if k > 1 {
        (overlap / (k - 1) as f64).min(1.0)
    } else {
        0.0
    };
    let mut sets: Vec<Vec<usize>> = vec![Vec::new(); k];
    for e in 0..n {
        let home = rng.gen_range(0..k);
        sets[home].push(e);
        for (c, set) in sets.iter_mut().enumerate() {
            if c != home && rng.gen::<f64>() < extra_p {
                set.push(e);
            }
        }
    }
    for set in sets.iter_mut() {
        if set.len() > size {
            set.shuffle(rng);
            set.truncate(size);
        }
        if set.is_empty() && n > 0 {
            set.push(rng.gen_range(0..n));
        }
        set.sort_unstable();
        set.dedup();
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_sizes() {
        let cfg = PlantedConfig::default();
        let d = generate(&cfg);
        assert_eq!(d.matrix.n_rows(), cfg.n_users);
        assert_eq!(d.matrix.n_cols(), cfg.n_items);
        assert_eq!(d.truth.k(), cfg.k);
        for c in 0..cfg.k {
            assert!(!d.truth.user_sets[c].is_empty());
            assert!(d.truth.user_sets[c].len() <= cfg.users_per_cluster);
            assert!(!d.truth.item_sets[c].is_empty());
            assert!(d.truth.item_sets[c].len() <= cfg.items_per_cluster);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = PlantedConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.truth, b.truth);
        let c = generate(&PlantedConfig { seed: 1, ..cfg });
        assert_ne!(a.matrix, c.matrix);
    }

    #[test]
    fn in_cluster_density_dominates_noise() {
        let cfg = PlantedConfig {
            within_density: 0.8,
            noise_density: 0.001,
            ..Default::default()
        };
        let d = generate(&cfg);
        // measure density inside cluster 0 vs far outside any cluster
        let us = &d.truth.user_sets[0];
        let is = &d.truth.item_sets[0];
        let mut inside = 0usize;
        for &u in us {
            for &i in is {
                if d.matrix.contains(u, i) {
                    inside += 1;
                }
            }
        }
        let inside_density = inside as f64 / (us.len() * is.len()) as f64;
        assert!(inside_density > 0.6, "inside density {inside_density}");
        let mut outside = 0usize;
        let mut outside_cells = 0usize;
        for u in 0..cfg.n_users {
            for i in 0..cfg.n_items {
                if !d.truth.pair_in_some_cluster(u, i) {
                    outside_cells += 1;
                    if d.matrix.contains(u, i) {
                        outside += 1;
                    }
                }
            }
        }
        let outside_density = outside as f64 / outside_cells as f64;
        assert!(outside_density < 0.01, "outside density {outside_density}");
    }

    #[test]
    fn overlap_zero_gives_single_membership() {
        let cfg = PlantedConfig {
            user_overlap: 0.0,
            users_per_cluster: 300, // unbinding cap
            k: 6,
            n_users: 300,
            ..Default::default()
        };
        let d = generate(&cfg);
        let multi = (0..cfg.n_users)
            .filter(|&u| d.truth.user_membership_count(u) > 1)
            .count();
        // only the empty-cluster rescue path could add memberships
        assert!(multi <= cfg.k, "{multi} users have multiple memberships");
    }

    #[test]
    fn overlap_increases_membership() {
        // caps set high enough not to bind, so overlap drives membership
        let base = PlantedConfig {
            user_overlap: 0.0,
            users_per_cluster: 300,
            items_per_cluster: 200,
            ..Default::default()
        };
        let heavy = PlantedConfig {
            user_overlap: 2.0,
            ..base.clone()
        };
        let a = generate(&base);
        let b = generate(&heavy);
        let avg = |d: &PlantedDataset| {
            (0..d.config.n_users)
                .map(|u| d.truth.user_membership_count(u))
                .sum::<usize>() as f64
                / d.config.n_users as f64
        };
        assert!(
            avg(&b) > avg(&a) + 0.5,
            "overlap 2.0 should raise avg membership: {} vs {}",
            avg(&b),
            avg(&a)
        );
    }

    #[test]
    fn truth_pair_queries() {
        let truth = CoClusterTruth {
            user_sets: vec![vec![0, 1], vec![1, 2]],
            item_sets: vec![vec![5], vec![5, 6]],
        };
        assert!(truth.pair_in_some_cluster(0, 5));
        assert!(truth.pair_in_some_cluster(2, 6));
        assert!(!truth.pair_in_some_cluster(0, 6));
        assert_eq!(truth.clusters_of_pair(1, 5), vec![0, 1]);
        assert_eq!(truth.user_membership_count(1), 2);
    }
}
