//! Per-dataset presets mirroring Section VII-A of the paper.
//!
//! Each profile is a parameterisation of the power-law generator chosen so
//! the synthetic matrix matches the corresponding real dataset in aspect
//! ratio, density, degree skew, and presence of overlapping co-cluster
//! structure — scaled down by default so the full Table I harness runs on a
//! laptop in minutes. [`Scale`] multiplies the dimensions back up
//! (`Scale::Paper` approximates the original sizes).
//!
//! | profile | paper dataset | paper shape | density (≥3 thresholded) |
//! |---|---|---|---|
//! | [`movielens_like`] | MovieLens 1M | 6,040 × 3,706 | ≈ 3.7 % |
//! | [`citeulike_like`] | CiteULike | 5,551 × 16,980 | ≈ 0.22 % |
//! | [`b2b_like`] | B2B-DB (IBM) | 80,000 × 3,000 | undisclosed (sparse) |
//! | [`netflix_like`] | Netflix | 480,189 × 17,770 | ≈ 0.66 % |

use crate::planted::PlantedDataset;
use crate::powerlaw::{self, PowerLawConfig};

/// Size multiplier applied to a profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scale {
    /// Fast default (≈10× smaller than the paper); minutes on a laptop.
    Small,
    /// Intermediate (≈3× smaller).
    Medium,
    /// Approximately the paper's dimensions. Heavy: reserve for real runs.
    Paper,
    /// Custom multiplier on the small profile's dimensions and nnz.
    Factor(
        /// The multiplier (1.0 = Small).
        f64,
    ),
}

impl Scale {
    fn factor(self) -> f64 {
        match self {
            Scale::Small => 1.0,
            Scale::Medium => 3.0,
            Scale::Paper => 10.0,
            Scale::Factor(f) => f,
        }
    }
}

fn scaled(base: PowerLawConfig, scale: Scale, seed: u64) -> PlantedDataset {
    let f = scale.factor();
    let cfg = PowerLawConfig {
        n_users: (base.n_users as f64 * f) as usize,
        n_items: (base.n_items as f64 * f).max(base.n_items as f64) as usize,
        // K and nnz grow with area ~ f (users × fixed item catalogue growth is
        // sublinear; nnz scales with user count)
        k: ((base.k as f64) * f.sqrt()).round() as usize,
        target_nnz: (base.target_nnz as f64 * f) as usize,
        seed,
        ..base
    };
    powerlaw::generate(&cfg)
}

/// MovieLens-1M stand-in. Small default: 900 × 500 with ≈ 40 positives per
/// user. Scaling note: uniform 10× shrinkage of both axes at the original
/// density would leave ≈ 14 positives/user (the real dataset has ≈ 138),
/// starving every CF method, so the profiles preserve *per-user degree*
/// and in-cluster density (the quantities that drive the Table I ordering)
/// rather than raw matrix density.
pub fn movielens_like(scale: Scale, seed: u64) -> PlantedDataset {
    scaled(
        PowerLawConfig {
            n_users: 900,
            n_items: 500,
            k: 18,
            target_nnz: 36_000,
            structure_fraction: 0.85,
            item_exponent: 0.8,
            user_exponent: 0.5,
            user_overlap: 1.0,
            item_overlap: 1.0,
            seed,
        },
        scale,
        seed,
    )
}

/// CiteULike stand-in. Small default: 555 × 1,698 with ≈ 37 positives per
/// user (the real dataset's per-user degree), many small niche co-clusters,
/// long item tail.
pub fn citeulike_like(scale: Scale, seed: u64) -> PlantedDataset {
    scaled(
        PowerLawConfig {
            n_users: 555,
            n_items: 1_698,
            k: 24,
            target_nnz: 30_000,
            structure_fraction: 0.8,
            item_exponent: 1.0,
            user_exponent: 0.5,
            user_overlap: 0.8,
            item_overlap: 0.8,
            seed,
        },
        scale,
        seed,
    )
}

/// B2B-DB stand-in (the paper's proprietary IBM client–product data).
/// Small default: 8,000 × 300 — many clients, few products, pronounced
/// co-purchase blocks (industry verticals), low noise.
pub fn b2b_like(scale: Scale, seed: u64) -> PlantedDataset {
    scaled(
        PowerLawConfig {
            n_users: 8_000,
            n_items: 300,
            k: 20,
            target_nnz: 150_000,
            structure_fraction: 0.85,
            item_exponent: 0.7,
            user_exponent: 0.5,
            user_overlap: 0.6,
            item_overlap: 1.0,
            seed,
        },
        scale,
        seed,
    )
}

/// Netflix stand-in used by the scalability experiments (Figures 7–8).
/// Small default: 4,801 × 1,777 at Netflix's ≈ 0.66 % thresholded density
/// (≈ 56k positives); `Scale::Paper` reaches ≈ 5.6 M positives.
pub fn netflix_like(scale: Scale, seed: u64) -> PlantedDataset {
    scaled(
        PowerLawConfig {
            n_users: 4_801,
            n_items: 1_777,
            k: 20,
            target_nnz: 56_000,
            structure_fraction: 0.85,
            item_exponent: 1.0,
            user_exponent: 0.6,
            user_overlap: 1.0,
            item_overlap: 1.0,
            seed,
        },
        scale,
        seed,
    )
}

/// All four profiles with their paper names, for table-driven harnesses.
pub fn all_profiles(scale: Scale, seed: u64) -> Vec<(&'static str, PlantedDataset)> {
    vec![
        ("Movielens", movielens_like(scale, seed)),
        ("CiteULike", citeulike_like(scale, seed)),
        ("B2B-DB", b2b_like(scale, seed)),
        ("Netflix", netflix_like(scale, seed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocular_sparse::stats::MatrixStats;

    #[test]
    fn movielens_density_matches_target() {
        let d = movielens_like(Scale::Small, 0);
        let density = d.matrix.density();
        assert!(
            (0.015..0.06).contains(&density),
            "movielens-like density {density} should be a few percent"
        );
    }

    #[test]
    fn citeulike_is_much_sparser_than_movielens() {
        let ml = movielens_like(Scale::Small, 0).matrix.density();
        let cu = citeulike_like(Scale::Small, 0).matrix.density();
        assert!(cu < ml / 2.5, "citeulike {cu} vs movielens {ml}");
    }

    #[test]
    fn b2b_shape_is_wide() {
        let d = b2b_like(Scale::Small, 0);
        assert!(
            d.matrix.n_rows() > 20 * d.matrix.n_cols() / 2,
            "clients ≫ products"
        );
        assert_eq!(d.matrix.n_rows(), 8_000);
        assert_eq!(d.matrix.n_cols(), 300);
    }

    #[test]
    fn scales_grow_dimensions() {
        let s = movielens_like(Scale::Small, 0);
        let m = movielens_like(Scale::Factor(2.0), 0);
        assert_eq!(m.matrix.n_rows(), 2 * s.matrix.n_rows());
        assert!(m.matrix.nnz() > s.matrix.nnz());
    }

    #[test]
    fn profiles_are_deterministic() {
        let a = citeulike_like(Scale::Small, 7);
        let b = citeulike_like(Scale::Small, 7);
        assert_eq!(a.matrix, b.matrix);
    }

    #[test]
    fn all_profiles_have_heavy_item_tails() {
        for (name, d) in all_profiles(Scale::Small, 0) {
            let s = MatrixStats::compute(&d.matrix);
            assert!(
                s.item_degrees.gini > 0.25,
                "{name}: item gini {} too flat",
                s.item_degrees.gini
            );
        }
    }
}
