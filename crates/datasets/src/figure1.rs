//! The 12×12 toy example of the paper's Figures 1–3.
//!
//! The paper introduces OCuLaR with a 12-user × 12-item matrix containing
//! three *overlapping* co-clusters and three held-out cells ("white squares
//! inside the co-clusters") that a correct method should surface as
//! recommendations. Figure 3 fits the model and recommends Item 4 to User 6
//! with probability ≈ 0.83, explained by two co-clusters.
//!
//! The published figure specifies the three held-out cells only visually; we
//! place one in each co-cluster, with (6, 4) — the paper's worked example,
//! "Item 4 is recommended to Client 6 with confidence 0.83" — sitting in the
//! overlap of co-clusters B and C so its explanation spans two clusters
//! exactly as in Figure 3.
//!
//! * co-cluster **A**: users {0, 1, 2} × items {3, 4, 5, 6}
//! * co-cluster **B**: users {4, 5, 6} × items {1, 2, 3, 4}
//! * co-cluster **C**: users {6, 7, 8, 9} × items {4, 5, 6, 7, 8, 9}
//! * held-out cells (expected recommendations): (1, 5), (6, 4), (9, 8)
//!
//! Users 3, 10, 11 and items 0, 10, 11 are intentionally empty, as in the
//! paper's figure (they separate the blocks visually and exercise the
//! cold-start edge case).

use crate::planted::CoClusterTruth;
use ocular_sparse::{CsrMatrix, Dataset, Triplets};

/// Number of users in the toy example.
pub const N_USERS: usize = 12;
/// Number of items in the toy example.
pub const N_ITEMS: usize = 12;
/// The three held-out (user, item) cells the algorithm should recommend.
pub const HELD_OUT: [(usize, usize); 3] = [(1, 5), (6, 4), (9, 8)];

/// The toy dataset: matrix, ground-truth co-clusters and the held-out cells.
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// The observed interaction store (held-out cells are *absent*).
    pub matrix: Dataset,
    /// The three overlapping co-clusters.
    pub truth: CoClusterTruth,
    /// The complete matrix including the held-out cells, for reference.
    pub complete: CsrMatrix,
}

/// Builds the Figure 1 example.
pub fn figure1() -> Figure1 {
    let truth = CoClusterTruth {
        user_sets: vec![vec![0, 1, 2], vec![4, 5, 6], vec![6, 7, 8, 9]],
        item_sets: vec![vec![3, 4, 5, 6], vec![1, 2, 3, 4], vec![4, 5, 6, 7, 8, 9]],
    };
    let mut complete = Triplets::new(N_USERS, N_ITEMS);
    for (us, is) in truth.user_sets.iter().zip(&truth.item_sets) {
        for &u in us {
            for &i in is {
                complete.push(u, i).expect("in bounds");
            }
        }
    }
    let complete = complete.into_csr();
    let mut observed = Triplets::new(N_USERS, N_ITEMS);
    for (u, i) in complete.iter_nnz() {
        if !HELD_OUT.contains(&(u, i)) {
            observed.push(u, i).expect("in bounds");
        }
    }
    Figure1 {
        matrix: Dataset::from_matrix(observed.into_csr()),
        truth,
        complete,
    }
}

/// Renders a binary matrix as ASCII art (rows = users), with `■` for
/// positives, `·` for unknowns and `○` for a set of highlighted cells —
/// the textual equivalent of the paper's Figure 1.
pub fn render_ascii(m: &CsrMatrix, highlight: &[(usize, usize)]) -> String {
    let mut out = String::new();
    out.push_str("     ");
    for i in 0..m.n_cols() {
        out.push_str(&format!("{:>2}", i % 100));
    }
    out.push('\n');
    for u in 0..m.n_rows() {
        out.push_str(&format!("u{u:>3} "));
        for i in 0..m.n_cols() {
            if m.contains(u, i) {
                out.push_str(" ■");
            } else if highlight.contains(&(u, i)) {
                out.push_str(" ○");
            } else {
                out.push_str(" ·");
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_excludes_held_out() {
        let f = figure1();
        for &(u, i) in &HELD_OUT {
            assert!(!f.matrix.contains(u, i), "({u},{i}) must be held out");
            assert!(f.complete.contains(u, i), "({u},{i}) must be in complete");
        }
        assert_eq!(f.complete.nnz(), f.matrix.nnz() + HELD_OUT.len());
    }

    #[test]
    fn narrative_matches_paper() {
        let f = figure1();
        // "users 4 & 5 have purchased items 1-4"
        for u in [4, 5] {
            for i in 1..=4 {
                assert!(f.matrix.contains(u, i));
            }
        }
        // "user 6 has items 1-3" and "has purchased items 5-9"
        for i in 1..=3 {
            assert!(f.matrix.contains(6, i));
        }
        for i in 5..=9 {
            assert!(f.matrix.contains(6, i));
        }
        assert!(
            !f.matrix.contains(6, 4),
            "item 4 is the recommendation target"
        );
        // "Users 7,8,9 have purchase patterns of items 4-9" (9's held-out
        // cell at item 8 aside)
        for u in [7, 8] {
            for i in 4..=9 {
                assert!(f.matrix.contains(u, i));
            }
        }
        assert!(f.matrix.contains(9, 4));
        assert!(!f.matrix.contains(9, 8), "(9,8) is held out");
    }

    #[test]
    fn empty_rows_and_cols() {
        let f = figure1();
        for u in [3, 10, 11] {
            assert_eq!(f.matrix.row_nnz(u), 0, "user {u} should be empty");
        }
        let cd = f.matrix.col_degrees();
        for i in [0, 10, 11] {
            assert_eq!(cd[i], 0, "item {i} should be cold");
        }
    }

    #[test]
    fn item4_is_in_all_three_clusters() {
        let f = figure1();
        let clusters: Vec<usize> = (0..3)
            .filter(|&c| f.truth.item_sets[c].binary_search(&4).is_ok())
            .collect();
        assert_eq!(clusters, vec![0, 1, 2]);
        // user 6 is in clusters 1 (B) and 2 (C) only
        assert_eq!(f.truth.clusters_of_pair(6, 4), vec![1, 2]);
    }

    #[test]
    fn ascii_render_marks_cells() {
        let f = figure1();
        let art = render_ascii(&f.matrix, &HELD_OUT);
        assert!(art.contains('■'));
        assert!(art.contains('○'));
        assert_eq!(art.lines().count(), N_USERS + 1);
    }
}
