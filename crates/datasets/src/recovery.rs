//! Scoring recovered co-clusters against planted truth.
//!
//! Figure 2 of the paper argues that Modularity and BIGCLAM *"fail to reveal
//! the correct co-clustering structure"* on the toy example. To make that
//! comparison quantitative we score a recovered clustering against the
//! planted truth with best-match F1 — the standard community-recovery
//! measure used by the BIGCLAM paper itself (Yang & Leskovec, WSDM 2013).

use crate::planted::CoClusterTruth;

/// A recovered co-cluster: a set of users and a set of items (either may be
/// empty for unipartite community detectors that mix the two sides).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveredCluster {
    /// Users assigned to the cluster (sorted).
    pub users: Vec<usize>,
    /// Items assigned to the cluster (sorted).
    pub items: Vec<usize>,
}

impl RecoveredCluster {
    /// Builds with sorted, deduplicated members.
    pub fn new(mut users: Vec<usize>, mut items: Vec<usize>) -> Self {
        users.sort_unstable();
        users.dedup();
        items.sort_unstable();
        items.dedup();
        RecoveredCluster { users, items }
    }
}

fn intersection_size(a: &[usize], b: &[usize]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// F1 between a truth cluster `(us, is)` and a recovered cluster, treating
/// users and items as one joint set (items offset to avoid id collisions is
/// unnecessary because the sets are kept separate).
fn pair_f1(tu: &[usize], ti: &[usize], r: &RecoveredCluster) -> f64 {
    let inter = intersection_size(tu, &r.users) + intersection_size(ti, &r.items);
    let truth_size = tu.len() + ti.len();
    let rec_size = r.users.len() + r.items.len();
    if inter == 0 || truth_size == 0 || rec_size == 0 {
        return 0.0;
    }
    let precision = inter as f64 / rec_size as f64;
    let recall = inter as f64 / truth_size as f64;
    2.0 * precision * recall / (precision + recall)
}

/// Symmetric best-match F1 (Yang & Leskovec eq. 6): the average of
/// (a) every truth cluster matched to its best recovered cluster and
/// (b) every recovered cluster matched to its best truth cluster.
/// 1.0 = exact recovery; degenerate inputs score 0.
pub fn best_match_f1(truth: &CoClusterTruth, recovered: &[RecoveredCluster]) -> f64 {
    if truth.k() == 0 || recovered.is_empty() {
        return 0.0;
    }
    let truth_side: f64 = truth
        .user_sets
        .iter()
        .zip(&truth.item_sets)
        .map(|(tu, ti)| {
            recovered
                .iter()
                .map(|r| pair_f1(tu, ti, r))
                .fold(0.0, f64::max)
        })
        .sum::<f64>()
        / truth.k() as f64;
    let rec_side: f64 = recovered
        .iter()
        .map(|r| {
            truth
                .user_sets
                .iter()
                .zip(&truth.item_sets)
                .map(|(tu, ti)| pair_f1(tu, ti, r))
                .fold(0.0, f64::max)
        })
        .sum::<f64>()
        / recovered.len() as f64;
    0.5 * (truth_side + rec_side)
}

/// Fraction of held-out cells covered by at least one recovered cluster
/// containing both endpoints — "how many of the three candidate
/// recommendations would this clustering have identified" (Figure 2's
/// criterion: Modularity/BIGCLAM identify only 1 of 3).
pub fn held_out_coverage(held_out: &[(usize, usize)], recovered: &[RecoveredCluster]) -> f64 {
    if held_out.is_empty() {
        return 0.0;
    }
    let covered = held_out
        .iter()
        .filter(|&&(u, i)| {
            recovered
                .iter()
                .any(|r| r.users.binary_search(&u).is_ok() && r.items.binary_search(&i).is_ok())
        })
        .count();
    covered as f64 / held_out.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_truth() -> CoClusterTruth {
        CoClusterTruth {
            user_sets: vec![vec![0, 1, 2], vec![4, 5, 6]],
            item_sets: vec![vec![3, 4], vec![1, 2]],
        }
    }

    #[test]
    fn perfect_recovery_scores_one() {
        let truth = toy_truth();
        let rec = vec![
            RecoveredCluster::new(vec![0, 1, 2], vec![3, 4]),
            RecoveredCluster::new(vec![4, 5, 6], vec![1, 2]),
        ];
        assert!((best_match_f1(&truth, &rec) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_recovery_scores_zero() {
        let truth = toy_truth();
        let rec = vec![RecoveredCluster::new(vec![10, 11], vec![9])];
        assert_eq!(best_match_f1(&truth, &rec), 0.0);
    }

    #[test]
    fn partial_recovery_in_between() {
        let truth = toy_truth();
        let rec = vec![
            RecoveredCluster::new(vec![0, 1], vec![3]), // subset of cluster 0
            RecoveredCluster::new(vec![4, 5, 6], vec![1, 2]), // exact cluster 1
        ];
        let f1 = best_match_f1(&truth, &rec);
        assert!(f1 > 0.5 && f1 < 1.0, "f1 = {f1}");
    }

    #[test]
    fn merging_clusters_is_penalised() {
        // one giant recovered cluster covering both truths (the Figure 2
        // failure mode) scores below separate exact recovery
        let truth = toy_truth();
        let merged = vec![RecoveredCluster::new(
            vec![0, 1, 2, 4, 5, 6],
            vec![1, 2, 3, 4],
        )];
        let exact = vec![
            RecoveredCluster::new(vec![0, 1, 2], vec![3, 4]),
            RecoveredCluster::new(vec![4, 5, 6], vec![1, 2]),
        ];
        assert!(best_match_f1(&truth, &merged) < best_match_f1(&truth, &exact));
    }

    #[test]
    fn coverage_counts_contained_cells() {
        let rec = vec![RecoveredCluster::new(vec![0, 1], vec![3, 4])];
        let cells = [(0, 3), (1, 4), (5, 5)];
        assert!((held_out_coverage(&cells, &rec) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(held_out_coverage(&[], &rec), 0.0);
    }

    #[test]
    fn empty_inputs_score_zero() {
        assert_eq!(best_match_f1(&toy_truth(), &[]), 0.0);
        let empty = CoClusterTruth {
            user_sets: vec![],
            item_sets: vec![],
        };
        assert_eq!(best_match_f1(&empty, &[RecoveredCluster::default()]), 0.0);
    }
}
