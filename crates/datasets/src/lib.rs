//! # ocular-datasets
//!
//! Dataset substrate for the OCuLaR reproduction: synthetic generators with
//! *known* overlapping co-cluster structure, plus parameterised stand-ins for
//! the four datasets of the paper's evaluation (Section VII-A).
//!
//! ## Why synthetic stand-ins
//!
//! The paper evaluates on one proprietary dataset (**B2B-DB**, 80,000 clients
//! × 3,000 products from IBM) and three public ones (**CiteULike**,
//! **MovieLens-1M**, **Netflix**). None of these files can ship with the
//! repository, so each profile in [`profiles`] generates a matrix with the
//! same *shape characteristics* — user/item counts (scaled), density,
//! heavy-tailed degree distributions, and planted overlapping co-cluster
//! structure. The recommendation algorithms only ever see a sparse binary
//! matrix, and the relative ordering of methods in Table I is driven by the
//! presence of overlapping block structure plus noise, which the generators
//! control explicitly. Loaders for the real file formats live in
//! [`ocular_sparse::io`], so anyone holding the actual datasets can
//! reproduce the original numbers with the same harness.
//!
//! ## Contents
//!
//! * [`planted`] — the core generator: overlapping user-item co-clusters with
//!   configurable sizes, overlap, in-cluster density and background noise,
//!   returning the ground truth alongside the matrix;
//! * [`figure1`] — the 12×12 toy example of Figures 1–3;
//! * [`powerlaw`] — heavy-tailed degree machinery layered on the planted
//!   generator;
//! * [`profiles`] — per-dataset presets (`movielens_like`, `citeulike_like`,
//!   `b2b_like`, `netflix_like`);
//! * [`ratings`] — 1–5 star rating synthesis + the paper's ≥3 thresholding;
//! * [`recovery`] — set-overlap metrics scoring recovered co-clusters
//!   against the planted truth (used for the Figure 2 comparison).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figure1;
pub mod planted;
pub mod powerlaw;
pub mod profiles;
pub mod ratings;
pub mod recovery;

pub use planted::{CoClusterTruth, PlantedConfig, PlantedDataset};
