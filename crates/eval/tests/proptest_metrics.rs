//! Property-based invariants of the evaluation machinery.

use ocular_eval::metrics::{
    average_precision_at, ndcg_at, precision_at, prefix_metrics, recall_at,
};
use ocular_eval::ranking::top_m_excluding;
use proptest::prelude::*;

/// Rankings are item lists *without repeats* (as produced by
/// `top_m_excluding`); the metric definitions assume this.
fn arb_case() -> impl Strategy<Value = (Vec<usize>, Vec<u32>)> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    (1usize..50).prop_flat_map(|n_items| {
        (
            proptest::collection::btree_set(0..n_items, 0..20.min(n_items)),
            proptest::collection::btree_set(0..n_items as u32, 0..10),
            any::<u64>(),
        )
            .prop_map(|(ranked_set, rel, order_seed)| {
                let mut ranked: Vec<usize> = ranked_set.into_iter().collect();
                let mut rng = rand::rngs::StdRng::seed_from_u64(order_seed);
                ranked.shuffle(&mut rng);
                (ranked, rel.into_iter().collect::<Vec<u32>>())
            })
    })
}

proptest! {
    #[test]
    fn metrics_are_bounded((ranked, rel) in arb_case(), m in 1usize..30) {
        for v in [
            recall_at(&ranked, &rel, m),
            precision_at(&ranked, &rel, m),
            average_precision_at(&ranked, &rel, m),
            ndcg_at(&ranked, &rel, m),
        ] {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "metric out of bounds: {v}");
        }
    }

    #[test]
    fn recall_monotone_in_m((ranked, rel) in arb_case()) {
        let mut prev = 0.0;
        for m in 1..=ranked.len() + 2 {
            let r = recall_at(&ranked, &rel, m);
            prop_assert!(r >= prev - 1e-12, "recall decreased at m={m}");
            prev = r;
        }
    }

    #[test]
    fn prefix_matches_pointwise((ranked, rel) in arb_case()) {
        let max_m = 25;
        let (recall, ap) = prefix_metrics(&ranked, &rel, max_m);
        for m in 1..=max_m {
            prop_assert!((recall[m - 1] - recall_at(&ranked, &rel, m)).abs() < 1e-12);
            prop_assert!((ap[m - 1] - average_precision_at(&ranked, &rel, m)).abs() < 1e-12);
        }
    }

    #[test]
    fn top_m_is_sorted_and_excludes(scores in proptest::collection::vec(-5.0f64..5.0, 1..40),
                                    m in 1usize..20) {
        let exclude: Vec<u32> = (0..scores.len() as u32).step_by(3).collect();
        let ranked = top_m_excluding(&scores, &exclude, m);
        prop_assert!(ranked.len() <= m);
        for w in ranked.windows(2) {
            let better = scores[w[0]] > scores[w[1]]
                || (scores[w[0]] == scores[w[1]] && w[0] < w[1]);
            prop_assert!(better, "ranking order violated: {:?} vs {:?}", w[0], w[1]);
        }
        for &i in &ranked {
            prop_assert!(exclude.binary_search(&(i as u32)).is_err(), "excluded item {i} ranked");
        }
    }

    #[test]
    fn top_m_matches_full_sort(scores in proptest::collection::vec(-5.0f64..5.0, 1..40),
                               m in 1usize..20) {
        let ranked = top_m_excluding(&scores, &[], m);
        let mut expected: Vec<usize> = (0..scores.len()).collect();
        expected.sort_by(|&a, &b| {
            scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b))
        });
        expected.truncate(m);
        prop_assert_eq!(ranked, expected);
    }

    #[test]
    fn perfect_ranking_maximises_every_metric((_, rel) in arb_case(), m in 1usize..20) {
        if rel.is_empty() {
            return Ok(());
        }
        // ranking that lists all relevant items first
        let perfect: Vec<usize> = rel.iter().map(|&i| i as usize).collect();
        let ap = average_precision_at(&perfect, &rel, m);
        prop_assert!((ap - 1.0).abs() < 1e-12, "perfect AP = {ap}");
        let expected_recall = (rel.len().min(m)) as f64 / rel.len() as f64;
        prop_assert!((recall_at(&perfect, &rel, m) - expected_recall).abs() < 1e-12);
    }
}
