//! The paper's evaluation protocol.
//!
//! Train on the 75% split, score every user against every unseen item,
//! take the top-M, and average recall@M / MAP@M over users that have at
//! least one held-out positive; repeat over independent problem instances
//! and average (Section VII-B2). The recommender is consumed through the
//! workspace trait hierarchy ([`ocular_api::Recommender`]) — any model
//! kind plugs in, and synthetic oracles wrap a closure in
//! [`ocular_api::FnScorer`].

use crate::metrics::{average_precision_at, ndcg_at, recall_at};
use crate::ranking::top_m_excluding;
use ocular_api::Recommender;
use ocular_sparse::CsrMatrix;

/// Aggregated evaluation result.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Cutoff M used.
    pub m: usize,
    /// Mean recall@M over evaluated users.
    pub recall: f64,
    /// Mean AP@M over evaluated users (the paper's MAP@M).
    pub map: f64,
    /// Mean NDCG@M (extra).
    pub ndcg: f64,
    /// Number of users with ≥1 held-out positive (the averaging population).
    pub evaluated_users: usize,
}

impl std::fmt::Display for EvalReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recall@{m} = {recall:.4}, MAP@{m} = {map:.4} ({users} users)",
            m = self.m,
            recall = self.recall,
            map = self.map,
            users = self.evaluated_users
        )
    }
}

/// Evaluates a recommender at cutoff `m` under the paper's protocol.
///
/// The model's [`score_user`](ocular_api::ScoreItems::score_user) fills the
/// per-user score buffer; training positives are excluded from the ranking
/// here, so the model does not need to mask them.
pub fn evaluate(
    model: &dyn Recommender,
    train: &CsrMatrix,
    test: &CsrMatrix,
    m: usize,
) -> EvalReport {
    assert_eq!(train.n_rows(), test.n_rows(), "train/test user mismatch");
    assert_eq!(train.n_cols(), test.n_cols(), "train/test item mismatch");
    let mut buf: Vec<f64> = vec![0.0; train.n_cols()];
    let (mut recall_sum, mut map_sum, mut ndcg_sum, mut n) = (0.0, 0.0, 0.0, 0usize);
    for u in 0..train.n_rows() {
        let held_out = test.row(u);
        if held_out.is_empty() {
            continue;
        }
        model.score_user(u, &mut buf);
        let ranked = top_m_excluding(&buf, train.row(u), m);
        recall_sum += recall_at(&ranked, held_out, m);
        map_sum += average_precision_at(&ranked, held_out, m);
        ndcg_sum += ndcg_at(&ranked, held_out, m);
        n += 1;
    }
    let denom = n.max(1) as f64;
    EvalReport {
        m,
        recall: recall_sum / denom,
        map: map_sum / denom,
        ndcg: ndcg_sum / denom,
        evaluated_users: n,
    }
}

/// Averages reports from independent problem instances (the paper averages
/// over 10). All reports must share the same cutoff.
pub fn average_reports(reports: &[EvalReport]) -> EvalReport {
    assert!(!reports.is_empty(), "need at least one report");
    let m = reports[0].m;
    assert!(
        reports.iter().all(|r| r.m == m),
        "cutoff mismatch across instances"
    );
    let n = reports.len() as f64;
    EvalReport {
        m,
        recall: reports.iter().map(|r| r.recall).sum::<f64>() / n,
        map: reports.iter().map(|r| r.map).sum::<f64>() / n,
        ndcg: reports.iter().map(|r| r.ndcg).sum::<f64>() / n,
        evaluated_users: (reports.iter().map(|r| r.evaluated_users).sum::<usize>() as f64 / n)
            .round() as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocular_api::FnScorer;
    use ocular_sparse::CsrMatrix;

    /// An oracle scorer that knows the test set scores perfectly.
    fn oracle(test: &CsrMatrix) -> FnScorer<impl Fn(usize, &mut Vec<f64>) + Send + Sync + '_> {
        FnScorer::new("oracle", test.n_rows(), test.n_cols(), move |u, buf| {
            for &i in test.row(u) {
                buf[i as usize] = 1.0;
            }
        })
    }

    #[test]
    fn oracle_achieves_perfect_metrics() {
        let train = CsrMatrix::from_pairs(2, 5, &[(0, 0), (1, 1)]).unwrap();
        let test = CsrMatrix::from_pairs(2, 5, &[(0, 2), (0, 3), (1, 4)]).unwrap();
        let report = evaluate(&oracle(&test), &train, &test, 3);
        assert_eq!(report.evaluated_users, 2);
        assert!((report.recall - 1.0).abs() < 1e-12);
        assert!((report.map - 1.0).abs() < 1e-12);
    }

    #[test]
    fn adversarial_scorer_gets_zero() {
        let train = CsrMatrix::from_pairs(1, 6, &[(0, 0)]).unwrap();
        let test = CsrMatrix::from_pairs(1, 6, &[(0, 5)]).unwrap();
        // scores that rank the held-out item last
        let worst = FnScorer::new("adversary", 1, 6, |_, buf| {
            for (i, b) in buf.iter_mut().enumerate() {
                *b = -(i as f64);
            }
        });
        let report = evaluate(&worst, &train, &test, 3);
        assert_eq!(report.recall, 0.0);
        assert_eq!(report.map, 0.0);
    }

    #[test]
    fn users_without_test_positives_skipped() {
        let train = CsrMatrix::from_pairs(3, 4, &[(0, 0), (1, 0), (2, 0)]).unwrap();
        let test = CsrMatrix::from_pairs(3, 4, &[(1, 2)]).unwrap();
        let report = evaluate(&oracle(&test), &train, &test, 2);
        assert_eq!(report.evaluated_users, 1);
        assert_eq!(report.recall, 1.0);
    }

    #[test]
    fn training_positives_never_recommended() {
        let train = CsrMatrix::from_pairs(1, 4, &[(0, 0), (0, 1)]).unwrap();
        let test = CsrMatrix::from_pairs(1, 4, &[(0, 3)]).unwrap();
        // uniform scores: the ranking can only contain items 2 and 3
        let uniform = FnScorer::new("uniform", 1, 4, |_, buf| buf.fill(1.0));
        let report = evaluate(&uniform, &train, &test, 2);
        assert_eq!(report.recall, 1.0, "item 3 must appear in the top 2");
    }

    #[test]
    fn average_reports_means() {
        let a = EvalReport {
            m: 5,
            recall: 0.4,
            map: 0.2,
            ndcg: 0.3,
            evaluated_users: 10,
        };
        let b = EvalReport {
            m: 5,
            recall: 0.6,
            map: 0.4,
            ndcg: 0.5,
            evaluated_users: 12,
        };
        let avg = average_reports(&[a, b]);
        assert!((avg.recall - 0.5).abs() < 1e-12);
        assert!((avg.map - 0.3).abs() < 1e-12);
        assert_eq!(avg.evaluated_users, 11);
    }

    #[test]
    #[should_panic(expected = "cutoff mismatch")]
    fn mismatched_cutoffs_panic() {
        let a = EvalReport {
            m: 5,
            recall: 0.0,
            map: 0.0,
            ndcg: 0.0,
            evaluated_users: 1,
        };
        let b = EvalReport { m: 6, ..a.clone() };
        average_reports(&[a, b]);
    }
}
