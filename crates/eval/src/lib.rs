//! # ocular-eval
//!
//! Evaluation machinery for the OCuLaR reproduction (paper Section VII-B):
//!
//! * [`metrics`] — recall@M, precision@M, AP@M / MAP@M (exactly the paper's
//!   definitions, with deterministic tie handling per McSherry & Najork) and
//!   NDCG@M as an extra;
//! * [`ranking`] — top-M selection from dense score vectors, excluding
//!   training positives;
//! * [`protocol`] — the 75/25 split evaluation loop, averaged over problem
//!   instances, consuming any [`ocular_api::Recommender`] so every model
//!   kind (OCuLaR, wALS, BPR, kNN, popularity) plugs in through the one
//!   workspace trait hierarchy;
//! * [`curves`] — recall@M / MAP@M as functions of M (Figure 5) computed in
//!   one ranking pass per user;
//! * [`gridsearch`] — the (K, λ) grid search of Figures 6 and 9,
//!   parallelised over parameter pairs exactly like the paper's Spark × GPU
//!   cluster fan-out.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crossval;
pub mod curves;
pub mod gridsearch;
pub mod metrics;
pub mod protocol;
pub mod ranking;

pub use metrics::{average_precision_at, precision_at, recall_at};
pub use protocol::{evaluate, EvalReport};
pub use ranking::top_m_excluding;
