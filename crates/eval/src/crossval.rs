//! Cross-validated hyper-parameter selection.
//!
//! Section IV-B: *"K and λ can be determined from the data via
//! cross-validation. Specifically, to determine a suitable pair of (K, λ),
//! we train a model on a subset of the given data for different choices of
//! (K, λ), and select the pair for which the corresponding model performs
//! best on the test set."* This module implements the full k-fold variant:
//! positives are partitioned into folds; each candidate is fitted on
//! k−1 folds as a [`Recommender`] and scored on the held-out fold under
//! the paper's protocol ([`crate::protocol::evaluate`]); recall@M is
//! averaged across folds.

use crate::protocol::evaluate;
use ocular_api::Recommender;
use ocular_sparse::{CsrMatrix, Dataset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A partition of the positive examples into `k` folds, by nnz position.
#[derive(Debug, Clone)]
pub struct Folds {
    /// `assignment[p]` = fold of the p-th positive (row-major nnz order).
    assignment: Vec<u8>,
    /// Number of folds.
    pub k: usize,
}

impl Folds {
    /// Randomly assigns the positives of `r` to `k` near-equal folds.
    ///
    /// # Panics
    /// Panics unless `2 ≤ k ≤ 255`.
    pub fn new(r: &CsrMatrix, k: usize, seed: u64) -> Folds {
        assert!((2..=255).contains(&k), "need 2–255 folds, got {k}");
        let mut assignment: Vec<u8> = (0..r.nnz()).map(|p| (p % k) as u8).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        assignment.shuffle(&mut rng);
        Folds { assignment, k }
    }

    /// The train/validation datasets for fold `fold`; both sides share
    /// `r`'s id maps, so external ids resolve identically across folds.
    ///
    /// # Panics
    /// Panics if `fold >= k`.
    pub fn split(&self, r: &Dataset, fold: usize) -> (Dataset, Dataset) {
        assert!(fold < self.k, "fold {fold} out of range");
        let keep_train: Vec<bool> = self
            .assignment
            .iter()
            .map(|&a| a as usize != fold)
            .collect();
        let train = r.filter_nnz(&keep_train);
        let keep_val: Vec<bool> = keep_train.iter().map(|&b| !b).collect();
        (train, r.filter_nnz(&keep_val))
    }
}

/// Result of cross-validating one candidate.
#[derive(Debug, Clone)]
pub struct CvScore<P> {
    /// The candidate's parameters.
    pub params: P,
    /// Mean validation recall@M across folds.
    pub mean: f64,
    /// Per-fold recall@M.
    pub per_fold: Vec<f64>,
}

impl<P> CvScore<P> {
    /// Sample standard deviation across folds.
    pub fn std_dev(&self) -> f64 {
        let n = self.per_fold.len();
        if n < 2 {
            return 0.0;
        }
        let var = self
            .per_fold
            .iter()
            .map(|v| (v - self.mean) * (v - self.mean))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }
}

/// Cross-validates a list of candidates. `fit(params, train)` fits the
/// candidate's model on the fold's training dataset; the model is then
/// scored on the held-out fold with recall@`m` under the evaluation
/// protocol. Returns all scores, best first.
pub fn cross_validate<P, F>(
    r: &Dataset,
    candidates: Vec<P>,
    folds: &Folds,
    m: usize,
    fit: F,
) -> Vec<CvScore<P>>
where
    P: Clone,
    F: Fn(&P, &Dataset) -> Box<dyn Recommender>,
{
    let mut scores: Vec<CvScore<P>> = candidates
        .into_iter()
        .map(|params| {
            let per_fold: Vec<f64> = (0..folds.k)
                .map(|fold| {
                    let (train, val) = folds.split(r, fold);
                    let model = fit(&params, &train);
                    evaluate(model.as_ref(), &train, &val, m).recall
                })
                .collect();
            let mean = per_fold.iter().sum::<f64>() / per_fold.len() as f64;
            CvScore {
                params,
                mean,
                per_fold,
            }
        })
        .collect();
    scores.sort_by(|a, b| b.mean.partial_cmp(&a.mean).expect("finite metrics"));
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocular_api::FnScorer;
    use ocular_sparse::Triplets;

    fn matrix() -> Dataset {
        let mut t = Triplets::new(12, 12);
        for u in 0..12 {
            for i in 0..12 {
                if (u < 6) == (i < 6) {
                    t.push(u, i).unwrap();
                }
            }
        }
        Dataset::from_matrix(t.into_csr())
    }

    #[test]
    fn folds_partition_positives() {
        let r = matrix();
        let folds = Folds::new(&r, 4, 0);
        let mut total_val = 0;
        for fold in 0..4 {
            let (train, val) = folds.split(&r, fold);
            assert_eq!(train.nnz() + val.nnz(), r.nnz());
            total_val += val.nnz();
            for (u, i) in val.iter_nnz() {
                assert!(!train.contains(u, i));
            }
        }
        // every positive is validation exactly once
        assert_eq!(total_val, r.nnz());
    }

    #[test]
    fn folds_are_balanced() {
        let r = matrix();
        let folds = Folds::new(&r, 3, 1);
        for fold in 0..3 {
            let (_, val) = folds.split(&r, fold);
            let expected = r.nnz() / 3;
            assert!(
                (val.nnz() as i64 - expected as i64).abs() <= 1,
                "fold {fold} has {} of ~{expected}",
                val.nnz()
            );
        }
    }

    #[test]
    fn folds_deterministic_per_seed() {
        let r = matrix();
        let a = Folds::new(&r, 4, 7);
        let b = Folds::new(&r, 4, 7);
        assert_eq!(a.split(&r, 0).0, b.split(&r, 0).0);
        let c = Folds::new(&r, 4, 8);
        assert_ne!(a.split(&r, 0).0, c.split(&r, 0).0);
    }

    #[test]
    fn cross_validation_ranks_candidates() {
        let r = matrix();
        let folds = Folds::new(&r, 3, 0);
        // candidates are "noise levels"; the fitted stand-in model scores
        // the true block structure degraded by the candidate's noise, so
        // lower noise must win the cross-validation
        let scores = cross_validate(&r, vec![0.9f64, 0.1, 0.5], &folds, 6, |&noise, train| {
            Box::new(FnScorer::new(
                "noisy-oracle",
                train.n_rows(),
                train.n_cols(),
                move |u, buf| {
                    for (i, b) in buf.iter_mut().enumerate() {
                        let aligned = (u < 6) == (i < 6);
                        *b = if aligned { 1.0 - noise } else { noise };
                    }
                },
            ))
        });
        assert_eq!(scores.len(), 3);
        assert_eq!(scores[0].params, 0.1, "least-noisy candidate must win");
        assert!(scores[0].mean >= scores[1].mean && scores[1].mean >= scores[2].mean);
        assert_eq!(scores[0].per_fold.len(), 3);
    }

    #[test]
    fn std_dev_computation() {
        let s = CvScore {
            params: (),
            mean: 2.0,
            per_fold: vec![1.0, 2.0, 3.0],
        };
        assert!((s.std_dev() - 1.0).abs() < 1e-12);
        let single = CvScore {
            params: (),
            mean: 1.0,
            per_fold: vec![1.0],
        };
        assert_eq!(single.std_dev(), 0.0);
    }

    #[test]
    #[should_panic(expected = "2–255 folds")]
    fn k_must_be_at_least_two() {
        Folds::new(&matrix(), 1, 0);
    }
}
