//! (K, λ) hyper-parameter grid search — Figures 6 and 9.
//!
//! The paper selects K and λ by cross-validated grid search on recall@M and
//! accelerates the search by fanning the 625 parameter pairs out over a
//! Spark cluster of GPU machines (Section VII-E). Here the same
//! embarrassingly parallel structure is expressed with rayon: each `(K, λ)`
//! cell runs the user-supplied train-and-evaluate closure independently.

use rayon::prelude::*;

/// Result of a grid search: the metric surface plus the best cell.
#[derive(Debug, Clone)]
pub struct GridResult {
    /// The K values of the grid (rows of `scores`).
    pub ks: Vec<usize>,
    /// The λ values of the grid (columns of `scores`).
    pub lambdas: Vec<f64>,
    /// `scores[ki][li]` = metric for `(ks[ki], lambdas[li])`.
    pub scores: Vec<Vec<f64>>,
    /// Best (K, λ) and its score.
    pub best: (usize, f64, f64),
}

impl GridResult {
    /// Score at a grid cell.
    pub fn score(&self, ki: usize, li: usize) -> f64 {
        self.scores[ki][li]
    }

    /// Renders the surface as a textual heatmap (the Figure 9 artefact):
    /// one row per K, one column per λ, shaded by score decile.
    pub fn render_heatmap(&self) -> String {
        let (lo, hi) = self.bounds();
        let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let mut out = String::new();
        out.push_str("        λ → ");
        for l in &self.lambdas {
            out.push_str(&format!("{l:>8.2}"));
        }
        out.push('\n');
        for (ki, k) in self.ks.iter().enumerate() {
            out.push_str(&format!("K = {k:>5}   "));
            for li in 0..self.lambdas.len() {
                let v = self.scores[ki][li];
                let t = if hi > lo { (v - lo) / (hi - lo) } else { 0.0 };
                let shade = shades[((t * 9.0).round() as usize).min(9)];
                out.push_str(&format!("  {shade}{shade}{shade}  "));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "best: K = {}, λ = {} (score {:.4}); range [{:.4}, {:.4}]\n",
            self.best.0, self.best.1, self.best.2, lo, hi
        ));
        out
    }

    /// Serialises the surface as CSV (`k,lambda,score`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("k,lambda,score\n");
        for (ki, k) in self.ks.iter().enumerate() {
            for (li, l) in self.lambdas.iter().enumerate() {
                out.push_str(&format!("{k},{l},{:.6}\n", self.scores[ki][li]));
            }
        }
        out
    }

    fn bounds(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for row in &self.scores {
            for &v in row {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        (lo, hi)
    }
}

/// Runs the grid search. `eval_cell(k, λ)` trains a model with those
/// hyper-parameters and returns the validation metric (higher = better).
/// Cells are evaluated in parallel (rayon), mirroring the paper's cluster
/// fan-out; results are deterministic because each cell is independent and
/// seeded by the caller.
///
/// # Panics
/// Panics if either axis is empty.
pub fn grid_search<F>(ks: &[usize], lambdas: &[f64], eval_cell: F) -> GridResult
where
    F: Fn(usize, f64) -> f64 + Sync,
{
    assert!(
        !ks.is_empty() && !lambdas.is_empty(),
        "grid axes must be non-empty"
    );
    let cells: Vec<(usize, usize)> = (0..ks.len())
        .flat_map(|ki| (0..lambdas.len()).map(move |li| (ki, li)))
        .collect();
    let flat: Vec<f64> = cells
        .par_iter()
        .map(|&(ki, li)| eval_cell(ks[ki], lambdas[li]))
        .collect();
    let mut scores = vec![vec![0.0; lambdas.len()]; ks.len()];
    for (&(ki, li), &v) in cells.iter().zip(&flat) {
        scores[ki][li] = v;
    }
    let mut best = (ks[0], lambdas[0], f64::NEG_INFINITY);
    for (ki, &k) in ks.iter().enumerate() {
        for (li, &l) in lambdas.iter().enumerate() {
            if scores[ki][li] > best.2 {
                best = (k, l, scores[ki][li]);
            }
        }
    }
    GridResult {
        ks: ks.to_vec(),
        lambdas: lambdas.to_vec(),
        scores,
        best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_peak() {
        // synthetic unimodal surface peaked at K=100, λ=30
        let ks = vec![50usize, 100, 200];
        let lambdas = vec![0.0, 30.0, 100.0];
        let result = grid_search(&ks, &lambdas, |k, l| {
            let dk = (k as f64 - 100.0) / 100.0;
            let dl = (l - 30.0) / 50.0;
            1.0 - dk * dk - dl * dl
        });
        assert_eq!(result.best.0, 100);
        assert_eq!(result.best.1, 30.0);
        assert!((result.best.2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn surface_shape_matches_grid() {
        let result = grid_search(&[1, 2], &[0.1, 0.2, 0.3], |k, l| k as f64 + l);
        assert_eq!(result.scores.len(), 2);
        assert_eq!(result.scores[0].len(), 3);
        assert!((result.score(1, 2) - 2.3).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_sequential() {
        let ks: Vec<usize> = (1..20).collect();
        let lambdas: Vec<f64> = (0..15).map(|i| i as f64).collect();
        let f = |k: usize, l: f64| (k as f64 * 13.7).sin() + (l * 3.1).cos();
        let par = grid_search(&ks, &lambdas, f);
        for (ki, &k) in ks.iter().enumerate() {
            for (li, &l) in lambdas.iter().enumerate() {
                assert_eq!(par.score(ki, li), f(k, l));
            }
        }
    }

    #[test]
    fn heatmap_and_csv_render() {
        let result = grid_search(&[10, 20], &[1.0, 2.0], |k, l| k as f64 * l);
        let art = result.render_heatmap();
        assert!(art.contains("K ="));
        assert!(art.contains("best: K = 20"));
        let csv = result.to_csv();
        assert!(csv.contains("k,lambda,score"));
        assert!(csv.contains("20,2,40.000000"));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_grid_panics() {
        grid_search(&[], &[1.0], |_, _| 0.0);
    }
}
