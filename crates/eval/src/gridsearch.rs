//! (K, λ) hyper-parameter grid search — Figures 6 and 9.
//!
//! The paper selects K and λ by cross-validated grid search on recall@M and
//! accelerates the search by fanning the 625 parameter pairs out over a
//! Spark cluster of GPU machines (Section VII-E). Here the same
//! embarrassingly parallel structure is expressed with rayon: each `(K, λ)`
//! cell fits a [`Recommender`] independently, and every fitted model is
//! scored with recall@M under the one evaluation protocol
//! ([`crate::protocol::evaluate`]) — the cells cannot drift apart on
//! metric definitions.

use crate::protocol::evaluate;
use ocular_api::Recommender;
use ocular_sparse::CsrMatrix;
use rayon::prelude::*;

/// Result of a grid search: the metric surface plus the best cell.
#[derive(Debug, Clone)]
pub struct GridResult {
    /// The K values of the grid (rows of `scores`).
    pub ks: Vec<usize>,
    /// The λ values of the grid (columns of `scores`).
    pub lambdas: Vec<f64>,
    /// `scores[ki][li]` = metric for `(ks[ki], lambdas[li])`.
    pub scores: Vec<Vec<f64>>,
    /// Best (K, λ) and its score.
    pub best: (usize, f64, f64),
}

impl GridResult {
    /// Score at a grid cell.
    pub fn score(&self, ki: usize, li: usize) -> f64 {
        self.scores[ki][li]
    }

    /// Renders the surface as a textual heatmap (the Figure 9 artefact):
    /// one row per K, one column per λ, shaded by score decile.
    pub fn render_heatmap(&self) -> String {
        let (lo, hi) = self.bounds();
        let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let mut out = String::new();
        out.push_str("        λ → ");
        for l in &self.lambdas {
            out.push_str(&format!("{l:>8.2}"));
        }
        out.push('\n');
        for (ki, k) in self.ks.iter().enumerate() {
            out.push_str(&format!("K = {k:>5}   "));
            for li in 0..self.lambdas.len() {
                let v = self.scores[ki][li];
                let t = if hi > lo { (v - lo) / (hi - lo) } else { 0.0 };
                let shade = shades[((t * 9.0).round() as usize).min(9)];
                out.push_str(&format!("  {shade}{shade}{shade}  "));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "best: K = {}, λ = {} (score {:.4}); range [{:.4}, {:.4}]\n",
            self.best.0, self.best.1, self.best.2, lo, hi
        ));
        out
    }

    /// Serialises the surface as CSV (`k,lambda,score`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("k,lambda,score\n");
        for (ki, k) in self.ks.iter().enumerate() {
            for (li, l) in self.lambdas.iter().enumerate() {
                out.push_str(&format!("{k},{l},{:.6}\n", self.scores[ki][li]));
            }
        }
        out
    }

    fn bounds(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for row in &self.scores {
            for &v in row {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        (lo, hi)
    }
}

/// Runs the grid search. `fit_cell(k, λ)` fits a model with those
/// hyper-parameters on `train`; the model is scored with recall@`m` on
/// `test` under the evaluation protocol. Cells are evaluated in parallel
/// (rayon), mirroring the paper's cluster fan-out; results are
/// deterministic because each cell is independent and seeded by the
/// caller.
///
/// # Panics
/// Panics if either axis is empty.
pub fn grid_search<F>(
    ks: &[usize],
    lambdas: &[f64],
    train: &CsrMatrix,
    test: &CsrMatrix,
    m: usize,
    fit_cell: F,
) -> GridResult
where
    F: Fn(usize, f64) -> Box<dyn Recommender> + Sync,
{
    assert!(
        !ks.is_empty() && !lambdas.is_empty(),
        "grid axes must be non-empty"
    );
    let cells: Vec<(usize, usize)> = (0..ks.len())
        .flat_map(|ki| (0..lambdas.len()).map(move |li| (ki, li)))
        .collect();
    let flat: Vec<f64> = cells
        .par_iter()
        .map(|&(ki, li)| {
            let model = fit_cell(ks[ki], lambdas[li]);
            evaluate(model.as_ref(), train, test, m).recall
        })
        .collect();
    let mut scores = vec![vec![0.0; lambdas.len()]; ks.len()];
    for (&(ki, li), &v) in cells.iter().zip(&flat) {
        scores[ki][li] = v;
    }
    let mut best = (ks[0], lambdas[0], f64::NEG_INFINITY);
    for (ki, &k) in ks.iter().enumerate() {
        for (li, &l) in lambdas.iter().enumerate() {
            if scores[ki][li] > best.2 {
                best = (k, l, scores[ki][li]);
            }
        }
    }
    GridResult {
        ks: ks.to_vec(),
        lambdas: lambdas.to_vec(),
        scores,
        best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocular_api::FnScorer;

    const T: usize = 100;

    /// `T` users each own item 0 in training and hold out item 3.
    fn fixture() -> (CsrMatrix, CsrMatrix) {
        let train: Vec<(usize, usize)> = (0..T).map(|u| (u, 0)).collect();
        let test: Vec<(usize, usize)> = (0..T).map(|u| (u, 3)).collect();
        (
            CsrMatrix::from_pairs(T, 4, &train).unwrap(),
            CsrMatrix::from_pairs(T, 4, &test).unwrap(),
        )
    }

    /// A stand-in fitted model whose recall@1 equals `quality` (clamped to
    /// `[0, 1]`, quantised to 1/T): the first `quality·T` users rank their
    /// held-out item first, the rest rank it last.
    fn cell_model(quality: f64) -> Box<dyn Recommender> {
        let winners = (quality.clamp(0.0, 1.0) * T as f64).round() as usize;
        Box::new(FnScorer::new("synthetic-cell", T, 4, move |u, buf| {
            buf[1] = 0.5;
            buf[2] = 0.25;
            buf[3] = if u < winners { 1.0 } else { -1.0 };
        }))
    }

    fn surface(k: usize, l: f64) -> f64 {
        let dk = (k as f64 - 100.0) / 100.0;
        let dl = (l - 30.0) / 50.0;
        1.0 - dk * dk - dl * dl
    }

    #[test]
    fn finds_the_peak() {
        // synthetic unimodal surface peaked at K=100, λ=30
        let (train, test) = fixture();
        let ks = vec![50usize, 100, 200];
        let lambdas = vec![0.0, 30.0, 100.0];
        let result = grid_search(&ks, &lambdas, &train, &test, 1, |k, l| {
            cell_model(surface(k, l))
        });
        assert_eq!(result.best.0, 100);
        assert_eq!(result.best.1, 30.0);
        assert!(
            (result.best.2 - 1.0).abs() < 1e-12,
            "peak recall {}",
            result.best.2
        );
    }

    #[test]
    fn surface_matches_direct_protocol_evaluation() {
        // the parallel fan-out must produce exactly what a sequential
        // evaluate() of each cell's model produces
        let (train, test) = fixture();
        let ks: Vec<usize> = vec![50, 80, 130, 200];
        let lambdas: Vec<f64> = vec![0.0, 10.0, 30.0, 80.0];
        let result = grid_search(&ks, &lambdas, &train, &test, 1, |k, l| {
            cell_model(surface(k, l))
        });
        for (ki, &k) in ks.iter().enumerate() {
            for (li, &l) in lambdas.iter().enumerate() {
                let direct =
                    crate::protocol::evaluate(cell_model(surface(k, l)).as_ref(), &train, &test, 1)
                        .recall;
                assert_eq!(result.score(ki, li), direct, "cell ({k}, {l})");
            }
        }
    }

    #[test]
    fn heatmap_and_csv_render() {
        let (train, test) = fixture();
        let result = grid_search(&[10, 20], &[1.0, 2.0], &train, &test, 1, |k, l| {
            cell_model(k as f64 * l / 100.0)
        });
        let art = result.render_heatmap();
        assert!(art.contains("K ="));
        assert!(art.contains("best: K = 20"));
        let csv = result.to_csv();
        assert!(csv.contains("k,lambda,score"));
        assert!(csv.contains("20,2,0.400000"));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_grid_panics() {
        let (train, test) = fixture();
        grid_search(&[], &[1.0], &train, &test, 1, |_, _| cell_model(0.0));
    }
}
