//! Top-M selection from dense score vectors.
//!
//! Recommendation generation (paper Section IV-C): *"we recommend item i to
//! user u if r_ui is among the M largest values P[r_ui' = 1], where i' is
//! over all items that user u did not purchase"*. Training positives are
//! therefore excluded, and ties are broken deterministically (score
//! descending, then item index ascending) so evaluations are reproducible
//! across runs and platforms.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A `(score, item)` candidate ordered so that a max-heap pops the *worst*
/// kept candidate first (min-heap behaviour via reversed ordering).
#[derive(PartialEq)]
struct Candidate {
    score: f64,
    item: usize,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse of the ranking order: smaller score first; among equal
        // scores, *larger* index first (so it gets evicted first and the
        // final ranking prefers smaller indices).
        other
            .score
            .partial_cmp(&self.score)
            .expect("scores must not be NaN")
            .then_with(|| self.item.cmp(&other.item))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Returns the indices of the `m` largest entries of `scores`, skipping the
/// (sorted) indices in `exclude`, ordered by score descending with
/// ascending-index tie-breaks. O(n log m).
///
/// # Panics
/// Panics if any considered score is NaN.
pub fn top_m_excluding(scores: &[f64], exclude: &[u32], m: usize) -> Vec<usize> {
    if m == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<Candidate> = BinaryHeap::with_capacity(m + 1);
    for (item, &score) in scores.iter().enumerate() {
        if exclude.binary_search(&(item as u32)).is_ok() {
            continue;
        }
        if heap.len() < m {
            heap.push(Candidate { score, item });
        } else if let Some(worst) = heap.peek() {
            let better = score > worst.score || (score == worst.score && item < worst.item);
            if better {
                heap.pop();
                heap.push(Candidate { score, item });
            }
        }
    }
    let mut out: Vec<Candidate> = heap.into_vec();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores must not be NaN")
            .then_with(|| a.item.cmp(&b.item))
    });
    out.into_iter().map(|c| c.item).collect()
}

/// Full ranking (all non-excluded items, best first). O(n log n); prefer
/// [`top_m_excluding`] when only a prefix is needed.
pub fn rank_all_excluding(scores: &[f64], exclude: &[u32]) -> Vec<usize> {
    top_m_excluding(scores, exclude, scores.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_largest() {
        let scores = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_m_excluding(&scores, &[], 2), vec![1, 3]);
        assert_eq!(top_m_excluding(&scores, &[], 4), vec![1, 3, 2, 0]);
    }

    #[test]
    fn excludes_training_positives() {
        let scores = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_m_excluding(&scores, &[1, 3], 2), vec![2, 0]);
    }

    #[test]
    fn ties_break_by_index() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        assert_eq!(top_m_excluding(&scores, &[], 3), vec![0, 1, 2]);
        assert_eq!(top_m_excluding(&scores, &[0], 3), vec![1, 2, 3]);
    }

    #[test]
    fn m_larger_than_candidates() {
        let scores = [0.3, 0.2];
        assert_eq!(top_m_excluding(&scores, &[0], 10), vec![1]);
    }

    #[test]
    fn m_zero() {
        assert!(top_m_excluding(&[1.0, 2.0], &[], 0).is_empty());
    }

    #[test]
    fn rank_all_matches_sort() {
        let scores = [3.0, 1.0, 2.0, 2.0, 5.0];
        assert_eq!(rank_all_excluding(&scores, &[]), vec![4, 0, 2, 3, 1]);
    }

    #[test]
    fn negative_scores_fine() {
        let scores = [-1.0, -0.5, -2.0];
        assert_eq!(top_m_excluding(&scores, &[], 2), vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_scores_panic() {
        top_m_excluding(&[0.0, f64::NAN, 1.0, 2.0], &[], 2);
    }
}
