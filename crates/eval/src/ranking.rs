//! Top-M selection from dense score vectors.
//!
//! Recommendation generation (paper Section IV-C): *"we recommend item i to
//! user u if r_ui is among the M largest values P[r_ui' = 1], where i' is
//! over all items that user u did not purchase"*. Training positives are
//! therefore excluded, and ties are broken deterministically (score
//! descending, then item index ascending) so evaluations are reproducible
//! across runs and platforms.

/// Returns the indices of the `m` largest entries of `scores`, skipping the
/// (sorted) indices in `exclude`, ordered by score descending with
/// ascending-index tie-breaks. O(n log m).
///
/// # Panics
/// Panics if any considered score is NaN.
pub fn top_m_excluding(scores: &[f64], exclude: &[u32], m: usize) -> Vec<usize> {
    // one shared kernel with the recommendation/serving paths, so the ties
    // convention cannot diverge between evaluation and serving
    ocular_linalg::topk::top_k_excluding(scores, exclude, m)
        .into_iter()
        .map(|(_, item)| item)
        .collect()
}

/// Full ranking (all non-excluded items, best first). O(n log n); prefer
/// [`top_m_excluding`] when only a prefix is needed.
pub fn rank_all_excluding(scores: &[f64], exclude: &[u32]) -> Vec<usize> {
    top_m_excluding(scores, exclude, scores.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_largest() {
        let scores = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_m_excluding(&scores, &[], 2), vec![1, 3]);
        assert_eq!(top_m_excluding(&scores, &[], 4), vec![1, 3, 2, 0]);
    }

    #[test]
    fn excludes_training_positives() {
        let scores = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_m_excluding(&scores, &[1, 3], 2), vec![2, 0]);
    }

    #[test]
    fn ties_break_by_index() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        assert_eq!(top_m_excluding(&scores, &[], 3), vec![0, 1, 2]);
        assert_eq!(top_m_excluding(&scores, &[0], 3), vec![1, 2, 3]);
    }

    #[test]
    fn m_larger_than_candidates() {
        let scores = [0.3, 0.2];
        assert_eq!(top_m_excluding(&scores, &[0], 10), vec![1]);
    }

    #[test]
    fn m_zero() {
        assert!(top_m_excluding(&[1.0, 2.0], &[], 0).is_empty());
    }

    #[test]
    fn rank_all_matches_sort() {
        let scores = [3.0, 1.0, 2.0, 2.0, 5.0];
        assert_eq!(rank_all_excluding(&scores, &[]), vec![4, 0, 2, 3, 1]);
    }

    #[test]
    fn negative_scores_fine() {
        let scores = [-1.0, -0.5, -2.0];
        assert_eq!(top_m_excluding(&scores, &[], 2), vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_scores_panic() {
        top_m_excluding(&[0.0, f64::NAN, 1.0, 2.0], &[], 2);
    }
}
