//! recall@M and MAP@M as functions of M — the Figure 5 curves.
//!
//! Each user is ranked once to depth `max_m`; prefix sums then yield the
//! whole curve, so computing 100 cutoffs costs the same as computing one.

use crate::metrics::prefix_metrics;
use crate::ranking::top_m_excluding;
use ocular_sparse::CsrMatrix;

/// A metric curve over cutoffs `1..=max_m`.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricCurves {
    /// `recall[m-1]` = mean recall@m.
    pub recall: Vec<f64>,
    /// `map[m-1]` = mean MAP@m.
    pub map: Vec<f64>,
    /// Users included in the averages.
    pub evaluated_users: usize,
}

impl MetricCurves {
    /// recall@m (1-based cutoff).
    pub fn recall_at(&self, m: usize) -> f64 {
        self.recall[m - 1]
    }

    /// MAP@m (1-based cutoff).
    pub fn map_at(&self, m: usize) -> f64 {
        self.map[m - 1]
    }

    /// Serialises as CSV (`m,recall,map` with a header).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("m,recall,map\n");
        for m in 1..=self.recall.len() {
            out.push_str(&format!(
                "{m},{:.6},{:.6}\n",
                self.recall[m - 1],
                self.map[m - 1]
            ));
        }
        out
    }
}

/// Computes the curves for a recommender over all cutoffs `1..=max_m`.
pub fn metric_curves(
    model: &dyn ocular_api::Recommender,
    train: &CsrMatrix,
    test: &CsrMatrix,
    max_m: usize,
) -> MetricCurves {
    let mut recall_sum = vec![0.0; max_m];
    let mut map_sum = vec![0.0; max_m];
    let mut n = 0usize;
    let mut buf: Vec<f64> = vec![0.0; train.n_cols()];
    for u in 0..train.n_rows() {
        let held_out = test.row(u);
        if held_out.is_empty() {
            continue;
        }
        model.score_user(u, &mut buf);
        let ranked = top_m_excluding(&buf, train.row(u), max_m);
        let (r, a) = prefix_metrics(&ranked, held_out, max_m);
        for m in 0..max_m {
            recall_sum[m] += r[m];
            map_sum[m] += a[m];
        }
        n += 1;
    }
    let denom = n.max(1) as f64;
    MetricCurves {
        recall: recall_sum.into_iter().map(|v| v / denom).collect(),
        map: map_sum.into_iter().map(|v| v / denom).collect(),
        evaluated_users: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::evaluate;
    use ocular_api::FnScorer;

    #[test]
    fn curves_match_pointwise_evaluation() {
        let train = CsrMatrix::from_pairs(3, 8, &[(0, 0), (1, 1), (2, 2)]).unwrap();
        let test = CsrMatrix::from_pairs(3, 8, &[(0, 3), (0, 4), (1, 5), (2, 6), (2, 7)]).unwrap();
        // an arbitrary deterministic scorer
        let scorer = FnScorer::new("synthetic", 3, 8, |u: usize, buf: &mut Vec<f64>| {
            for (i, b) in buf.iter_mut().enumerate() {
                *b = ((u * 31 + i * 17) % 13) as f64;
            }
        });
        let curves = metric_curves(&scorer, &train, &test, 8);
        for m in [1usize, 2, 4, 8] {
            let point = evaluate(&scorer, &train, &test, m);
            assert!(
                (curves.recall_at(m) - point.recall).abs() < 1e-12,
                "recall mismatch at m={m}"
            );
            assert!(
                (curves.map_at(m) - point.map).abs() < 1e-12,
                "map mismatch at m={m}"
            );
        }
    }

    #[test]
    fn recall_curve_is_monotone() {
        let train = CsrMatrix::from_pairs(2, 10, &[(0, 0), (1, 9)]).unwrap();
        let test = CsrMatrix::from_pairs(2, 10, &[(0, 5), (1, 2), (1, 3)]).unwrap();
        let scorer = FnScorer::new("synthetic", 2, 10, |u: usize, buf: &mut Vec<f64>| {
            for (i, b) in buf.iter_mut().enumerate() {
                *b = ((u + 3) * i % 7) as f64;
            }
        });
        let curves = metric_curves(&scorer, &train, &test, 9);
        for w in curves.recall.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "recall@M must be non-decreasing in M");
        }
    }

    #[test]
    fn csv_round_numbers() {
        let c = MetricCurves {
            recall: vec![0.5, 1.0],
            map: vec![0.25, 0.5],
            evaluated_users: 2,
        };
        let csv = c.to_csv();
        assert!(csv.starts_with("m,recall,map\n"));
        assert!(csv.contains("1,0.500000,0.250000"));
        assert!(csv.contains("2,1.000000,0.500000"));
    }
}
