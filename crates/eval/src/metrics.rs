//! Ranking metrics, as defined in Section VII-B1 of the paper.
//!
//! Given an ordered list of `M` recommendations `i₁, …, i_M` for user `u`
//! and the user's held-out positives `{i : r_ui = 1}`:
//!
//! * `recall@M(u) = |positives ∩ {i₁,…,i_M}| / |positives|`
//! * `Prec(m) = |positives ∩ {i₁,…,i_m}| / m`
//! * `AP@M(u) = Σ_{m=1}^{M} Prec(m) · 1{i_m positive} / min(|positives|, M)`
//! * `MAP@M` / overall `recall@M` = means over users (users without held-out
//!   positives are skipped — both metrics are undefined for them).
//!
//! Ties: rankings handed to these functions are already ordered; the
//! [`crate::ranking`] module breaks score ties deterministically
//! (score descending, item index ascending), the convention recommended by
//! McSherry & Najork (ECIR 2008) for reproducible tied-score evaluation.

/// Membership test against a *sorted* positive set. Compares in the `usize`
/// domain so item indices past `u32::MAX` never wrap into false hits.
#[inline]
fn is_relevant(relevant_sorted: &[u32], item: usize) -> bool {
    relevant_sorted
        .binary_search_by(|&e| (e as usize).cmp(&item))
        .is_ok()
}

/// recall@M for one user. `ranked` is the ordered recommendation list
/// (longer lists are truncated to `m`); `relevant_sorted` the user's held-out
/// positives, sorted ascending. Returns 0 when there are no positives.
pub fn recall_at(ranked: &[usize], relevant_sorted: &[u32], m: usize) -> f64 {
    if relevant_sorted.is_empty() {
        return 0.0;
    }
    let hits = ranked
        .iter()
        .take(m)
        .filter(|&&i| is_relevant(relevant_sorted, i))
        .count();
    hits as f64 / relevant_sorted.len() as f64
}

/// precision@M for one user (`Prec(m)` of the paper).
pub fn precision_at(ranked: &[usize], relevant_sorted: &[u32], m: usize) -> f64 {
    if m == 0 {
        return 0.0;
    }
    let cut = m.min(ranked.len());
    if cut == 0 {
        return 0.0;
    }
    let hits = ranked
        .iter()
        .take(m)
        .filter(|&&i| is_relevant(relevant_sorted, i))
        .count();
    hits as f64 / m as f64
}

/// AP@M for one user, per the paper's definition (denominator
/// `min(|positives|, M)` so AP@M ≤ 1). Returns 0 when there are no
/// positives.
pub fn average_precision_at(ranked: &[usize], relevant_sorted: &[u32], m: usize) -> f64 {
    if relevant_sorted.is_empty() || m == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (pos, &item) in ranked.iter().take(m).enumerate() {
        if is_relevant(relevant_sorted, item) {
            hits += 1;
            sum += hits as f64 / (pos + 1) as f64;
        }
    }
    sum / relevant_sorted.len().min(m) as f64
}

/// NDCG@M with binary gains (extra metric, not in the paper but standard).
pub fn ndcg_at(ranked: &[usize], relevant_sorted: &[u32], m: usize) -> f64 {
    if relevant_sorted.is_empty() || m == 0 {
        return 0.0;
    }
    let dcg: f64 = ranked
        .iter()
        .take(m)
        .enumerate()
        .filter(|(_, &i)| is_relevant(relevant_sorted, i))
        .map(|(pos, _)| 1.0 / ((pos + 2) as f64).log2())
        .sum();
    let ideal: f64 = (0..relevant_sorted.len().min(m))
        .map(|pos| 1.0 / ((pos + 2) as f64).log2())
        .sum();
    dcg / ideal
}

/// Prefix metrics for one user in a single pass: returns
/// `(recall@m, ap@m)` for every `m` in `1..=max_m`. Used by the Figure 5
/// curves so each user is ranked once.
pub fn prefix_metrics(
    ranked: &[usize],
    relevant_sorted: &[u32],
    max_m: usize,
) -> (Vec<f64>, Vec<f64>) {
    let n_rel = relevant_sorted.len();
    let mut recall = Vec::with_capacity(max_m);
    let mut ap = Vec::with_capacity(max_m);
    let mut hits = 0usize;
    let mut ap_numerator = 0.0;
    for m in 1..=max_m {
        if m <= ranked.len() && is_relevant(relevant_sorted, ranked[m - 1]) {
            hits += 1;
            ap_numerator += hits as f64 / m as f64;
        }
        if n_rel == 0 {
            recall.push(0.0);
            ap.push(0.0);
        } else {
            recall.push(hits as f64 / n_rel as f64);
            ap.push(ap_numerator / n_rel.min(m) as f64);
        }
    }
    (recall, ap)
}

#[cfg(test)]
mod tests {
    use super::*;

    // ranked list: [5, 2, 9, 1]; relevant: {2, 1, 7}
    const RANKED: [usize; 4] = [5, 2, 9, 1];
    const REL: [u32; 3] = [1, 2, 7];

    #[test]
    fn recall_hand_computed() {
        assert_eq!(recall_at(&RANKED, &REL, 1), 0.0);
        assert!((recall_at(&RANKED, &REL, 2) - 1.0 / 3.0).abs() < 1e-12);
        assert!((recall_at(&RANKED, &REL, 4) - 2.0 / 3.0).abs() < 1e-12);
        // truncation beyond list length changes nothing
        assert_eq!(recall_at(&RANKED, &REL, 10), recall_at(&RANKED, &REL, 4));
    }

    #[test]
    fn precision_hand_computed() {
        assert_eq!(precision_at(&RANKED, &REL, 1), 0.0);
        assert!((precision_at(&RANKED, &REL, 2) - 0.5).abs() < 1e-12);
        assert!((precision_at(&RANKED, &REL, 4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ap_hand_computed() {
        // hits at ranks 2 (item 2) and 4 (item 1):
        // AP@4 = (1/2 + 2/4) / min(3, 4) = 1/3
        assert!((average_precision_at(&RANKED, &REL, 4) - 1.0 / 3.0).abs() < 1e-12);
        // AP@2 = (1/2) / min(3, 2) = 0.25
        assert!((average_precision_at(&RANKED, &REL, 2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn perfect_ranking_scores_one() {
        let ranked = [1usize, 2, 7];
        assert_eq!(recall_at(&ranked, &REL, 3), 1.0);
        assert_eq!(average_precision_at(&ranked, &REL, 3), 1.0);
        assert_eq!(ndcg_at(&ranked, &REL, 3), 1.0);
    }

    #[test]
    fn empty_relevant_set_scores_zero() {
        assert_eq!(recall_at(&RANKED, &[], 4), 0.0);
        assert_eq!(average_precision_at(&RANKED, &[], 4), 0.0);
        assert_eq!(ndcg_at(&RANKED, &[], 4), 0.0);
    }

    #[test]
    fn m_zero_scores_zero() {
        assert_eq!(precision_at(&RANKED, &REL, 0), 0.0);
        assert_eq!(average_precision_at(&RANKED, &REL, 0), 0.0);
    }

    #[test]
    fn metrics_bounded() {
        assert!(average_precision_at(&RANKED, &REL, 4) <= 1.0);
        assert!(recall_at(&RANKED, &REL, 4) <= 1.0);
        assert!(ndcg_at(&RANKED, &REL, 4) <= 1.0);
    }

    #[test]
    fn ndcg_prefers_early_hits() {
        let early = [1usize, 5, 9];
        let late = [5usize, 9, 1];
        assert!(ndcg_at(&early, &REL, 3) > ndcg_at(&late, &REL, 3));
    }

    #[test]
    fn prefix_matches_pointwise() {
        let (recall, ap) = prefix_metrics(&RANKED, &REL, 6);
        for m in 1..=6 {
            assert!(
                (recall[m - 1] - recall_at(&RANKED, &REL, m)).abs() < 1e-12,
                "recall mismatch at m={m}"
            );
            assert!(
                (ap[m - 1] - average_precision_at(&RANKED, &REL, m)).abs() < 1e-12,
                "ap mismatch at m={m}"
            );
        }
    }
}
