//! Bounded top-K selection over dense score vectors — the one shared
//! implementation of the workspace's ranking ties convention.
//!
//! Both the evaluation protocol (`ocular-eval`) and the recommendation /
//! serving paths (`ocular-core`, `ocular-serve`) select the `K` largest
//! scores with ties broken by ascending index. Keeping a single kernel here
//! means the convention cannot silently diverge between what is evaluated
//! and what is served.
//!
//! The structure is a bounded binary min-heap of size `K`: the root is the
//! *worst* retained pair, so a losing candidate is rejected with one
//! comparison — `O(n log K)` total, and for skewed score distributions most
//! pushes are single-comparison rejections. Selection is **exactly**
//! equivalent to full-sort-then-truncate under the same total order
//! (property-tested in `ocular-serve`).

use std::cmp::Ordering;

/// Returns `true` when `a` ranks strictly *below* `b` in the final list
/// order (score descending, ties by ascending index).
///
/// # Panics
/// Panics if either score is NaN — scores are probabilities or model
/// scores in this workspace, so a NaN indicates an upstream bug worth
/// failing loudly on.
#[inline]
fn ranks_below(a: (f64, usize), b: (f64, usize)) -> bool {
    match a.0.partial_cmp(&b.0).expect("scores must not be NaN") {
        Ordering::Less => true,
        Ordering::Greater => false,
        Ordering::Equal => a.1 > b.1,
    }
}

/// A bounded binary min-heap keeping the `k` best `(score, index)` pairs
/// seen so far; the root is the *worst* retained pair.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    /// Min-heap under [`ranks_below`]: `heap[0]` ranks below its children.
    heap: Vec<(f64, usize)>,
}

impl TopK {
    /// An empty selector that will retain at most `k` pairs.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: Vec::with_capacity(k.min(1024)),
        }
    }

    /// Number of pairs currently retained (`≤ k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offers `(index, score)`; keeps it only if it ranks among the best
    /// `k` seen so far.
    #[inline]
    pub fn push(&mut self, index: usize, score: f64) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push((score, index));
            self.sift_up(self.heap.len() - 1);
        } else if ranks_below(self.heap[0], (score, index)) {
            self.heap[0] = (score, index);
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if ranks_below(self.heap[i], self.heap[parent]) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut lowest = i;
            if l < n && ranks_below(self.heap[l], self.heap[lowest]) {
                lowest = l;
            }
            if r < n && ranks_below(self.heap[r], self.heap[lowest]) {
                lowest = r;
            }
            if lowest == i {
                break;
            }
            self.heap.swap(i, lowest);
            i = lowest;
        }
    }

    /// Consumes the selector, returning the retained `(score, index)` pairs
    /// sorted by score descending, ties by ascending index — identical to
    /// sorting all offered pairs with the same comparator and truncating.
    pub fn into_sorted(self) -> Vec<(f64, usize)> {
        let mut out = self.heap;
        out.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .expect("scores must not be NaN")
                .then_with(|| a.1.cmp(&b.1))
        });
        out
    }
}

/// Selects the top-`k` of `scores`, skipping the sorted exclusion list
/// `exclude` (ascending `u32` indices, the CSR row convention). Returns
/// `(score, index)` pairs in ranking order.
///
/// The exclusion walk runs in the `usize` domain with a cursor over
/// `exclude`, so no index is ever narrowed to `u32` — catalogs larger than
/// `u32::MAX` cannot silently alias into the exclusion filter.
pub fn top_k_excluding(scores: &[f64], exclude: &[u32], k: usize) -> Vec<(f64, usize)> {
    let mut heap = TopK::new(k);
    let mut cursor = 0usize;
    for (index, &score) in scores.iter().enumerate() {
        while cursor < exclude.len() && (exclude[cursor] as usize) < index {
            cursor += 1;
        }
        if cursor < exclude.len() && exclude[cursor] as usize == index {
            cursor += 1;
            continue;
        }
        heap.push(index, score);
    }
    heap.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_sort(scores: &[f64], exclude: &[u32], k: usize) -> Vec<(f64, usize)> {
        let mut all: Vec<(f64, usize)> = scores
            .iter()
            .enumerate()
            .filter(|(i, _)| exclude.binary_search(&(*i as u32)).is_err())
            .map(|(i, &s)| (s, i))
            .collect();
        all.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then_with(|| a.1.cmp(&b.1)));
        all.truncate(k);
        all
    }

    #[test]
    fn matches_sort_on_ties() {
        let scores = [0.5, 0.9, 0.5, 0.1, 0.9, 0.5];
        for k in 0..=scores.len() + 1 {
            assert_eq!(
                top_k_excluding(&scores, &[], k),
                by_sort(&scores, &[], k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn exclusion_and_bounds() {
        let scores = [0.9, 0.8, 0.7, 0.6];
        let got = top_k_excluding(&scores, &[0, 2], 10);
        assert_eq!(got, vec![(0.8, 1), (0.6, 3)]);
        assert!(top_k_excluding(&scores, &[], 0).is_empty());
    }

    #[test]
    fn monotone_sequences_exercise_both_heap_paths() {
        let inc: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let dec: Vec<f64> = (0..100).map(|i| -(i as f64)).collect();
        for scores in [&inc, &dec] {
            assert_eq!(top_k_excluding(scores, &[], 7), by_sort(scores, &[], 7));
        }
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_scores_rejected_loudly() {
        top_k_excluding(&[0.5, f64::NAN], &[], 2);
    }
}
