//! Quantized factor representations and blocked scoring kernels.
//!
//! The serving tier scores `⟨f_u, f_i⟩` over every catalog item (or a
//! cluster candidate set). The master factors are `f64` — training and
//! fold-in need the precision — but recall@K is insensitive to low-order
//! mantissa bits, so serving can run on narrower types:
//!
//! * **f32** — the master rows rounded to single precision, half the
//!   memory traffic of `f64`;
//! * **int8** — affine per-row quantization `v ≈ scale·q + zero` with
//!   `q ∈ [-127, 127]`, an eighth of the traffic, scored through an
//!   `i32`-accumulated integer dot plus a closed-form affine
//!   reconstruction.
//!
//! A [`QuantizedFactors`] holds the item matrix in one of those dtypes,
//! SoA in [`ocular_bytes`] buffers that either own their memory
//! (64-byte-aligned) or borrow it zero-copy from an mmap'd snapshot
//! region, exactly like the `f64` master. [`QuantizedFactors::score_block`]
//! scores a contiguous run of item rows into a caller buffer, processing
//! items in cache-sized tiles with unrolled accumulator lanes so LLVM
//! auto-vectorizes the inner loops — no intrinsics, verified by the
//! workspace benches.
//!
//! The query side stays `f64` until [`QuantizedFactors::prepare`]
//! narrows one user row per request (warm rows come from the master
//! matrix; cold rows from fold-in — "quantize the folded row on the
//! fly").

use crate::Matrix;
use ocular_bytes::{F32Buf, I8Buf};

/// Accumulator lanes of the unrolled inner loops. Eight `f32` lanes fill
/// a 256-bit vector register; eight `i32` lanes likewise.
const LANES: usize = 8;

/// Item rows per scoring tile: `64 × k` elements stay within L1 for every
/// realistic factor count while giving the compiler a long, branch-free
/// trip count to vectorize.
const TILE: usize = 64;

/// int8 quantization range: symmetric `[-127, 127]` (−128 is unused so
/// the range is symmetric and negation stays in range).
const Q_MAX: f64 = 127.0;

/// Serving dtype of a quantized factor block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantDtype {
    /// Single-precision rows (4 bytes/element).
    F32,
    /// Affine per-row int8 (1 byte/element + 12 bytes/row of parameters).
    I8,
}

impl QuantDtype {
    /// Canonical CLI/wire spelling (`"f32"` / `"int8"`).
    pub fn name(self) -> &'static str {
        match self {
            QuantDtype::F32 => "f32",
            QuantDtype::I8 => "int8",
        }
    }

    /// Parses the CLI spelling; `None` for anything else.
    pub fn parse(s: &str) -> Option<QuantDtype> {
        match s {
            "f32" => Some(QuantDtype::F32),
            "int8" | "i8" => Some(QuantDtype::I8),
            _ => None,
        }
    }

    /// Payload bytes one `k`-column item row occupies in this dtype
    /// (including per-row parameters; the README's dtype table).
    pub fn bytes_per_row(self, k: usize) -> usize {
        match self {
            QuantDtype::F32 => 4 * k,
            // k bytes of codes + scale, zero-point and code-sum (f32 each)
            QuantDtype::I8 => k + 12,
        }
    }
}

impl std::fmt::Display for QuantDtype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

enum Repr {
    F32 {
        data: F32Buf,
    },
    I8 {
        data: I8Buf,
        /// Per-row scale (f32, one per row).
        scale: F32Buf,
        /// Per-row zero-point (f32, one per row).
        zero: F32Buf,
        /// Per-row code sums `Σ_c q_rc` (exact in f32: ≤ 127·k < 2²⁴).
        qsum: F32Buf,
    },
}

/// An item factor matrix quantized for serving: `rows × cols`, row-major,
/// SoA in owned-or-borrowed buffers. Built from the `f64` master with
/// [`QuantizedFactors::quantize`] (save time / `--quantize` on load) or
/// reassembled zero-copy from snapshot sections with the `from_parts_*`
/// constructors.
pub struct QuantizedFactors {
    rows: usize,
    cols: usize,
    repr: Repr,
}

/// A user row narrowed to a quantized dtype, ready to score against a
/// [`QuantizedFactors`] of the same dtype. One is prepared per request
/// (tiny: `k` narrow elements plus three scalars).
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    repr: QueryRepr,
}

#[derive(Debug, Clone)]
enum QueryRepr {
    F32(Vec<f32>),
    I8 {
        q: Vec<i8>,
        scale: f64,
        zero: f64,
        qsum: f64,
    },
}

/// Affine per-row parameters: codes in `[-127, 127]`, `v ≈ scale·q + zero`
/// with `zero` the range midpoint, so the rounding error is at most
/// `scale / 2 = range / (2·254)` per element.
fn row_params(row: &[f64]) -> (f64, f64) {
    let mut mn = f64::INFINITY;
    let mut mx = f64::NEG_INFINITY;
    for &v in row {
        mn = mn.min(v);
        mx = mx.max(v);
    }
    if !(mn.is_finite() && mx.is_finite()) {
        return (1.0, 0.0);
    }
    let zero = 0.5 * (mn + mx);
    let scale = (mx - mn) / (2.0 * Q_MAX);
    // constant rows quantize to all-zero codes with zero = the value;
    // a unit scale keeps the reconstruction well-defined
    if scale <= 0.0 || !scale.is_finite() {
        (1.0, zero)
    } else {
        (scale, zero)
    }
}

fn quantize_row(row: &[f64], scale: f64, zero: f64, out: &mut Vec<i8>) -> f64 {
    let inv = 1.0 / scale;
    let mut qsum = 0.0f64;
    for &v in row {
        let q = ((v - zero) * inv).round().clamp(-Q_MAX, Q_MAX) as i8;
        qsum += f64::from(q);
        out.push(q);
    }
    qsum
}

impl QuantizedFactors {
    /// Quantizes the `f64` master matrix into the given dtype.
    pub fn quantize(master: &Matrix, dtype: QuantDtype) -> QuantizedFactors {
        let (rows, cols) = (master.rows(), master.cols());
        let repr = match dtype {
            QuantDtype::F32 => {
                let data: Vec<f32> = master.as_slice().iter().map(|&v| v as f32).collect();
                Repr::F32 { data: data.into() }
            }
            QuantDtype::I8 => {
                let mut data = Vec::with_capacity(rows * cols);
                let mut scale = Vec::with_capacity(rows);
                let mut zero = Vec::with_capacity(rows);
                let mut qsum = Vec::with_capacity(rows);
                for r in 0..rows {
                    let row = master.row(r);
                    let (s, z) = row_params(row);
                    let sum = quantize_row(row, s, z, &mut data);
                    scale.push(s as f32);
                    zero.push(z as f32);
                    qsum.push(sum as f32);
                }
                Repr::I8 {
                    data: data.into(),
                    scale: scale.into(),
                    zero: zero.into(),
                    qsum: qsum.into(),
                }
            }
        };
        QuantizedFactors { rows, cols, repr }
    }

    /// Wraps an owned-or-borrowed `f32` buffer as a quantized matrix (the
    /// zero-copy snapshot load path). Errors on shape mismatch.
    pub fn from_parts_f32(rows: usize, cols: usize, data: F32Buf) -> Result<Self, String> {
        let need = rows
            .checked_mul(cols)
            .ok_or_else(|| format!("{rows}×{cols} overflows the address space"))?;
        if data.len() != need {
            return Err(format!(
                "f32 buffer holds {} values but {rows}×{cols} needs {need}",
                data.len()
            ));
        }
        Ok(QuantizedFactors {
            rows,
            cols,
            repr: Repr::F32 { data },
        })
    }

    /// Wraps owned-or-borrowed int8 buffers (codes + per-row scale /
    /// zero-point / code-sum) as a quantized matrix. Errors on any shape
    /// mismatch.
    pub fn from_parts_i8(
        rows: usize,
        cols: usize,
        data: I8Buf,
        scale: F32Buf,
        zero: F32Buf,
        qsum: F32Buf,
    ) -> Result<Self, String> {
        let need = rows
            .checked_mul(cols)
            .ok_or_else(|| format!("{rows}×{cols} overflows the address space"))?;
        if data.len() != need {
            return Err(format!(
                "i8 buffer holds {} codes but {rows}×{cols} needs {need}",
                data.len()
            ));
        }
        for (name, buf) in [("scale", &scale), ("zero", &zero), ("qsum", &qsum)] {
            if buf.len() != rows {
                return Err(format!(
                    "i8 {name} buffer holds {} values but there are {rows} rows",
                    buf.len()
                ));
            }
        }
        Ok(QuantizedFactors {
            rows,
            cols,
            repr: Repr::I8 {
                data,
                scale,
                zero,
                qsum,
            },
        })
    }

    /// Number of item rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Factor count per row.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The dtype this block stores.
    pub fn dtype(&self) -> QuantDtype {
        match self.repr {
            Repr::F32 { .. } => QuantDtype::F32,
            Repr::I8 { .. } => QuantDtype::I8,
        }
    }

    /// The flat `f32` payload (empty for int8) — snapshot persistence.
    pub fn f32_data(&self) -> &[f32] {
        match &self.repr {
            Repr::F32 { data } => data,
            Repr::I8 { .. } => &[],
        }
    }

    /// The int8 parts `(codes, scale, zero, qsum)` — snapshot persistence.
    /// All empty for f32.
    pub fn i8_parts(&self) -> (&[i8], &[f32], &[f32], &[f32]) {
        match &self.repr {
            Repr::F32 { .. } => (&[], &[], &[], &[]),
            Repr::I8 {
                data,
                scale,
                zero,
                qsum,
            } => (data, scale, zero, qsum),
        }
    }

    /// Reconstructs row `r` into `out` (tests, accuracy audits).
    ///
    /// # Panics
    /// Panics if `out.len() != cols`.
    pub fn dequantize_row(&self, r: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.cols, "output must hold one row");
        match &self.repr {
            Repr::F32 { data } => {
                for (o, &v) in out
                    .iter_mut()
                    .zip(&data[r * self.cols..(r + 1) * self.cols])
                {
                    *o = f64::from(v);
                }
            }
            Repr::I8 {
                data, scale, zero, ..
            } => {
                let s = f64::from(scale[r]);
                let z = f64::from(zero[r]);
                for (o, &q) in out
                    .iter_mut()
                    .zip(&data[r * self.cols..(r + 1) * self.cols])
                {
                    *o = s * f64::from(q) + z;
                }
            }
        }
    }

    /// Narrows one `f64` user row (master row or freshly folded-in
    /// factors) to this block's dtype. The row is quantized with its own
    /// parameters, independent of the item rows'.
    ///
    /// # Panics
    /// Panics if the row length differs from [`QuantizedFactors::cols`].
    pub fn prepare(&self, user_row: &[f64]) -> PreparedQuery {
        assert_eq!(user_row.len(), self.cols, "query row must have k factors");
        let repr = match &self.repr {
            Repr::F32 { .. } => QueryRepr::F32(user_row.iter().map(|&v| v as f32).collect()),
            Repr::I8 { .. } => {
                let (scale, zero) = row_params(user_row);
                let mut q = Vec::with_capacity(self.cols);
                let qsum = quantize_row(user_row, scale, zero, &mut q);
                QueryRepr::I8 {
                    q,
                    scale,
                    zero,
                    qsum,
                }
            }
        };
        PreparedQuery { repr }
    }

    /// Scores item rows `first .. first + out.len()` against a prepared
    /// query, writing the raw affinities `⟨f_u, f_i⟩` (as `f64`) into
    /// `out`. Items are processed in cache-sized tiles; the per-row inner
    /// loops run unrolled accumulator lanes that LLVM auto-vectorizes.
    ///
    /// # Panics
    /// Panics if the range exceeds the matrix or the query dtype differs.
    pub fn score_block(&self, query: &PreparedQuery, first: usize, out: &mut [f64]) {
        assert!(
            first + out.len() <= self.rows,
            "row range {first}..{} exceeds {} rows",
            first + out.len(),
            self.rows
        );
        let k = self.cols;
        // Hoist the owned-or-borrowed buffers to plain slices once per
        // call: `PodBuf` resolves its representation on every deref, which
        // the per-row parameter loads below must not pay.
        match (&self.repr, &query.repr) {
            (Repr::F32 { data }, QueryRepr::F32(u)) => {
                let data: &[f32] = data;
                let u: &[f32] = u;
                for (tile_idx, tile) in out.chunks_mut(TILE).enumerate() {
                    let base = (first + tile_idx * TILE) * k;
                    let rows = &data[base..base + tile.len() * k];
                    for (o, row) in tile.iter_mut().zip(rows.chunks_exact(k)) {
                        *o = f64::from(dot_f32(u, row));
                    }
                }
            }
            (
                Repr::I8 {
                    data,
                    scale,
                    zero,
                    qsum,
                },
                QueryRepr::I8 {
                    q,
                    scale: su,
                    zero: zu,
                    qsum: squ,
                },
            ) => {
                let data: &[i8] = data;
                let (scale, zero, qsum): (&[f32], &[f32], &[f32]) = (scale, zero, qsum);
                let q: &[i8] = q;
                // ⟨u, v⟩ with u ≈ su·qu + zu and v ≈ si·qi + zi expands to
                //   su·si·Σqu·qi + su·zi·Σqu + zu·si·Σqi + k·zu·zi
                // = si·(su·qdot + zu·qsum_i) + zi·(su·Σqu + k·zu)
                let c1 = su * squ + k as f64 * zu;
                for (tile_idx, tile) in out.chunks_mut(TILE).enumerate() {
                    let row0 = first + tile_idx * TILE;
                    let rows = &data[row0 * k..(row0 + tile.len()) * k];
                    let s_tile = &scale[row0..row0 + tile.len()];
                    let z_tile = &zero[row0..row0 + tile.len()];
                    let q_tile = &qsum[row0..row0 + tile.len()];
                    for ((((o, row), &si), &zi), &qs) in tile
                        .iter_mut()
                        .zip(rows.chunks_exact(k))
                        .zip(s_tile)
                        .zip(z_tile)
                        .zip(q_tile)
                    {
                        let qdot = f64::from(dot_i8(q, row));
                        *o = f64::from(si) * (su * qdot + zu * f64::from(qs)) + f64::from(zi) * c1;
                    }
                }
            }
            _ => panic!("query dtype does not match the factor dtype"),
        }
    }

    /// Scores a single item row against a prepared query (candidate-set
    /// serving).
    pub fn score_row(&self, query: &PreparedQuery, row: usize) -> f64 {
        let mut out = [0.0f64];
        self.score_block(query, row, &mut out);
        out[0]
    }
}

impl Clone for QuantizedFactors {
    fn clone(&self) -> Self {
        let repr = match &self.repr {
            Repr::F32 { data } => Repr::F32 { data: data.clone() },
            Repr::I8 {
                data,
                scale,
                zero,
                qsum,
            } => Repr::I8 {
                data: data.clone(),
                scale: scale.clone(),
                zero: zero.clone(),
                qsum: qsum.clone(),
            },
        };
        QuantizedFactors {
            rows: self.rows,
            cols: self.cols,
            repr,
        }
    }
}

impl PartialEq for QuantizedFactors {
    fn eq(&self, other: &Self) -> bool {
        if (self.rows, self.cols) != (other.rows, other.cols) {
            return false;
        }
        match (&self.repr, &other.repr) {
            (Repr::F32 { data: a }, Repr::F32 { data: b }) => a == b,
            (
                Repr::I8 {
                    data: a,
                    scale: asc,
                    zero: az,
                    qsum: aq,
                },
                Repr::I8 {
                    data: b,
                    scale: bsc,
                    zero: bz,
                    qsum: bq,
                },
            ) => a == b && asc == bsc && az == bz && aq == bq,
            _ => false,
        }
    }
}

impl std::fmt::Debug for QuantizedFactors {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantizedFactors")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("dtype", &self.dtype())
            .finish()
    }
}

/// `f32` dot with [`LANES`] unrolled accumulators. Independent partial
/// sums break the strict sequential-reduction order, which is what lets
/// LLVM keep the loop in vector registers.
#[inline]
fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let chunks_a = a.chunks_exact(LANES);
    let chunks_b = b.chunks_exact(LANES);
    let rem_a = chunks_a.remainder();
    let rem_b = chunks_b.remainder();
    for (ca, cb) in chunks_a.zip(chunks_b) {
        for l in 0..LANES {
            acc[l] += ca[l] * cb[l];
        }
    }
    // The tail accumulates into its own scalar: indexing `acc` with a
    // runtime lane here would force the whole accumulator array onto the
    // stack and de-vectorize the main loop above.
    let mut tail = 0.0f32;
    for (&x, &y) in rem_a.iter().zip(rem_b) {
        tail += x * y;
    }
    // pairwise tree fold of the lanes
    let mut width = LANES / 2;
    while width > 0 {
        for l in 0..width {
            acc[l] += acc[l + width];
        }
        width /= 2;
    }
    acc[0] + tail
}

/// Accumulator lanes of the int8 inner loop. Wider than the f32 unroll:
/// an int8 element is a quarter the width, so 32 lanes are what it takes
/// to feed full vector registers through the widening multiply.
const LANES_I8: usize = 32;

/// int8 dot accumulated in `i32` with [`LANES_I8`] unrolled accumulators.
/// The products are formed in `i16` (`127·127` fits) and widened on
/// accumulation — the pattern LLVM turns into packed multiply-add —
/// and `Σ |q·q| ≤ 127² · k` keeps `i32` safe for any realistic `k`.
#[inline]
fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0i32; LANES_I8];
    let chunks_a = a.chunks_exact(LANES_I8);
    let chunks_b = b.chunks_exact(LANES_I8);
    let rem_a = chunks_a.remainder();
    let rem_b = chunks_b.remainder();
    for (ca, cb) in chunks_a.zip(chunks_b) {
        for l in 0..LANES_I8 {
            acc[l] += i32::from(i16::from(ca[l]) * i16::from(cb[l]));
        }
    }
    // Same tail discipline as [`dot_f32`]: a runtime-indexed `acc[l]`
    // write in the tail spills the accumulators and de-vectorizes the
    // main loop (measured 3–30× on the 100k-item bench).
    let mut tail = 0i32;
    for (&x, &y) in rem_a.iter().zip(rem_b) {
        tail += i32::from(i16::from(x) * i16::from(y));
    }
    let mut width = LANES_I8 / 2;
    while width > 0 {
        for l in 0..width {
            acc[l] += acc[l + width];
        }
        width /= 2;
    }
    acc[0] + tail
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    fn master(rows: usize, cols: usize, seed: u64) -> Matrix {
        // deterministic pseudo-random non-negative factors (xorshift)
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let data: Vec<f64> = (0..rows * cols).map(|_| next() * 3.0).collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn dtype_parsing_and_names() {
        assert_eq!(QuantDtype::parse("f32"), Some(QuantDtype::F32));
        assert_eq!(QuantDtype::parse("int8"), Some(QuantDtype::I8));
        assert_eq!(QuantDtype::parse("i8"), Some(QuantDtype::I8));
        assert_eq!(QuantDtype::parse("f64"), None);
        assert_eq!(QuantDtype::F32.name(), "f32");
        assert_eq!(QuantDtype::I8.name(), "int8");
        assert_eq!(QuantDtype::F32.bytes_per_row(8), 32);
        assert_eq!(QuantDtype::I8.bytes_per_row(8), 20);
    }

    #[test]
    fn f32_scores_match_f64_dots_closely() {
        let m = master(100, 12, 3);
        let q = QuantizedFactors::quantize(&m, QuantDtype::F32);
        let user = m.row(7).to_vec();
        let prepared = q.prepare(&user);
        let mut out = vec![0.0; m.rows()];
        q.score_block(&prepared, 0, &mut out);
        for i in 0..m.rows() {
            let exact = ops::dot(&user, m.row(i));
            assert!(
                (out[i] - exact).abs() <= 1e-4 * exact.abs().max(1.0),
                "item {i}: f32 {} vs f64 {exact}",
                out[i]
            );
            assert_eq!(q.score_row(&prepared, i), out[i]);
        }
    }

    #[test]
    fn i8_scores_track_f64_dots() {
        let m = master(100, 16, 9);
        let q = QuantizedFactors::quantize(&m, QuantDtype::I8);
        let user = m.row(3).to_vec();
        let prepared = q.prepare(&user);
        let mut out = vec![0.0; m.rows()];
        q.score_block(&prepared, 0, &mut out);
        // int8 error: each factor carries ≤ scale/2 ≈ range/254 rounding
        // error, so a k-term dot of O(1) factors stays within a few percent
        for i in 0..m.rows() {
            let exact = ops::dot(&user, m.row(i));
            assert!(
                (out[i] - exact).abs() <= 0.05 * exact.abs().max(1.0),
                "item {i}: int8 {} vs f64 {exact}",
                out[i]
            );
        }
    }

    #[test]
    fn i8_scores_match_dequantized_reference_exactly_in_structure() {
        // the kernel's affine expansion must equal the naive dot of the
        // dequantized rows (same algebra, reassociated), to tight fp slack
        let m = master(40, 8, 17);
        let q = QuantizedFactors::quantize(&m, QuantDtype::I8);
        let user = m.row(0).to_vec();
        let prepared = q.prepare(&user);
        let mut dequser = vec![0.0; 8];
        // reference: dequantize the *query* the same way prepare() does
        let (su, zu) = row_params(&user);
        let mut qv = Vec::new();
        quantize_row(&user, su, zu, &mut qv);
        for (o, &c) in dequser.iter_mut().zip(&qv) {
            *o = su * f64::from(c) + zu;
        }
        let mut item = vec![0.0; 8];
        let mut out = vec![0.0; m.rows()];
        q.score_block(&prepared, 0, &mut out);
        for i in 0..m.rows() {
            q.dequantize_row(i, &mut item);
            let reference = ops::dot(&dequser, &item);
            assert!(
                (out[i] - reference).abs() <= 1e-4 * reference.abs().max(1.0),
                "item {i}: kernel {} vs dequantized reference {reference}",
                out[i]
            );
        }
    }

    #[test]
    fn score_block_offsets_and_tiles() {
        let m = master(2 * TILE + 13, 8, 5);
        for dtype in [QuantDtype::F32, QuantDtype::I8] {
            let q = QuantizedFactors::quantize(&m, dtype);
            let user = m.row(1).to_vec();
            let prepared = q.prepare(&user);
            let mut all = vec![0.0; m.rows()];
            q.score_block(&prepared, 0, &mut all);
            // an offset block must reproduce the same scores
            let mut part = vec![0.0; TILE + 7];
            q.score_block(&prepared, 39, &mut part);
            assert_eq!(&all[39..39 + part.len()], &part[..], "{dtype}");
        }
    }

    #[test]
    fn constant_and_empty_rows_are_handled() {
        let m = Matrix::from_rows(&[&[2.5, 2.5, 2.5], &[0.0, 0.0, 0.0], &[1.0, 2.0, 4.0]]);
        let q = QuantizedFactors::quantize(&m, QuantDtype::I8);
        let mut row = vec![0.0; 3];
        q.dequantize_row(0, &mut row);
        for &v in &row {
            assert!((v - 2.5).abs() < 1e-6);
        }
        q.dequantize_row(1, &mut row);
        assert_eq!(row, vec![0.0, 0.0, 0.0]);
        // zero-row matrices score nothing but construct fine
        let empty = QuantizedFactors::quantize(&Matrix::zeros(0, 3), QuantDtype::F32);
        let prepared = empty.prepare(&[1.0, 2.0, 3.0]);
        empty.score_block(&prepared, 0, &mut []);
    }

    #[test]
    #[should_panic(expected = "dtype")]
    fn mismatched_query_dtype_panics() {
        let m = master(4, 4, 1);
        let qf32 = QuantizedFactors::quantize(&m, QuantDtype::F32);
        let qi8 = QuantizedFactors::quantize(&m, QuantDtype::I8);
        let prepared = qf32.prepare(m.row(0));
        let mut out = vec![0.0; 4];
        qi8.score_block(&prepared, 0, &mut out);
    }

    #[test]
    fn from_parts_validate_shapes() {
        let f: F32Buf = vec![0.0f32; 12].into();
        assert!(QuantizedFactors::from_parts_f32(3, 4, f.clone()).is_ok());
        assert!(QuantizedFactors::from_parts_f32(4, 4, f).is_err());
        let codes: I8Buf = vec![0i8; 12].into();
        let per_row: F32Buf = vec![0.0f32; 3].into();
        assert!(QuantizedFactors::from_parts_i8(
            3,
            4,
            codes.clone(),
            per_row.clone(),
            per_row.clone(),
            per_row.clone()
        )
        .is_ok());
        let short: F32Buf = vec![0.0f32; 2].into();
        assert!(
            QuantizedFactors::from_parts_i8(3, 4, codes, short, per_row.clone(), per_row).is_err()
        );
    }

    #[test]
    fn parts_round_trip_through_from_parts() {
        let m = master(10, 6, 21);
        for dtype in [QuantDtype::F32, QuantDtype::I8] {
            let q = QuantizedFactors::quantize(&m, dtype);
            let rebuilt = match dtype {
                QuantDtype::F32 => {
                    QuantizedFactors::from_parts_f32(10, 6, q.f32_data().to_vec().into()).unwrap()
                }
                QuantDtype::I8 => {
                    let (codes, scale, zero, qsum) = q.i8_parts();
                    QuantizedFactors::from_parts_i8(
                        10,
                        6,
                        codes.to_vec().into(),
                        scale.to_vec().into(),
                        zero.to_vec().into(),
                        qsum.to_vec().into(),
                    )
                    .unwrap()
                }
            };
            assert_eq!(rebuilt, q, "{dtype}");
        }
    }
}
