//! Row-major dense matrix.

use ocular_bytes::F64Buf;

/// A dense row-major `rows × cols` matrix of `f64`.
///
/// Used throughout the workspace for factor matrices (`n_users × K`,
/// `n_items × K`) and for the small `K×K` systems of the wALS baseline.
/// Row views are contiguous slices, which is what every hot kernel wants.
///
/// The element storage is an [`F64Buf`]: matrices built in memory own a
/// `Vec<f64>` as before, while matrices loaded from a binary snapshot can
/// **borrow** their buffer from a shared (possibly memory-mapped) byte
/// region via [`Matrix::from_shared`] — the zero-copy serving path.
/// Mutation promotes a shared buffer to an owned copy first
/// (copy-on-write), so training code is unaffected.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: F64Buf,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols].into(),
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        Matrix {
            rows,
            cols,
            data: data.into(),
        }
    }

    /// Wraps an owned-or-borrowed [`F64Buf`] as a matrix — the zero-copy
    /// snapshot load path hands buffers borrowed from an mmap'd region
    /// here. Errors (instead of panicking: the buffer typically comes
    /// from untrusted bytes) when the length is not `rows * cols`.
    pub fn from_shared(rows: usize, cols: usize, data: F64Buf) -> Result<Self, String> {
        // the shape comes from untrusted snapshot metadata: a checked
        // multiply keeps a crafted rows×cols overflow a typed error
        // instead of a wrap-around (or debug panic)
        let need = rows
            .checked_mul(cols)
            .ok_or_else(|| format!("{rows}×{cols} overflows the address space"))?;
        if data.len() != need {
            return Err(format!(
                "buffer holds {} values but {rows}×{cols} needs {need}",
                data.len()
            ));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Whether the element buffer borrows a shared byte region (zero-copy
    /// snapshot load) rather than owning a `Vec`.
    pub fn is_shared(&self) -> bool {
        self.data.is_shared()
    }

    /// Builds from nested rows.
    ///
    /// # Panics
    /// Panics on ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map(|x| x.len()).unwrap_or(0);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix::from_vec(r, c, data)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Contiguous view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        let cols = self.cols;
        &mut self.data.make_owned()[r * cols..(r + 1) * cols]
    }

    /// Two disjoint mutable row views. Needed when an update reads one factor
    /// row while writing another.
    ///
    /// # Panics
    /// Panics if `a == b`.
    pub fn rows_mut_pair(&mut self, a: usize, b: usize) -> (&mut [f64], &mut [f64]) {
        assert_ne!(a, b, "rows must be distinct");
        let c = self.cols;
        let data = self.data.make_owned();
        if a < b {
            let (lo, hi) = data.split_at_mut(b * c);
            (&mut lo[a * c..(a + 1) * c], &mut hi[..c])
        } else {
            let (lo, hi) = data.split_at_mut(a * c);
            let (x, y) = (&mut hi[..c], &mut lo[b * c..(b + 1) * c]);
            (x, y)
        }
    }

    /// Flat row-major view of the whole buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable row-major view of the whole buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        self.data.make_owned()
    }

    /// Consumes the matrix, returning its flat buffer (copied if the
    /// matrix borrowed a shared region).
    pub fn into_vec(self) -> Vec<f64> {
        self.data.into_vec()
    }

    /// Sum of every row: `out[j] = Σ_r self[r, j]`. This is the paper's
    /// precomputed `Σ_u f_u` (Section IV-D sum-trick).
    pub fn column_sums(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.column_sums_into(&mut out);
        out
    }

    /// [`Matrix::column_sums`] into a caller-owned buffer (cleared and
    /// resized), so per-sweep callers reuse one allocation for the whole
    /// training run.
    pub fn column_sums_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.cols, 0.0);
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
    }

    /// Gram matrix `AᵀA` (`cols × cols`, symmetric PSD). The wALS baseline
    /// recomputes this once per half-sweep. O(rows · cols²).
    pub fn gram(&self) -> Matrix {
        let k = self.cols;
        let mut g = vec![0.0; k * k];
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..k {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..k {
                    g[i * k + j] += ri * row[j];
                }
            }
        }
        // mirror the upper triangle
        for i in 0..k {
            for j in 0..i {
                g[i * k + j] = g[j * k + i];
            }
        }
        Matrix::from_vec(k, k, g)
    }

    /// Matrix product `self · other`. O(n·m·p); intended for small matrices
    /// and tests, not hot paths.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = vec![0.0; self.rows * other.cols];
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = self.data[i * self.cols + l];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[i * other.cols + j] += a * other.data[l * other.cols + j];
                }
            }
        }
        Matrix::from_vec(self.rows, other.cols, out)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = vec![0.0; self.cols * self.rows];
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        Matrix::from_vec(self.cols, self.rows, out)
    }

    /// Frobenius norm squared `Σ a_ij²` — the regularizer `Σ ‖f‖²` of Eq. (4).
    pub fn frobenius_sq(&self) -> f64 {
        self.data.iter().map(|&v| v * v).sum()
    }

    /// Largest absolute entry difference to `other`; ∞-norm distance used in
    /// tests comparing sequential and parallel trainers.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        let cols = self.cols;
        &mut self.data.make_owned()[r * cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut m = Matrix::zeros(2, 3);
        m[(0, 1)] = 5.0;
        m[(1, 2)] = -1.5;
        assert_eq!(m.row(0), &[0.0, 5.0, 0.0]);
        assert_eq!(m.row(1), &[0.0, 0.0, -1.5]);
        assert_eq!(m[(0, 1)], 5.0);
    }

    #[test]
    fn from_rows_and_vec_agree() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    fn from_shared_validates_shape_without_overflow() {
        let buf: ocular_bytes::F64Buf = vec![1.0, 2.0].into();
        assert!(Matrix::from_shared(1, 2, buf.clone()).is_ok());
        assert!(Matrix::from_shared(2, 2, buf.clone()).is_err());
        // untrusted shapes whose product wraps must be a typed error,
        // not a wrap-around that matches an empty buffer
        let empty: ocular_bytes::F64Buf = Vec::new().into();
        assert!(Matrix::from_shared(1 << 32, 1 << 32, empty)
            .unwrap_err()
            .contains("overflows"));
    }

    #[test]
    fn column_sums() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.column_sums(), vec![9.0, 12.0]);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0], &[3.0, -1.0]]);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a);
        assert!(g.max_abs_diff(&explicit) < 1e-12);
        // symmetry
        assert_eq!(g[(0, 1)], g[(1, 0)]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
    }

    #[test]
    fn frobenius() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.frobenius_sq(), 25.0);
    }

    #[test]
    fn rows_mut_pair_both_orders() {
        let mut m = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        {
            let (a, b) = m.rows_mut_pair(0, 2);
            a[0] = 10.0;
            b[0] = 30.0;
        }
        {
            let (a, b) = m.rows_mut_pair(2, 1);
            assert_eq!(a[0], 30.0);
            b[0] = 20.0;
        }
        assert_eq!(m.as_slice(), &[10.0, 20.0, 30.0]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn rows_mut_pair_same_row_panics() {
        Matrix::zeros(2, 2).rows_mut_pair(1, 1);
    }
}
