//! Vector kernels on factor rows.
//!
//! These are the innermost loops of every trainer in the workspace; they take
//! and return plain slices so callers control allocation, per the
//! reuse-buffers guidance of the performance guide.

/// Inner product `⟨a, b⟩ = Σ_c a_c b_c` — the paper's `⟨f_u, f_i⟩`.
///
/// # Panics
/// Panics (debug) on length mismatch.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` (BLAS axpy).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y = x` (copy).
#[inline]
pub fn copy(x: &[f64], y: &mut [f64]) {
    y.copy_from_slice(x);
}

/// `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Squared Euclidean norm `‖x‖²` — the per-factor regularizer of Eq. (4).
#[inline]
pub fn norm_sq(x: &[f64]) -> f64 {
    x.iter().map(|&v| v * v).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm(x: &[f64]) -> f64 {
    norm_sq(x).sqrt()
}

/// Projects onto the non-negative orthant in place: `x_c ← max(0, x_c)`.
/// This is the `(·)₊` of the paper's projected gradient step.
#[inline]
pub fn project_nonneg(x: &mut [f64]) {
    for xi in x.iter_mut() {
        if *xi < 0.0 {
            *xi = 0.0;
        }
    }
}

/// Writes the projected gradient step `out = (x - alpha * g)₊` without
/// touching `x` (line search evaluates several candidate steps).
#[inline]
pub fn projected_step(x: &[f64], g: &[f64], alpha: f64, out: &mut [f64]) {
    debug_assert_eq!(x.len(), g.len());
    debug_assert_eq!(x.len(), out.len());
    for ((o, &xi), &gi) in out.iter_mut().zip(x).zip(g) {
        let v = xi - alpha * gi;
        *o = if v > 0.0 { v } else { 0.0 };
    }
}

/// `Σ_c g_c (y_c - x_c)` — the Armijo decrease predictor
/// `⟨∇Q(fᵏ), fᵏ⁺¹ - fᵏ⟩` of Section IV-D.
#[inline]
pub fn dot_diff(g: &[f64], y: &[f64], x: &[f64]) -> f64 {
    debug_assert_eq!(g.len(), y.len());
    debug_assert_eq!(g.len(), x.len());
    g.iter()
        .zip(y.iter().zip(x))
        .map(|(&gi, (&yi, &xi))| gi * (yi - xi))
        .sum()
}

/// Largest absolute entry.
#[inline]
pub fn max_abs(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

/// Blocked inner product: partial sums over `warp`-sized chunks, then a
/// final tree fold — numerically equivalent to the GPU shared-memory
/// reduction the parallel trainer simulates (`ocular_parallel::kernel`
/// re-exports this as its `block_dot`), and the one blocked `f64` dot
/// shared by training and serving.
pub fn block_dot(a: &[f64], b: &[f64], warp: usize) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let warp = warp.max(1);
    let mut partials: Vec<f64> = a
        .chunks(warp)
        .zip(b.chunks(warp))
        .map(|(ca, cb)| dot(ca, cb))
        .collect();
    // tree reduction
    while partials.len() > 1 {
        let half = partials.len().div_ceil(2);
        for i in 0..partials.len() / 2 {
            partials[i] += partials[half + i];
        }
        partials.truncate(half);
    }
    partials.first().copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn projection_clamps_negatives_only() {
        let mut x = vec![-1.0, 0.0, 2.5];
        project_nonneg(&mut x);
        assert_eq!(x, vec![0.0, 0.0, 2.5]);
    }

    #[test]
    fn projected_step_matches_manual() {
        let x = vec![1.0, 0.5, 0.0];
        let g = vec![10.0, -1.0, -2.0];
        let mut out = vec![0.0; 3];
        projected_step(&x, &g, 0.1, &mut out);
        assert_eq!(out, vec![0.0, 0.6, 0.2]);
    }

    #[test]
    fn dot_diff_matches_expansion() {
        let g = vec![1.0, 2.0];
        let y = vec![3.0, 1.0];
        let x = vec![1.0, 4.0];
        assert_eq!(dot_diff(&g, &y, &x), 1.0 * 2.0 + 2.0 * -3.0);
    }

    #[test]
    fn scale_and_copy() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
        let mut y = vec![0.0, 0.0];
        copy(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn max_abs_basic() {
        assert_eq!(max_abs(&[-5.0, 2.0, 4.5]), 5.0);
        assert_eq!(max_abs(&[]), 0.0);
    }

    #[test]
    fn block_dot_matches_dot_for_every_warp() {
        let a: Vec<f64> = (0..37).map(|i| (i as f64) * 0.3 - 2.0).collect();
        let b: Vec<f64> = (0..37).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        for warp in [1, 4, 32, 64] {
            assert!(
                (block_dot(&a, &b, warp) - dot(&a, &b)).abs() < 1e-9,
                "warp {warp}"
            );
        }
        assert_eq!(block_dot(&[], &[], 32), 0.0);
        // warp 0 is clamped to 1, not a division hazard
        assert_eq!(block_dot(&[2.0], &[3.0], 0), 6.0);
    }
}
