//! Cholesky factorization and SPD solves.
//!
//! The wALS baseline (Pan et al., ICDM 2008) alternates least-squares
//! updates, each of which solves a `K×K` symmetric positive-definite system
//! `(b·G + (1-b)·Σ f f^T + λI) x = rhs`. K is small (tens to low hundreds),
//! so an unblocked O(K³) Cholesky is the right tool.

use crate::Matrix;

/// Failure of a Cholesky factorization.
#[derive(Debug, Clone, PartialEq)]
pub enum CholeskyError {
    /// The matrix is not square.
    NotSquare {
        /// Actual row count.
        rows: usize,
        /// Actual column count.
        cols: usize,
    },
    /// A non-positive pivot was met: the matrix is not positive definite
    /// (within numerical tolerance).
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
        /// Value of the failing pivot before the square root.
        value: f64,
    },
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CholeskyError::NotSquare { rows, cols } => {
                write!(f, "matrix is {rows}×{cols}, not square")
            }
            CholeskyError::NotPositiveDefinite { pivot, value } => {
                write!(
                    f,
                    "non-positive pivot {value:.3e} at index {pivot}; matrix is not SPD"
                )
            }
        }
    }
}

impl std::error::Error for CholeskyError {}

/// Lower-triangular Cholesky factor `L` with `L·Lᵀ = A`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor (entries above the diagonal are zero).
    l: Matrix,
}

impl Cholesky {
    /// Factorizes the symmetric positive-definite matrix `a`.
    ///
    /// Only the lower triangle of `a` is read, so callers may pass matrices
    /// whose upper triangle is stale.
    pub fn factor(a: &Matrix) -> Result<Cholesky, CholeskyError> {
        if a.rows() != a.cols() {
            return Err(CholeskyError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(CholeskyError::NotPositiveDefinite { pivot: j, value: d });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            for i in j + 1..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` in place (`b` becomes `x`), via
    /// `L y = b` then `Lᵀ x = y`.
    ///
    /// # Panics
    /// Panics if `b.len() != dim()`.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length must equal dimension");
        // forward: L y = b
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[(i, k)] * b[k];
            }
            b[i] = s / self.l[(i, i)];
        }
        // backward: Lᵀ x = y
        for i in (0..n).rev() {
            let mut s = b[i];
            for k in i + 1..n {
                s -= self.l[(k, i)] * b[k];
            }
            b[i] = s / self.l[(i, i)];
        }
    }

    /// Solves `A x = b`, returning a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B·Bᵀ + I for B = [[1,2],[3,4],[5,6]] — guaranteed SPD.
        Matrix::from_rows(&[&[6.0, 11.0, 17.0], &[11.0, 26.0, 39.0], &[17.0, 39.0, 62.0]])
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let recon = ch.l().matmul(&ch.l().transpose());
        assert!(recon.max_abs_diff(&a) < 1e-9, "LLᵀ should equal A");
    }

    #[test]
    fn solve_identity() {
        let ch = Cholesky::factor(&Matrix::identity(4)).unwrap();
        let b = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(ch.solve(&b), b);
    }

    #[test]
    fn solve_known_system() {
        // A = [[4,2],[2,3]], b = [10, 9]  =>  x = [1.5, 2]
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&[10.0, 9.0]);
        assert!((x[0] - 1.5).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn residual_is_small() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = ch.solve(&b);
        // residual A x - b
        for i in 0..3 {
            let ax: f64 = (0..3).map(|j| a[(i, j)] * x[j]).sum();
            assert!((ax - b[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(CholeskyError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(CholeskyError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_zero_matrix() {
        assert!(Cholesky::factor(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn reads_lower_triangle_only() {
        let mut a = spd3();
        // poison the upper triangle; factorization must be unaffected
        a[(0, 1)] = f64::NAN;
        a[(0, 2)] = f64::NAN;
        a[(1, 2)] = f64::NAN;
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&[1.0, 0.0, 0.0]);
        assert!(x.iter().all(|v| v.is_finite()));
    }
}
