//! # ocular-linalg
//!
//! Small dense linear algebra for the OCuLaR reproduction.
//!
//! The paper's algorithms need only a narrow slice of linear algebra, all of
//! it dense and small:
//!
//! * factor matrices `F ∈ R^{n×K}` with fast row views — [`Matrix`];
//! * vector kernels (dot products, axpy, non-negative projection) on factor
//!   rows — [`ops`];
//! * `K×K` symmetric positive-definite solves for the wALS baseline's
//!   alternating least-squares updates — [`Cholesky`];
//! * Gram matrices `FᵀF` (the wALS "Gram trick" that makes the one-class
//!   objective tractable) — [`Matrix::gram`];
//! * bounded top-K selection under the workspace ranking ties convention,
//!   shared by evaluation and serving — [`topk`];
//! * quantized serving representations (`f32`, affine per-row `int8`) with
//!   blocked, auto-vectorizable score-many kernels — [`quant`].
//!
//! The master representation is `f64`, row-major, and
//! allocation-conscious: the hot kernels in [`ops`] write into
//! caller-provided buffers. [`quant`] narrows item factors for the serve
//! path only; training and fold-in stay `f64`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cholesky;
mod matrix;
pub mod ops;
pub mod quant;
pub mod topk;

pub use cholesky::{Cholesky, CholeskyError};
pub use matrix::Matrix;
pub use quant::{PreparedQuery, QuantDtype, QuantizedFactors};
pub use topk::{top_k_excluding, TopK};
