//! Property tests for the dense linear-algebra substrate.

use ocular_linalg::{ops, Cholesky, Matrix};
use proptest::prelude::*;

fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1usize..max_dim, 1usize..max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f64..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// SPD matrices built as `BᵀB + εI`.
fn arb_spd(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (2usize..max_dim).prop_flat_map(|n| {
        proptest::collection::vec(-3.0f64..3.0, n * n).prop_map(move |data| {
            let b = Matrix::from_vec(n, n, data);
            let mut a = b.transpose().matmul(&b);
            for i in 0..n {
                a[(i, i)] += 0.5;
            }
            a
        })
    })
}

proptest! {
    #[test]
    fn transpose_involution(m in arb_matrix(8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn gram_is_symmetric_psd_diag(m in arb_matrix(8)) {
        let g = m.gram();
        for i in 0..g.rows() {
            prop_assert!(g[(i, i)] >= -1e-12, "diagonal of Gram must be non-negative");
            for j in 0..g.cols() {
                prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn gram_matches_matmul(m in arb_matrix(7)) {
        let g = m.gram();
        let explicit = m.transpose().matmul(&m);
        prop_assert!(g.max_abs_diff(&explicit) < 1e-8);
    }

    #[test]
    fn column_sums_match_ones_vector(m in arb_matrix(8)) {
        let sums = m.column_sums();
        for j in 0..m.cols() {
            let manual: f64 = (0..m.rows()).map(|i| m[(i, j)]).sum();
            prop_assert!((sums[j] - manual).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_reconstructs(a in arb_spd(7)) {
        let ch = Cholesky::factor(&a).unwrap();
        let recon = ch.l().matmul(&ch.l().transpose());
        prop_assert!(recon.max_abs_diff(&a) < 1e-6 * (1.0 + a.frobenius_sq()));
    }

    #[test]
    fn cholesky_solves(a in arb_spd(7), seed in any::<u64>()) {
        let n = a.rows();
        // deterministic pseudo-rhs from the seed
        let b: Vec<f64> = (0..n).map(|i| {
            let x = seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
            ((x >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        }).collect();
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&b);
        for i in 0..n {
            let ax: f64 = (0..n).map(|j| a[(i, j)] * x[j]).sum();
            prop_assert!((ax - b[i]).abs() < 1e-5, "residual too large at {}", i);
        }
    }

    #[test]
    fn projected_step_nonnegative(x in proptest::collection::vec(-5.0f64..5.0, 1..20),
                                  g in proptest::collection::vec(-5.0f64..5.0, 1..20),
                                  alpha in 0.0f64..3.0) {
        let n = x.len().min(g.len());
        let mut out = vec![0.0; n];
        ops::projected_step(&x[..n], &g[..n], alpha, &mut out);
        prop_assert!(out.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn dot_cauchy_schwarz(a in proptest::collection::vec(-5.0f64..5.0, 1..20)) {
        let d = ops::dot(&a, &a);
        prop_assert!(d >= 0.0);
        prop_assert!((d.sqrt() - ops::norm(&a)).abs() < 1e-9);
    }
}
