//! Property tests for the dense linear-algebra substrate.

use ocular_linalg::{ops, Cholesky, Matrix, QuantDtype, QuantizedFactors};
use proptest::prelude::*;

fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1usize..max_dim, 1usize..max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f64..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// SPD matrices built as `BᵀB + εI`.
fn arb_spd(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (2usize..max_dim).prop_flat_map(|n| {
        proptest::collection::vec(-3.0f64..3.0, n * n).prop_map(move |data| {
            let b = Matrix::from_vec(n, n, data);
            let mut a = b.transpose().matmul(&b);
            for i in 0..n {
                a[(i, i)] += 0.5;
            }
            a
        })
    })
}

proptest! {
    #[test]
    fn transpose_involution(m in arb_matrix(8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn gram_is_symmetric_psd_diag(m in arb_matrix(8)) {
        let g = m.gram();
        for i in 0..g.rows() {
            prop_assert!(g[(i, i)] >= -1e-12, "diagonal of Gram must be non-negative");
            for j in 0..g.cols() {
                prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn gram_matches_matmul(m in arb_matrix(7)) {
        let g = m.gram();
        let explicit = m.transpose().matmul(&m);
        prop_assert!(g.max_abs_diff(&explicit) < 1e-8);
    }

    #[test]
    fn column_sums_match_ones_vector(m in arb_matrix(8)) {
        let sums = m.column_sums();
        for j in 0..m.cols() {
            let manual: f64 = (0..m.rows()).map(|i| m[(i, j)]).sum();
            prop_assert!((sums[j] - manual).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_reconstructs(a in arb_spd(7)) {
        let ch = Cholesky::factor(&a).unwrap();
        let recon = ch.l().matmul(&ch.l().transpose());
        prop_assert!(recon.max_abs_diff(&a) < 1e-6 * (1.0 + a.frobenius_sq()));
    }

    #[test]
    fn cholesky_solves(a in arb_spd(7), seed in any::<u64>()) {
        let n = a.rows();
        // deterministic pseudo-rhs from the seed
        let b: Vec<f64> = (0..n).map(|i| {
            let x = seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
            ((x >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        }).collect();
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&b);
        for i in 0..n {
            let ax: f64 = (0..n).map(|j| a[(i, j)] * x[j]).sum();
            prop_assert!((ax - b[i]).abs() < 1e-5, "residual too large at {}", i);
        }
    }

    #[test]
    fn projected_step_nonnegative(x in proptest::collection::vec(-5.0f64..5.0, 1..20),
                                  g in proptest::collection::vec(-5.0f64..5.0, 1..20),
                                  alpha in 0.0f64..3.0) {
        let n = x.len().min(g.len());
        let mut out = vec![0.0; n];
        ops::projected_step(&x[..n], &g[..n], alpha, &mut out);
        prop_assert!(out.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn dot_cauchy_schwarz(a in proptest::collection::vec(-5.0f64..5.0, 1..20)) {
        let d = ops::dot(&a, &a);
        prop_assert!(d >= 0.0);
        prop_assert!((d.sqrt() - ops::norm(&a)).abs() < 1e-9);
    }

    #[test]
    fn block_dot_matches_dot(a in proptest::collection::vec(-5.0f64..5.0, 0..64),
                             b in proptest::collection::vec(-5.0f64..5.0, 0..64),
                             warp in 0usize..70) {
        let n = a.len().min(b.len());
        let exact = ops::dot(&a[..n], &b[..n]);
        prop_assert!((ops::block_dot(&a[..n], &b[..n], warp) - exact).abs() < 1e-9);
    }

    /// f32 quantization is plain rounding: the per-element round-trip
    /// error is bounded by one f32 ulp of the value (relative 2⁻²³, with
    /// an absolute floor for subnormals).
    #[test]
    fn f32_quantize_dequantize_error_is_one_ulp(m in arb_matrix(10)) {
        let q = QuantizedFactors::quantize(&m, QuantDtype::F32);
        let mut row = vec![0.0; m.cols()];
        for r in 0..m.rows() {
            q.dequantize_row(r, &mut row);
            for (c, (&got, &want)) in row.iter().zip(m.row(r)).enumerate() {
                let bound = want.abs() * 1.2e-7 + 1e-37;
                prop_assert!(
                    (got - want).abs() <= bound,
                    "row {}, col {}: |{} - {}| > {}", r, c, got, want, bound
                );
            }
        }
    }

    /// int8 per-row affine quantization: the round-trip error is bounded
    /// by half a quantization step, `range / (2·254)`, plus f32 rounding
    /// of the row parameters.
    #[test]
    fn i8_quantize_dequantize_error_is_half_a_step(m in arb_matrix(10)) {
        let q = QuantizedFactors::quantize(&m, QuantDtype::I8);
        let mut row = vec![0.0; m.cols()];
        for r in 0..m.rows() {
            let (mn, mx) = m.row(r).iter().fold(
                (f64::INFINITY, f64::NEG_INFINITY),
                |(lo, hi), &v| (lo.min(v), hi.max(v)),
            );
            let range = mx - mn;
            // half a step, plus slack for the f32-stored scale/zero-point
            let bound = range / (2.0 * 254.0) + 1.2e-7 * (mn.abs().max(mx.abs()) + range) + 1e-30;
            q.dequantize_row(r, &mut row);
            for (c, (&got, &want)) in row.iter().zip(m.row(r)).enumerate() {
                prop_assert!(
                    (got - want).abs() <= bound,
                    "row {}, col {}: |{} - {}| > {}", r, c, got, want, bound
                );
            }
        }
    }

    /// Kernel consistency under quantization: for both dtypes, blocked
    /// scores stay within the analytic error envelope of the exact f64
    /// dot. Writing `u = û + εu`, `v = v̂ + εv` (hatted = quantized),
    /// `|⟨û, v̂⟩ − ⟨u, v⟩| ≤ Σ |u||εv| + |v||εu| + |εu||εv|`, with per-
    /// element ε bounded by half a quantization step (f32: one ulp).
    #[test]
    fn quantized_scores_stay_within_the_analytic_error_envelope(
        m in arb_matrix(9), row in 0usize..8) {
        let user = m.row(row % m.rows()).to_vec();
        let k = m.cols() as f64;
        let max_abs_user = ops::max_abs(&user);
        let step = |r: &[f64]| {
            let (mn, mx) = r.iter().fold(
                (f64::INFINITY, f64::NEG_INFINITY),
                |(lo, hi), &v| (lo.min(v), hi.max(v)),
            );
            (mx - mn) / 254.0
        };
        for dtype in [QuantDtype::F32, QuantDtype::I8] {
            let q = QuantizedFactors::quantize(&m, dtype);
            let prepared = q.prepare(&user);
            let mut out = vec![0.0; m.rows()];
            q.score_block(&prepared, 0, &mut out);
            for i in 0..m.rows() {
                let item = m.row(i);
                let exact = ops::dot(&user, item);
                let max_abs_item = ops::max_abs(item);
                // per-element quantization error for each operand
                let (eu, ev) = match dtype {
                    QuantDtype::F32 => (1.2e-7 * max_abs_user, 1.2e-7 * max_abs_item),
                    // half a step plus f32 rounding of the row's scale
                    // and zero-point (each bounded by ~2 ulp of max|v|)
                    QuantDtype::I8 => (
                        0.5 * step(&user) + 5e-7 * max_abs_user,
                        0.5 * step(item) + 5e-7 * max_abs_item,
                    ),
                };
                let bound = k * (max_abs_user * ev + max_abs_item * eu + eu * ev) + 1e-9;
                prop_assert!(
                    (out[i] - exact).abs() <= bound,
                    "{} item {}: |{} - {}| > {}", dtype, i, out[i], exact, bound
                );
            }
        }
    }
}
