//! End-to-end reproduction of the paper's introductory example: OCuLaR must
//! discover the three overlapping co-clusters of Figure 1 and surface the
//! held-out cells as its top recommendations (Figure 3).

use ocular_core::{
    default_threshold, explain, extract_coclusters, fit, recommend_top_m, OcularConfig,
};
use ocular_datasets::figure1::{figure1, HELD_OUT};

fn trained() -> (ocular_core::TrainResult, ocular_datasets::figure1::Figure1) {
    let f = figure1();
    let cfg = OcularConfig {
        k: 3,
        lambda: 0.05,
        max_iters: 400,
        tol: 1e-7,
        seed: 42,
        ..Default::default()
    };
    (fit(&f.matrix, &cfg), f)
}

#[test]
fn held_out_cells_get_high_probability() {
    let (result, _f) = trained();
    for &(u, i) in &HELD_OUT {
        let p = result.model.prob(u, i);
        assert!(p > 0.5, "held-out ({u},{i}) should score high, got {p:.3}");
    }
    // a far-outside pair must stay near zero
    let outside = result.model.prob(3, 0);
    assert!(outside < 0.05, "empty user × empty item scored {outside}");
}

#[test]
fn item4_recommended_to_user6() {
    let (result, f) = trained();
    // paper: "The probability estimate … for u = 6 is maximized among the
    // unknown examples for Item i = 4"
    let recs = recommend_top_m(&result.model, &f.matrix, 6, 1);
    assert_eq!(
        recs[0].item, 4,
        "top recommendation for user 6 must be item 4"
    );
    assert!(
        recs[0].probability > 0.5,
        "paper reports ≈0.83; got {:.3}",
        recs[0].probability
    );
}

#[test]
fn recommendation_explained_by_two_coclusters() {
    let (result, f) = trained();
    let clusters = extract_coclusters(&result.model, default_threshold());
    let e = explain(&result.model, &f.matrix, &clusters, 6, 4, 5);
    // user 6 belongs to co-clusters B and C; both must contribute
    let substantial: Vec<_> = e.contributions.iter().filter(|c| c.share > 0.1).collect();
    assert!(
        substantial.len() >= 2,
        "expected ≥2 contributing co-clusters, got {:?}",
        e.contributions
    );
    // the rendered rationale names similar clients who bought item 4
    let text = e.render();
    assert!(
        text.contains("also bought Item 4"),
        "rationale was:\n{text}"
    );
}

#[test]
fn coclusters_match_planted_structure() {
    let (result, f) = trained();
    let clusters = extract_coclusters(&result.model, default_threshold());
    // map each planted cluster to its best recovered match by user-set F1
    for (ti, (us, is)) in f.truth.user_sets.iter().zip(&f.truth.item_sets).enumerate() {
        let best = clusters
            .iter()
            .map(|c| {
                let ui = c.users.iter().filter(|u| us.contains(u)).count();
                let ii = c.items.iter().filter(|i| is.contains(i)).count();
                let prec_den = c.users.len() + c.items.len();
                let rec_den = us.len() + is.len();
                let inter = (ui + ii) as f64;
                if prec_den == 0 || inter == 0.0 {
                    0.0
                } else {
                    let p = inter / prec_den as f64;
                    let r = inter / rec_den as f64;
                    2.0 * p * r / (p + r)
                }
            })
            .fold(0.0f64, f64::max);
        assert!(
            best > 0.7,
            "planted cluster {ti} poorly recovered: best F1 {best:.2}"
        );
    }
}

#[test]
fn three_of_three_candidates_identified() {
    // the punchline of Figure 2: community-detection baselines identify only
    // 1 of the 3 candidate recommendations; OCuLaR must find all 3
    let (result, f) = trained();
    let mut found = 0;
    for &(u, i) in &HELD_OUT {
        let recs = recommend_top_m(&result.model, &f.matrix, u, 2);
        if recs.iter().any(|rec| rec.item == i) {
            found += 1;
        }
    }
    assert_eq!(found, 3, "OCuLaR should surface all three held-out cells");
}
