//! Property-based invariants of the training loop.

use ocular_core::loss::{objective, objective_naive, user_weights};
use ocular_core::{fit, FactorModel, OcularConfig, Weighting};
use ocular_linalg::Matrix;
use ocular_sparse::{CsrMatrix, Triplets};
use proptest::prelude::*;
use proptest::strategy::ValueTree;

fn arb_matrix() -> impl Strategy<Value = CsrMatrix> {
    (2usize..10, 2usize..10).prop_flat_map(|(n, m)| {
        proptest::collection::vec((0..n, 0..m), 1..40).prop_map(move |pairs| {
            let mut t = Triplets::new(n, m);
            t.extend_pairs(pairs).unwrap();
            t.into_csr()
        })
    })
}

fn arb_model(n: usize, m: usize) -> impl Strategy<Value = FactorModel> {
    (1usize..4).prop_flat_map(move |k| {
        (
            proptest::collection::vec(0.0f64..2.0, n * k),
            proptest::collection::vec(0.0f64..2.0, m * k),
        )
            .prop_map(move |(u, i)| {
                FactorModel::new(Matrix::from_vec(n, k, u), Matrix::from_vec(m, k, i), false)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn objective_sum_trick_matches_naive(r in arb_matrix(), seed in 0u64..1000, lambda in 0.0f64..2.0) {
        let strategy = arb_model(r.n_rows(), r.n_cols());
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let model = strategy.new_tree(&mut runner).unwrap().current();
        let _ = seed;
        for weighting in [Weighting::Absolute, Weighting::Relative] {
            let w = user_weights(&r, weighting);
            let fast = objective(&r, &model, lambda, &w);
            let naive = objective_naive(&r, &model, lambda, &w);
            let tol = 1e-8 * (1.0 + fast.abs());
            prop_assert!((fast - naive).abs() < tol, "fast {} vs naive {}", fast, naive);
        }
    }

    #[test]
    fn training_is_monotone_and_nonnegative(r in arb_matrix(), seed in 0u64..1000) {
        let cfg = OcularConfig {
            k: 3,
            lambda: 0.1,
            max_iters: 10,
            seed,
            ..Default::default()
        };
        let result = fit(&r.clone().into(), &cfg);
        for w in result.history.objective.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-7, "objective rose: {} -> {}", w[0], w[1]);
        }
        prop_assert!(result.model.user_factors.as_slice().iter().all(|&v| v >= 0.0));
        prop_assert!(result.model.item_factors.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn probabilities_always_valid(r in arb_matrix(), seed in 0u64..1000) {
        let cfg = OcularConfig { k: 2, lambda: 0.1, max_iters: 5, seed, ..Default::default() };
        let result = fit(&r.clone().into(), &cfg);
        for u in 0..r.n_rows() {
            for i in 0..r.n_cols() {
                let p = result.model.prob(u, i);
                prop_assert!((0.0..=1.0).contains(&p), "p({u},{i}) = {p}");
            }
        }
    }

    #[test]
    fn relative_weighting_also_monotone(r in arb_matrix(), seed in 0u64..500) {
        let cfg = OcularConfig {
            k: 2,
            lambda: 0.1,
            max_iters: 8,
            seed,
            weighting: Weighting::Relative,
            ..Default::default()
        };
        let result = fit(&r.clone().into(), &cfg);
        for w in result.history.objective.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-7);
        }
    }

    #[test]
    fn save_load_roundtrip_preserves_model(r in arb_matrix(), seed in 0u64..100) {
        let cfg = OcularConfig { k: 2, lambda: 0.2, max_iters: 3, seed, ..Default::default() };
        let model = fit(&r.clone().into(), &cfg).model;
        let mut buf: Vec<u8> = Vec::new();
        model.save(&mut buf).unwrap();
        let loaded = FactorModel::load(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(loaded, model);
    }
}
