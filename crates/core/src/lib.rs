//! # ocular-core
//!
//! From-scratch Rust implementation of **OCuLaR** — the *Overlapping
//! co-CLuster Recommendation* algorithm of Heckel, Vlachos, Parnell and
//! Duenner (*Scalable and interpretable product recommendations via
//! overlapping co-clustering*, ICDE 2017) — together with its
//! relative-preference variant **R-OCuLaR** (Section V) and the optional
//! bias extension (Section IV-A).
//!
//! ## The model
//!
//! Users and items carry non-negative affiliation vectors `f_u, f_i ∈ R₊^K`;
//! entry `c` measures how strongly the user/item belongs to co-cluster `c`.
//! Each co-cluster generates a positive example independently, so
//!
//! ```text
//! P[r_ui = 1] = 1 − exp(−⟨f_u, f_i⟩)            (Eq. 1)
//! ```
//!
//! Fitting maximises the regularised likelihood of the observed one-class
//! matrix (Eq. 3–4) by cyclic block coordinate descent: item factors and
//! user factors are updated alternately, each by a **single projected
//! gradient step** with Armijo backtracking line search along the projection
//! arc (Section IV-B/IV-D). The `Σ_u f_u` sum-trick makes a full sweep cost
//! `O(nnz · K)` — linear in the positive examples and in the number of
//! co-clusters, which is the paper's scalability claim (Figure 7).
//!
//! ## Quick start
//!
//! ```
//! use ocular_core::{fit, OcularConfig};
//! use ocular_sparse::{CsrMatrix, Dataset};
//!
//! // two obvious co-clusters
//! let r: Dataset = CsrMatrix::from_pairs(4, 4, &[
//!     (0, 0), (0, 1), (1, 0), (1, 1),
//!     (2, 2), (2, 3), (3, 2), (3, 3),
//! ]).unwrap().into();
//! let result = fit(&r, &OcularConfig { k: 2, lambda: 0.05, seed: 7, ..Default::default() });
//! // inside-cluster pairs score far higher than cross-cluster pairs
//! assert!(result.model.prob(0, 1) > 5.0 * result.model.prob(0, 3));
//! ```
//!
//! ## Module map
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`model`] | IV-A | [`FactorModel`], probabilities, persistence |
//! | [`config`] | IV-B, V | [`OcularConfig`], [`Weighting`] |
//! | [`loss`] | IV-B | objective `Q`, numerically safe pair loss |
//! | [`gradient`] | IV-D | per-factor gradients with the sum-trick |
//! | [`linesearch`] | IV-D | Armijo backtracking along the projection arc |
//! | [`trainer`] | IV-B/D | block coordinate descent, telemetry, [`fit`] |
//! | [`recommend`] | IV-C | top-M recommendation lists |
//! | [`topm`] | IV-C | bounded-heap top-M selection kernel |
//! | [`recommender`] | — | [`ocular_api`] trait hierarchy impls for [`FactorModel`] |
//! | [`coclusters`] | IV-C | co-cluster extraction and statistics |
//! | [`explain`](mod@explain) | IV-C, VIII | interpretable rationales (Figures 3 & 10) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coclusters;
pub mod config;
pub mod diagnostics;
pub mod explain;
pub mod foldin;
pub mod gradient;
pub mod linesearch;
pub mod loss;
pub mod model;
pub mod recommend;
pub mod recommender;
pub mod topm;
pub mod trainer;

pub use coclusters::{default_threshold, extract_coclusters, CoCluster};
pub use config::{InitStrategy, OcularConfig, Weighting};
pub use diagnostics::{diagnose, ModelDiagnostics};
pub use explain::{explain, Explanation};
pub use foldin::{fold_in_user, fold_in_user_with, recommend_for_basket, FoldIn, FoldInScratch};
pub use model::FactorModel;
pub use recommend::{recommend_top_m, Recommendation};
pub use topm::{top_m_excluding, TopM};
pub use trainer::{fit, try_fit, TrainResult, TrainingHistory};
