//! Co-cluster extraction and statistics (Sections IV-C and VII-C).
//!
//! *"The user-item co-cluster c is determined as the subset of users and
//! items for which `[f_u]_c` and `[f_i]_c`, respectively, are large."* The
//! paper leaves "large" application-specific; our default threshold is
//! `δ = sqrt(ln 2)` ≈ 0.8326, chosen so that two members sitting exactly at
//! the threshold connect with probability `1 − e^{−δ²} = ½`.
//!
//! Figure 6 reports, per (K, λ): the number of users per co-cluster, items
//! per co-cluster, and co-cluster densities — all computed here by
//! [`cocluster_stats`].

use crate::model::FactorModel;
use ocular_sparse::CsrMatrix;

/// Default membership threshold `sqrt(ln 2)`.
pub fn default_threshold() -> f64 {
    (2.0f64).ln().sqrt()
}

/// One extracted co-cluster: members on both sides with their affiliation
/// strengths, sorted by strength descending.
#[derive(Debug, Clone, PartialEq)]
pub struct CoCluster {
    /// Index `c` of the factor dimension this cluster corresponds to.
    pub index: usize,
    /// Member users, strongest affiliation first.
    pub users: Vec<usize>,
    /// `strength[j]` = `[f_{users[j]}]_c`.
    pub user_strengths: Vec<f64>,
    /// Member items, strongest affiliation first.
    pub items: Vec<usize>,
    /// `strength[j]` = `[f_{items[j]}]_c`.
    pub item_strengths: Vec<f64>,
}

impl CoCluster {
    /// Whether the pair `(u, i)` lies in this co-cluster.
    pub fn contains_pair(&self, u: usize, i: usize) -> bool {
        self.users.contains(&u) && self.items.contains(&i)
    }

    /// Number of (user, item) cells spanned by the cluster.
    pub fn area(&self) -> usize {
        self.users.len() * self.items.len()
    }
}

/// Extracts all co-clusters whose membership strength exceeds `threshold`.
/// Bias columns (if present) are never clusters. Empty co-clusters (no user
/// or no item above threshold) are dropped — the model requires a co-cluster
/// to contain at least one user *and* one item.
pub fn extract_coclusters(model: &FactorModel, threshold: f64) -> Vec<CoCluster> {
    let mut out = Vec::new();
    for c in 0..model.n_clusters() {
        let mut users: Vec<(usize, f64)> = (0..model.n_users())
            .filter_map(|u| {
                let s = model.user_factors.row(u)[c];
                (s >= threshold).then_some((u, s))
            })
            .collect();
        let mut items: Vec<(usize, f64)> = (0..model.n_items())
            .filter_map(|i| {
                let s = model.item_factors.row(i)[c];
                (s >= threshold).then_some((i, s))
            })
            .collect();
        if users.is_empty() || items.is_empty() {
            continue;
        }
        users.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        items.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        out.push(CoCluster {
            index: c,
            users: users.iter().map(|x| x.0).collect(),
            user_strengths: users.iter().map(|x| x.1).collect(),
            items: items.iter().map(|x| x.0).collect(),
            item_strengths: items.iter().map(|x| x.1).collect(),
        });
    }
    out
}

/// Extracts co-clusters with a *relative* per-side threshold: entity `e`
/// belongs to cluster `c` iff its strength is at least `rel` times the
/// strongest strength on its side of that cluster. More faithful for
/// cluster-size statistics than the absolute [`default_threshold`] because
/// regularised training splits magnitude asymmetrically between the large
/// side (many users, individually small strengths) and the small side (few
/// items, individually large strengths) of a co-cluster.
///
/// # Panics
/// Panics if `rel` is outside `(0, 1]`.
pub fn extract_coclusters_relative(model: &FactorModel, rel: f64) -> Vec<CoCluster> {
    assert!(rel > 0.0 && rel <= 1.0, "rel must lie in (0, 1]");
    let mut out = Vec::new();
    for c in 0..model.n_clusters() {
        let max_u = (0..model.n_users())
            .map(|u| model.user_factors.row(u)[c])
            .fold(0.0f64, f64::max);
        let max_i = (0..model.n_items())
            .map(|i| model.item_factors.row(i)[c])
            .fold(0.0f64, f64::max);
        // require the strongest pair to connect with probability ≥ ~39%
        // (p ≥ 0.5) so dead dimensions are not reported as clusters
        if max_u * max_i < 0.5 {
            continue;
        }
        let mut users: Vec<(usize, f64)> = (0..model.n_users())
            .filter_map(|u| {
                let s = model.user_factors.row(u)[c];
                (s >= rel * max_u).then_some((u, s))
            })
            .collect();
        let mut items: Vec<(usize, f64)> = (0..model.n_items())
            .filter_map(|i| {
                let s = model.item_factors.row(i)[c];
                (s >= rel * max_i).then_some((i, s))
            })
            .collect();
        if users.is_empty() || items.is_empty() {
            continue;
        }
        users.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        items.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        out.push(CoCluster {
            index: c,
            users: users.iter().map(|x| x.0).collect(),
            user_strengths: users.iter().map(|x| x.1).collect(),
            items: items.iter().map(|x| x.0).collect(),
            item_strengths: items.iter().map(|x| x.1).collect(),
        });
    }
    out
}

/// Aggregate co-cluster metrics — the three lower panels of Figure 6.
#[derive(Debug, Clone, PartialEq)]
pub struct CoClusterStats {
    /// Number of non-empty co-clusters.
    pub count: usize,
    /// Mean users per co-cluster.
    pub mean_users: f64,
    /// Mean items per co-cluster.
    pub mean_items: f64,
    /// Mean within-cluster density: fraction of a cluster's (user, item)
    /// cells that are positive examples in `r`.
    pub mean_density: f64,
    /// Mean number of co-clusters a (clustered) user belongs to.
    pub mean_user_memberships: f64,
}

/// Computes [`CoClusterStats`] against the training matrix.
pub fn cocluster_stats(clusters: &[CoCluster], r: &CsrMatrix) -> CoClusterStats {
    if clusters.is_empty() {
        return CoClusterStats {
            count: 0,
            mean_users: 0.0,
            mean_items: 0.0,
            mean_density: 0.0,
            mean_user_memberships: 0.0,
        };
    }
    let n = clusters.len() as f64;
    let mean_users = clusters.iter().map(|c| c.users.len() as f64).sum::<f64>() / n;
    let mean_items = clusters.iter().map(|c| c.items.len() as f64).sum::<f64>() / n;
    let mut density_sum = 0.0;
    for c in clusters {
        let mut inside = 0usize;
        for &u in &c.users {
            for &i in &c.items {
                if r.contains(u, i) {
                    inside += 1;
                }
            }
        }
        density_sum += inside as f64 / c.area().max(1) as f64;
    }
    let mut memberships = vec![0usize; r.n_rows()];
    for c in clusters {
        for &u in &c.users {
            memberships[u] += 1;
        }
    }
    let clustered: Vec<usize> = memberships.into_iter().filter(|&m| m > 0).collect();
    let mean_user_memberships = if clustered.is_empty() {
        0.0
    } else {
        clustered.iter().sum::<usize>() as f64 / clustered.len() as f64
    };
    CoClusterStats {
        count: clusters.len(),
        mean_users,
        mean_items,
        mean_density: density_sum / n,
        mean_user_memberships,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocular_linalg::Matrix;

    fn model() -> FactorModel {
        // cluster 0: users {0,1}, items {0}; cluster 1: users {1}, items {1}
        FactorModel::new(
            Matrix::from_rows(&[&[1.5, 0.0], &[1.0, 2.0], &[0.1, 0.1]]),
            Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 1.2], &[0.2, 0.0]]),
            false,
        )
    }

    #[test]
    fn threshold_splits_membership() {
        let clusters = extract_coclusters(&model(), 0.9);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].users, vec![0, 1]);
        assert_eq!(clusters[0].items, vec![0]);
        assert_eq!(clusters[1].users, vec![1]);
        assert_eq!(clusters[1].items, vec![1]);
    }

    #[test]
    fn members_sorted_by_strength() {
        let clusters = extract_coclusters(&model(), 0.9);
        // user 0 (1.5) before user 1 (1.0) in cluster 0
        assert_eq!(clusters[0].users, vec![0, 1]);
        assert!(clusters[0].user_strengths[0] > clusters[0].user_strengths[1]);
    }

    #[test]
    fn empty_side_drops_cluster() {
        // very high threshold: cluster 1's item (1.2) survives at 1.3? no →
        // cluster dropped entirely
        let clusters = extract_coclusters(&model(), 1.3);
        assert_eq!(clusters.len(), 1, "only cluster 0 has both sides ≥ 1.3");
        assert_eq!(clusters[0].index, 0);
        assert_eq!(clusters[0].users, vec![0]);
    }

    #[test]
    fn default_threshold_halfway_probability() {
        let d = default_threshold();
        let p = 1.0 - (-d * d).exp();
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_density_hand_computed() {
        let clusters = extract_coclusters(&model(), 0.9);
        // r: (0,0) and (1,1) positive
        let r = CsrMatrix::from_pairs(3, 3, &[(0, 0), (1, 1)]).unwrap();
        let stats = cocluster_stats(&clusters, &r);
        assert_eq!(stats.count, 2);
        // cluster 0: cells {(0,0),(1,0)} → density 1/2; cluster 1: {(1,1)} → 1
        assert!((stats.mean_density - 0.75).abs() < 1e-12);
        assert!((stats.mean_users - 1.5).abs() < 1e-12);
        assert!((stats.mean_items - 1.0).abs() < 1e-12);
        // user 0: 1 membership; user 1: 2 → mean over clustered users = 1.5
        assert!((stats.mean_user_memberships - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_extraction_stats() {
        let stats = cocluster_stats(&[], &CsrMatrix::empty(2, 2));
        assert_eq!(stats.count, 0);
        assert_eq!(stats.mean_density, 0.0);
    }

    #[test]
    fn contains_pair_and_area() {
        let clusters = extract_coclusters(&model(), 0.9);
        assert!(clusters[0].contains_pair(0, 0));
        assert!(!clusters[0].contains_pair(0, 1));
        assert_eq!(clusters[0].area(), 2);
    }

    #[test]
    fn relative_extraction_scales_with_side_maxima() {
        // user strengths 1.5 / 1.0 / 0.1: at rel = 0.5 the cutoff is 0.75
        let clusters = extract_coclusters_relative(&model(), 0.5);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].users, vec![0, 1]);
        // tighter rel keeps only the strongest member
        let tight = extract_coclusters_relative(&model(), 0.9);
        assert_eq!(tight[0].users, vec![0]);
    }

    #[test]
    fn relative_extraction_drops_dead_dimensions() {
        // a dimension whose best pair product < 0.5 is not a cluster
        let m = FactorModel::new(
            Matrix::from_rows(&[&[2.0, 0.3]]),
            Matrix::from_rows(&[&[2.0, 0.3]]),
            false,
        );
        let clusters = extract_coclusters_relative(&m, 0.3);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].index, 0);
    }

    #[test]
    #[should_panic(expected = "rel must lie")]
    fn relative_extraction_validates_rel() {
        extract_coclusters_relative(&model(), 0.0);
    }

    #[test]
    fn bias_columns_excluded_from_extraction() {
        // k=1 with bias: only dim 0 is a cluster even though bias values are
        // large
        let m = FactorModel::new(
            Matrix::from_rows(&[&[2.0, 9.0, 1.0]]),
            Matrix::from_rows(&[&[2.0, 1.0, 9.0]]),
            true,
        );
        let clusters = extract_coclusters(&m, 0.5);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].index, 0);
    }
}
